#include "obs/metrics.hpp"

#include <bit>
#include <cmath>

namespace dlsched::obs {

void Log2Histogram::add(double seconds) noexcept {
  if (!(seconds >= 0.0)) seconds = 0.0;  // NaN / negative clock skew
  const double micros = seconds * 1e6;
  std::size_t bucket = 0;
  if (micros >= 1.0) {
    const auto floor_micros = static_cast<std::uint64_t>(micros);
    bucket = static_cast<std::size_t>(std::bit_width(floor_micros)) - 1;
    if (bucket >= kBuckets) bucket = kBuckets - 1;
  }
  ++counts_[bucket];
  ++total_;
}

double Log2Histogram::quantile_upper(double q) const noexcept {
  if (total_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      return static_cast<double>(std::uint64_t{1} << (i + 1)) * 1e-6;
    }
  }
  return static_cast<double>(std::uint64_t{1} << kBuckets) * 1e-6;
}

std::string Log2Histogram::render_buckets_json() const {
  std::string out = "[";
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (i != 0) out += ',';
    out += std::to_string(counts_[i]);
  }
  out += ']';
  return out;
}

void Log2Histogram::merge(const Log2Histogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::set_gauge(std::string_view name, std::int64_t value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::observe(std::string_view name, double seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Log2Histogram{}).first;
  }
  it->second.add(seconds);
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::int64_t MetricsRegistry::gauge(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

Log2Histogram MetricsRegistry::histogram(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? Log2Histogram{} : it->second;
}

double MetricsRegistry::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       born_)
      .count();
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {counters_.begin(), counters_.end()};
}

std::vector<std::pair<std::string, std::int64_t>> MetricsRegistry::gauges()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {gauges_.begin(), gauges_.end()};
}

MetricsRegistry& MetricsRegistry::process() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace dlsched::obs
