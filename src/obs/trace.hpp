// Tracing half of the observability layer (src/obs/): RAII spans into
// per-thread buffers, merged across threads and processes into one
// Chrome trace_event JSON timeline (loadable in Perfetto / about:tracing).
//
// Design points:
//  - Disabled is the default and costs one relaxed atomic load per
//    `ObsSpan`; no span record is allocated (tests assert
//    `spans_recorded()` stays 0 through a full solve).
//  - Timestamps are microseconds on the monotonic clock *relative to the
//    run epoch* (`Tracer::enable` stamps it), so artifacts are small,
//    deterministic in shape, and -- because fork() copies the epoch --
//    directly comparable between the bench process and the local worker
//    fleet it spawns.
//  - Each thread appends to its own buffer under its own (uncontended)
//    mutex; the only global lock is taken on first record per thread and
//    on drain.  Buffers outlive their threads so pool workers' spans
//    survive the join.
//  - Remote processes ship their buffers as an encoded trace body (the
//    optional `trace` section of FragmentPush, or a `.trace` sidecar
//    next to a filesystem-board fragment); the engine merges every
//    `ProcessTrace` into one timeline with one pid per process label.
#pragma once

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dlsched::obs {

/// One closed span.  `category` is a short spaceless token ("solve",
/// "lease", "wire", ...) -- the per-phase attribution key; `name` is
/// free-form display text.
struct SpanRecord {
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  std::uint32_t lane = 0;  ///< thread lane within the recording process
  std::string category;
  std::string name;
};

/// Every span one process recorded, tagged with its display label
/// (the bench binary, "coordinator", a TCP worker id, ...).
struct ProcessTrace {
  std::string process;
  std::vector<SpanRecord> spans;
};

/// The per-process span sink.  One instance per process; `enable()`
/// turns recording on and stamps the run epoch.
class Tracer {
 public:
  static Tracer& instance();

  /// Starts recording: clears buffers, stamps the epoch, labels the
  /// process.  Idempotent re-enable restarts the run.
  void enable(std::string process_label);
  void disable();
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// After fork(): the child inherits the parent's buffers (and would
  /// re-ship the parent's spans).  Drops inherited spans, keeps the
  /// epoch so child timestamps stay on the parent's timeline.
  void relabel_after_fork(std::string process_label);

  [[nodiscard]] std::string process_label() const;

  /// Microseconds since the epoch (0 when never enabled).
  [[nodiscard]] std::uint64_t now_us() const noexcept;

  /// Appends a closed span to the calling thread's buffer.
  void record(const char* category, std::string name, std::uint64_t start_us,
              std::uint64_t end_us);

  /// Cumulative spans recorded since enable(); stays 0 while disabled.
  [[nodiscard]] std::uint64_t spans_recorded() const noexcept {
    return spans_recorded_.load(std::memory_order_relaxed);
  }

  /// Moves every buffered span out (deterministically ordered by
  /// (start, end, lane, category, name)) and clears the buffers;
  /// recording stays on.
  [[nodiscard]] ProcessTrace drain();

 private:
  struct ThreadBuffer {
    std::mutex mutex;
    std::uint32_t lane = 0;
    std::vector<SpanRecord> spans;
  };

  Tracer() = default;
  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> spans_recorded_{0};
  std::atomic<std::int64_t> epoch_ns_{0};  ///< steady_clock since-epoch ns

  mutable std::mutex registry_mutex_;
  std::string process_label_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_lane_ = 0;
};

/// RAII span guard.  Construction with string literals allocates
/// nothing when tracing is off; call `rename()` for a dynamic name only
/// behind `active()`.
class ObsSpan {
 public:
  ObsSpan(const char* category, const char* name) noexcept
      : category_(category), literal_(name) {
    Tracer& tracer = Tracer::instance();
    if (!tracer.enabled()) return;
    active_ = true;
    start_us_ = tracer.now_us();
  }
  ~ObsSpan() { finish(); }

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Replaces the display name (e.g. with the shard id); only
  /// meaningful while active, harmless otherwise.
  void rename(std::string name) {
    if (active_) dynamic_ = std::move(name);
  }

  /// Closes the span early (the destructor then does nothing).
  void finish() noexcept;

 private:
  const char* category_;
  const char* literal_;
  std::string dynamic_;
  std::uint64_t start_us_ = 0;
  bool active_ = false;
};

/// Merges per-process traces into one Chrome trace_event JSON document:
/// `{"traceEvents":[...]}` with one pid per process (named through
/// `process_name` metadata events), complete ("ph":"X") events in
/// microseconds.  Loadable in Perfetto and chrome://tracing.
[[nodiscard]] std::string render_trace_json(
    const std::vector<ProcessTrace>& processes);

/// Text codec for shipping one process's trace across the wire or as a
/// fragment sidecar file.  `decode_trace` throws on corrupt input.
[[nodiscard]] std::string encode_trace(const ProcessTrace& trace);
[[nodiscard]] ProcessTrace decode_trace(const std::string& body);

/// Folds `incoming` into `traces`, keeping one entry per process label
/// (a TCP worker ships one trace section per FragmentPush; they all
/// belong to one timeline row).  Spans are re-sorted on merge.
void merge_process_trace(std::vector<ProcessTrace>& traces,
                         ProcessTrace incoming);

/// Per-category attribution over a merged trace: span count and total
/// span seconds, name-ordered.  The bench "phase table".
struct PhaseAttribution {
  std::string category;
  std::uint64_t spans = 0;
  double seconds = 0.0;
};
[[nodiscard]] std::vector<PhaseAttribution> attribute_phases(
    const std::vector<ProcessTrace>& processes);

}  // namespace dlsched::obs
