// Metrics half of the observability layer (src/obs/): one named
// counter / gauge / log2-histogram registry shared by every tier.
//
// The log2 histogram used to live in service/stats.hpp as the daemon's
// `LatencyHistogram`; it now lives here (service keeps a thin alias) so
// the daemon, the coordinator and the experiment engine all bucket time
// the same way and render the same JSON.  `MetricsRegistry` absorbs the
// scattered per-subsystem counters (cache hits, arena acquires, frame
// counts) behind stable dotted names -- see README "Observability" for
// the name table.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dlsched::obs {

/// Power-of-two microsecond buckets: bucket i counts durations in
/// [2^i, 2^(i+1)) us, bucket 0 additionally holds sub-microsecond
/// samples.  32 buckets cover ~71 minutes, far beyond any solve budget.
class Log2Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void add(double seconds) noexcept;

  /// Upper bound (in seconds) of the bucket holding quantile `q` of the
  /// recorded samples; 0 when empty.  Bucketed, so good to ~2x --
  /// clients wanting exact quantiles keep their own samples.
  [[nodiscard]] double quantile_upper(double q) const noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets()
      const noexcept {
    return counts_;
  }

  /// The raw bucket array as a JSON list, e.g. "[0,3,1,...]"; the one
  /// rendering shared by StatsReport and the bench phase table.
  [[nodiscard]] std::string render_buckets_json() const;

  void merge(const Log2Histogram& other) noexcept;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
};

/// Thread-safe named metrics.  Counters are cumulative, gauges hold the
/// latest value, histograms bucket seconds through `Log2Histogram`.
/// Construction stamps the registry's birth for `uptime_seconds()`
/// (what the daemon and coordinator report over StatsQuery).
class MetricsRegistry {
 public:
  MetricsRegistry() : born_(std::chrono::steady_clock::now()) {}

  void add(std::string_view name, std::uint64_t delta = 1);
  void set_gauge(std::string_view name, std::int64_t value);
  void observe(std::string_view name, double seconds);

  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] std::int64_t gauge(std::string_view name) const;
  [[nodiscard]] Log2Histogram histogram(std::string_view name) const;

  [[nodiscard]] double uptime_seconds() const;

  /// Name-ordered snapshots (std::map iteration) for rendering.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  counters() const;
  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> gauges()
      const;

  /// The process-wide registry: what the solver core, the result cache
  /// and the wire codecs count into without any plumbing.
  static MetricsRegistry& process();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, std::int64_t, std::less<>> gauges_;
  std::map<std::string, Log2Histogram, std::less<>> histograms_;
  std::chrono::steady_clock::time_point born_;
};

}  // namespace dlsched::obs
