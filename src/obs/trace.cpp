#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "util/error.hpp"

namespace dlsched::obs {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Minimal JSON string escape: quotes, backslashes and control bytes.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Deterministic span order: by start, longer (enclosing) spans first
/// on ties, then lane / category / name as final tie-breaks.
void sort_spans(std::vector<SpanRecord>& spans) {
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return std::make_tuple(a.start_us, b.end_us, a.lane,
                                     std::cref(a.category),
                                     std::cref(a.name)) <
                     std::make_tuple(b.start_us, a.end_us, b.lane,
                                     std::cref(b.category),
                                     std::cref(b.name));
            });
}

}  // namespace

// ------------------------------------------------------------------ Tracer --

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::enable(std::string process_label) {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers_) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->spans.clear();
  }
  process_label_ = std::move(process_label);
  spans_recorded_.store(0, std::memory_order_relaxed);
  epoch_ns_.store(steady_ns(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() {
  enabled_.store(false, std::memory_order_release);
}

void Tracer::relabel_after_fork(std::string process_label) {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers_) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->spans.clear();
  }
  process_label_ = std::move(process_label);
  spans_recorded_.store(0, std::memory_order_relaxed);
}

std::string Tracer::process_label() const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  return process_label_;
}

std::uint64_t Tracer::now_us() const noexcept {
  const std::int64_t epoch = epoch_ns_.load(std::memory_order_relaxed);
  const std::int64_t delta = steady_ns() - epoch;
  return delta > 0 ? static_cast<std::uint64_t>(delta) / 1000u : 0u;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (!buffer) {
    buffer = std::make_shared<ThreadBuffer>();
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    buffer->lane = next_lane_++;
    buffers_.push_back(buffer);
  }
  return *buffer;
}

void Tracer::record(const char* category, std::string name,
                    std::uint64_t start_us, std::uint64_t end_us) {
  if (end_us < start_us) end_us = start_us;
  ThreadBuffer& buffer = local_buffer();
  {
    const std::lock_guard<std::mutex> lock(buffer.mutex);
    SpanRecord span;
    span.start_us = start_us;
    span.end_us = end_us;
    span.lane = buffer.lane;
    span.category = category;
    span.name = std::move(name);
    buffer.spans.push_back(std::move(span));
  }
  spans_recorded_.fetch_add(1, std::memory_order_relaxed);
}

ProcessTrace Tracer::drain() {
  ProcessTrace trace;
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  trace.process = process_label_;
  for (const std::shared_ptr<ThreadBuffer>& buffer : buffers_) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    for (SpanRecord& span : buffer->spans) {
      trace.spans.push_back(std::move(span));
    }
    buffer->spans.clear();
  }
  sort_spans(trace.spans);
  return trace;
}

// ----------------------------------------------------------------- ObsSpan --

void ObsSpan::finish() noexcept {
  if (!active_) return;
  active_ = false;
  Tracer& tracer = Tracer::instance();
  if (!tracer.enabled()) return;
  try {
    tracer.record(category_,
                  dynamic_.empty() ? std::string(literal_)
                                   : std::move(dynamic_),
                  start_us_, tracer.now_us());
  } catch (...) {
    // Tracing must never take the run down; a lost span is acceptable.
  }
}

// ------------------------------------------------------------ JSON export --

std::string render_trace_json(const std::vector<ProcessTrace>& processes) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    if (!first) out << ',';
    first = false;
    out << '\n' << event;
  };
  for (std::size_t p = 0; p < processes.size(); ++p) {
    std::ostringstream meta;
    meta << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << (p + 1)
         << ",\"tid\":0,\"args\":{\"name\":"
         << json_escape(processes[p].process) << "}}";
    emit(meta.str());
  }
  for (std::size_t p = 0; p < processes.size(); ++p) {
    for (const SpanRecord& span : processes[p].spans) {
      std::ostringstream event;
      event << "{\"name\":" << json_escape(span.name)
            << ",\"cat\":" << json_escape(span.category)
            << ",\"ph\":\"X\",\"pid\":" << (p + 1)
            << ",\"tid\":" << span.lane << ",\"ts\":" << span.start_us
            << ",\"dur\":" << (span.end_us - span.start_us) << "}";
      emit(event.str());
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out.str();
}

// ----------------------------------------------------------------- codec --

namespace {
constexpr const char* kTraceMagic = "dlsched-obs-trace";
constexpr int kTraceVersion = 1;
constexpr std::size_t kMaxTraceSpans = std::size_t{1} << 22;

std::string get_sized(std::istream& in, const char* what) {
  std::size_t length = 0;
  in >> length;
  DLSCHED_EXPECT(in.good() && length <= (std::size_t{1} << 20),
                 std::string("obs trace: implausible ") + what + " length");
  in.ignore(1);
  std::string text(length, '\0');
  in.read(text.data(), static_cast<std::streamsize>(length));
  DLSCHED_EXPECT(in.good(),
                 std::string("obs trace: truncated ") + what);
  return text;
}
}  // namespace

std::string encode_trace(const ProcessTrace& trace) {
  std::ostringstream out;
  out << kTraceMagic << ' ' << kTraceVersion << '\n';
  out << "process " << trace.process.size() << ' ' << trace.process << '\n';
  out << "spans " << trace.spans.size() << '\n';
  for (const SpanRecord& span : trace.spans) {
    out << span.start_us << ' ' << span.end_us << ' ' << span.lane << ' '
        << span.category << ' ' << span.name.size() << ' ' << span.name
        << '\n';
  }
  out << "end\n";
  return out.str();
}

ProcessTrace decode_trace(const std::string& body) {
  std::istringstream in(body);
  std::string magic;
  int version = 0;
  in >> magic >> version;
  DLSCHED_EXPECT(magic == kTraceMagic && version == kTraceVersion &&
                     in.good(),
                 "obs trace: bad header");
  in.ignore(1);
  std::string label;
  in >> label;
  DLSCHED_EXPECT(label == "process" && in.good(),
                 "obs trace: expected process label");
  ProcessTrace trace;
  trace.process = get_sized(in, "process label");
  in >> label;
  DLSCHED_EXPECT(label == "spans" && in.good(),
                 "obs trace: expected span count");
  std::size_t count = 0;
  in >> count;
  DLSCHED_EXPECT(in.good() && count <= kMaxTraceSpans,
                 "obs trace: implausible span count");
  in.ignore(1);
  trace.spans.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SpanRecord span;
    in >> span.start_us >> span.end_us >> span.lane >> span.category;
    DLSCHED_EXPECT(in.good(), "obs trace: truncated span");
    span.name = get_sized(in, "span name");
    trace.spans.push_back(std::move(span));
  }
  in >> label;
  DLSCHED_EXPECT(label == "end" && !in.fail(),
                 "obs trace: missing end marker");
  return trace;
}

void merge_process_trace(std::vector<ProcessTrace>& traces,
                         ProcessTrace incoming) {
  for (ProcessTrace& existing : traces) {
    if (existing.process != incoming.process) continue;
    for (SpanRecord& span : incoming.spans) {
      existing.spans.push_back(std::move(span));
    }
    sort_spans(existing.spans);
    return;
  }
  sort_spans(incoming.spans);
  traces.push_back(std::move(incoming));
}

// ----------------------------------------------------------- attribution --

std::vector<PhaseAttribution> attribute_phases(
    const std::vector<ProcessTrace>& processes) {
  std::map<std::string, PhaseAttribution> by_category;
  for (const ProcessTrace& process : processes) {
    for (const SpanRecord& span : process.spans) {
      PhaseAttribution& phase = by_category[span.category];
      phase.category = span.category;
      ++phase.spans;
      phase.seconds +=
          static_cast<double>(span.end_us - span.start_us) * 1e-6;
    }
  }
  std::vector<PhaseAttribution> phases;
  phases.reserve(by_category.size());
  for (auto& [category, phase] : by_category) phases.push_back(phase);
  return phases;
}

}  // namespace dlsched::obs
