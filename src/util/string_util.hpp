// Minimal string helpers shared by trace dumps and benchmark harnesses.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dlsched {

/// Splits on a single-character delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char delim);

/// Strips leading/trailing ASCII whitespace.
[[nodiscard]] std::string trim(std::string_view text);

/// Joins with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// True if `text` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Human-readable byte count ("1.5 MiB").
[[nodiscard]] std::string format_bytes(double bytes);

/// Seconds rendered with an adaptive unit ("12.3 ms", "4.56 s").
[[nodiscard]] std::string format_seconds(double seconds);

}  // namespace dlsched
