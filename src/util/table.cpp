#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace dlsched {

std::string format_double(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  std::string s = out.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DLSCHED_EXPECT(!header_.empty(), "table needs at least one column");
}

void Table::set_precision(int digits) {
  DLSCHED_EXPECT(digits >= 0 && digits <= 17, "unreasonable precision");
  precision_ = digits;
}

Table& Table::begin_row() {
  check_row_complete();
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

Table& Table::cell(std::string value) {
  DLSCHED_EXPECT(!rows_.empty(), "cell() before begin_row()");
  DLSCHED_EXPECT(rows_.back().size() < header_.size(), "row overflow");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(double value) { return cell(format_double(value, precision_)); }

Table& Table::cell(long long value) { return cell(std::to_string(value)); }

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }

const std::vector<std::string>& Table::row(std::size_t i) const {
  DLSCHED_EXPECT(i < rows_.size(), "row index out of range");
  return rows_[i];
}

void Table::check_row_complete() const {
  if (!rows_.empty()) {
    DLSCHED_EXPECT(rows_.back().size() == header_.size(),
                   "previous row is incomplete");
  }
}

void Table::print_aligned(std::ostream& out) const {
  check_row_complete();
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      if (c + 1 < cells.size()) out << "  ";
    }
    out << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total >= 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += "\"\"";
    else quoted += ch;
  }
  quoted += '"';
  return quoted;
}
}  // namespace

void Table::print_csv(std::ostream& out) const {
  check_row_complete();
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << csv_escape(cells[c]);
      if (c + 1 < cells.size()) out << ',';
    }
    out << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace dlsched
