// Tabular output: aligned text tables and CSV, used by every figure bench to
// print the series the paper plots.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace dlsched {

/// Accumulates rows of string cells and renders them either as an aligned
/// human-readable table or as CSV.  Cells are stored as text; numeric
/// convenience overloads format with a configurable precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Number formatting precision for the double overload of `cell`.
  void set_precision(int digits);

  /// Starts a new row.  Must be followed by exactly `width()` cells.
  Table& begin_row();
  Table& cell(std::string value);
  Table& cell(double value);
  Table& cell(long long value);
  Table& cell(std::size_t value);

  [[nodiscard]] std::size_t width() const noexcept { return header_.size(); }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const;

  /// Renders with padded columns and a header separator.
  void print_aligned(std::ostream& out) const;
  /// Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void print_csv(std::ostream& out) const;

 private:
  void check_row_complete() const;

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  int precision_ = 6;
};

/// Formats a double with fixed precision, trimming trailing zeros.
[[nodiscard]] std::string format_double(double value, int precision = 6);

}  // namespace dlsched
