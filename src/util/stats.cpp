#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dlsched {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stdev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (n % 2 == 1) return sorted[n / 2];
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stdev = stdev(xs);
  s.median = median(xs);
  auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
  s.min = *lo;
  s.max = *hi;
  return s;
}

double geometric_mean(std::span<const double> xs) {
  DLSCHED_EXPECT(!xs.empty(), "geometric mean of empty sample");
  double log_sum = 0.0;
  for (double x : xs) {
    DLSCHED_EXPECT(x > 0.0, "geometric mean requires positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::stdev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

}  // namespace dlsched
