// Error handling primitives for dlsched.
//
// The library throws `dlsched::Error` (a std::runtime_error subclass that
// records the throwing location) for precondition violations and unexpected
// states.  `DLSCHED_EXPECT` guards public-API preconditions; it is always
// compiled in -- scheduling bugs that slip past preconditions produce wrong
// schedules silently, which is far worse than the cost of a branch.
#pragma once

#include <stdexcept>
#include <string>

namespace dlsched {

/// Library-wide exception type.  Carries the source location of the throw so
/// failures inside deeply nested solver code remain diagnosable.
class Error : public std::runtime_error {
 public:
  Error(std::string message, const char* file, int line);

  /// Source file that raised the error.
  [[nodiscard]] const char* file() const noexcept { return file_; }
  /// Source line that raised the error.
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  const char* file_;
  int line_;
};

namespace detail {
[[noreturn]] void throw_error(const std::string& message, const char* file,
                              int line);
}  // namespace detail

}  // namespace dlsched

/// Precondition / invariant guard.  Always active.
#define DLSCHED_EXPECT(cond, message)                                     \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::dlsched::detail::throw_error(                                     \
          std::string("precondition failed: ") + (message) + " [" #cond  \
              "]",                                                        \
          __FILE__, __LINE__);                                            \
    }                                                                     \
  } while (false)

/// Unconditional failure (unreachable code paths, exhausted cases).
#define DLSCHED_FAIL(message) \
  ::dlsched::detail::throw_error((message), __FILE__, __LINE__)
