#include "util/cli.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace dlsched {

CliArgs CliArgs::parse(int argc, const char* const* argv,
                       const std::vector<std::string>& flags) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (!starts_with(token, "--")) {
      args.positional_.push_back(token);
      continue;
    }
    const std::string name = token.substr(2);
    DLSCHED_EXPECT(!name.empty(), "empty option name '--'");
    const std::size_t eq = name.find('=');
    if (eq != std::string::npos) {
      args.options_[name.substr(0, eq)] = name.substr(eq + 1);
      continue;
    }
    if (std::find(flags.begin(), flags.end(), name) != flags.end()) {
      args.options_[name] = "";
      continue;
    }
    DLSCHED_EXPECT(i + 1 < argc, "option --" + name + " needs a value");
    args.options_[name] = argv[++i];
  }
  return args;
}

bool CliArgs::has(const std::string& option) const {
  return options_.count(option) > 0;
}

std::optional<std::string> CliArgs::get(const std::string& option) const {
  const auto it = options_.find(option);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& option,
                            std::string fallback) const {
  const auto it = options_.find(option);
  return it == options_.end() ? std::move(fallback) : it->second;
}

double CliArgs::get_double(const std::string& option, double fallback) const {
  const auto value = get(option);
  if (!value.has_value()) return fallback;
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(*value, &consumed);
    DLSCHED_EXPECT(consumed == value->size(), "trailing characters");
    return parsed;
  } catch (const std::exception&) {
    DLSCHED_FAIL("option --" + option + ": '" + *value + "' is not a number");
  }
}

std::int64_t CliArgs::get_int(const std::string& option,
                              std::int64_t fallback) const {
  const auto value = get(option);
  if (!value.has_value()) return fallback;
  try {
    std::size_t consumed = 0;
    const std::int64_t parsed = std::stoll(*value, &consumed);
    DLSCHED_EXPECT(consumed == value->size(), "trailing characters");
    return parsed;
  } catch (const std::exception&) {
    DLSCHED_FAIL("option --" + option + ": '" + *value +
                 "' is not an integer");
  }
}

}  // namespace dlsched
