#include "util/error.hpp"

#include <sstream>

namespace dlsched {

namespace {
std::string decorate(const std::string& message, const char* file, int line) {
  std::ostringstream out;
  out << message << " (" << file << ":" << line << ")";
  return out.str();
}
}  // namespace

Error::Error(std::string message, const char* file, int line)
    : std::runtime_error(decorate(message, file, line)),
      file_(file),
      line_(line) {}

namespace detail {
void throw_error(const std::string& message, const char* file, int line) {
  throw Error(message, file, line);
}
}  // namespace detail

}  // namespace dlsched
