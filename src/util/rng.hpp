// Deterministic random-number helpers.  Every stochastic component of the
// library (platform generators, noise models) takes an explicit seed so that
// experiments and tests are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace dlsched {

/// Thin wrapper over mt19937_64 with convenience draws.  Not thread safe;
/// create one per thread / per experiment.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Normal draw.
  [[nodiscard]] double normal(double mean, double stdev);
  /// Multiplicative noise factor: max(floor, 1 + normal(0, rel_stdev)).
  [[nodiscard]] double noise_factor(double rel_stdev, double floor = 0.05);
  /// Random permutation of {0, .., n-1}.
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child seed (for per-trial streams).
  [[nodiscard]] std::uint64_t fork_seed();

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dlsched
