// Small descriptive-statistics helpers used by the benchmark harnesses to
// aggregate over the 50-platform ensembles of the paper's Section 5.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dlsched {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stdev = 0.0;   ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Arithmetic mean; 0 for an empty sample.
[[nodiscard]] double mean(std::span<const double> xs);

/// Sample standard deviation (n-1); 0 for samples of size < 2.
[[nodiscard]] double stdev(std::span<const double> xs);

/// Median (average of middle two for even sizes); 0 for empty samples.
[[nodiscard]] double median(std::span<const double> xs);

/// Full summary in one pass (median requires a copy + sort).
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Geometric mean; requires strictly positive values.
[[nodiscard]] double geometric_mean(std::span<const double> xs);

/// Incremental accumulator (Welford) for streaming aggregation.
class Accumulator {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double stdev() const;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dlsched
