#include "util/string_util.hpp"

#include <cctype>
#include <cmath>

#include "util/table.hpp"

namespace dlsched {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string format_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  double value = bytes;
  while (std::fabs(value) >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  return format_double(value, 2) + " " + kUnits[unit];
}

std::string format_seconds(double seconds) {
  const double abs = std::fabs(seconds);
  if (abs >= 1.0 || abs == 0.0) return format_double(seconds, 3) + " s";
  if (abs >= 1e-3) return format_double(seconds * 1e3, 3) + " ms";
  if (abs >= 1e-6) return format_double(seconds * 1e6, 3) + " us";
  return format_double(seconds * 1e9, 3) + " ns";
}

}  // namespace dlsched
