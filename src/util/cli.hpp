// Minimal command-line parsing for the dlsched CLI and the examples:
// positional arguments plus --key value / --flag options.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dlsched {

class CliArgs {
 public:
  /// Parses argv; everything starting with "--" is an option, the token
  /// after a non-flag option is its value.  Options registered in `flags`
  /// take no value.
  static CliArgs parse(int argc, const char* const* argv,
                       const std::vector<std::string>& flags = {});

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  [[nodiscard]] bool has(const std::string& option) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& option) const;
  [[nodiscard]] std::string get_or(const std::string& option,
                                   std::string fallback) const;
  /// Numeric accessors; throw dlsched::Error on malformed values.
  [[nodiscard]] double get_double(const std::string& option,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& option,
                                     std::int64_t fallback) const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;
};

}  // namespace dlsched
