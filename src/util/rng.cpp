#include "util/rng.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace dlsched {

double Rng::uniform(double lo, double hi) {
  DLSCHED_EXPECT(lo <= hi, "uniform: lo > hi");
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DLSCHED_EXPECT(lo <= hi, "uniform_int: lo > hi");
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stdev) {
  DLSCHED_EXPECT(stdev >= 0.0, "normal: negative stdev");
  std::normal_distribution<double> dist(mean, stdev);
  return dist(engine_);
}

double Rng::noise_factor(double rel_stdev, double floor) {
  DLSCHED_EXPECT(floor > 0.0, "noise floor must be positive");
  return std::max(floor, 1.0 + normal(0.0, rel_stdev));
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::shuffle(perm.begin(), perm.end(), engine_);
  return perm;
}

std::uint64_t Rng::fork_seed() {
  // splitmix-style scramble of the next engine draw keeps child streams
  // decorrelated from the parent sequence.
  std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace dlsched
