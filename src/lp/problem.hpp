// Modelling layer over the simplex: named variables, sparse rows, exact
// rational coefficients, and solvers in both exact and double arithmetic.
//
// This replaces the `lp_solve` binding used by the paper (reference [9]):
// the LPs of Section 2.3 are built through this API by src/core.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lp/bareiss.hpp"
#include "lp/simplex.hpp"
#include "numeric/rational.hpp"

namespace dlsched::lp {

using numeric::Rational;

/// One sparse coefficient.
struct Term {
  std::size_t var = 0;
  Rational coef;
};

/// A maximization LP over non-negative variables with named rows/columns.
class LpProblem {
 public:
  /// Adds a non-negative variable; returns its index.
  std::size_t add_variable(std::string name);

  /// Sets (overwrites) a variable's objective coefficient.
  void set_objective(std::size_t var, Rational coef);

  /// Adds a sparse constraint row; duplicate `var` entries are summed.
  /// Returns the row index.
  std::size_t add_constraint(std::vector<Term> terms, Relation relation,
                             Rational rhs, std::string name = "");

  [[nodiscard]] std::size_t num_variables() const noexcept {
    return var_names_.size();
  }
  [[nodiscard]] std::size_t num_constraints() const noexcept {
    return rows_.size();
  }
  [[nodiscard]] const std::string& variable_name(std::size_t var) const;
  [[nodiscard]] const std::string& constraint_name(std::size_t row) const;

  /// Exact slack `rhs - sum(terms * values)` of one row at a solution
  /// point (zero for a binding or equality row).  Lets callers recover
  /// slack-like quantities -- e.g. the paper's idle variables x_i -- that
  /// are deliberately not modelled as explicit columns.
  [[nodiscard]] Rational row_slack(std::size_t row,
                                   const std::vector<Rational>& values) const;

  /// Exact solve (Bland's rule; always terminates).  Both engines return
  /// bit-identical solutions; Bareiss skips the per-entry gcd reductions.
  [[nodiscard]] Solution<Rational> solve_exact(
      ExactEngine engine = ExactEngine::Bareiss) const;
  /// Warm-started exact solve, seeded with the optimal basis of a
  /// structurally adjacent LP.  Falls back to the cold path when the seed
  /// does not fit this instance, so the answer (everything except
  /// `pivots`) is bit-identical to `solve_exact(engine)`.
  [[nodiscard]] Solution<Rational> solve_exact(ExactEngine engine,
                                               const WarmBasis& seed,
                                               WarmInfo* info = nullptr) const;
  /// Approximate solve over doubles (same algorithm, tolerance 1e-9).
  [[nodiscard]] Solution<double> solve_double() const;

  /// Renders the model in LP-ish text form (debugging / examples).
  [[nodiscard]] std::string to_text() const;

 private:
  struct Row {
    std::vector<Term> terms;
    Relation relation = Relation::LessEq;
    Rational rhs;
    std::string name;
  };

  template <class T>
  [[nodiscard]] DenseLp<T> densify() const;

  std::vector<std::string> var_names_;
  std::vector<Rational> objective_;
  std::vector<Row> rows_;
};

}  // namespace dlsched::lp
