#include "lp/problem.hpp"

#include <sstream>

#include "util/error.hpp"

namespace dlsched::lp {

std::size_t LpProblem::add_variable(std::string name) {
  var_names_.push_back(std::move(name));
  objective_.emplace_back();
  return var_names_.size() - 1;
}

void LpProblem::set_objective(std::size_t var, Rational coef) {
  DLSCHED_EXPECT(var < objective_.size(), "objective: unknown variable");
  objective_[var] = std::move(coef);
}

std::size_t LpProblem::add_constraint(std::vector<Term> terms,
                                      Relation relation, Rational rhs,
                                      std::string name) {
  for (const Term& t : terms) {
    DLSCHED_EXPECT(t.var < var_names_.size(), "constraint: unknown variable");
  }
  rows_.push_back(Row{std::move(terms), relation, std::move(rhs),
                      std::move(name)});
  return rows_.size() - 1;
}

const std::string& LpProblem::variable_name(std::size_t var) const {
  DLSCHED_EXPECT(var < var_names_.size(), "variable index out of range");
  return var_names_[var];
}

const std::string& LpProblem::constraint_name(std::size_t row) const {
  DLSCHED_EXPECT(row < rows_.size(), "constraint index out of range");
  return rows_[row].name;
}

Rational LpProblem::row_slack(std::size_t row,
                              const std::vector<Rational>& values) const {
  DLSCHED_EXPECT(row < rows_.size(), "constraint index out of range");
  DLSCHED_EXPECT(values.size() == var_names_.size(),
                 "row_slack: values must cover every variable");
  Rational activity;
  for (const Term& t : rows_[row].terms) {
    if (values[t.var].is_zero()) continue;
    activity += t.coef * values[t.var];
  }
  return rows_[row].rhs - activity;
}

namespace {
template <class T>
T convert(const Rational& value) {
  if constexpr (std::is_same_v<T, Rational>) {
    return value;
  } else {
    return value.to_double();
  }
}
}  // namespace

template <class T>
DenseLp<T> LpProblem::densify() const {
  DenseLp<T> dense;
  dense.num_vars = var_names_.size();
  dense.objective.resize(dense.num_vars);
  for (std::size_t j = 0; j < dense.num_vars; ++j) {
    dense.objective[j] = convert<T>(objective_[j]);
  }
  for (const Row& row : rows_) {
    std::vector<T> coefficients(dense.num_vars, T{});
    for (const Term& t : row.terms) {
      coefficients[t.var] += convert<T>(t.coef);
    }
    dense.add_row(std::move(coefficients), row.relation, convert<T>(row.rhs));
  }
  return dense;
}

Solution<Rational> LpProblem::solve_exact(ExactEngine engine) const {
  const DenseLp<Rational> dense = densify<Rational>();
  if (engine == ExactEngine::Bareiss) {
    BareissSimplex solver(dense);
    return solver.solve();
  }
  Simplex<Rational> solver(dense);
  return solver.solve();
}

Solution<Rational> LpProblem::solve_exact(ExactEngine engine,
                                          const WarmBasis& seed,
                                          WarmInfo* info) const {
  const DenseLp<Rational> dense = densify<Rational>();
  if (engine == ExactEngine::Bareiss) {
    BareissSimplex solver(dense);
    return solver.solve(seed, info);
  }
  Simplex<Rational> solver(dense);
  return solver.solve(seed, info);
}

Solution<double> LpProblem::solve_double() const {
  const DenseLp<double> dense = densify<double>();
  Simplex<double> solver(dense);
  return solver.solve();
}

std::string LpProblem::to_text() const {
  std::ostringstream out;
  out << "maximize ";
  bool first = true;
  for (std::size_t j = 0; j < objective_.size(); ++j) {
    if (objective_[j].is_zero()) continue;
    if (!first) out << " + ";
    out << objective_[j] << "*" << var_names_[j];
    first = false;
  }
  out << "\nsubject to\n";
  for (const Row& row : rows_) {
    out << "  ";
    if (!row.name.empty()) out << row.name << ": ";
    for (std::size_t k = 0; k < row.terms.size(); ++k) {
      if (k > 0) out << " + ";
      out << row.terms[k].coef << "*" << var_names_[row.terms[k].var];
    }
    switch (row.relation) {
      case Relation::LessEq: out << " <= "; break;
      case Relation::GreaterEq: out << " >= "; break;
      case Relation::Equal: out << " == "; break;
    }
    out << row.rhs << '\n';
  }
  out << "  all variables >= 0\n";
  return out.str();
}

}  // namespace dlsched::lp
