// Fraction-free (Bareiss / integer-pivoting) exact simplex.
//
// `Simplex<Rational>` keeps a Rational per tableau cell and pays a gcd
// reduction on every pivot update.  This engine keeps the tableau over
// integers instead: the initial rational tableau is scaled by the lcm of
// its denominators (`d0`), and from then on every cell is a BigInt with
// one common denominator `d0 * den` for the whole tableau, where `den` is
// the previous pivot's numerator.  A pivot on (r, c) updates every other
// row by the fraction-free identity
//
//     N'_ij = (N_ij * N_rc - N_ic * N_rj) / den
//
// (exact division -- the classical integer-pivoting invariant: each entry
// is a minor of the scaled input matrix, cf. Edmonds 1967 / Bareiss 1968)
// and leaves the pivot row untouched; afterwards `den` becomes `N_rc`.
// No per-entry gcd is ever taken.  The reduced-cost row and the objective
// corner carry an extra integer scale `s_obj` (lcm of the objective's
// denominators) and update by the same identity.
//
// Because N / (d0 * den) equals the rational tableau of `Simplex<Rational>`
// at every step, all sign tests, Bland's entering choice, the
// cross-multiplied ratio test and the tie-breaks make the *same decisions*,
// so the pivot sequence -- and therefore `Solution<Rational>` (status,
// objective, values, row_activity, tight, pivots) -- is bit-identical to
// the Rational engine's.  The differential suite in tests/test_bareiss.cpp
// asserts exactly that.
#pragma once

#include "lp/simplex.hpp"
#include "numeric/bigint.hpp"
#include "numeric/rational.hpp"

namespace dlsched::lp {

/// Which exact LP engine a solve should use.  Both return bit-identical
/// solutions; Bareiss avoids the per-entry gcd reductions and is the
/// default everywhere.
enum class ExactEngine { Rational, Bareiss };

/// Two-phase primal simplex over an integer (fraction-free) tableau.
/// Mirrors `Simplex<Rational>` decision-for-decision; see file comment.
class BareissSimplex {
 public:
  explicit BareissSimplex(const DenseLp<numeric::Rational>& lp);

  [[nodiscard]] Solution<numeric::Rational> solve();

  /// Warm-started solve; same crash / fallback / uniqueness decisions as
  /// `Simplex<Rational>::solve(seed)`, so the two engines stay
  /// bit-identical (including `pivots`) under identical seeds.
  [[nodiscard]] Solution<numeric::Rational> solve(const WarmBasis& seed,
                                                  WarmInfo* info = nullptr);

 private:
  using BigInt = numeric::BigInt;
  using Rational = numeric::Rational;

  Solution<Rational> solve_internal(const WarmBasis* seed, WarmInfo* info);
  Solution<Rational> solve_cold();
  Solution<Rational> extract_optimal();
  bool try_crash(const WarmBasis& seed);
  bool optimum_is_unique() const;
  void build_tableau();
  void load_objective(bool phase1);
  bool run_phase(bool phase1);
  void pivot(std::size_t row, std::size_t col, bool update_objective_row);
  void expel_basic_artificials();
  void fill_row_activity(Solution<Rational>& out) const;

  const DenseLp<Rational>& lp_;
  std::vector<std::vector<BigInt>> tab_;  ///< scaled integer tableau
  std::vector<BigInt> rhs_;               ///< scaled right-hand sides
  std::vector<BigInt> reduced_;           ///< scaled reduced-cost row
  std::vector<std::size_t> basis_;
  std::vector<bool> forbidden_;
  /// Rows that have hosted a pivot carry scale `den`; virgin rows carry
  /// `d0 * den` (the initial global scale never divided out of them).
  std::vector<bool> pivoted_rows_;
  BigInt objective_num_;  ///< objective * (s_obj * d0 * den)
  BigInt den_ = 1;        ///< previous pivot numerator, kept > 0
  BigInt d0_ = 1;         ///< lcm of the input tableau's denominators
  BigInt s_obj_ = 1;      ///< objective scale for the current phase
  std::size_t first_artificial_ = 0;
  bool has_artificials_ = false;
  std::size_t pivots_ = 0;
};

}  // namespace dlsched::lp
