#include "lp/bareiss.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace dlsched::lp {

using numeric::BigInt;
using numeric::Rational;

namespace {

/// lcm(a, b) for positive BigInts.
BigInt lcm(const BigInt& a, const BigInt& b) {
  return a / BigInt::gcd(a, b) * b;
}

/// numerator / denominator, asserting the division is exact -- the
/// fraction-free identity guarantees it, and divmod hands us the remainder
/// for free, so the tripwire costs nothing extra.
BigInt exact_div(const BigInt& numerator, const BigInt& denominator) {
  if (denominator.is_one()) return numerator;
  BigInt quotient;
  BigInt remainder;
  BigInt::divmod(numerator, denominator, quotient, remainder);
  DLSCHED_EXPECT(remainder.is_zero(),
                 "bareiss: fraction-free division not exact");
  return quotient;
}

/// value * (scale / value.den()) -- exact because value.den() | scale.
BigInt scale_to_integer(const Rational& value, const BigInt& scale) {
  return value.num() * exact_div(scale, value.den());
}

}  // namespace

BareissSimplex::BareissSimplex(const DenseLp<Rational>& lp) : lp_(lp) {
  DLSCHED_EXPECT(lp.objective.size() == lp.num_vars,
                 "objective width does not match variable count");
}

Solution<Rational> BareissSimplex::solve() {
  return solve_internal(nullptr, nullptr);
}

Solution<Rational> BareissSimplex::solve(const WarmBasis& seed,
                                         WarmInfo* info) {
  return solve_internal(&seed, info);
}

Solution<Rational> BareissSimplex::solve_internal(const WarmBasis* seed,
                                                  WarmInfo* info) {
  pivots_ = 0;
  if (seed != nullptr && !seed->structurals.empty()) {
    if (info != nullptr) info->attempted = true;
    build_tableau();
    if (try_crash(*seed)) {
      if (info != nullptr) info->crash_ok = true;
      const std::size_t crash_pivots = pivots_;
      if (!run_phase(/*phase1=*/false)) {
        // Unboundedness is an instance property; the cold path agrees.
        if (info != nullptr) {
          info->accepted = true;
          info->crash_pivots = crash_pivots;
        }
        Solution<Rational> out;
        out.status = Status::Unbounded;
        out.pivots = pivots_;
        return out;
      }
      if (optimum_is_unique()) {
        if (info != nullptr) {
          info->accepted = true;
          info->crash_pivots = crash_pivots;
        }
        return extract_optimal();
      }
    }
  }
  return solve_cold();
}

Solution<Rational> BareissSimplex::solve_cold() {
  build_tableau();
  Solution<Rational> out;
  if (has_artificials_) {
    run_phase(/*phase1=*/true);
    if (objective_num_.is_negative()) {
      out.status = Status::Infeasible;
      out.pivots = pivots_;
      return out;
    }
    expel_basic_artificials();
  }
  const bool bounded = run_phase(/*phase1=*/false);
  if (!bounded) {
    out.status = Status::Unbounded;
    out.pivots = pivots_;
    return out;
  }
  return extract_optimal();
}

Solution<Rational> BareissSimplex::extract_optimal() {
  Solution<Rational> out;
  out.status = Status::Optimal;
  out.pivots = pivots_;
  out.objective = Rational(objective_num_, s_obj_ * d0_ * den_);
  out.values.assign(lp_.num_vars, Rational{});
  for (std::size_t i = 0; i < basis_.size(); ++i) {
    if (basis_[i] < lp_.num_vars) {
      // Rows that have hosted a pivot carry scale `den`; rows that never
      // pivoted still carry the initial factor `d0` on top.
      out.values[basis_[i]] =
          Rational(rhs_[i], pivoted_rows_[i] ? den_ : d0_ * den_);
      out.basic_structurals.push_back(basis_[i]);
    }
  }
  std::sort(out.basic_structurals.begin(), out.basic_structurals.end());
  fill_row_activity(out);
  return out;
}

// Mirrors Simplex<Rational>::try_crash decision-for-decision (see the
// rationale there: ratio-test entry keeps every crash pivot primal
// feasible).  Every comparison here is a sign test or cross-multiplied
// ratio on scaled entries; all row scales are positive, so the chosen
// pivot sequence is identical to the rational engine's.
bool BareissSimplex::try_crash(const WarmBasis& seed) {
  // The reduced-cost row is not live during the crash (run_phase reloads
  // it); crash pivots skip the objective-row update just like expulsion.
  std::vector<std::size_t> order = seed.structurals;
  std::sort(order.begin(), order.end());
  for (std::size_t col : order) {
    if (col >= lp_.num_vars) return false;  // malformed seed
    bool already_basic = false;
    for (std::size_t b : basis_) {
      if (b == col) {
        already_basic = true;
        break;
      }
    }
    if (already_basic) continue;
    // Min-ratio leaving row with Bland tie-break, by cross-multiplication
    // exactly as in run_phase (the per-row scale cancels on both sides).
    std::size_t leaving = tab_.size();
    for (std::size_t i = 0; i < tab_.size(); ++i) {
      const BigInt& coeff = tab_[i][col];
      if (!coeff.is_positive()) continue;
      if (leaving == tab_.size()) {
        leaving = i;
        continue;
      }
      const BigInt lhs = rhs_[i] * tab_[leaving][col];
      const BigInt rhs = rhs_[leaving] * coeff;
      const int cmp = lhs.compare(rhs);
      if (cmp < 0 || (cmp == 0 && basis_[i] < basis_[leaving])) {
        leaving = i;
      }
    }
    if (leaving == tab_.size()) return false;  // column cannot enter
    pivot(leaving, col, /*update_objective_row=*/false);
  }
  // A displaced seeded column stays out (one pass, no retries): that is
  // how an infeasible seed manifests under feasibility-preserving pivots.
  std::vector<bool> basic(forbidden_.size(), false);
  for (std::size_t b : basis_) basic[b] = true;
  for (std::size_t col : order) {
    if (!basic[col]) return false;
  }
  for (std::size_t i = 0; i < tab_.size(); ++i) {
    if (rhs_[i].is_negative()) return false;  // exactness tripwire
    if (basis_[i] >= first_artificial_ && !rhs_[i].is_zero()) return false;
  }
  if (has_artificials_) expel_basic_artificials();
  return true;
}

bool BareissSimplex::optimum_is_unique() const {
  std::vector<bool> basic(reduced_.size(), false);
  for (std::size_t b : basis_) basic[b] = true;
  for (std::size_t j = 0; j < first_artificial_; ++j) {
    if (!basic[j] && reduced_[j].is_zero()) return false;
  }
  return true;
}

void BareissSimplex::build_tableau() {
  const std::size_t m = lp_.rows.size();
  std::size_t extra = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (lp_.relations[i] != Relation::Equal) ++extra;
  }
  std::vector<int> flip(m, 1);
  std::vector<Relation> rel = lp_.relations;
  for (std::size_t i = 0; i < m; ++i) {
    if (lp_.rhs[i].is_negative()) {
      flip[i] = -1;
      if (rel[i] == Relation::LessEq) rel[i] = Relation::GreaterEq;
      else if (rel[i] == Relation::GreaterEq) rel[i] = Relation::LessEq;
    }
  }
  std::size_t num_art = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (rel[i] != Relation::LessEq) ++num_art;
  }
  has_artificials_ = num_art > 0;

  // d0 clears every denominator of the rational input in one global
  // scale; slack/artificial entries are +-1 and contribute nothing.
  d0_ = 1;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < lp_.num_vars; ++j) {
      if (!lp_.rows[i][j].is_zero()) d0_ = lcm(d0_, lp_.rows[i][j].den());
    }
    if (!lp_.rhs[i].is_zero()) d0_ = lcm(d0_, lp_.rhs[i].den());
  }
  den_ = 1;

  const std::size_t total = lp_.num_vars + extra + num_art;
  first_artificial_ = lp_.num_vars + extra;
  tab_.assign(m, std::vector<BigInt>(total, BigInt{}));
  rhs_.resize(m);
  basis_.assign(m, 0);
  forbidden_.assign(total, false);
  pivoted_rows_.assign(m, false);

  std::size_t next_extra = lp_.num_vars;
  std::size_t next_art = first_artificial_;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < lp_.num_vars; ++j) {
      if (lp_.rows[i][j].is_zero()) continue;
      BigInt cell = scale_to_integer(lp_.rows[i][j], d0_);
      if (flip[i] < 0) cell.negate();
      tab_[i][j] = std::move(cell);
    }
    rhs_[i] = scale_to_integer(lp_.rhs[i], d0_);
    if (flip[i] < 0) rhs_[i].negate();
    switch (rel[i]) {
      case Relation::LessEq:
        tab_[i][next_extra] = d0_;
        basis_[i] = next_extra++;
        break;
      case Relation::GreaterEq:
        tab_[i][next_extra] = -d0_;
        ++next_extra;
        tab_[i][next_art] = d0_;
        basis_[i] = next_art++;
        break;
      case Relation::Equal:
        tab_[i][next_art] = d0_;
        basis_[i] = next_art++;
        break;
    }
  }
}

void BareissSimplex::load_objective(bool phase1) {
  const std::size_t total = tab_.empty() ? 0 : tab_[0].size();
  // Integer objective scale: phase-1 costs are 0/-1 already; phase 2
  // clears the rational objective's denominators.
  s_obj_ = 1;
  if (!phase1) {
    for (const Rational& c : lp_.objective) {
      if (!c.is_zero()) s_obj_ = lcm(s_obj_, c.den());
    }
  }
  // Scaled cost of a column: s_obj * cost, an exact integer.
  auto cost_of = [&](std::size_t var) -> BigInt {
    if (phase1) {
      return var >= first_artificial_ ? BigInt(-1) : BigInt{};
    }
    if (var >= lp_.num_vars || lp_.objective[var].is_zero()) return BigInt{};
    return scale_to_integer(lp_.objective[var], s_obj_);
  };
  // R_j = s_obj*cost_j * (d0*den) - sum_i w_i * N_ij with w_i the basic
  // cost rescaled to row i's denominator, so that R_j equals
  // s_obj*d0*den times the true reduced cost.
  const BigInt full_scale = d0_ * den_;
  reduced_.assign(total, BigInt{});
  for (std::size_t j = 0; j < total; ++j) {
    const BigInt cj = cost_of(j);
    if (!cj.is_zero()) reduced_[j] = cj * full_scale;
  }
  objective_num_ = BigInt{};
  for (std::size_t i = 0; i < basis_.size(); ++i) {
    BigInt w = cost_of(basis_[i]);
    if (w.is_zero()) continue;
    // A pivoted row's entries are den * (true value); a virgin row's are
    // d0 * den * (true value).  Align the weight accordingly.
    if (pivoted_rows_[i]) w *= d0_;
    const std::vector<BigInt>& row = tab_[i];
    for (std::size_t j = 0; j < total; ++j) {
      if (row[j].is_zero()) continue;
      reduced_[j] -= w * row[j];
    }
    objective_num_ += w * rhs_[i];
  }
}

bool BareissSimplex::run_phase(bool phase1) {
  load_objective(phase1);
  if (!phase1) {
    for (std::size_t j = first_artificial_; j < forbidden_.size(); ++j) {
      forbidden_[j] = true;
    }
  }
  const std::size_t iteration_cap =
      10000 * (tab_.size() + forbidden_.size() + 1);
  for (std::size_t iter = 0; iter < iteration_cap; ++iter) {
    // Bland: entering column = smallest index with positive reduced cost
    // (signs agree with the rational engine because all scales are > 0).
    std::size_t entering = reduced_.size();
    for (std::size_t j = 0; j < reduced_.size(); ++j) {
      if (!forbidden_[j] && reduced_[j].is_positive()) {
        entering = j;
        break;
      }
    }
    if (entering == reduced_.size()) return true;

    // Ratio test with Bland tie-break, by cross-multiplication: the row
    // scale cancels inside r_i / N_ic, so r_i * N_lc  <  r_l * N_ic
    // decides exactly the comparison Simplex<Rational> makes on ratios.
    std::size_t leaving = tab_.size();
    for (std::size_t i = 0; i < tab_.size(); ++i) {
      const BigInt& coeff = tab_[i][entering];
      if (!coeff.is_positive()) continue;
      if (leaving == tab_.size()) {
        leaving = i;
        continue;
      }
      const BigInt lhs = rhs_[i] * tab_[leaving][entering];
      const BigInt rhs = rhs_[leaving] * coeff;
      const int cmp = lhs.compare(rhs);
      if (cmp < 0 || (cmp == 0 && basis_[i] < basis_[leaving])) {
        leaving = i;
      }
    }
    if (leaving == tab_.size()) return false;  // unbounded direction
    pivot(leaving, entering, /*update_objective_row=*/true);
  }
  DLSCHED_FAIL("simplex iteration cap exceeded (cycling?)");
}

void BareissSimplex::pivot(std::size_t row, std::size_t col,
                           bool update_objective_row) {
  ++pivots_;
  std::vector<BigInt>& prow = tab_[row];
  const BigInt p = prow[col];
  const BigInt rrhs = rhs_[row];
  for (std::size_t i = 0; i < tab_.size(); ++i) {
    if (i == row) continue;
    std::vector<BigInt>& trow = tab_[i];
    const BigInt factor = std::move(trow[col]);
    const bool factor_zero = factor.is_zero();
    for (std::size_t j = 0; j < trow.size(); ++j) {
      if (j == col) continue;
      BigInt& cell = trow[j];
      const BigInt& pv = prow[j];
      const bool cross = !factor_zero && !pv.is_zero();
      if (cell.is_zero() && !cross) continue;  // stays exactly zero
      BigInt numer = cell * p;
      if (cross) numer -= factor * pv;
      cell = exact_div(numer, den_);
    }
    {
      BigInt numer = rhs_[i] * p;
      if (!factor_zero) numer -= factor * rrhs;
      rhs_[i] = exact_div(numer, den_);
    }
    trow[col] = BigInt{};
  }
  if (update_objective_row) {
    // Same identity on the reduced-cost row and the objective corner; a
    // zero entering cost still forces the p/den rescale (the tableau-wide
    // denominator changes even when the true reduced costs do not).
    const BigInt rfactor = std::move(reduced_[col]);
    const bool rzero = rfactor.is_zero();
    for (std::size_t j = 0; j < reduced_.size(); ++j) {
      if (j == col) continue;
      BigInt& cell = reduced_[j];
      const BigInt& pv = prow[j];
      const bool cross = !rzero && !pv.is_zero();
      if (cell.is_zero() && !cross) continue;
      BigInt numer = cell * p;
      if (cross) numer -= rfactor * pv;
      cell = exact_div(numer, den_);
    }
    reduced_[col] = BigInt{};
    BigInt numer = objective_num_ * p;
    if (!rzero) numer += rfactor * rrhs;
    objective_num_ = exact_div(numer, den_);
  }
  basis_[row] = col;
  pivoted_rows_[row] = true;
  den_ = p;
  if (den_.is_negative()) {
    // Expelling an artificial may pivot on a negative entry.  Negate the
    // whole scaled system so every row scale (and den) stays positive and
    // sign tests keep mirroring the rational tableau.
    den_.negate();
    for (std::vector<BigInt>& trow : tab_) {
      for (BigInt& cell : trow) cell.negate();
    }
    for (BigInt& r : rhs_) r.negate();
    if (update_objective_row) {
      for (BigInt& r : reduced_) r.negate();
      objective_num_.negate();
    }
  }
}

void BareissSimplex::expel_basic_artificials() {
  for (std::size_t i = 0; i < basis_.size(); ++i) {
    if (basis_[i] < first_artificial_) continue;
    std::size_t col = first_artificial_;
    for (std::size_t j = 0; j < first_artificial_; ++j) {
      if (!tab_[i][j].is_zero()) {
        col = j;
        break;
      }
    }
    if (col < first_artificial_) {
      // The stale phase-1 objective row is reloaded by phase 2; skip its
      // update so the exactness invariant only ever sees live rows.
      pivot(i, col, /*update_objective_row=*/false);
    }
  }
}

void BareissSimplex::fill_row_activity(Solution<Rational>& out) const {
  out.row_activity.assign(lp_.rows.size(), Rational{});
  out.tight.assign(lp_.rows.size(), false);
  for (std::size_t i = 0; i < lp_.rows.size(); ++i) {
    Rational activity{};
    for (std::size_t j = 0; j < lp_.num_vars; ++j) {
      if (lp_.rows[i][j].is_zero()) continue;
      if (out.values[j].is_zero()) continue;
      activity += lp_.rows[i][j] * out.values[j];
    }
    out.row_activity[i] = activity;
    const Rational gap = lp_.rhs[i] - activity;
    out.tight[i] = gap.is_zero();
  }
}

}  // namespace dlsched::lp
