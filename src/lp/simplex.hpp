// Dense two-phase primal simplex, templated on the scalar type.
//
// Instantiated with `numeric::Rational` it is an *exact* LP solver: Bland's
// pivoting rule guarantees termination and exact arithmetic guarantees the
// returned vertex is a true optimum -- which is what lets the test suite
// assert the paper's theorems as exact statements.  Instantiated with
// `double` it is a fast approximate solver used by the benchmark sweeps.
//
// Standard form handled: maximize c^T x  s.t.  A x {<=,>=,==} b,  x >= 0.
// Rows with negative b are flipped on entry, so any sign of b is accepted.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace dlsched::lp {

enum class Relation { LessEq, GreaterEq, Equal };

enum class Status { Optimal, Infeasible, Unbounded };

[[nodiscard]] constexpr const char* to_string(Status s) noexcept {
  switch (s) {
    case Status::Optimal: return "optimal";
    case Status::Infeasible: return "infeasible";
    case Status::Unbounded: return "unbounded";
  }
  return "?";
}

/// Warm-start seed: the structural variables that were basic at the optimum
/// of a structurally *adjacent* LP (same variable layout, perturbed data --
/// one worker added or dropped, a cost nudged).  Indices must be unique and
/// refer to structural variables only; order is irrelevant.  A seed is a
/// hint, never a contract: if it is singular or infeasible for the new
/// instance, or if the warm optimum is not provably unique, the solve falls
/// back to the cold path, so seeded and unseeded solves always agree.
struct WarmBasis {
  std::vector<std::size_t> structurals;
};

/// Accounting for one warm-started solve attempt.
struct WarmInfo {
  bool attempted = false;     ///< a non-empty seed was supplied
  /// The crash refactorization produced a feasible basis.  False means the
  /// seed was infeasible (or singular) in this instance -- e.g. a platform
  /// churn event tightened a row past the seeded vertex -- and the solve
  /// fell back cold immediately.
  bool crash_ok = false;
  bool accepted = false;      ///< crash succeeded and the warm result stands
  std::size_t crash_pivots = 0;  ///< refactorization pivots spent crashing
};

/// Result of a solve.  `values` has one entry per structural variable,
/// `row_activity` one per constraint (the value of the row's linear form),
/// and `tight` marks constraints satisfied with equality at the optimum --
/// used to verify the vertex property of the paper's Lemma 1.
/// `basic_structurals` (sorted) is the warm-start seed for a neighboring
/// LP; it is advisory and excluded from the warm/cold differential
/// guarantee (a degenerate vertex admits several bases for one optimum).
template <class T>
struct Solution {
  Status status = Status::Infeasible;
  T objective{};
  std::vector<T> values;
  std::vector<T> row_activity;
  std::vector<bool> tight;
  std::vector<std::size_t> basic_structurals;
  std::size_t pivots = 0;
};

/// Scalar-dependent comparison policy.  Rational is exact; double uses a
/// fixed tolerance.  `sub_mul` is the `target -= a * b` update of every
/// pivot inner loop: the Rational overload short-circuits zero factors
/// before any arithmetic (see Rational::sub_mul).
template <class T>
struct ScalarPolicy {
  static bool is_positive(const T& v) { return v.is_positive(); }
  static bool is_negative(const T& v) { return v.is_negative(); }
  static bool is_zero(const T& v) { return v.is_zero(); }
  /// Safe-to-skip test for the pivot inner loops.  For exact scalars this
  /// is the same as `is_zero`; for double it must be a *bitwise* zero:
  /// skipping a sub-tolerance entry that the pivot scaling would have
  /// amplified (pivot elements can themselves sit near the tolerance)
  /// would silently change the elimination.
  static bool is_skippable_zero(const T& v) { return v.is_zero(); }
  static void sub_mul(T& target, const T& a, const T& b) {
    target.sub_mul(a, b);
  }
};

template <>
struct ScalarPolicy<double> {
  static constexpr double kEps = 1e-9;
  static bool is_positive(double v) { return v > kEps; }
  static bool is_negative(double v) { return v < -kEps; }
  static bool is_zero(double v) { return v >= -kEps && v <= kEps; }
  static bool is_skippable_zero(double v) { return v == 0.0; }
  static void sub_mul(double& target, double a, double b) { target -= a * b; }
};

/// Dense standard-form LP instance, scalar type T.
template <class T>
struct DenseLp {
  std::size_t num_vars = 0;
  std::vector<std::vector<T>> rows;    ///< coefficient rows, size num_vars each
  std::vector<Relation> relations;
  std::vector<T> rhs;
  std::vector<T> objective;            ///< size num_vars; maximized

  void add_row(std::vector<T> coefficients, Relation relation, T bound) {
    DLSCHED_EXPECT(coefficients.size() == num_vars,
                   "row width does not match variable count");
    rows.push_back(std::move(coefficients));
    relations.push_back(relation);
    rhs.push_back(std::move(bound));
  }
};

/// Two-phase dense tableau simplex with Bland's rule.
template <class T>
class Simplex {
 public:
  explicit Simplex(const DenseLp<T>& lp) : lp_(lp) {
    DLSCHED_EXPECT(lp.objective.size() == lp.num_vars,
                   "objective width does not match variable count");
  }

  [[nodiscard]] Solution<T> solve() { return solve_internal(nullptr, nullptr); }

  /// Warm-started solve: crash the seeded basis with one refactorization
  /// instead of a cold Phase I, then run Bland Phase II.  Falls back to the
  /// cold path (and keeps the wasted crash pivots in the count -- `pivots`
  /// reports work done, not cold-path distance) whenever the seed is
  /// singular/infeasible for this instance or the warm optimum cannot be
  /// proven unique, so status/objective/values/row_activity/tight are
  /// bit-identical to an unseeded solve; only `pivots` may differ.
  [[nodiscard]] Solution<T> solve(const WarmBasis& seed,
                                  WarmInfo* info = nullptr) {
    return solve_internal(&seed, info);
  }

 private:
  using P = ScalarPolicy<T>;

  Solution<T> solve_internal(const WarmBasis* seed, WarmInfo* info) {
    pivots_ = 0;
    if (seed != nullptr && !seed->structurals.empty()) {
      if (info != nullptr) info->attempted = true;
      build_tableau();
      if (try_crash(*seed)) {
        if (info != nullptr) info->crash_ok = true;
        const std::size_t crash_pivots = pivots_;
        if (!run_phase(/*phase1=*/false)) {
          // Unboundedness is a property of the (feasible) instance, not of
          // the starting vertex; the cold path would report it too.
          if (info != nullptr) {
            info->accepted = true;
            info->crash_pivots = crash_pivots;
          }
          Solution<T> out;
          out.status = Status::Unbounded;
          out.pivots = pivots_;
          return out;
        }
        if (optimum_is_unique()) {
          if (info != nullptr) {
            info->accepted = true;
            info->crash_pivots = crash_pivots;
          }
          return extract_optimal();
        }
      }
    }
    return solve_cold();
  }

  Solution<T> solve_cold() {
    build_tableau();
    Solution<T> out;
    if (has_artificials_) {
      run_phase(/*phase1=*/true);
      if (P::is_negative(objective_value_)) {
        out.status = Status::Infeasible;
        out.pivots = pivots_;
        return out;
      }
      expel_basic_artificials();
    }
    const bool bounded = run_phase(/*phase1=*/false);
    if (!bounded) {
      out.status = Status::Unbounded;
      out.pivots = pivots_;
      return out;
    }
    return extract_optimal();
  }

  Solution<T> extract_optimal() {
    Solution<T> out;
    out.status = Status::Optimal;
    out.pivots = pivots_;
    out.objective = objective_value_;
    out.values.assign(lp_.num_vars, T{});
    for (std::size_t i = 0; i < basis_.size(); ++i) {
      if (basis_[i] < lp_.num_vars) {
        out.values[basis_[i]] = rhs_[i];
        out.basic_structurals.push_back(basis_[i]);
      }
    }
    std::sort(out.basic_structurals.begin(), out.basic_structurals.end());
    fill_row_activity(out);
    return out;
  }

  /// Enters the seeded structural columns into the basis, in ascending
  /// index order, each via the standard min-ratio leaving row (the same
  /// Bland-tie-break ratio test run_phase uses).  The ratio test preserves
  /// primal feasibility at every step, so the crash never has to guess
  /// which slack a seeded column should displace -- picking wrong is what
  /// made a forced row assignment fail on degenerate scenario optima where
  /// a participating worker's binding row is the one-port row rather than
  /// its own chain row.  Returns false (leaving the caller to fall back
  /// cold) when the seed is malformed, when a seeded column cannot enter
  /// (no positive entry), when a later seeded column displaces an earlier
  /// one -- the ratio-test signature of a seed that is infeasible for this
  /// instance -- or when an artificial stays basic at a nonzero value.
  bool try_crash(const WarmBasis& seed) {
    // pivot() maintains the reduced-cost row; no phase objective is loaded
    // during the crash, so park a zero row there (run_phase reloads it).
    reduced_.assign(forbidden_.size(), T{});
    objective_value_ = T{};
    std::vector<std::size_t> order = seed.structurals;
    std::sort(order.begin(), order.end());
    for (std::size_t col : order) {
      if (col >= lp_.num_vars) return false;  // malformed seed
      bool already_basic = false;
      for (std::size_t b : basis_) {
        if (b == col) {
          already_basic = true;
          break;
        }
      }
      if (already_basic) continue;
      capture_column(col);
      std::size_t leaving = tab_.size();
      T best_ratio{};
      for (std::size_t i = 0; i < tab_.size(); ++i) {
        const T& coeff = *eta_[i];
        if (!P::is_positive(coeff)) continue;
        T ratio = rhs_[i] / coeff;
        if (leaving == tab_.size() || ratio < best_ratio ||
            (!(best_ratio < ratio) && basis_[i] < basis_[leaving])) {
          leaving = i;
          best_ratio = ratio;
        }
      }
      if (leaving == tab_.size()) return false;  // column cannot enter
      pivot(leaving, col);
    }
    // Success means the whole seed made it in: a displaced seeded column
    // stays out (one pass, no retries), which is exactly how an infeasible
    // seed manifests when every pivot is feasibility-preserving.
    std::vector<bool> basic(forbidden_.size(), false);
    for (std::size_t b : basis_) basic[b] = true;
    for (std::size_t col : order) {
      if (!basic[col]) return false;
    }
    for (std::size_t i = 0; i < tab_.size(); ++i) {
      if (P::is_negative(rhs_[i])) return false;  // double-drift tripwire
      if (basis_[i] >= first_artificial_ && !P::is_zero(rhs_[i])) return false;
    }
    // Any artificial still basic sits at zero, exactly the post-Phase-I
    // situation; reuse the same expulsion step before Phase II.
    if (has_artificials_) expel_basic_artificials();
    return true;
  }

  /// True when every nonbasic, admissible column has strictly negative
  /// reduced cost at the current optimum: the optimal *solution* is then
  /// unique, so a warm result is forced to coincide bit-for-bit with the
  /// cold one.  Conservative by design -- a degenerate dual triggers a
  /// cold fallback even when the optimum happens to be unique.
  bool optimum_is_unique() const {
    std::vector<bool> basic(reduced_.size(), false);
    for (std::size_t b : basis_) basic[b] = true;
    for (std::size_t j = 0; j < first_artificial_; ++j) {
      if (!basic[j] && P::is_zero(reduced_[j])) return false;
    }
    return true;
  }

  void build_tableau() {
    const std::size_t m = lp_.rows.size();
    // Column layout: [structural | slack/surplus | artificial].
    std::size_t extra = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (lp_.relations[i] != Relation::Equal) ++extra;
    }
    // Count artificials after normalizing row signs.
    std::vector<int> flip(m, 1);
    std::vector<Relation> rel = lp_.relations;
    for (std::size_t i = 0; i < m; ++i) {
      if (P::is_negative(lp_.rhs[i])) {
        flip[i] = -1;
        if (rel[i] == Relation::LessEq) rel[i] = Relation::GreaterEq;
        else if (rel[i] == Relation::GreaterEq) rel[i] = Relation::LessEq;
      }
    }
    std::size_t num_art = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (rel[i] != Relation::LessEq) ++num_art;
    }
    has_artificials_ = num_art > 0;

    const std::size_t total = lp_.num_vars + extra + num_art;
    first_artificial_ = lp_.num_vars + extra;
    // A warm fallback rebuilds the tableau in place; the eta cache would
    // otherwise hold dangling pointers that could alias the new storage.
    eta_.clear();
    tab_.assign(m, std::vector<T>(total, T{}));
    rhs_.resize(m);
    basis_.assign(m, 0);
    forbidden_.assign(total, false);

    std::size_t next_extra = lp_.num_vars;
    std::size_t next_art = first_artificial_;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < lp_.num_vars; ++j) {
        tab_[i][j] = flip[i] < 0 ? T{} - lp_.rows[i][j] : lp_.rows[i][j];
      }
      rhs_[i] = flip[i] < 0 ? T{} - lp_.rhs[i] : lp_.rhs[i];
      switch (rel[i]) {
        case Relation::LessEq:
          tab_[i][next_extra] = T{1};
          basis_[i] = next_extra++;
          break;
        case Relation::GreaterEq:
          tab_[i][next_extra] = T{} - T{1};
          ++next_extra;
          tab_[i][next_art] = T{1};
          basis_[i] = next_art++;
          break;
        case Relation::Equal:
          tab_[i][next_art] = T{1};
          basis_[i] = next_art++;
          break;
      }
    }
  }

  /// Recomputes the reduced-cost row for the given phase's objective.
  void load_objective(bool phase1) {
    const std::size_t total = tab_.empty() ? 0 : tab_[0].size();
    reduced_.assign(total, T{});
    objective_value_ = T{};
    auto cost_of = [&](std::size_t var) -> T {
      if (phase1) {
        return var >= first_artificial_ ? T{} - T{1} : T{};
      }
      return var < lp_.num_vars ? lp_.objective[var] : T{};
    };
    for (std::size_t j = 0; j < total; ++j) reduced_[j] = cost_of(j);
    for (std::size_t i = 0; i < basis_.size(); ++i) {
      const T cb = cost_of(basis_[i]);
      if (P::is_zero(cb)) continue;
      const std::vector<T>& row = tab_[i];
      for (std::size_t j = 0; j < total; ++j) {
        if (P::is_skippable_zero(row[j])) continue;
        P::sub_mul(reduced_[j], cb, row[j]);
      }
      objective_value_ += cb * rhs_[i];
    }
  }

  /// Runs one simplex phase; returns false iff unbounded (phase 2 only).
  bool run_phase(bool phase1) {
    load_objective(phase1);
    if (!phase1) {
      // Phase 2 must never re-enter an artificial column.
      for (std::size_t j = first_artificial_; j < forbidden_.size(); ++j) {
        forbidden_[j] = true;
      }
    }
    const std::size_t iteration_cap =
        10000 * (tab_.size() + forbidden_.size() + 1);
    for (std::size_t iter = 0; iter < iteration_cap; ++iter) {
      // Bland: entering column = smallest index with positive reduced cost.
      std::size_t entering = reduced_.size();
      for (std::size_t j = 0; j < reduced_.size(); ++j) {
        if (!forbidden_[j] && P::is_positive(reduced_[j])) {
          entering = j;
          break;
        }
      }
      if (entering == reduced_.size()) return true;  // optimal for this phase

      // Capture the entering column (its eta form) once; the ratio test
      // and the pivot's row updates both read from this cache instead of
      // re-indexing the tableau per access.
      capture_column(entering);

      // Ratio test; Bland tie-break on the smallest basis variable index.
      std::size_t leaving = tab_.size();
      T best_ratio{};
      for (std::size_t i = 0; i < tab_.size(); ++i) {
        const T& coeff = *eta_[i];
        if (!P::is_positive(coeff)) continue;
        T ratio = rhs_[i] / coeff;
        if (leaving == tab_.size() || ratio < best_ratio ||
            (!(best_ratio < ratio) && basis_[i] < basis_[leaving])) {
          leaving = i;
          best_ratio = ratio;
        }
      }
      if (leaving == tab_.size()) return false;  // unbounded direction
      pivot(leaving, entering);
    }
    DLSCHED_FAIL("simplex iteration cap exceeded (cycling?)");
  }

  /// Points `eta_` at the given tableau column.  The pointers stay valid
  /// across pivots (rows are mutated in place, never reallocated).
  void capture_column(std::size_t col) {
    eta_.resize(tab_.size());
    for (std::size_t i = 0; i < tab_.size(); ++i) eta_[i] = &tab_[i][col];
  }

  /// Pivots on (row, col), reusing the eta cache when it already holds
  /// this column (the run_phase loop captures it for the ratio test) and
  /// re-capturing otherwise, so callers carry no temporal coupling.
  /// The inner loops pre-test pivot-row entries for zero: after a few
  /// pivots most tableau columns hold exact zeros (slack identity
  /// sub-blocks), and skipping them avoids the whole scalar update --
  /// which for Rational means skipping allocations and gcds, not just a
  /// multiply.
  void pivot(std::size_t row, std::size_t col) {
    ++pivots_;
    if (eta_.size() != tab_.size() || eta_[0] != &tab_[0][col]) {
      capture_column(col);
    }
    std::vector<T>& prow = tab_[row];
    const T inv = T{1} / prow[col];
    for (auto& v : prow) {
      if (!P::is_skippable_zero(v)) v *= inv;
    }
    rhs_[row] *= inv;
    prow[col] = T{1};  // kill residual rounding in the double instance
    for (std::size_t i = 0; i < tab_.size(); ++i) {
      if (i == row) continue;
      // The eta cache aliases tab_[i][col]; the j == col entry is skipped
      // in the loop and zeroed after the last `factor` read, so no copy of
      // the factor is needed.
      const T& factor = *eta_[i];
      if (P::is_zero(factor)) continue;
      std::vector<T>& trow = tab_[i];
      for (std::size_t j = 0; j < trow.size(); ++j) {
        if (j == col) continue;
        const T& pv = prow[j];
        if (P::is_skippable_zero(pv)) continue;
        P::sub_mul(trow[j], factor, pv);
      }
      P::sub_mul(rhs_[i], factor, rhs_[row]);
      trow[col] = T{};
    }
    const T rfactor = reduced_[col];
    if (!P::is_zero(rfactor)) {
      for (std::size_t j = 0; j < reduced_.size(); ++j) {
        if (j == col) continue;
        const T& pv = prow[j];
        if (P::is_skippable_zero(pv)) continue;
        P::sub_mul(reduced_[j], rfactor, pv);
      }
      reduced_[col] = T{};
      objective_value_ += rfactor * rhs_[row];
    }
    basis_[row] = col;
  }

  /// After phase 1, any artificial still basic sits at value zero; pivot it
  /// out on a non-artificial column, or drop the (redundant) row.
  void expel_basic_artificials() {
    for (std::size_t i = 0; i < basis_.size(); ++i) {
      if (basis_[i] < first_artificial_) continue;
      std::size_t col = first_artificial_;
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (!P::is_zero(tab_[i][j])) {
          col = j;
          break;
        }
      }
      if (col < first_artificial_) {
        pivot(i, col);
      }
      // If the row is zero across structural columns it is redundant; the
      // artificial stays basic at zero and its column is forbidden in
      // phase 2, which is harmless.
    }
  }

  void fill_row_activity(Solution<T>& out) const {
    out.row_activity.assign(lp_.rows.size(), T{});
    out.tight.assign(lp_.rows.size(), false);
    for (std::size_t i = 0; i < lp_.rows.size(); ++i) {
      T activity{};
      for (std::size_t j = 0; j < lp_.num_vars; ++j) {
        if (P::is_zero(lp_.rows[i][j])) continue;
        // Most structural variables are non-basic (exactly zero) at a
        // vertex; their terms contribute nothing, so skip the exact
        // multiply.  Bitwise test: a sub-tolerance double value still
        // contributes to the activity sum.
        if (P::is_skippable_zero(out.values[j])) continue;
        activity += lp_.rows[i][j] * out.values[j];
      }
      out.row_activity[i] = activity;
      const T gap = lp_.rhs[i] - activity;
      out.tight[i] = P::is_zero(gap);
    }
  }

  const DenseLp<T>& lp_;
  std::vector<std::vector<T>> tab_;
  std::vector<T> rhs_;
  std::vector<T> reduced_;
  std::vector<const T*> eta_;  ///< cached entering column (see pivot)
  std::vector<std::size_t> basis_;
  std::vector<bool> forbidden_;
  T objective_value_{};
  std::size_t first_artificial_ = 0;
  bool has_artificials_ = false;
  std::size_t pivots_ = 0;
};

}  // namespace dlsched::lp
