#include "experiments/emitter.hpp"

#include <cmath>
#include <cstdio>

#include "experiments/spec.hpp"
#include "util/error.hpp"

namespace dlsched::experiments {

std::string json_double(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string json_string(const std::string& text) {
  std::string out = "\"";
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buffer;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_string_array(const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += json_string(values[i]);
  }
  out += "]";
  return out;
}

std::string json_index_array(const std::vector<std::size_t>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(values[i]);
  }
  out += "]";
  return out;
}

std::string json_double_array(const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += json_double(values[i]);
  }
  out += "]";
  return out;
}

// ------------------------------------------------------------- JsonObject --

JsonObject& JsonObject::add(const std::string& name,
                            const std::string& value) {
  return add_raw(name, json_string(value));
}
JsonObject& JsonObject::add(const std::string& name, const char* value) {
  return add_raw(name, json_string(value));
}
JsonObject& JsonObject::add(const std::string& name, double value) {
  return add_raw(name, json_double(value));
}
JsonObject& JsonObject::add(const std::string& name, bool value) {
  return add_raw(name, value ? "true" : "false");
}
JsonObject& JsonObject::add(const std::string& name, std::size_t value) {
  return add_raw(name, std::to_string(value));
}
JsonObject& JsonObject::add(const std::string& name, int value) {
  return add_raw(name, std::to_string(value));
}
JsonObject& JsonObject::add_raw(const std::string& name, std::string json) {
  fields_.emplace_back(name, std::move(json));
  return *this;
}

std::string JsonObject::render() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += json_string(fields_[i].first);
    out += ": ";
    out += fields_[i].second;
  }
  out += "}";
  return out;
}

// -------------------------------------------------------- BenchJsonWriter --

BenchJsonWriter::BenchJsonWriter(
    std::ostream& out, const ExperimentSpec& spec,
    const std::vector<std::string>& resolved_solvers)
    : out_(out) {
  JsonObject header;
  header.add("name", spec.name)
      .add("title", spec.title)
      .add("figure", spec.figure)
      .add("kind", kind_name(spec.kind))
      .add("generator", spec.generator)
      .add_raw("solvers", json_string_array(resolved_solvers))
      .add("seed", spec.seed)
      .add("repetitions", spec.repetitions)
      .add("precision",
           spec.precision == Precision::Exact ? "exact" : "fast");
  // Affine axes, only when the spec sweeps them: latency-free specs keep
  // their header (and artifact) bytes unchanged.
  if (!spec.send_latencies.empty()) {
    header.add_raw("send_latencies", json_double_array(spec.send_latencies));
  }
  if (!spec.return_latencies.empty()) {
    header.add_raw("return_latencies",
                   json_double_array(spec.return_latencies));
  }
  if (spec.compute_latency != 0.0) {
    header.add("compute_latency", spec.compute_latency);
  }
  out_ << "{\n  \"spec\": " << header.render() << ",\n  \"rows\": [";
}

BenchJsonWriter::~BenchJsonWriter() { finish(); }

void BenchJsonWriter::row(const JsonObject& object) {
  raw_row(object.render());
}

void BenchJsonWriter::raw_row(const std::string& rendered) {
  DLSCHED_EXPECT(!finished_, "row() after finish()");
  if (rows_ > 0) out_ << ",";
  out_ << "\n    " << rendered;
  ++rows_;
}

void BenchJsonWriter::add_trailer_raw(const std::string& name,
                                      std::string json) {
  DLSCHED_EXPECT(!finished_, "add_trailer_raw() after finish()");
  trailers_.emplace_back(name, std::move(json));
}

void BenchJsonWriter::finish() {
  if (finished_) return;
  finished_ = true;
  if (rows_ > 0) out_ << "\n  ";
  out_ << "]";
  for (const auto& [name, json] : trailers_) {
    out_ << ",\n  " << json_string(name) << ": " << json;
  }
  out_ << "\n}\n";
  out_.flush();
}

// -------------------------------------------------------------- CsvWriter --

CsvWriter::CsvWriter(std::ostream& out,
                     const std::vector<std::string>& header)
    : out_(out), columns_(header.size()) {
  DLSCHED_EXPECT(columns_ > 0, "empty CSV header");
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << header[i];
  }
  out_ << '\n';
}

CsvWriter& CsvWriter::cell(const std::string& value) {
  current_.push_back(value);
  return *this;
}
CsvWriter& CsvWriter::cell(double value) {
  return cell(json_double(value));
}
CsvWriter& CsvWriter::cell(std::size_t value) {
  return cell(std::to_string(value));
}

void CsvWriter::end_row() {
  DLSCHED_EXPECT(current_.size() == columns_,
                 "CSV row has " + std::to_string(current_.size()) +
                     " cells, header has " + std::to_string(columns_));
  for (std::size_t i = 0; i < current_.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << current_[i];
  }
  out_ << '\n';
  current_.clear();
  out_.flush();
}

}  // namespace dlsched::experiments
