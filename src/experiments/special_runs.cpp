#include "experiments/special_runs.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "affine/realization.hpp"
#include "affine/replay.hpp"
#include "affine/selection.hpp"
#include "core/churn.hpp"
#include "core/multiround.hpp"
#include "core/scenario_lp.hpp"
#include "core/throughput.hpp"
#include "lp/problem.hpp"
#include "platform/matrix_app.hpp"
#include "runtime/matmul.hpp"
#include "runtime/one_port.hpp"
#include "runtime/worker_thread.hpp"
#include "schedule/gantt.hpp"
#include "schedule/rounding.hpp"
#include "service/wire.hpp"
#include "sim/des_executor.hpp"
#include "sim/engine.hpp"
#include "sim/noise.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dlsched::experiments::detail {

namespace {

using std::chrono::steady_clock;

double elapsed_since(steady_clock::time_point start) {
  return std::chrono::duration<double>(steady_clock::now() - start).count();
}

/// Platform-indexed integral loads for M tasks, per the paper's rounding
/// policy (sigma_1 order), from a (cached) double solution.
std::vector<double> integral_loads(const ScenarioSolutionD& solution,
                                   std::size_t platform_size,
                                   std::uint64_t total_tasks) {
  std::vector<double> ordered;
  ordered.reserve(solution.scenario.send_order.size());
  const double scale =
      static_cast<double>(total_tasks) / solution.throughput;
  for (const std::size_t w : solution.scenario.send_order) {
    ordered.push_back(solution.alpha[w] * scale);
  }
  const std::vector<std::uint64_t> integral =
      round_loads(ordered, total_tasks);
  std::vector<double> loads(platform_size, 0.0);
  for (std::size_t k = 0; k < solution.scenario.send_order.size(); ++k) {
    loads[solution.scenario.send_order[k]] =
        static_cast<double>(integral[k]);
  }
  return loads;
}

}  // namespace

// -------------------------------------------------------------- linearity --

namespace {

struct Fit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};

Fit linear_fit(const std::vector<double>& xs, const std::vector<double>& ys) {
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  Fit fit;
  fit.slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  fit.intercept = (sy - fit.slope * sx) / n;
  double ss_res = 0.0, ss_tot = 0.0;
  const double mean_y = sy / n;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double predicted = fit.slope * xs[i] + fit.intercept;
    ss_res += (ys[i] - predicted) * (ys[i] - predicted);
    ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace

void run_linearity(const ExperimentSpec& spec, const RunOptions& options,
                   BenchJsonWriter* json, std::ostream* csv,
                   RunSummary& summary, std::ostream& log) {
  // The paper's setup: messages of 0.5-5 MB to five workers with link
  // speed factors 1..5 over ~11.75 MB/s base bandwidth.
  const std::vector<double> sizes_mb{0.5, 1.0, 1.5, 2.0, 2.5,
                                     3.0, 3.5, 4.0, 4.5, 5.0};
  const double base_bandwidth = 11.75e6;

  const std::vector<std::string> header{"source", "worker", "speed",
                                        "slope_s_per_mb", "intercept_s",
                                        "r2"};
  std::optional<CsvWriter> csv_writer;
  if (csv) csv_writer.emplace(*csv, header);
  Table table(header);
  table.set_precision(5);

  const auto emit = [&](const char* source, int worker, const Fit& fit) {
    table.begin_row()
        .cell(std::string(source))
        .cell(static_cast<long long>(worker))
        .cell(static_cast<long long>(worker))
        .cell(fit.slope)
        .cell(fit.intercept)
        .cell(fit.r2);
    if (csv_writer) {
      csv_writer->cell(std::string(source))
          .cell(static_cast<std::size_t>(worker))
          .cell(static_cast<std::size_t>(worker))
          .cell(fit.slope)
          .cell(fit.intercept)
          .cell(fit.r2);
      csv_writer->end_row();
    }
    if (json) {
      json->row(JsonObject()
                    .add("source", source)
                    .add("worker", worker)
                    .add("speed_factor", worker)
                    .add("slope_s_per_mb", fit.slope)
                    .add("intercept_s", fit.intercept)
                    .add("r2", fit.r2));
      ++summary.rows;
    }
    ++summary.jobs;
    ++summary.solved;
  };

  // ---- (1) threaded runtime: wall-clock paced transfers (skipped under
  // --quick: it sleeps real time and its numbers are machine-dependent).
  if (!options.quick) {
    rt::RuntimeConfig config;
    config.base_bandwidth = base_bandwidth;
    // Transfers must stay well above the OS sleep granularity or the fit
    // measures scheduler jitter instead of bandwidth.
    config.time_scale = 4.0;
    for (int worker = 1; worker <= 5; ++worker) {
      const double factor = worker;
      std::vector<double> xs, ys;
      for (const double mb : sizes_mb) {
        const double expected =
            rt::transfer_seconds(config, mb * 1e6, factor);
        const auto begin = steady_clock::now();
        rt::paced_sleep(expected, config.time_scale);
        xs.push_back(mb);
        ys.push_back(elapsed_since(begin) * config.time_scale);
      }
      emit("runtime", worker, linear_fit(xs, ys));
    }
  }

  // ---- (2) DES with cluster-like noise -----------------------------------
  for (int worker = 1; worker <= 5; ++worker) {
    sim::NoiseSampler sampler(sim::NoiseModel::cluster_like(
        spec.seed + static_cast<std::uint64_t>(worker)));
    std::vector<double> xs, ys;
    for (const double mb : sizes_mb) {
      xs.push_back(mb);
      ys.push_back(
          sampler.message_time(mb * 1e6 / (base_bandwidth * worker)));
    }
    emit("des", worker, linear_fit(xs, ys));
  }

  table.print_aligned(log);
  log << "expected: r2 ~ 1 (linear), intercept ~ 0 (no latency), slope ~ "
         "1/(11.75 * speed)\n";
}

// ------------------------------------------------------------------ trace --

void run_trace(const ExperimentSpec& spec, const RunOptions& options,
               ResultCache& cache, BenchJsonWriter* json, std::ostream* csv,
               RunSummary& summary, std::ostream& log) {
  // Three capable workers, two much slower ones: the paper's resource
  // selection picture (only the first three enroll).
  const MatrixApp app({.matrix_size = 150});
  const StarPlatform platform = app.platform({
      WorkerSpeeds{9.0, 8.0},
      WorkerSpeeds{8.0, 9.0},
      WorkerSpeeds{7.0, 7.0},
      WorkerSpeeds{1.0, 1.0},
      WorkerSpeeds{1.0, 1.2},
  });
  log << platform.describe() << "\n";

  SolveRequest request;
  request.platform = platform;
  request.precision = Precision::Exact;
  const CachedRun run = run_solver_cached(cache, "fifo_optimal", request);
  ++summary.jobs;
  run.from_cache ? ++summary.cache_hits : ++summary.solved;
  DLSCHED_EXPECT(run.solve.solved, "fig09 solve failed: " + run.solve.error);
  const ScenarioSolutionD solution = solution_from_cached(run.solve);
  log << "optimal FIFO (INC_C) throughput: " << solution.throughput
      << " tasks per unit; workers enrolled: " << run.solve.workers_used
      << " of " << platform.size() << "\n\n";

  const std::uint64_t m = std::min<std::uint64_t>(spec.total_tasks, 200);
  const std::vector<double> loads =
      integral_loads(solution, platform.size(), m);
  const sim::DesResult des =
      sim::execute(platform, solution.scenario, loads);
  const Timeline timeline = des.trace.to_timeline();
  log << render_ascii_gantt(platform, timeline) << "\n";

  const std::vector<std::string> header{"worker", "alpha", "tasks"};
  std::optional<CsvWriter> csv_writer;
  if (csv) csv_writer.emplace(*csv, header);
  for (std::size_t w = 0; w < platform.size(); ++w) {
    if (csv_writer) {
      csv_writer->cell(w).cell(solution.alpha[w]).cell(loads[w]);
      csv_writer->end_row();
    }
    if (json) {
      json->row(JsonObject()
                    .add("solver", "fifo_optimal")
                    .add("worker", w)
                    .add("alpha", solution.alpha[w])
                    .add("tasks", loads[w]));
      ++summary.rows;
    }
  }
  if (json) {
    json->row(JsonObject()
                  .add("solver", "fifo_optimal")
                  .add("metric", "des_makespan_seconds")
                  .add("value", des.makespan));
    ++summary.rows;
  }

  // The SVG lands next to the JSON artifact.
  std::string svg_path = "fig09_trace.svg";
  if (!options.out_json.empty()) {
    svg_path = options.out_json;
    const std::size_t dot = svg_path.rfind(".json");
    if (dot != std::string::npos) svg_path.erase(dot);
    svg_path += ".svg";
  }
  std::ofstream svg(svg_path);
  if (svg.good()) {
    GanttOptions gantt;
    gantt.svg_pixels_per_unit = 700.0 / timeline.makespan;
    svg << render_svg_gantt(platform, timeline, gantt);
    log << "SVG written to " << svg_path << "\n";
  }
  log << "expected: the two factor-1 workers receive no load; sends "
         "back-to-back, returns FIFO at the end\n";
}

// ---------------------------------------------------------- participation --

void run_participation(const ExperimentSpec& spec, const RunOptions& options,
                       ResultCache& cache, BenchJsonWriter* json,
                       std::ostream* csv, RunSummary& summary,
                       std::ostream& log) {
  (void)options;
  const std::size_t matrix_size =
      spec.matrix_sizes.empty() ? 400 : spec.matrix_sizes.front();
  const MatrixApp app({.matrix_size = matrix_size});
  const std::uint64_t m = spec.total_tasks;

  const std::vector<std::string> header{"x",           "available_workers",
                                        "lp_seconds",  "real_seconds",
                                        "workers_used", "wall_seconds"};
  std::optional<CsvWriter> csv_writer;
  if (csv) csv_writer.emplace(*csv, header);
  Table table(header);
  table.set_precision(3);

  for (const double x : spec.x_values) {
    const StarPlatform full = app.platform(gen::participation_speeds(x));
    for (std::size_t available = 1; available <= full.size(); ++available) {
      std::vector<std::size_t> subset(available);
      for (std::size_t i = 0; i < available; ++i) subset[i] = i;
      SolveRequest request;
      request.platform = full.subset(subset);
      request.precision = Precision::Exact;
      const CachedRun run =
          run_solver_cached(cache, "fifo_optimal", request);
      ++summary.jobs;
      run.from_cache ? ++summary.cache_hits : ++summary.solved;
      if (!run.solve.solved) {
        ++summary.failures;
        continue;
      }
      const ScenarioSolutionD solution = solution_from_cached(run.solve);
      const double lp_seconds =
          makespan_for_load(solution.throughput, static_cast<double>(m));
      const std::vector<double> loads =
          integral_loads(solution, request.platform.size(), m);
      const sim::DesResult des = sim::execute(
          request.platform, solution.scenario, loads,
          sim::NoiseModel::cluster_like(42 + available +
                                        static_cast<std::uint64_t>(x)));
      table.begin_row()
          .cell(format_double(x, 2))
          .cell(available)
          .cell(lp_seconds)
          .cell(des.makespan)
          .cell(run.solve.workers_used)
          .cell(run.solve.wall_seconds);
      if (csv_writer) {
        csv_writer->cell(x)
            .cell(available)
            .cell(lp_seconds)
            .cell(des.makespan)
            .cell(run.solve.workers_used)
            .cell(run.solve.wall_seconds);
        csv_writer->end_row();
      }
      if (json) {
        json->row(JsonObject()
                      .add("solver", "fifo_optimal")
                      .add("x", x)
                      .add("available_workers", available)
                      .add("lp_seconds", lp_seconds)
                      .add("real_seconds", des.makespan)
                      .add("workers_used", run.solve.workers_used)
                      .add("wall_seconds", run.solve.wall_seconds));
        ++summary.rows;
      }
    }
  }
  table.print_aligned(log);
  log << "expected: x = 1 never enrolls the slow fourth worker; x = 3 "
         "does, and the 4-worker time improves slightly\n";
}

// -------------------------------------------------------------- selection --

namespace {

/// Throughput when every scenario worker must take at least `floor` load
/// (epsilon participation), approximating the classical "use everyone"
/// policy.
double forced_participation_throughput(const StarPlatform& platform,
                                       double floor) {
  const Scenario scenario = Scenario::fifo(platform.order_by_c());
  lp::LpProblem problem = build_scenario_lp(platform, scenario);
  // alpha variables are the first q in sigma_1 order.
  for (std::size_t k = 0; k < scenario.size(); ++k) {
    problem.add_constraint({{k, numeric::Rational(1)}},
                           lp::Relation::GreaterEq,
                           numeric::Rational::from_double(floor));
  }
  const auto solution = problem.solve_double();
  return solution.status == lp::Status::Optimal ? solution.objective : 0.0;
}

}  // namespace

void run_selection(const ExperimentSpec& spec, const RunOptions& options,
                   ResultCache& cache, BenchJsonWriter* json,
                   std::ostream* csv, RunSummary& summary,
                   std::ostream& log) {
  (void)options;
  const std::size_t p = spec.workers.empty() ? 10 : spec.workers.front();

  const std::vector<std::string> header{"z", "platforms", "selection_rate",
                                        "mean_gain", "max_gain"};
  std::optional<CsvWriter> csv_writer;
  if (csv) csv_writer.emplace(*csv, header);
  Table table(header);
  table.set_precision(4);

  for (const double z : spec.z_values) {
    std::size_t dropped = 0;
    Accumulator gain;
    for (std::size_t trial = 0; trial < spec.repetitions; ++trial) {
      const std::uint64_t seed = instance_seed(spec.seed, p, z, trial);
      gen::GenParams params = spec.generator_params;
      params["p"] = static_cast<double>(p);
      params["z"] = z;
      Rng rng(seed);
      SolveRequest request;
      request.platform = gen::GeneratorRegistry::instance().make(
          spec.generator, params, rng);
      request.precision = Precision::Exact;
      const CachedRun run =
          run_solver_cached(cache, "fifo_optimal", request);
      ++summary.jobs;
      run.from_cache ? ++summary.cache_hits : ++summary.solved;
      if (!run.solve.solved) {
        ++summary.failures;
        continue;
      }
      const bool selected =
          run.solve.workers_used < request.platform.size();
      if (selected) ++dropped;
      const double forced = forced_participation_throughput(
          request.platform, 1e-4 * run.solve.throughput);
      const double trial_gain =
          forced > 0.0 ? run.solve.throughput / forced : 0.0;
      if (forced > 0.0) gain.add(trial_gain);
      if (json) {
        json->row(JsonObject()
                      .add("solver", "fifo_optimal")
                      .add("z", z)
                      .add("rep", trial)
                      .add("seed", seed)
                      .add("throughput", run.solve.throughput)
                      .add("forced_throughput", forced)
                      .add("gain", trial_gain)
                      .add("workers_used", run.solve.workers_used)
                      .add("selected", selected)
                      .add("wall_seconds", run.solve.wall_seconds));
        ++summary.rows;
      }
    }
    const double rate = spec.repetitions > 0
                            ? static_cast<double>(dropped) /
                                  static_cast<double>(spec.repetitions)
                            : 0.0;
    table.begin_row()
        .cell(format_double(z, 2))
        .cell(spec.repetitions)
        .cell(rate)
        .cell(gain.mean())
        .cell(gain.max());
    if (csv_writer) {
      csv_writer->cell(z)
          .cell(spec.repetitions)
          .cell(rate)
          .cell(gain.mean())
          .cell(gain.max());
      csv_writer->end_row();
    }
  }
  table.print_aligned(log);
  log << "expected: selection engages on straggler platforms; forcing "
         "everyone in costs throughput (gain > 1)\n";
}

// -------------------------------------------------------------- multiround --

void run_multiround(const ExperimentSpec& spec, const RunOptions& options,
                    BenchJsonWriter* json, std::ostream* csv,
                    RunSummary& summary, std::ostream& log) {
  (void)options;
  const std::size_t p = spec.workers.empty() ? 4 : spec.workers.front();
  // Chains dominated by reception + compute, as in the paper's Section 6
  // discussion: comm in [0.3, 0.6], compute in [0.8, 1.6].
  Rng rng(spec.seed);
  const StarPlatform platform = gen::random_star(p, rng, 0.5, 0.3, 0.6,
                                                 0.8, 1.6);
  SolveRequest request;
  request.platform = platform;
  request.precision = Precision::Fast;
  const SolveResult sol = SolverRegistry::instance().run("inc_c", request);
  const std::vector<double> alpha = sol.solution.alpha_double();
  ++summary.jobs;
  ++summary.solved;

  const std::vector<std::string> header{"latency", "rounds", "makespan"};
  std::optional<CsvWriter> csv_writer;
  if (csv) csv_writer.emplace(*csv, header);

  std::ostringstream best_line;
  best_line << "best round count per latency:";
  for (const double latency : spec.latencies) {
    AffineCosts costs;
    costs.send_latency = latency;
    const std::vector<RoundSweepPoint> curve =
        sweep_rounds(platform, alpha, costs, spec.max_rounds);
    for (const RoundSweepPoint& point : curve) {
      if (csv_writer) {
        csv_writer->cell(latency)
            .cell(point.rounds)
            .cell(point.makespan);
        csv_writer->end_row();
      }
      if (json) {
        json->row(JsonObject()
                      .add("solver", "inc_c")
                      .add("send_latency", latency)
                      .add("rounds", point.rounds)
                      .add("makespan", point.makespan));
        ++summary.rows;
      }
    }
    const auto best = std::min_element(
        curve.begin(), curve.end(),
        [](const RoundSweepPoint& a, const RoundSweepPoint& b) {
          return a.makespan < b.makespan;
        });
    best_line << "  " << format_double(latency, 3) << " -> R="
              << best->rounds;
  }
  log << best_line.str() << "\n";
  log << "expected: optimal R decreases as latency grows; latency 0 "
         "saturates (more rounds ~ free)\n";
}

// ------------------------------------------------------------------- micro --

void run_micro(const ExperimentSpec& spec, const RunOptions& options,
               BenchJsonWriter* json, std::ostream* csv, RunSummary& summary,
               std::ostream& log) {
  const std::size_t repeats =
      std::max<std::size_t>(1, options.quick ? 2 : spec.repetitions);

  const std::vector<std::string> header{"bench", "param", "repeats",
                                        "wall_min_seconds",
                                        "wall_mean_seconds"};
  std::optional<CsvWriter> csv_writer;
  if (csv) csv_writer.emplace(*csv, header);
  Table table(header);
  table.set_precision(8);

  // `counters`, when given, is filled by the body (last repeat wins --
  // every repeat solves the same deterministic instance) and lands as
  // extra per-row JSON keys, so the regression checker can gate on solver
  // work (pivot counts, accepted warm starts) and not just wall time.
  const auto bench = [&](const std::string& name, std::size_t param,
                         const std::function<void()>& body,
                         const std::map<std::string, std::uint64_t>*
                             counters = nullptr) {
    double wall_min = std::numeric_limits<double>::infinity();
    double total = 0.0;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      const auto start = steady_clock::now();
      body();
      const double seconds = elapsed_since(start);
      wall_min = std::min(wall_min, seconds);
      total += seconds;
    }
    const double wall_mean = total / static_cast<double>(repeats);
    table.begin_row()
        .cell(name)
        .cell(param)
        .cell(repeats)
        .cell(wall_min)
        .cell(wall_mean);
    if (csv_writer) {
      csv_writer->cell(name).cell(param).cell(repeats).cell(wall_min).cell(
          wall_mean);
      csv_writer->end_row();
    }
    if (json) {
      JsonObject row;
      row.add("bench", name)
          .add("param", param)
          .add("repeats", repeats)
          .add("wall_min_seconds", wall_min)
          .add("wall_mean_seconds", wall_mean);
      if (counters) {
        for (const auto& [key, value] : *counters) row.add(key, value);
      }
      json->row(row);
      ++summary.rows;
    }
    ++summary.jobs;
    ++summary.solved;
  };

  const auto platform_for = [&](std::size_t p) {
    Rng rng(spec.seed + p);
    return gen::random_star(p, rng, 0.5);
  };

  // Exact rational simplex vs the double simplex on the scheduling LP
  // (the cost of replacing the paper's lp_solve with exact arithmetic).
  for (const std::size_t p :
       options.quick ? std::vector<std::size_t>{2, 4}
                     : std::vector<std::size_t>{2, 4, 8, 12}) {
    const StarPlatform platform = platform_for(p);
    const Scenario scenario = Scenario::fifo(platform.order_by_c());
    bench("scenario_lp_exact", p,
          [&] { (void)solve_scenario(platform, scenario); });
  }
  for (const std::size_t p :
       options.quick ? std::vector<std::size_t>{4, 8}
                     : std::vector<std::size_t>{4, 8, 12, 24}) {
    const StarPlatform platform = platform_for(p);
    const Scenario scenario = Scenario::fifo(platform.order_by_c());
    bench("scenario_lp_double", p,
          [&] { (void)solve_scenario_double(platform, scenario); });
  }
  // The two exact engines head to head on one pre-built LP: the
  // fraction-free Bareiss tableau vs the gcd-reducing rational simplex
  // (both produce bit-identical solutions; only the arithmetic differs).
  for (const std::size_t p : options.quick ? std::vector<std::size_t>{4}
                                           : std::vector<std::size_t>{4, 8,
                                                                      12}) {
    const StarPlatform platform = platform_for(p);
    const Scenario scenario = Scenario::fifo(platform.order_by_c());
    const lp::LpProblem problem = build_scenario_lp(platform, scenario);
    bench("bareiss_pivot", p,
          [&] { (void)problem.solve_exact(lp::ExactEngine::Bareiss); });
    bench("rational_pivot", p,
          [&] { (void)problem.solve_exact(lp::ExactEngine::Rational); });
  }
  for (const std::size_t p : {4, 12}) {
    const StarPlatform platform = platform_for(p);
    const Scenario scenario = Scenario::fifo(platform.order_by_c());
    bench("build_scenario_lp", p,
          [&] { (void)build_scenario_lp(platform, scenario); });
  }

  // DES throughput: engine event dispatch and a full protocol execution.
  for (const std::size_t events :
       options.quick ? std::vector<std::size_t>{1000}
                     : std::vector<std::size_t>{1000, 100000}) {
    bench("engine_events", events, [&] {
      sim::Engine engine;
      std::size_t fired = 0;
      for (std::size_t i = 0; i < events; ++i) {
        engine.schedule_at(static_cast<double>(i), [&fired] { ++fired; });
      }
      engine.run();
    });
  }
  for (const std::size_t p :
       options.quick ? std::vector<std::size_t>{4, 16}
                     : std::vector<std::size_t>{4, 16, 64}) {
    const StarPlatform platform = platform_for(p);
    SolveRequest request;
    request.platform = platform;
    request.precision = Precision::Fast;
    const SolveResult sol = SolverRegistry::instance().run("inc_c", request);
    const Scenario scenario = sol.solution.scenario;
    const std::vector<double> alpha = sol.solution.alpha_double();
    bench("des_execute", p,
          [&] { (void)sim::execute(platform, scenario, alpha); });
  }

  // The matrix application's compute kernel.
  for (const std::size_t n :
       options.quick ? std::vector<std::size_t>{32}
                     : std::vector<std::size_t>{32, 64, 128}) {
    Rng rng(spec.seed + n);
    rt::Matrix a(n), b(n), c(n);
    a.fill_random(rng);
    b.fill_random(rng);
    bench("gemm", n, [&] { rt::gemm(a, b, c); });
  }

  // The cluster wire layer: encode + decode throughput of the largest
  // frames the TCP board ships -- a FragmentPush carrying one serialized
  // shard result plus N cache records.  The bodies are synthetic but
  // realistically shaped (alpha/order vectors sized like a p=16 solve),
  // so a codec regression (an accidental copy, a quadratic append) moves
  // this number long before it hurts a real cluster run.
  for (const std::size_t records :
       options.quick ? std::vector<std::size_t>{16}
                     : std::vector<std::size_t>{16, 256}) {
    service::FragmentPushBody push;
    push.worker_id = "micro-worker";
    push.shard_index = 7;
    push.shard_id = "0123456789abcdef0123456789abcdef";
    push.plan_fingerprint = "fedcba9876543210fedcba9876543210";
    push.fragment.assign(16 * 1024, 'f');  // one mid-size shard fragment
    Rng rng(spec.seed + records);
    for (std::size_t i = 0; i < records; ++i) {
      service::SolveRecord record;
      record.solver = "fifo_optimal";
      record.solved = true;
      record.validated = true;
      record.throughput = rng.uniform(0.1, 2.0);
      for (std::size_t w = 0; w < 16; ++w) {
        record.alpha.push_back(rng.uniform(0.0, 1.0));
        record.send_order.push_back(w);
        record.return_order.push_back(15 - w);
      }
      record.workers_used = 16;
      record.lp_pivots = 16;
      record.wall_seconds = rng.uniform(0.0, 0.01);
      service::WireCacheEntry entry;
      entry.hash = push.shard_id;
      entry.key = "v1 solver fifo_optimal p 16 key " + std::to_string(i);
      entry.body = service::encode_result_body(record);
      push.records.push_back(std::move(entry));
    }
    bench("wire_frame_roundtrip", records, [&] {
      const std::string frame =
          service::encode_frame(service::FrameType::FragmentPush,
                                service::encode_fragment_push(push));
      const service::FrameDecode decoded = service::try_decode_frame(frame);
      DLSCHED_EXPECT(decoded.status == service::DecodeStatus::Ok &&
                         decoded.consumed == frame.size(),
                     "wire_frame_roundtrip: frame failed to round-trip");
      const service::FragmentPushBody back =
          service::decode_fragment_push(decoded.frame.payload);
      DLSCHED_EXPECT(back.records.size() == push.records.size() &&
                         back.fragment == push.fragment,
                     "wire_frame_roundtrip: body failed to round-trip");
    });
  }

  // The affine substrate: the exact FIFO LP with latency constants, the
  // subset-enumeration selection, and the realize -> validate -> DES-replay
  // tail the affine solvers run per solve.
  AffineCosts affine_costs;
  affine_costs.send_latency = 0.01;
  affine_costs.compute_latency = 0.002;
  affine_costs.return_latency = 0.005;
  const auto all_workers = [](const StarPlatform& platform) {
    std::vector<std::size_t> ids(platform.size());
    for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
    return ids;
  };
  for (const std::size_t p :
       options.quick ? std::vector<std::size_t>{4}
                     : std::vector<std::size_t>{4, 8, 12}) {
    const StarPlatform platform = platform_for(p);
    bench("affine_lp_exact", p, [&] {
      (void)solve_affine_fifo(platform, all_workers(platform),
                              affine_costs);
    });
  }
  for (const std::size_t p :
       options.quick ? std::vector<std::size_t>{4}
                     : std::vector<std::size_t>{4, 8, 12}) {
    const StarPlatform platform = platform_for(p);
    bench("affine_subset_select", p, [&] {
      (void)affine::solve_affine_fifo_best_subset(platform, affine_costs);
    });
  }
  // The Precision::Fast substrate: the double-precision affine FIFO LP and
  // the fast-screened subset enumeration (double LP per candidate, exact
  // re-solve of the margin set only).
  for (const std::size_t p :
       options.quick ? std::vector<std::size_t>{4}
                     : std::vector<std::size_t>{4, 8, 12}) {
    const StarPlatform platform = platform_for(p);
    bench("affine_fast_lp", p, [&] {
      (void)solve_affine_fifo_fast(platform, all_workers(platform),
                                   affine_costs);
    });
  }
  for (const std::size_t p : options.quick ? std::vector<std::size_t>{4}
                                           : std::vector<std::size_t>{4, 8}) {
    const StarPlatform platform = platform_for(p);
    bench("affine_fast_subset_select", p, [&] {
      (void)affine::solve_affine_fifo_best_subset(
          platform, affine_costs, /*max_workers=*/12,
          /*time_budget_seconds=*/0.0, /*use_fast_lp=*/true);
    });
  }
  // The warm-start substrate: the Gray-code subset chain with and without
  // basis reuse (counters expose the pivot ledger), an optimal-basis warm
  // re-solve of the plain FIFO LP (the grid's axis-step reuse in
  // miniature), and the churn re-solve entry point.
  for (const std::size_t p :
       options.quick ? std::vector<std::size_t>{4}
                     : std::vector<std::size_t>{8, 12}) {
    const StarPlatform platform = platform_for(p);
    std::map<std::string, std::uint64_t> warm_counters;
    bench(
        "affine_subset_warm", p,
        [&] {
          const affine::AffineSelectionResult result =
              affine::solve_affine_fifo_best_subset(platform, affine_costs,
                                                    affine::AffineSubsetOptions{});
          warm_counters["lp_pivots"] = result.lp_pivots_total;
          warm_counters["lp_warm_starts"] = result.lp_warm_starts;
          warm_counters["lp_pivots_saved"] = result.lp_pivots_saved;
          warm_counters["subsets_pruned"] = result.subsets_pruned;
          warm_counters["subsets_screened"] = result.subsets_screened;
        },
        &warm_counters);
    std::map<std::string, std::uint64_t> cold_counters;
    bench(
        "affine_subset_cold", p,
        [&] {
          affine::AffineSubsetOptions subset_options;
          subset_options.warm_start = false;
          subset_options.prune = false;
          subset_options.screen = false;
          const affine::AffineSelectionResult result =
              affine::solve_affine_fifo_best_subset(platform, affine_costs,
                                                    subset_options);
          cold_counters["lp_pivots"] = result.lp_pivots_total;
        },
        &cold_counters);
  }
  for (const std::size_t p :
       options.quick ? std::vector<std::size_t>{4}
                     : std::vector<std::size_t>{4, 8, 12}) {
    const StarPlatform platform = platform_for(p);
    const Scenario scenario = Scenario::fifo(platform.order_by_c());
    const ScenarioSolution cold = solve_scenario(platform, scenario);
    const std::vector<double> alpha = cold.alpha_double();
    std::map<std::string, std::uint64_t> counters;
    bench(
        "scenario_lp_warm", p,
        [&] {
          LpOptions lp_options;
          lp_options.warm_basis = warm_basis_for(alpha, scenario);
          const ScenarioSolution warm =
              solve_scenario(platform, scenario, lp_options);
          counters["lp_pivots"] = warm.lp_pivots;
          counters["lp_warm_starts"] = warm.lp_warm_starts;
          counters["cold_lp_pivots"] = cold.lp_pivots;
        },
        &counters);
  }
  for (const std::size_t p : options.quick ? std::vector<std::size_t>{4}
                                           : std::vector<std::size_t>{8,
                                                                      12}) {
    const StarPlatform platform = platform_for(p);
    SolveRequest request;
    request.platform = platform;
    request.costs = affine_costs;
    const Scenario scenario = Scenario::fifo(platform.order_by_c());
    const ScenarioSolution base =
        solve_scenario(platform, scenario, affine_costs.lp_options());
    request.warm_alpha = base.alpha_double();
    const PlatformDelta delta = PlatformDelta::slowdown(p / 2, 1.5);
    std::map<std::string, std::uint64_t> counters;
    bench(
        "churn_resolve", p,
        [&] {
          const ResolveResult result = resolve(request, delta);
          counters["lp_pivots"] = result.solution.lp_pivots;
          counters["lp_warm_starts"] = result.solution.lp_warm_starts;
        },
        &counters);
  }

  for (const std::size_t p :
       options.quick ? std::vector<std::size_t>{4}
                     : std::vector<std::size_t>{4, 12}) {
    const StarPlatform platform = platform_for(p);
    const ScenarioSolution solution =
        solve_affine_fifo(platform, all_workers(platform), affine_costs);
    bench("affine_realize_replay", p, [&] {
      const affine::AffineRealization realization =
          affine::realize_affine(platform, solution, affine_costs);
      DLSCHED_EXPECT(
          affine::validate_affine(platform, realization, affine_costs).ok,
          "affine micro realization failed validation");
      (void)affine::replay_affine(platform, realization);
    });
  }

  table.print_aligned(log);
}

// ------------------------------------------------------------------- churn --

void run_churn(const ExperimentSpec& spec, const RunOptions& options,
               BenchJsonWriter* json, std::ostream* csv, RunSummary& summary,
               std::ostream& log) {
  (void)options;
  const std::vector<std::size_t> p_values =
      spec.workers.empty() ? std::vector<std::size_t>{8} : spec.workers;

  // Fixed affine constants: latencies are what make churn bite (every
  // enrolled worker pays them on every re-solve), and keeping them off
  // the spec's grid axes keeps the churn kind a one-dimensional surface.
  AffineCosts costs;
  costs.send_latency = 0.01;
  costs.compute_latency = 0.002;
  costs.return_latency = 0.005;

  const std::vector<std::string> header{
      "p",           "rep",         "event",     "kind",
      "warm_wall_seconds", "cold_wall_seconds", "warm_pivots",
      "cold_pivots", "retention"};
  std::optional<CsvWriter> csv_writer;
  if (csv) csv_writer.emplace(*csv, header);
  Table table({"p", "events", "warm_accepted", "mean_warm_wall_seconds",
               "mean_cold_wall_seconds", "pivots_saved", "mean_retention"});
  table.set_precision(6);

  for (const std::size_t p : p_values) {
    Accumulator warm_wall, cold_wall, retention_acc;
    std::size_t events = 0;
    std::size_t warm_accepted = 0;
    std::size_t warm_pivots_sum = 0;
    std::size_t cold_pivots_sum = 0;
    for (std::size_t rep = 0; rep < spec.repetitions; ++rep) {
      Rng rng(spec.seed + 7919 * p + rep);
      SolveRequest request;
      request.platform = gen::random_star(p, rng, 0.5);
      request.costs = costs;
      // The running computation: solve once, then let the platform drift.
      ScenarioSolution current = solve_scenario(
          request.platform, Scenario::fifo(request.platform.order_by_c()),
          costs.lp_options());
      std::vector<double> alpha = current.alpha_double();
      ++summary.jobs;
      ++summary.solved;
      for (std::size_t e = 0; e < spec.churn_events; ++e) {
        // Deterministic event stream, cycling slowdown / leave / join so
        // the platform size stays near p across the chain.
        PlatformDelta delta;
        const std::size_t size = request.platform.size();
        const auto target = [&] {
          return static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(size) - 1));
        };
        switch (e % 3) {
          case 0:
            delta = PlatformDelta::slowdown(target(),
                                            rng.uniform(1.2, 3.0));
            break;
          case 1:
            if (size > 2) {
              delta = PlatformDelta::leave(target());
            } else {
              delta = PlatformDelta::slowdown(target(),
                                              rng.uniform(1.2, 3.0));
            }
            break;
          default: {
            Worker joined;
            joined.c = rng.uniform(0.1, 1.0);
            joined.w = rng.uniform(0.2, 2.0);
            joined.d = 0.5 * joined.c;
            delta = PlatformDelta::join(joined);
            break;
          }
        }

        request.warm_alpha = alpha;
        const auto warm_t = steady_clock::now();
        const ResolveResult warm = resolve(request, delta);
        const double warm_seconds = elapsed_since(warm_t);
        SolveRequest cold_request = request;
        cold_request.warm_alpha.clear();
        const auto cold_t = steady_clock::now();
        const ResolveResult cold = resolve(cold_request, delta);
        const double cold_seconds = elapsed_since(cold_t);
        // The warm hint must never move the answer -- only the pivots.
        DLSCHED_EXPECT(
            warm.solution.throughput == cold.solution.throughput,
            "churn: warm re-solve diverged from the cold re-solve");

        const ChurnedPlatform churned{warm.platform, warm.old_to_new,
                                      warm.costs};
        const StaleExecution stale =
            execute_stale(churned, alpha, current.scenario);
        const double rho = warm.solution.throughput.to_double();
        const double retention = rho > 0.0 ? stale.rate / rho : 0.0;

        ++events;
        warm_accepted += warm.solution.lp_warm_starts;
        warm_pivots_sum += warm.solution.lp_pivots;
        cold_pivots_sum += cold.solution.lp_pivots;
        warm_wall.add(warm_seconds);
        cold_wall.add(cold_seconds);
        retention_acc.add(retention);
        ++summary.jobs;
        ++summary.solved;

        if (csv_writer) {
          csv_writer->cell(p)
              .cell(rep)
              .cell(e)
              .cell(std::string(delta.kind_name()))
              .cell(warm_seconds)
              .cell(cold_seconds)
              .cell(warm.solution.lp_pivots)
              .cell(cold.solution.lp_pivots)
              .cell(retention);
          csv_writer->end_row();
        }
        if (json) {
          json->row(
              JsonObject()
                  .add("p", p)
                  .add("rep", rep)
                  .add("event", e)
                  .add("kind", delta.kind_name())
                  .add("workers", warm.platform.size())
                  .add("warm_wall_seconds", warm_seconds)
                  .add("cold_wall_seconds", cold_seconds)
                  .add("warm_pivots", warm.solution.lp_pivots)
                  .add("cold_pivots", cold.solution.lp_pivots)
                  .add("lp_warm_starts", warm.solution.lp_warm_starts)
                  .add("throughput", rho)
                  .add("stale_rate", stale.rate)
                  .add("retention", retention));
          ++summary.rows;
        }

        // The chain advances on the churned platform: the warm solution
        // becomes the next event's running computation.
        request.platform = warm.platform;
        request.costs = warm.costs;
        current = warm.solution;
        alpha = current.alpha_double();
      }
    }
    table.begin_row()
        .cell(p)
        .cell(events)
        .cell(warm_accepted)
        .cell(warm_wall.mean())
        .cell(cold_wall.mean())
        .cell(cold_pivots_sum > warm_pivots_sum
                  ? cold_pivots_sum - warm_pivots_sum
                  : 0)
        .cell(retention_acc.mean());
  }
  table.print_aligned(log);
  log << "expected: warm re-solves match cold bit for bit with fewer "
         "pivots; retention < 1 is the throughput lost by not re-solving\n";
}

}  // namespace dlsched::experiments::detail
