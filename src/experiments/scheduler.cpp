#include "experiments/scheduler.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace dlsched::experiments {

namespace fs = std::filesystem;

// --------------------------------------------------------------- the board --

ShardBoard::ShardBoard(std::string directory)
    : directory_(std::move(directory)) {
  DLSCHED_EXPECT(!directory_.empty(), "empty shard board directory");
  std::error_code ec;
  fs::create_directories(directory_, ec);
  DLSCHED_EXPECT(!ec,
                 "cannot create shard board directory '" + directory_ + "'");
}

std::string ShardBoard::claim_path(const CompiledShard& shard) const {
  return (fs::path(directory_) / (shard.id + ".claim")).string();
}

std::string ShardBoard::fragment_path(const CompiledShard& shard) const {
  return (fs::path(directory_) / (shard.id + ".part")).string();
}

void ShardBoard::reset() {
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(directory_, ec)) {
    if (ec) break;
    std::error_code remove_ec;
    fs::remove_all(entry.path(), remove_ec);
  }
}

bool ShardBoard::is_done(const CompiledShard& shard) const {
  std::error_code ec;
  return fs::exists(fragment_path(shard), ec) && !ec;
}

bool ShardBoard::try_claim(const CompiledShard& shard,
                           const std::string& worker_id) {
  // Unique temp + hard link: the link call succeeds for exactly one
  // worker per claim file, even over NFS.
  const fs::path tmp = fs::path(directory_) /
                       (shard.id + ".claimant." + worker_id);
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out.good()) return false;
    out << "worker " << worker_id << "\npid " << ::getpid() << '\n';
  }
  std::error_code ec;
  fs::create_hard_link(tmp, claim_path(shard), ec);
  std::error_code cleanup;
  fs::remove(tmp, cleanup);
  return !ec;
}

bool ShardBoard::try_steal_stale(const CompiledShard& shard,
                                 double stale_seconds,
                                 const std::string& worker_id) {
  const fs::path claim = claim_path(shard);
  std::error_code ec;
  const fs::file_time_type heartbeat = fs::last_write_time(claim, ec);
  if (ec) return false;  // claim vanished -- owner finished or released
  const auto age = fs::file_time_type::clock::now() - heartbeat;
  if (std::chrono::duration<double>(age).count() < stale_seconds) {
    return false;
  }
  // Rename the stale claim aside: rename is atomic, so exactly one thief
  // wins the steal; the loser's rename fails and it moves on.
  static std::atomic<std::uint64_t> counter{0};
  const fs::path aside =
      claim.string() + ".stale." + worker_id + "." +
      std::to_string(counter.fetch_add(1));
  std::error_code rename_ec;
  fs::rename(claim, aside, rename_ec);
  if (rename_ec) return false;
  std::error_code cleanup;
  fs::remove(aside, cleanup);
  return true;
}

void ShardBoard::heartbeat(const CompiledShard& shard) const {
  std::error_code ec;
  fs::last_write_time(claim_path(shard), fs::file_time_type::clock::now(),
                      ec);
}

void ShardBoard::publish(const CompiledShard& shard,
                         const std::string& serialized,
                         const std::string& worker_id) {
  const fs::path target = fragment_path(shard);
  const fs::path tmp = target.string() + ".tmp." + worker_id;
  {
    std::ofstream out(tmp, std::ios::binary);
    DLSCHED_EXPECT(out.good(), "cannot write shard fragment under '" +
                                   directory_ + "'");
    out << serialized;
    // A truncated fragment renamed into place would read as "done" to
    // every worker while being unjoinable -- fail loudly instead.
    out.flush();
    DLSCHED_EXPECT(out.good(), "short write publishing shard fragment '" +
                                   target.string() + "'");
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  DLSCHED_EXPECT(!ec, "cannot publish shard fragment '" + target.string() +
                          "'");
  release(shard);
}

void ShardBoard::release(const CompiledShard& shard) const {
  std::error_code ec;
  fs::remove(claim_path(shard), ec);
}

std::optional<ShardResult> ShardBoard::load(
    const CompiledShard& shard) const {
  std::ifstream in(fragment_path(shard), std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  return parse_shard_result(text.str());
}

void ShardBoard::publish_trace(const CompiledShard& shard,
                               const std::string& encoded,
                               const std::string& worker_id) const {
  const fs::path target = fragment_path(shard) + ".trace";
  const fs::path tmp = target.string() + ".tmp." + worker_id;
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out.good()) return;
    out << encoded;
    out.flush();
    if (!out.good()) return;
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
}

std::optional<std::string> ShardBoard::load_trace(
    const CompiledShard& shard) const {
  std::ifstream in(fragment_path(shard) + ".trace", std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::string board_directory(const std::string& cache_dir,
                            const ExperimentSpec& spec,
                            const std::vector<CompiledShard>& shards) {
  DLSCHED_EXPECT(!cache_dir.empty(),
                 "distributed execution needs a cache directory (the shard "
                 "board lives inside it)");
  return (fs::path(cache_dir) /
          ("board-" + spec.name + "-" + plan_fingerprint(shards)))
      .string();
}

// -------------------------------------------------------------- the worker --

WorkerSummary run_worker(const ExperimentSpec& spec,
                         const std::vector<CompiledShard>& shards,
                         ShardBoard& board, ResultCache& cache,
                         const SchedulerOptions& options) {
  const std::string worker_id = options.worker_id.empty()
                                    ? "pid" + std::to_string(::getpid())
                                    : options.worker_id;
  WorkerSummary summary;
  while (true) {
    bool all_done = true;
    bool progressed = false;
    for (const CompiledShard& shard : shards) {
      if (board.is_done(shard)) continue;
      all_done = false;
      obs::ObsSpan claim_span("lease", "claim");
      if (claim_span.active()) claim_span.rename("claim:" + shard.id);
      bool claimed = board.try_claim(shard, worker_id);
      if (!claimed &&
          board.try_steal_stale(shard, options.stale_seconds, worker_id)) {
        ++summary.stolen;
        obs::ObsSpan steal_span("lease", "steal");
        if (steal_span.active()) steal_span.rename("steal:" + shard.id);
        claimed = board.try_claim(shard, worker_id);
      }
      claim_span.finish();
      if (!claimed) continue;
      // The claim may have been won just as the previous owner published:
      // re-check before doing the work twice.
      if (board.is_done(shard)) {
        board.release(shard);
        continue;
      }
      // Heartbeat from a side thread, not only from the per-job progress
      // hook: one solve can legitimately outlast stale_seconds, and a
      // live claim must never look stealable while its owner computes.
      std::mutex mutex;
      std::condition_variable cv;
      bool finished = false;
      std::thread beat([&] {
        const auto period = std::chrono::duration<double>(
            std::max(0.05, options.stale_seconds / 4.0));
        std::unique_lock<std::mutex> lock(mutex);
        while (!cv.wait_for(lock, period, [&] { return finished; })) {
          board.heartbeat(shard);
        }
      });
      ShardResult result;
      try {
        result = execute_shard(spec, shard, cache, options.threads,
                               [&] { board.heartbeat(shard); });
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(mutex);
          finished = true;
        }
        cv.notify_one();
        beat.join();
        throw;
      }
      {
        const std::lock_guard<std::mutex> lock(mutex);
        finished = true;
      }
      cv.notify_one();
      beat.join();
      {
        obs::ObsSpan publish_span("lease", "publish");
        if (publish_span.active()) {
          publish_span.rename("publish:" + shard.id);
        }
        board.publish(shard, serialize_shard_result(result), worker_id);
      }
      // Ship everything this worker recorded since its previous publish
      // as the shard's trace sidecar; the joining process merges them.
      if (obs::Tracer::instance().enabled()) {
        board.publish_trace(
            shard, obs::encode_trace(obs::Tracer::instance().drain()),
            worker_id);
      }
      ++summary.executed;
      summary.jobs += result.jobs;
      summary.solved += result.solved;
      summary.cache_hits += result.cache_hits;
      progressed = true;
    }
    if (all_done) break;
    if (!progressed) {
      // Everything unfinished is claimed by someone else: wait for their
      // fragments (or for their claims to go stale).
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options.poll_seconds));
    }
  }
  return summary;
}

}  // namespace dlsched::experiments
