// Declarative experiment specifications.
//
// The paper's Section 5 is a family of sweeps over (platform family, worker
// count p, return ratio z, solver set); an `ExperimentSpec` names those
// axes once and the engine (experiments/engine.hpp) compiles them into a
// job grid, so a figure is data, not a bench binary.  Specs come from the
// built-in registry (experiments/spec_registry.hpp, one per paper figure
// and ablation) or from a TOML file / CLI flags via `parse_spec_toml`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "platform/generators.hpp"

namespace dlsched::experiments {

/// How the engine interprets a spec.  `Grid` is the declarative core --
/// generator x p x z x repetition x solver, cached and sharded.  The other
/// kinds are the paper's special-shaped figures, still spec-configured but
/// with bespoke run loops.
enum class SpecKind {
  Grid,           ///< generic solver-comparison sweep
  Ensemble,       ///< Figures 10-13: matrix-size ensembles vs INC_C LP
  Linearity,      ///< Figure 8: transfer-time linearity fits
  Trace,          ///< Figure 9: one execution trace + Gantt
  Participation,  ///< Figure 14: worker-participation study
  Selection,      ///< ablation: resource selection vs forced participation
  Multiround,     ///< ablation: rounds x latency makespan surface
  Micro,          ///< substrate microbenchmarks (LP, DES, gemm)
  Churn,          ///< platform churn: warm vs cold re-solve + retention
};

[[nodiscard]] std::string kind_name(SpecKind kind);
/// Inverse of `kind_name`; throws with the known kinds on a miss.
[[nodiscard]] SpecKind kind_from_name(const std::string& name);

/// One experiment: named axes compiled by the engine into jobs.  Fields
/// are grouped by the kinds that read them; unused fields are ignored.
struct ExperimentSpec {
  std::string name;    ///< registry / file name, also names the outputs
  std::string title;   ///< one-line human description
  std::string figure;  ///< paper anchor ("Figure 10", "Section 7", ...)
  SpecKind kind = SpecKind::Grid;

  // ----- grid axes --------------------------------------------------------
  std::string generator = "random_star";  ///< gen::GeneratorRegistry name
  gen::GenParams generator_params;        ///< fixed generator parameters
  std::vector<std::size_t> workers;       ///< p axis (empty: generator default)
  std::vector<double> z_values;           ///< z axis (empty: generator default)
  /// Affine latency axes (empty: linear model).  Each grid point sets
  /// `AffineCosts::send_latency` / `return_latency` to the axis value;
  /// when the generator draws per-worker latency factors they are scaled
  /// by the axis value into per-worker overrides.
  std::vector<double> send_latencies;
  std::vector<double> return_latencies;
  double compute_latency = 0.0;           ///< fixed affine compute overhead
  std::size_t repetitions = 1;            ///< instances per (p, z) point
  std::uint64_t seed = 20061408;          ///< base of the seed block
  std::vector<std::string> solvers;       ///< registry names (empty: all)
  std::string baseline;                   ///< ratio denominator in the CSV
  Precision precision = Precision::Fast;
  double time_budget_seconds = 0.0;
  std::size_t max_workers_brute = 7;      ///< forwarded p!^2 guard

  // ----- ensemble (Figures 10-13) -----------------------------------------
  std::vector<std::size_t> matrix_sizes{40,  60,  80,  100, 120,
                                        140, 160, 180, 200};
  std::size_t platforms = 50;             ///< ensemble size per data point
  std::uint64_t total_tasks = 1000;       ///< M
  double comm_speed_up = 1.0;             ///< Figure 13(b) uses 10
  double comp_speed_up = 1.0;             ///< Figure 13(a) uses 10
  bool include_inc_w = true;

  // ----- participation (Figure 14) ----------------------------------------
  std::vector<double> x_values{1.0, 3.0};

  // ----- multiround ablation ----------------------------------------------
  std::vector<double> latencies{0.0, 0.002, 0.01, 0.05};
  std::size_t max_rounds = 12;

  // ----- churn surface ----------------------------------------------------
  /// Number of chained platform-churn events (join / leave / slowdown)
  /// re-solved per generated instance.
  std::size_t churn_events = 8;
};

/// Parses the TOML subset used for spec files: `key = value` pairs with
/// strings, numbers, booleans and flat arrays, `#` comments, and one
/// optional `[generator.params]` table.  Unknown keys throw, naming the
/// accepted ones.
[[nodiscard]] ExperimentSpec parse_spec_toml(const std::string& text,
                                             const std::string& source =
                                                 "<string>");

/// `parse_spec_toml` over a file's contents; the spec name defaults to the
/// file's stem when the file does not set one.
[[nodiscard]] ExperimentSpec load_spec_file(const std::string& path);

/// Renders a spec as the TOML subset `parse_spec_toml` reads, with every
/// double as a C99 hexfloat so the round-trip is bit-exact:
/// `parse_spec_toml(render_spec_toml(s))` rebuilds `s` field for field.
/// This is how the TCP coordinator ships a spec to its workers -- a
/// worker re-plans the shard grid locally and the plan fingerprints must
/// agree, which only holds when the axis doubles survive unchanged.
[[nodiscard]] std::string render_spec_toml(const ExperimentSpec& spec);

/// Structural checks (generator exists, solvers exist, axes present for
/// the kind).  Throws dlsched::Error with a spec-named message.
void validate_spec(const ExperimentSpec& spec);

/// Restricts a spec's grid axes in place from a `--filter` expression:
/// comma-separated `key=value` pairs where a value may be a |-separated
/// list.  Keys: `p`, `z`, `send_latency`, `return_latency`, `solver`
/// (each keeps only the listed axis values, in spec order) and
/// `repetitions` (caps the repetition count).  Values must name existing
/// axis points -- a typo throws instead of silently running the full
/// grid.  The filtered spec is itself a plain spec: a cold + warm re-run
/// of the same filter stays byte-identical and shares the cache with the
/// unfiltered sweep.
void apply_spec_filter(ExperimentSpec& spec, const std::string& filter);

}  // namespace dlsched::experiments
