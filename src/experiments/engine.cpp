#include "experiments/engine.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <system_error>
#include <thread>

#include "experiments/emitter.hpp"
#include "experiments/figures.hpp"
#include "experiments/scheduler.hpp"
#include "experiments/shard.hpp"
#include "experiments/special_runs.hpp"
#include "service/coordinator.hpp"
#include "service/net.hpp"
#include "service/worker.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace dlsched::experiments {

std::string RunSummary::describe() const {
  std::ostringstream out;
  out << spec << ": " << jobs << " job(s), " << cache_hits
      << " cache hit(s), " << deduped << " deduped, " << solved
      << " solved, " << failures << " failure(s)";
  if (skipped > 0) out << ", " << skipped << " inapplicable";
  out << "; " << rows << " row(s)";
  if (shards > 1) out << " across " << shards << " shard(s)";
  if (cache.stores > 0) out << ", " << cache.stores << " cached";
  if (evicted > 0) out << ", " << evicted << " evicted";
  out << "; " << format_double(wall_seconds, 3) << " s";
  return out.str();
}

std::uint64_t instance_seed(std::uint64_t base, std::size_t p, double z,
                            std::size_t rep) {
  // FNV-1a over the coordinate bytes: stable across spec axis orderings,
  // so overlapping sweeps regenerate identical platforms.
  std::uint64_t hash = 1469598103934665603ULL;
  const auto mix = [&hash](std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (8 * i)) & 0xff;
      hash *= 1099511628211ULL;
    }
  };
  mix(base);
  mix(p);
  mix(std::bit_cast<std::uint64_t>(z));
  mix(rep);
  return hash;
}

CachedRun run_solver_cached(ResultCache& cache, const std::string& solver,
                            const SolveRequest& request) {
  const std::string key = job_canonical_key(solver, request);
  const std::string hash = job_hash_from_key(key);
  if (std::optional<CachedSolve> hit = cache.lookup(hash, key)) {
    return {*hit, true};
  }
  const BatchJobView view{solver, &request};
  const std::vector<BatchOutcome> outcomes =
      solve_batch(std::span<const BatchJobView>(&view, 1), 1);
  CachedSolve solve = cached_from_outcome(outcomes.front());
  cache.store(hash, key, solve);
  return {std::move(solve), false};
}

namespace {

using std::chrono::steady_clock;

/// The solver set a spec's JSON header advertises (and the grid runs).
std::vector<std::string> resolved_solvers(const ExperimentSpec& spec) {
  switch (spec.kind) {
    case SpecKind::Grid:
      return grid_solvers(spec);
    case SpecKind::Ensemble: {
      std::vector<std::string> solvers{"inc_c"};
      if (spec.include_inc_w) solvers.emplace_back("inc_w");
      solvers.emplace_back("lifo");
      return solvers;
    }
    case SpecKind::Trace:
    case SpecKind::Participation:
    case SpecKind::Selection:
      return {"fifo_optimal"};
    case SpecKind::Multiround:
      return {"inc_c"};
    case SpecKind::Linearity:
    case SpecKind::Micro:
    case SpecKind::Churn:
      return {};
  }
  return {};
}

/// `--quick`: same shape, small axes -- CI smoke and tests.
ExperimentSpec shrink(ExperimentSpec spec) {
  const auto cap = [](auto& values, std::size_t keep) {
    if (values.size() > keep) values.resize(keep);
  };
  spec.repetitions = std::min<std::size_t>(spec.repetitions, 2);
  cap(spec.workers, 2);
  cap(spec.z_values, 2);
  cap(spec.send_latencies, 2);
  cap(spec.return_latencies, 2);
  cap(spec.matrix_sizes, 2);
  cap(spec.latencies, 2);
  spec.platforms = std::min<std::size_t>(spec.platforms, 3);
  spec.total_tasks = std::min<std::uint64_t>(spec.total_tasks, 200);
  spec.max_rounds = std::min<std::size_t>(spec.max_rounds, 6);
  spec.churn_events = std::min<std::size_t>(spec.churn_events, 3);
  return spec;
}

// ------------------------------------------------------------------- grid --
//
// The grid pipeline is sharded (experiments/shard.hpp): one shard per
// (p, z) axis point, each executed through the cached, thread-pooled
// `solve_batch` and emitted as soon as it completes.  Four execution modes
// share the planner and the assembler, so their artifacts are
// byte-identical over the same result cache:
//
//   * in-process (default): shards run sequentially, rows stream into the
//     artifact as each (p, z) slice finishes;
//   * `--workers N`: N forked worker processes race over the shard board
//     (work stealing via claim files), the parent joins the fragments;
//   * `--shard i/k`: this process executes the static slice
//     `index % k == i` and publishes fragments only (for external
//     orchestration across machines sharing the cache directory);
//   * `--join`: no solving, just the deterministic fragment merge.

/// In-process streaming execution: shards in planner order, each emitted
/// on completion.
void run_grid(const ExperimentSpec& spec, const RunOptions& options,
              ResultCache& cache, BenchJsonWriter* json, std::ostream* csv,
              RunSummary& summary, std::ostream& log) {
  const std::vector<CompiledShard> shards = plan_shards(spec);
  summary.shards = shards.size();
  ShardAssembler assembler(json, csv, summary, log);
  for (const CompiledShard& shard : shards) {
    assembler.consume(execute_shard(spec, shard, cache, options.threads));
  }
  assembler.finish();
}

/// `--shard i/k`: execute a static slice, publish fragments, no artifacts.
void run_grid_slice(const ExperimentSpec& spec, const RunOptions& options,
                    ResultCache& cache, RunSummary& summary,
                    std::ostream& log) {
  const std::vector<CompiledShard> shards = plan_shards(spec);
  ShardBoard board(board_directory(options.cache_dir, spec, shards));
  const std::string worker_id =
      "slice" + std::to_string(options.shard_index);
  for (const CompiledShard& shard : shards) {
    if (shard.index % options.shard_count != options.shard_index) continue;
    ++summary.shards;
    const ShardResult result =
        execute_shard(spec, shard, cache, options.threads);
    summary.jobs += result.jobs;
    summary.cache_hits += result.cache_hits;
    summary.deduped += result.deduped;
    summary.solved += result.solved;
    summary.failures += result.failures;
    summary.skipped += result.skipped;
    board.publish(shard, serialize_shard_result(result), worker_id);
    if (obs::Tracer::instance().enabled()) {
      board.publish_trace(
          shard, obs::encode_trace(obs::Tracer::instance().drain()),
          worker_id);
    }
  }
  log << "published " << summary.shards << " of " << shards.size()
      << " shard fragment(s) to " << board.directory()
      << "; assemble with --join once every slice has run\n";
}

/// Deterministic merge of published fragments into the artifacts.  Shared
/// by `--join` and the `--workers` parent.
void join_board(const ExperimentSpec& spec,
                const std::vector<CompiledShard>& shards, ShardBoard& board,
                ResultCache& cache, BenchJsonWriter* json, std::ostream* csv,
                RunSummary& summary, std::ostream& log,
                std::vector<obs::ProcessTrace>* traces = nullptr) {
  summary.shards = shards.size();
  std::vector<ShardResult> results;
  results.reserve(shards.size());
  std::string missing;
  for (const CompiledShard& shard : shards) {
    if (std::optional<ShardResult> result = board.load(shard)) {
      results.push_back(std::move(*result));
    } else {
      missing += ' ' + shard.id;
    }
  }
  DLSCHED_EXPECT(missing.empty(),
                 "cannot join '" + spec.name +
                     "': missing shard fragment(s):" + missing +
                     " (run the remaining --shard slices or workers first)");
  ShardAssembler assembler(json, csv, summary, log);
  for (const ShardResult& result : results) {
    assembler.consume(result);
    // Fold the producing workers' cache deltas into this process's
    // counters so the summary and the last-run marker cover the whole run.
    cache.stats.hits += result.cache.hits;
    cache.stats.misses += result.cache.misses;
    cache.stats.stores += result.cache.stores;
  }
  assembler.finish();
  if (traces != nullptr) {
    // Fold in the trace sidecars the workers published next to their
    // fragments.  A torn or absent sidecar only costs its spans.
    for (const CompiledShard& shard : shards) {
      if (const std::optional<std::string> body = board.load_trace(shard)) {
        try {
          obs::merge_process_trace(*traces, obs::decode_trace(*body));
        } catch (const std::exception&) {
          // corrupt sidecar: ignore
        }
      }
    }
  }
}

/// `--workers N`: fork N work-stealing workers over a fresh board, wait,
/// join their fragments.
void run_grid_workers(const ExperimentSpec& spec, const RunOptions& options,
                      ResultCache& cache, BenchJsonWriter* json,
                      std::ostream* csv, RunSummary& summary,
                      std::ostream& log,
                      std::vector<obs::ProcessTrace>* traces = nullptr) {
  const std::vector<CompiledShard> shards = plan_shards(spec);
  ShardBoard board(board_directory(options.cache_dir, spec, shards));
  // Fragments are run-scoped, unlike the content-addressed cache entries:
  // start every --workers run from a clean board.
  board.reset();
  log << "running " << shards.size() << " shard(s) on " << options.workers
      << " worker process(es), board " << board.directory() << "\n";
  log.flush();

  std::vector<pid_t> children;
  children.reserve(options.workers);
  for (std::size_t w = 0; w < options.workers; ++w) {
    const pid_t pid = ::fork();
    DLSCHED_EXPECT(pid >= 0, "fork() failed for worker " +
                                 std::to_string(w));
    if (pid == 0) {
      // Worker child: claim-execute-publish until the board is complete,
      // then _exit without touching the parent's buffered streams.
      int code = 0;
      try {
        ResultCache worker_cache(options.cache_dir);
        SchedulerOptions scheduler;
        scheduler.worker_id =
            "w" + std::to_string(w) + "-" + std::to_string(::getpid());
        // The fork copied the parent's span buffers and run epoch; drop
        // the inherited spans, keep the shared timeline, and let this
        // child trace under its own worker id.
        if (obs::Tracer::instance().enabled()) {
          obs::Tracer::instance().relabel_after_fork(scheduler.worker_id);
        }
        scheduler.stale_seconds = options.stale_seconds;
        scheduler.threads = options.threads;
        (void)run_worker(spec, shards, board, worker_cache, scheduler);
      } catch (...) {
        code = 1;
      }
      ::_exit(code);
    }
    children.push_back(pid);
  }
  std::size_t worker_failures = 0;
  for (const pid_t pid : children) {
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      ++worker_failures;
    }
  }
  if (worker_failures > 0) {
    log << worker_failures
        << " worker(s) exited abnormally; joining the published "
           "fragments\n";
  }
  join_board(spec, shards, board, cache, json, csv, summary, log, traces);
  // The board was this run's scratch space (reset on entry, fully
  // consumed by the join): remove it so distributed runs do not grow the
  // cache directory past what --cache-max-bytes can see.  Boards built
  // by external --shard slices are left for their eventual --join.
  std::error_code cleanup;
  std::filesystem::remove_all(board.directory(), cleanup);
}

// ---------------------------------------------------------------- cluster --

/// Forks one retirable local TCP worker against `endpoint`.  The child
/// runs the worker loop and `_exit`s without touching the parent's
/// buffered streams (the same fork-without-exec idiom as
/// `run_grid_workers`); its log goes to a sink that dies with it.
pid_t spawn_cluster_worker(const std::string& endpoint, std::size_t ordinal,
                           std::size_t threads) {
  const pid_t pid = ::fork();
  DLSCHED_EXPECT(pid >= 0, "fork() failed for cluster worker " +
                               std::to_string(ordinal));
  if (pid != 0) return pid;
  int code = 0;
  try {
    service::TcpWorkerOptions options;
    options.endpoint = endpoint;
    options.worker_id =
        "local-w" + std::to_string(ordinal) + "-" + std::to_string(::getpid());
    options.threads = threads;
    options.retirable = true;
    // Inherited tracer state: drop the parent's spans, keep its epoch so
    // this worker's spans land on the coordinator's timeline, and ship
    // them back inside FragmentPush under the worker id.
    if (obs::Tracer::instance().enabled()) {
      obs::Tracer::instance().relabel_after_fork(options.worker_id);
    }
    std::ostringstream sink;
    (void)service::run_tcp_worker(options, sink);
  } catch (...) {
    code = 1;
  }
  ::_exit(code);
}

/// `--coordinator HOST:PORT`: own the claim board over TCP.  Local
/// workers (`--workers N` / `--workers auto[:MAX]`) are forked as
/// retirable TCP workers; external ones join with
/// `dlsched_bench --worker tcp://HOST:PORT`.  The coordinator's cache is
/// the synchronization medium, so the joined artifacts stay
/// byte-identical to a single-process run over the same cache.
void run_grid_coordinator(const ExperimentSpec& spec,
                          const RunOptions& options, ResultCache& cache,
                          BenchJsonWriter* json, std::ostream* csv,
                          RunSummary& summary, std::ostream& log,
                          std::vector<obs::ProcessTrace>* traces = nullptr) {
  obs::ObsSpan plan_span("shard", "cluster-plan");
  const auto phase_plan = steady_clock::now();
  std::vector<CompiledShard> shards = plan_shards(spec);
  summary.shards = shards.size();
  const std::size_t shard_count = shards.size();

  const service::net::Endpoint listen =
      service::net::parse_endpoint(options.coordinator);
  DLSCHED_EXPECT(listen.tcp, "--coordinator wants HOST:PORT (got '" +
                                 options.coordinator + "')");
  service::CoordinatorConfig config;
  config.host = listen.host;
  config.port = listen.port;
  config.lease_ttl_seconds = options.lease_ttl_seconds;
  service::Coordinator coordinator(spec, std::move(shards), cache, config);
  const std::string endpoint = coordinator.endpoint();
  plan_span.finish();
  const auto phase_exec = steady_clock::now();

  const auto since = [](steady_clock::time_point start) {
    return std::chrono::duration<double>(steady_clock::now() - start)
        .count();
  };
  const auto stop_requested = [&options] {
    return options.stop_signal &&
           options.stop_signal->load(std::memory_order_relaxed) != 0;
  };

  log << "coordinator listening on " << endpoint << ": " << shard_count
      << " shard(s), lease TTL "
      << format_double(config.lease_ttl_seconds, 3) << " s\n";
  log.flush();

  std::vector<pid_t> children;
  std::size_t spawned = 0;
  const auto spawn = [&] {
    children.push_back(
        spawn_cluster_worker(endpoint, spawned++, options.threads));
    coordinator.note_worker_spawned();
  };

  if (options.autoscale) {
    // Queue-depth-driven autoscaling: each 50ms tick reaps exited
    // children, then sizes the local fleet to the remaining work
    // (backlog + outstanding leases, clamped to [1, max]).  Growth is one
    // spawn per tick so a short burst does not overshoot; surplus workers
    // are retired through Retire grants on their next Acquire.
    std::size_t cap = options.autoscale_max;
    if (cap == 0) {
      cap = std::max(1u, std::thread::hardware_concurrency());
    }
    log << "autoscaling local workers up to " << cap << "\n";
    std::size_t pending_retires = 0;
    while (!coordinator.finished() && !stop_requested()) {
      for (auto it = children.begin(); it != children.end();) {
        int status = 0;
        if (::waitpid(*it, &status, WNOHANG) == *it) {
          it = children.erase(it);
          if (pending_retires > 0) --pending_retires;
        } else {
          ++it;
        }
      }
      const service::CoordinatorGauges gauges = coordinator.gauges();
      const std::size_t work =
          gauges.shard_backlog + gauges.leases_outstanding;
      const std::size_t target = std::clamp<std::size_t>(work, 1, cap);
      const std::size_t live = children.size();
      if (live < target && gauges.shards_done < shard_count) {
        spawn();
        log << "autoscale t=" << format_double(since(phase_exec), 3)
            << "s: +1 worker (live " << children.size() << "/" << target
            << ", backlog " << gauges.shard_backlog << ", leased "
            << gauges.leases_outstanding << ")\n";
        log.flush();
      } else if (live > target + pending_retires) {
        const std::size_t surplus = live - target - pending_retires;
        coordinator.request_retire(surplus);
        pending_retires += surplus;
        log << "autoscale t=" << format_double(since(phase_exec), 3)
            << "s: retiring " << surplus << " worker(s) (live " << live
            << "/" << target << ", backlog " << gauges.shard_backlog
            << ")\n";
        log.flush();
      }
      (void)coordinator.wait_finished(0.05);
    }
  } else {
    for (std::size_t w = 0; w < options.cluster_workers; ++w) spawn();
    if (options.cluster_workers > 0) {
      log << "spawned " << options.cluster_workers
          << " local worker(s)\n";
    } else {
      log << "waiting for external workers (dlsched_bench --worker "
          << "tcp://" << listen.host << ":" << coordinator.port() << ")\n";
    }
    log.flush();
    while (!coordinator.finished() && !stop_requested()) {
      (void)coordinator.wait_finished(0.1);
    }
  }

  // Granting stops either way; leased shards still stream their
  // fragments in, so drained workers exit without wasting claimed work.
  coordinator.begin_drain();
  std::size_t worker_failures = 0;
  for (const pid_t pid : children) {
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      ++worker_failures;
    }
  }
  if (worker_failures > 0) {
    log << worker_failures << " cluster worker(s) exited abnormally\n";
  }

  if (!coordinator.finished()) {
    const service::CoordinatorGauges gauges = coordinator.gauges();
    coordinator.stop();
    // The streaming emitters opened the artifact files up front; a
    // drained run must not leave header-only stubs behind.  The caller's
    // still-open streams flush into the unlinked inodes, which vanish on
    // close.
    std::error_code ec;
    if (!options.out_json.empty()) {
      std::filesystem::remove(options.out_json, ec);
    }
    if (!options.out_csv.empty()) {
      std::filesystem::remove(options.out_csv, ec);
    }
    log << "dlsched_bench: coordinator drained (" << gauges.shards_done
        << "/" << shard_count << " shard(s) done); artifacts not written\n";
    log.flush();
    DLSCHED_FAIL("coordinator drained before completion (" +
                 std::to_string(gauges.shards_done) + "/" +
                 std::to_string(shard_count) + " shard(s) done)");
  }

  const double exec_seconds = since(phase_exec);
  const auto phase_join = steady_clock::now();
  const std::vector<ShardResult> results = coordinator.take_results();
  const service::CoordinatorGauges gauges = coordinator.gauges();
  if (traces != nullptr) {
    for (obs::ProcessTrace& trace : coordinator.take_worker_traces()) {
      obs::merge_process_trace(*traces, std::move(trace));
    }
  }
  coordinator.stop();
  ShardAssembler assembler(json, csv, summary, log);
  for (const ShardResult& result : results) assembler.consume(result);
  assembler.finish();
  log << "cluster phases: plan "
      << format_double(
             std::chrono::duration<double>(phase_exec - phase_plan).count(),
             3)
      << " s, execute " << format_double(exec_seconds, 3) << " s, join "
      << format_double(since(phase_join), 3) << " s\n"
      << "cluster board: " << gauges.workers_spawned << " spawned, "
      << gauges.workers_retired << " retired, "
      << gauges.lease_reassignments << " lease reassignment(s), "
      << gauges.fragments_discarded << " fragment(s) discarded, "
      << gauges.fragment_bytes << " fragment byte(s)\n";
}

// --------------------------------------------------------------- ensemble --

/// Maps an ensemble spec's generator name onto the Section 5 speed-factor
/// family it wraps.
SpeedGenerator ensemble_generator(const ExperimentSpec& spec) {
  const gen::SpeedRange range{
      gen::param_or(spec.generator_params, "lo", 1.0),
      gen::param_or(spec.generator_params, "hi", 10.0)};
  if (spec.generator == "matrix_homogeneous") {
    return [range](std::size_t p, Rng& rng) {
      return gen::homogeneous_speeds(p, rng, range);
    };
  }
  if (spec.generator == "matrix_bus_hetero_comp") {
    return [range](std::size_t p, Rng& rng) {
      return gen::bus_hetero_comp_speeds(p, rng, range);
    };
  }
  if (spec.generator == "matrix_heterogeneous") {
    return [range](std::size_t p, Rng& rng) {
      return gen::heterogeneous_speeds(p, rng, range);
    };
  }
  DLSCHED_FAIL("ensemble specs need a matrix_* generator "
               "(matrix_homogeneous, matrix_bus_hetero_comp, "
               "matrix_heterogeneous); got '" +
               spec.generator + "'");
}

void run_ensemble_kind(const ExperimentSpec& spec, const RunOptions& options,
                       BenchJsonWriter* json, std::ostream* csv,
                       RunSummary& summary, std::ostream& log) {
  FigureConfig config;
  config.total_tasks = spec.total_tasks;
  config.workers = spec.workers.empty() ? 11 : spec.workers.front();
  config.platforms = spec.platforms;
  config.seed = spec.seed;
  config.comm_speed_up = spec.comm_speed_up;
  config.comp_speed_up = spec.comp_speed_up;
  config.threads = options.threads;
  const SpeedGenerator generator = ensemble_generator(spec);

  std::vector<std::string> header{"matrix_size", "inc_c_lp_seconds",
                                  "inc_c_real_over_lp"};
  if (spec.include_inc_w) {
    header.emplace_back("inc_w_lp_over_lp");
    header.emplace_back("inc_w_real_over_lp");
  }
  header.emplace_back("lifo_lp_over_lp");
  header.emplace_back("lifo_real_over_lp");
  std::optional<CsvWriter> csv_writer;
  if (csv) csv_writer.emplace(*csv, header);
  Table table(header);
  table.set_precision(4);

  const std::size_t series = spec.include_inc_w ? 3 : 2;
  for (const std::size_t n : spec.matrix_sizes) {
    const EnsembleRow row =
        run_ensemble(config, generator, n, spec.include_inc_w);
    summary.jobs += spec.platforms * series;
    summary.solved += spec.platforms * series;
    table.begin_row().cell(row.matrix_size).cell(row.inc_c_lp).cell(
        row.inc_c_real_ratio);
    if (csv_writer) {
      csv_writer->cell(row.matrix_size)
          .cell(row.inc_c_lp)
          .cell(row.inc_c_real_ratio);
    }
    if (spec.include_inc_w) {
      table.cell(row.inc_w_lp_ratio).cell(row.inc_w_real_ratio);
      if (csv_writer) {
        csv_writer->cell(row.inc_w_lp_ratio).cell(row.inc_w_real_ratio);
      }
    }
    table.cell(row.lifo_lp_ratio).cell(row.lifo_real_ratio);
    if (csv_writer) {
      csv_writer->cell(row.lifo_lp_ratio).cell(row.lifo_real_ratio);
      csv_writer->end_row();
    }
    if (json) {
      json->row(JsonObject()
                    .add("solver", "inc_c")
                    .add("matrix_size", row.matrix_size)
                    .add("lp_seconds", row.inc_c_lp)
                    .add("lp_over_inc_c", 1.0)
                    .add("real_over_inc_c", row.inc_c_real_ratio));
      ++summary.rows;
      if (spec.include_inc_w) {
        json->row(JsonObject()
                      .add("solver", "inc_w")
                      .add("matrix_size", row.matrix_size)
                      .add("lp_seconds",
                           row.inc_w_lp_ratio * row.inc_c_lp)
                      .add("lp_over_inc_c", row.inc_w_lp_ratio)
                      .add("real_over_inc_c", row.inc_w_real_ratio));
        ++summary.rows;
      }
      json->row(JsonObject()
                    .add("solver", "lifo")
                    .add("matrix_size", row.matrix_size)
                    .add("lp_seconds", row.lifo_lp_ratio * row.inc_c_lp)
                    .add("lp_over_inc_c", row.lifo_lp_ratio)
                    .add("real_over_inc_c", row.lifo_real_ratio));
      ++summary.rows;
    }
  }
  table.print_aligned(log);
  log << "(" << config.platforms << " random platforms per point, M = "
      << config.total_tasks << " tasks, " << config.workers
      << " workers; ratios normalized by the INC_C LP prediction)\n";
}

/// Renders the per-phase attribution as a JSON array (the `phases`
/// trailer of a traced BENCH artifact).
std::string render_phases_json(
    const std::vector<obs::PhaseAttribution>& phases) {
  std::string out = "[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i != 0) out += ',';
    out += JsonObject()
               .add("phase", phases[i].category)
               .add("spans", static_cast<std::size_t>(phases[i].spans))
               .add("seconds", phases[i].seconds)
               .render();
  }
  out += ']';
  return out;
}

/// Traced runs only: closes the root span, merges every process's spans
/// into one timeline, fills `summary.phases`, appends the phase table to
/// the BENCH artifact and writes the Chrome trace_event JSON.
void finish_observability(const ExperimentSpec& spec,
                          const RunOptions& options,
                          std::vector<obs::ProcessTrace>& worker_traces,
                          RunSummary& summary, BenchJsonWriter* json,
                          std::ostream& log) {
  obs::Tracer& tracer = obs::Tracer::instance();
  if (!tracer.enabled() || options.trace_path.empty()) return;
  // The root span runs from the epoch (stamped before spec parsing, so
  // t=0 on the timeline) to now: parse + plan + execute + assemble.
  tracer.record("run", "run:" + spec.name, 0, tracer.now_us());
  std::vector<obs::ProcessTrace> merged;
  obs::merge_process_trace(merged, tracer.drain());
  for (obs::ProcessTrace& trace : worker_traces) {
    obs::merge_process_trace(merged, std::move(trace));
  }
  worker_traces.clear();
  summary.phases = obs::attribute_phases(merged);
  if (json) json->add_trailer_raw("phases", render_phases_json(summary.phases));

  std::ofstream out(options.trace_path, std::ios::binary);
  DLSCHED_EXPECT(out.good(), "cannot write '" + options.trace_path + "'");
  out << obs::render_trace_json(merged);
  out.flush();
  DLSCHED_EXPECT(out.good(),
                 "short write to '" + options.trace_path + "'");

  Table table({"phase", "spans", "seconds"});
  table.set_precision(6);
  for (const obs::PhaseAttribution& phase : summary.phases) {
    table.begin_row()
        .cell(phase.category)
        .cell(std::to_string(phase.spans))
        .cell(format_double(phase.seconds, 6));
  }
  table.print_aligned(log);
  log << "trace written to " << options.trace_path << " ("
      << merged.size() << " process(es))\n";
}

}  // namespace

// ---------------------------------------------------------------- run_spec --

RunSummary run_spec(const ExperimentSpec& requested,
                    const RunOptions& options) {
  const ExperimentSpec spec =
      options.quick ? shrink(requested) : requested;
  validate_spec(spec);
  std::ostream& log = options.log ? *options.log : std::cout;
  RunSummary summary;
  summary.spec = spec.name;
  // The run clock starts at the driver's epoch when one was stamped
  // (before spec parsing), so `wall_seconds` matches what /usr/bin/time
  // reports instead of excluding parse + plan.
  const auto start = options.run_epoch.value_or(steady_clock::now());

  const bool slice = options.shard_count > 0;
  const bool multi = options.workers > 1;
  const bool cluster = !options.coordinator.empty();
  if (slice || multi || options.join_only || cluster) {
    DLSCHED_EXPECT(spec.kind == SpecKind::Grid,
                   "spec '" + spec.name + "' is kind '" +
                       kind_name(spec.kind) +
                       "': --workers/--shard/--join apply to grid specs "
                       "only");
    DLSCHED_EXPECT(!options.cache_dir.empty(),
                   "distributed execution needs a cache directory (the "
                   "shard board and the shared results live there); drop "
                   "--no-cache");
    DLSCHED_EXPECT(!(slice && (multi || options.join_only)),
                   "--shard is a worker role; it excludes --workers and "
                   "--join");
    DLSCHED_EXPECT(!(multi && options.join_only),
                   "--join assembles already-published fragments; it "
                   "excludes --workers (which starts a fresh board)");
    DLSCHED_EXPECT(!slice || options.shard_index < options.shard_count,
                   "--shard i/k needs i < k");
    DLSCHED_EXPECT(options.workers <= 256,
                   "--workers " + std::to_string(options.workers) +
                       " is past the 256-process sanity cap");
    DLSCHED_EXPECT(!(cluster && (slice || multi || options.join_only)),
                   "--coordinator owns the whole run over TCP; it excludes "
                   "the filesystem board's --workers N, --shard and --join");
    DLSCHED_EXPECT(options.cluster_workers <= 256,
                   "--workers " + std::to_string(options.cluster_workers) +
                       " is past the 256-process sanity cap");
  }

  ResultCache cache;
  if (!options.cache_dir.empty()) cache = ResultCache(options.cache_dir);

  if (slice) {
    // Worker role: execute the static slice and publish fragments;
    // artifacts are written by the eventual --join.
    log << "== " << spec.name << " -- " << spec.title << " [" << spec.figure
        << "] (shard slice " << options.shard_index << "/"
        << options.shard_count << ")\n";
    run_grid_slice(spec, options, cache, summary, log);
    if (options.cache_max_bytes > 0) {
      summary.evicted = cache.evict_to(options.cache_max_bytes);
    }
    summary.cache = cache.stats;
    cache.write_last_run(spec.name);
    std::vector<obs::ProcessTrace> worker_traces;
    finish_observability(spec, options, worker_traces, summary, nullptr,
                         log);
    summary.wall_seconds =
        std::chrono::duration<double>(steady_clock::now() - start).count();
    log << summary.describe() << "\n";
    return summary;
  }

  std::ofstream json_file;
  std::optional<BenchJsonWriter> json;
  if (!options.out_json.empty()) {
    json_file.open(options.out_json, std::ios::binary);
    DLSCHED_EXPECT(json_file.good(),
                   "cannot write '" + options.out_json + "'");
    json.emplace(json_file, spec, resolved_solvers(spec));
  }
  std::ofstream csv_file;
  std::ostream* csv = nullptr;
  if (!options.out_csv.empty()) {
    csv_file.open(options.out_csv, std::ios::binary);
    DLSCHED_EXPECT(csv_file.good(), "cannot write '" + options.out_csv + "'");
    csv = &csv_file;
  }

  log << "== " << spec.name << " -- " << spec.title << " [" << spec.figure
      << "]\n";
  BenchJsonWriter* json_ptr = json ? &*json : nullptr;
  std::vector<obs::ProcessTrace> worker_traces;
  switch (spec.kind) {
    case SpecKind::Grid:
      if (cluster) {
        run_grid_coordinator(spec, options, cache, json_ptr, csv, summary,
                             log, &worker_traces);
      } else if (multi) {
        run_grid_workers(spec, options, cache, json_ptr, csv, summary, log,
                         &worker_traces);
      } else if (options.join_only) {
        const std::vector<CompiledShard> shards = plan_shards(spec);
        ShardBoard board(board_directory(options.cache_dir, spec, shards));
        join_board(spec, shards, board, cache, json_ptr, csv, summary, log,
                   &worker_traces);
      } else {
        run_grid(spec, options, cache, json_ptr, csv, summary, log);
      }
      break;
    case SpecKind::Ensemble:
      run_ensemble_kind(spec, options, json_ptr, csv, summary, log);
      break;
    case SpecKind::Linearity:
      detail::run_linearity(spec, options, json_ptr, csv, summary, log);
      break;
    case SpecKind::Trace:
      detail::run_trace(spec, options, cache, json_ptr, csv, summary, log);
      break;
    case SpecKind::Participation:
      detail::run_participation(spec, options, cache, json_ptr, csv,
                                summary, log);
      break;
    case SpecKind::Selection:
      detail::run_selection(spec, options, cache, json_ptr, csv, summary,
                            log);
      break;
    case SpecKind::Multiround:
      detail::run_multiround(spec, options, json_ptr, csv, summary, log);
      break;
    case SpecKind::Micro:
      detail::run_micro(spec, options, json_ptr, csv, summary, log);
      break;
    case SpecKind::Churn:
      detail::run_churn(spec, options, json_ptr, csv, summary, log);
      break;
  }
  finish_observability(spec, options, worker_traces, summary, json_ptr,
                       log);
  if (json) json->finish();

  if (options.cache_max_bytes > 0) {
    summary.evicted = cache.evict_to(options.cache_max_bytes);
  }
  summary.cache = cache.stats;
  cache.write_last_run(spec.name);  // what --cache-stats reports
  summary.wall_seconds =
      std::chrono::duration<double>(steady_clock::now() - start).count();
  log << summary.describe() << "\n";
  if (!options.out_json.empty()) {
    log << "JSON written to " << options.out_json << "\n";
  }
  if (!options.out_csv.empty()) {
    log << "CSV written to " << options.out_csv << "\n";
  }
  return summary;
}

}  // namespace dlsched::experiments
