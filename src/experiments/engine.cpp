#include "experiments/engine.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>

#include "experiments/emitter.hpp"
#include "experiments/figures.hpp"
#include "experiments/special_runs.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dlsched::experiments {

std::string RunSummary::describe() const {
  std::ostringstream out;
  out << spec << ": " << jobs << " job(s), " << cache_hits
      << " cache hit(s), " << deduped << " deduped, " << solved
      << " solved, " << failures << " failure(s)";
  if (skipped > 0) out << ", " << skipped << " inapplicable";
  out << "; " << rows << " row(s)";
  if (cache.stores > 0) out << ", " << cache.stores << " cached";
  out << "; " << format_double(wall_seconds, 3) << " s";
  return out.str();
}

std::uint64_t instance_seed(std::uint64_t base, std::size_t p, double z,
                            std::size_t rep) {
  // FNV-1a over the coordinate bytes: stable across spec axis orderings,
  // so overlapping sweeps regenerate identical platforms.
  std::uint64_t hash = 1469598103934665603ULL;
  const auto mix = [&hash](std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (8 * i)) & 0xff;
      hash *= 1099511628211ULL;
    }
  };
  mix(base);
  mix(p);
  mix(std::bit_cast<std::uint64_t>(z));
  mix(rep);
  return hash;
}

CachedRun run_solver_cached(ResultCache& cache, const std::string& solver,
                            const SolveRequest& request) {
  const std::string key = job_canonical_key(solver, request);
  const std::string hash = job_hash_from_key(key);
  if (std::optional<CachedSolve> hit = cache.lookup(hash, key)) {
    return {*hit, true};
  }
  const BatchJobView view{solver, &request};
  const std::vector<BatchOutcome> outcomes =
      solve_batch(std::span<const BatchJobView>(&view, 1), 1);
  CachedSolve solve = cached_from_outcome(outcomes.front());
  cache.store(hash, key, solve);
  return {std::move(solve), false};
}

namespace {

using std::chrono::steady_clock;

/// The solver set a spec's JSON header advertises (and the grid runs).
std::vector<std::string> resolved_solvers(const ExperimentSpec& spec) {
  switch (spec.kind) {
    case SpecKind::Grid:
      return spec.solvers.empty() ? SolverRegistry::instance().names()
                                  : spec.solvers;
    case SpecKind::Ensemble: {
      std::vector<std::string> solvers{"inc_c"};
      if (spec.include_inc_w) solvers.emplace_back("inc_w");
      solvers.emplace_back("lifo");
      return solvers;
    }
    case SpecKind::Trace:
    case SpecKind::Participation:
    case SpecKind::Selection:
      return {"fifo_optimal"};
    case SpecKind::Multiround:
      return {"inc_c"};
    case SpecKind::Linearity:
    case SpecKind::Micro:
      return {};
  }
  return {};
}

/// `--quick`: same shape, small axes -- CI smoke and tests.
ExperimentSpec shrink(ExperimentSpec spec) {
  const auto cap = [](auto& values, std::size_t keep) {
    if (values.size() > keep) values.resize(keep);
  };
  spec.repetitions = std::min<std::size_t>(spec.repetitions, 2);
  cap(spec.workers, 2);
  cap(spec.z_values, 2);
  cap(spec.matrix_sizes, 2);
  cap(spec.latencies, 2);
  spec.platforms = std::min<std::size_t>(spec.platforms, 3);
  spec.total_tasks = std::min<std::uint64_t>(spec.total_tasks, 200);
  spec.max_rounds = std::min<std::size_t>(spec.max_rounds, 6);
  return spec;
}

// ------------------------------------------------------------------- grid --

/// One (instance, solver) cell of the compiled grid.
struct GridSlot {
  std::size_t instance = 0;           ///< index into the request deque
  std::optional<double> z;            ///< z-axis value, when the axis exists
  std::size_t rep = 0;
  std::uint64_t seed = 0;
  std::string solver;
  CachedSolve solve;
  bool from_cache = false;
};

void run_grid(const ExperimentSpec& spec, const RunOptions& options,
              ResultCache& cache, BenchJsonWriter* json, std::ostream* csv,
              RunSummary& summary, std::ostream& log) {
  const std::vector<std::string> solvers = resolved_solvers(spec);
  const SolverRegistry& registry = SolverRegistry::instance();
  std::map<std::string, std::unique_ptr<Solver>> solver_objects;
  for (const std::string& name : solvers) {
    solver_objects.emplace(name, registry.create(name));
  }

  // Axis values; an absent axis contributes one point and no parameter.
  std::vector<std::optional<std::size_t>> p_axis{std::nullopt};
  if (!spec.workers.empty()) {
    p_axis.assign(spec.workers.begin(), spec.workers.end());
  }
  std::vector<std::optional<double>> z_axis{std::nullopt};
  if (!spec.z_values.empty()) {
    z_axis.assign(spec.z_values.begin(), spec.z_values.end());
  }

  // ----- compile the grid: platforms once, solver jobs as views ----------
  std::deque<SolveRequest> requests;  // deque: stable addresses for views
  std::vector<GridSlot> slots;
  for (const auto& p : p_axis) {
    for (const auto& z : z_axis) {
      for (std::size_t rep = 0; rep < spec.repetitions; ++rep) {
        const std::uint64_t seed =
            instance_seed(spec.seed, p.value_or(0), z.value_or(-1.0), rep);
        gen::GenParams params = spec.generator_params;
        if (p) params["p"] = static_cast<double>(*p);
        if (z) params["z"] = *z;
        Rng rng(seed);
        SolveRequest request;
        request.platform =
            gen::GeneratorRegistry::instance().make(spec.generator, params,
                                                    rng);
        request.precision = spec.precision;
        request.time_budget_seconds = spec.time_budget_seconds;
        request.max_workers_brute = spec.max_workers_brute;
        request.seed = seed;
        requests.push_back(std::move(request));
        const std::size_t instance = requests.size() - 1;
        for (const std::string& solver : solvers) {
          if (!solver_objects.at(solver)->applicable(requests[instance])) {
            ++summary.skipped;
            continue;
          }
          GridSlot slot;
          slot.instance = instance;
          slot.z = z;
          slot.rep = rep;
          slot.seed = seed;
          slot.solver = solver;
          slots.push_back(std::move(slot));
        }
      }
    }
  }
  summary.jobs = slots.size();

  // ----- cache pass, then one sharded batch over the misses --------------
  std::vector<BatchJobView> views;
  std::vector<std::size_t> view_slot;
  std::vector<std::pair<std::string, std::string>> view_keys;  // hash, key
  for (std::size_t i = 0; i < slots.size(); ++i) {
    GridSlot& slot = slots[i];
    const SolveRequest& request = requests[slot.instance];
    const std::string key = job_canonical_key(slot.solver, request);
    const std::string hash = job_hash_from_key(key);
    if (std::optional<CachedSolve> hit = cache.lookup(hash, key)) {
      slot.solve = std::move(*hit);
      slot.from_cache = true;
      ++summary.cache_hits;
      continue;
    }
    views.push_back({slot.solver, &request});
    view_slot.push_back(i);
    view_keys.emplace_back(hash, key);
  }
  const std::vector<BatchOutcome> outcomes =
      solve_batch(views, options.threads);
  for (std::size_t v = 0; v < outcomes.size(); ++v) {
    GridSlot& slot = slots[view_slot[v]];
    slot.solve = cached_from_outcome(outcomes[v]);
    if (outcomes[v].deduped) {
      ++summary.deduped;
    } else {
      ++summary.solved;
      cache.store(view_keys[v].first, view_keys[v].second, slot.solve);
    }
  }

  // ----- emit rows + aggregate the figure data ----------------------------
  std::vector<double> baseline_throughput(requests.size(), 0.0);
  for (const GridSlot& slot : slots) {
    if (slot.solver == spec.baseline && slot.solve.solved) {
      baseline_throughput[slot.instance] = slot.solve.throughput;
    }
  }

  struct Group {
    std::size_t p;
    std::optional<double> z;
    std::string solver;
    Accumulator throughput, ratio, wall;
  };
  std::vector<Group> groups;
  std::map<std::string, std::size_t> group_index;

  for (const GridSlot& slot : slots) {
    const CachedSolve& s = slot.solve;
    if (!s.solved || !s.validated) ++summary.failures;
    const std::size_t p = requests[slot.instance].platform.size();
    if (json) {
      JsonObject row;
      row.add("solver", slot.solver).add("p", p);
      if (slot.z) row.add("z", *slot.z);
      row.add("rep", slot.rep).add("seed", slot.seed);
      row.add("solved", s.solved);
      if (!s.solved) {
        row.add("error", s.error);
      } else {
        row.add("throughput", s.throughput)
            .add("workers_used", s.workers_used)
            .add("validated", s.validated)
            .add("provably_optimal", s.provably_optimal)
            .add("exact", s.exact)
            .add("scenarios_tried", s.scenarios_tried)
            .add("lp_evaluations", s.lp_evaluations);
        if (s.has_alt) row.add("alt_throughput", s.alt_throughput);
        row.add("wall_seconds", s.wall_seconds)
            .add("validate_seconds", s.validate_seconds);
      }
      json->row(row);
      ++summary.rows;
    }
    if (!s.solved) continue;
    std::ostringstream group_key;
    group_key << p << '|' << (slot.z ? json_double(*slot.z) : "-") << '|'
              << slot.solver;
    const auto [it, inserted] =
        group_index.try_emplace(group_key.str(), groups.size());
    if (inserted) {
      groups.push_back({p, slot.z, slot.solver, {}, {}, {}});
    }
    Group& group = groups[it->second];
    group.throughput.add(s.throughput);
    group.wall.add(s.wall_seconds);
    const double base = baseline_throughput[slot.instance];
    if (!spec.baseline.empty() && base > 0.0) {
      group.ratio.add(s.throughput / base);
    }
  }

  const std::vector<std::string> header{
      "p",           "z",         "solver",          "instances",
      "mean_throughput", "mean_wall_seconds", "mean_ratio_vs_baseline",
      "min_ratio",   "max_ratio"};
  std::optional<CsvWriter> csv_writer;
  if (csv) csv_writer.emplace(*csv, header);
  Table table(header);
  table.set_precision(5);
  for (const Group& group : groups) {
    const std::string z_cell =
        group.z ? format_double(*group.z, 4) : std::string("-");
    const bool has_ratio = group.ratio.count() > 0;
    table.begin_row()
        .cell(group.p)
        .cell(z_cell)
        .cell(group.solver)
        .cell(group.throughput.count())
        .cell(group.throughput.mean())
        .cell(group.wall.mean())
        .cell(has_ratio ? format_double(group.ratio.mean(), 5)
                        : std::string("-"))
        .cell(has_ratio ? format_double(group.ratio.min(), 5)
                        : std::string("-"))
        .cell(has_ratio ? format_double(group.ratio.max(), 5)
                        : std::string("-"));
    if (csv_writer) {
      csv_writer->cell(std::to_string(group.p))
          .cell(group.z ? json_double(*group.z) : std::string(""))
          .cell(group.solver)
          .cell(group.throughput.count())
          .cell(group.throughput.mean())
          .cell(group.wall.mean());
      if (has_ratio) {
        csv_writer->cell(group.ratio.mean())
            .cell(group.ratio.min())
            .cell(group.ratio.max());
      } else {
        csv_writer->cell(std::string(""))
            .cell(std::string(""))
            .cell(std::string(""));
      }
      csv_writer->end_row();
    }
  }
  table.print_aligned(log);
}

// --------------------------------------------------------------- ensemble --

/// Maps an ensemble spec's generator name onto the Section 5 speed-factor
/// family it wraps.
SpeedGenerator ensemble_generator(const ExperimentSpec& spec) {
  const gen::SpeedRange range{
      gen::param_or(spec.generator_params, "lo", 1.0),
      gen::param_or(spec.generator_params, "hi", 10.0)};
  if (spec.generator == "matrix_homogeneous") {
    return [range](std::size_t p, Rng& rng) {
      return gen::homogeneous_speeds(p, rng, range);
    };
  }
  if (spec.generator == "matrix_bus_hetero_comp") {
    return [range](std::size_t p, Rng& rng) {
      return gen::bus_hetero_comp_speeds(p, rng, range);
    };
  }
  if (spec.generator == "matrix_heterogeneous") {
    return [range](std::size_t p, Rng& rng) {
      return gen::heterogeneous_speeds(p, rng, range);
    };
  }
  DLSCHED_FAIL("ensemble specs need a matrix_* generator "
               "(matrix_homogeneous, matrix_bus_hetero_comp, "
               "matrix_heterogeneous); got '" +
               spec.generator + "'");
}

void run_ensemble_kind(const ExperimentSpec& spec, const RunOptions& options,
                       BenchJsonWriter* json, std::ostream* csv,
                       RunSummary& summary, std::ostream& log) {
  FigureConfig config;
  config.total_tasks = spec.total_tasks;
  config.workers = spec.workers.empty() ? 11 : spec.workers.front();
  config.platforms = spec.platforms;
  config.seed = spec.seed;
  config.comm_speed_up = spec.comm_speed_up;
  config.comp_speed_up = spec.comp_speed_up;
  config.threads = options.threads;
  const SpeedGenerator generator = ensemble_generator(spec);

  std::vector<std::string> header{"matrix_size", "inc_c_lp_seconds",
                                  "inc_c_real_over_lp"};
  if (spec.include_inc_w) {
    header.emplace_back("inc_w_lp_over_lp");
    header.emplace_back("inc_w_real_over_lp");
  }
  header.emplace_back("lifo_lp_over_lp");
  header.emplace_back("lifo_real_over_lp");
  std::optional<CsvWriter> csv_writer;
  if (csv) csv_writer.emplace(*csv, header);
  Table table(header);
  table.set_precision(4);

  const std::size_t series = spec.include_inc_w ? 3 : 2;
  for (const std::size_t n : spec.matrix_sizes) {
    const EnsembleRow row =
        run_ensemble(config, generator, n, spec.include_inc_w);
    summary.jobs += spec.platforms * series;
    summary.solved += spec.platforms * series;
    table.begin_row().cell(row.matrix_size).cell(row.inc_c_lp).cell(
        row.inc_c_real_ratio);
    if (csv_writer) {
      csv_writer->cell(row.matrix_size)
          .cell(row.inc_c_lp)
          .cell(row.inc_c_real_ratio);
    }
    if (spec.include_inc_w) {
      table.cell(row.inc_w_lp_ratio).cell(row.inc_w_real_ratio);
      if (csv_writer) {
        csv_writer->cell(row.inc_w_lp_ratio).cell(row.inc_w_real_ratio);
      }
    }
    table.cell(row.lifo_lp_ratio).cell(row.lifo_real_ratio);
    if (csv_writer) {
      csv_writer->cell(row.lifo_lp_ratio).cell(row.lifo_real_ratio);
      csv_writer->end_row();
    }
    if (json) {
      json->row(JsonObject()
                    .add("solver", "inc_c")
                    .add("matrix_size", row.matrix_size)
                    .add("lp_seconds", row.inc_c_lp)
                    .add("lp_over_inc_c", 1.0)
                    .add("real_over_inc_c", row.inc_c_real_ratio));
      ++summary.rows;
      if (spec.include_inc_w) {
        json->row(JsonObject()
                      .add("solver", "inc_w")
                      .add("matrix_size", row.matrix_size)
                      .add("lp_seconds",
                           row.inc_w_lp_ratio * row.inc_c_lp)
                      .add("lp_over_inc_c", row.inc_w_lp_ratio)
                      .add("real_over_inc_c", row.inc_w_real_ratio));
        ++summary.rows;
      }
      json->row(JsonObject()
                    .add("solver", "lifo")
                    .add("matrix_size", row.matrix_size)
                    .add("lp_seconds", row.lifo_lp_ratio * row.inc_c_lp)
                    .add("lp_over_inc_c", row.lifo_lp_ratio)
                    .add("real_over_inc_c", row.lifo_real_ratio));
      ++summary.rows;
    }
  }
  table.print_aligned(log);
  log << "(" << config.platforms << " random platforms per point, M = "
      << config.total_tasks << " tasks, " << config.workers
      << " workers; ratios normalized by the INC_C LP prediction)\n";
}

}  // namespace

// ---------------------------------------------------------------- run_spec --

RunSummary run_spec(const ExperimentSpec& requested,
                    const RunOptions& options) {
  const ExperimentSpec spec =
      options.quick ? shrink(requested) : requested;
  validate_spec(spec);
  std::ostream& log = options.log ? *options.log : std::cout;
  RunSummary summary;
  summary.spec = spec.name;
  const auto start = steady_clock::now();

  ResultCache cache;
  if (!options.cache_dir.empty()) cache = ResultCache(options.cache_dir);

  std::ofstream json_file;
  std::optional<BenchJsonWriter> json;
  if (!options.out_json.empty()) {
    json_file.open(options.out_json, std::ios::binary);
    DLSCHED_EXPECT(json_file.good(),
                   "cannot write '" + options.out_json + "'");
    json.emplace(json_file, spec, resolved_solvers(spec));
  }
  std::ofstream csv_file;
  std::ostream* csv = nullptr;
  if (!options.out_csv.empty()) {
    csv_file.open(options.out_csv, std::ios::binary);
    DLSCHED_EXPECT(csv_file.good(), "cannot write '" + options.out_csv + "'");
    csv = &csv_file;
  }

  log << "== " << spec.name << " -- " << spec.title << " [" << spec.figure
      << "]\n";
  BenchJsonWriter* json_ptr = json ? &*json : nullptr;
  switch (spec.kind) {
    case SpecKind::Grid:
      run_grid(spec, options, cache, json_ptr, csv, summary, log);
      break;
    case SpecKind::Ensemble:
      run_ensemble_kind(spec, options, json_ptr, csv, summary, log);
      break;
    case SpecKind::Linearity:
      detail::run_linearity(spec, options, json_ptr, csv, summary, log);
      break;
    case SpecKind::Trace:
      detail::run_trace(spec, options, cache, json_ptr, csv, summary, log);
      break;
    case SpecKind::Participation:
      detail::run_participation(spec, options, cache, json_ptr, csv,
                                summary, log);
      break;
    case SpecKind::Selection:
      detail::run_selection(spec, options, cache, json_ptr, csv, summary,
                            log);
      break;
    case SpecKind::Multiround:
      detail::run_multiround(spec, options, json_ptr, csv, summary, log);
      break;
    case SpecKind::Micro:
      detail::run_micro(spec, options, json_ptr, csv, summary, log);
      break;
  }
  if (json) json->finish();

  summary.cache = cache.stats;
  cache.write_last_run(spec.name);  // what --cache-stats reports
  summary.wall_seconds =
      std::chrono::duration<double>(steady_clock::now() - start).count();
  log << summary.describe() << "\n";
  if (!options.out_json.empty()) {
    log << "JSON written to " << options.out_json << "\n";
  }
  if (!options.out_csv.empty()) {
    log << "CSV written to " << options.out_csv << "\n";
  }
  return summary;
}

}  // namespace dlsched::experiments
