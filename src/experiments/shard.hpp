// Shard planning for the experiment grid.
//
// A Grid spec's sweep is embarrassingly parallel across its (p, z) axis
// points; this module slices the compiled grid into one shard per
// (p, z, repetition) point so rows stream out as slices complete instead
// of after one monolithic batch, and so independent worker processes can
// claim slices through the scheduler (experiments/scheduler.hpp) with
// weights fine enough to steal.  Shard ids are stable
// content-derived hashes built from the `job_hash_hex` identities of the
// jobs inside a shard: every process that plans the same spec computes the
// same ids with no coordination, and any change to the spec's axes, seed,
// generator or solver set changes them.
//
// `ShardResult` is everything one executed shard contributes to the final
// artifacts -- rendered JSON rows plus the aggregation inputs for the
// figure CSV -- and serializes to a fragment file, so a deterministic join
// (`ShardAssembler` fed in planner order) reassembles out-of-order shard
// outputs into a `BENCH_<spec>.json` byte-identical to a single-process
// run over the same result cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "experiments/cache.hpp"
#include "experiments/emitter.hpp"
#include "experiments/spec.hpp"
#include "util/stats.hpp"

namespace dlsched::experiments {

struct RunSummary;

/// One solver cell of a compiled shard (all cells share the shard's
/// generated problem instance).
struct GridSlot {
  std::optional<double> z;   ///< z-axis value, when the axis exists
  std::size_t rep = 0;
  std::uint64_t seed = 0;
  std::string solver;
};

/// One latency point of a shard: the (send, return) latency coordinates
/// applied to the shard's generated instance, plus every applicable solver
/// job on it.  All cells of one shard share the generated platform, which
/// is what makes the warm-start chain across them legitimate:
/// `execute_shard` walks the cells in planner order and seeds each
/// solver's request with the same solver's previous-cell alpha
/// (`SolveRequest::warm_alpha`, advisory and excluded from cache keys).
/// Specs without latency axes compile to exactly one cell per shard.
struct GridCell {
  std::optional<double> send_latency;    ///< affine send-latency coordinate
  std::optional<double> return_latency;  ///< affine return-latency coordinate
  SolveRequest request;           ///< the cell's problem instance
  std::vector<GridSlot> slots;
  std::size_t skipped = 0;        ///< inapplicable solver cells
};

/// One slice of the compiled grid -- a (p, z) point, split per repetition
/// so shard weights stay stealable when one platform size dominates the
/// spec: the generated problem instance plus its latency cells.  The
/// latency axes fold *inside* the shard (one platform spans the whole
/// latency surface) so adjacent cells differ only in the latency
/// constants -- structurally adjacent LPs, which the warm-start chain
/// exploits.  The chain is deliberately intra-shard only: shards are
/// stolen and executed out of order across processes, so any cross-shard
/// seeding would make artifacts depend on the steal schedule.
struct CompiledShard {
  std::size_t index = 0;          ///< planner order == emission order
  std::string id;                 ///< stable 32-hex shard id
  std::optional<std::size_t> p;   ///< p coordinate (absent axis: nullopt)
  std::optional<double> z;        ///< z coordinate (absent axis: nullopt)
  std::size_t rep = 0;            ///< repetition coordinate
  std::vector<GridCell> cells;    ///< latency points, planner order
};

/// The solver set a Grid spec runs (`spec.solvers`, or every registered
/// solver when empty).
[[nodiscard]] std::vector<std::string> grid_solvers(const ExperimentSpec& spec);

/// Deterministically compiles a Grid spec into (p, z, rep)-keyed shards
/// (p outer, z inner, rep innermost), each holding its latency cells in
/// (send, return) nested order, so concatenating shard outputs in planner
/// order reproduces a single-process run's artifacts byte for byte.
/// Throws for non-Grid kinds.
[[nodiscard]] std::vector<CompiledShard> plan_shards(
    const ExperimentSpec& spec);

/// Fingerprint of a whole plan (hash over the shard ids): names the shard
/// board directory so runs with different axes, seeds or `--quick` states
/// never mix fragments.
[[nodiscard]] std::string plan_fingerprint(
    const std::vector<CompiledShard>& shards);

/// One emitted row plus the aggregation inputs the figure CSV needs.
struct ShardRow {
  std::string json;          ///< rendered BENCH row object
  bool solved = false;
  bool validated = false;
  std::size_t p = 0;         ///< platform size (the table's p column)
  std::optional<double> z;
  std::optional<double> send_latency;    ///< affine axes, when present
  std::optional<double> return_latency;
  std::string solver;
  double throughput = 0.0;
  double wall_seconds = 0.0;
  bool has_ratio = false;    ///< baseline present and solved on instance
  double ratio = 0.0;        ///< throughput / baseline throughput
};

/// Everything one executed shard contributes to the joined artifacts.
struct ShardResult {
  std::string id;
  std::size_t index = 0;
  std::size_t jobs = 0;
  std::size_t cache_hits = 0;
  std::size_t deduped = 0;
  std::size_t solved = 0;
  std::size_t failures = 0;
  std::size_t skipped = 0;
  CacheStats cache;          ///< this shard's delta of the worker's cache
  std::vector<ShardRow> rows;
};

/// Executes one shard: per cell, a cache pass, a thread-pooled
/// `solve_batch` over the misses, and row rendering.  Cells run in order;
/// each solver's solved alpha is carried into its next-cell request as a
/// warm-start hint.  The hint is taken from the cached record on a hit
/// and from the fresh solution on a miss -- bit-identical either way, so
/// artifacts do not depend on the cache state.  Completed jobs are
/// checkpointed into the cache
/// as they finish (via the batch progress hook), so a crashed worker's
/// partial shard survives as cache hits for whoever reclaims the claim;
/// `checkpoint`, when given, runs after each job on top of that (the
/// scheduler refreshes its claim heartbeat there).
[[nodiscard]] ShardResult execute_shard(
    const ExperimentSpec& spec, const CompiledShard& shard,
    ResultCache& cache, std::size_t threads,
    const std::function<void()>& checkpoint = {});

/// Serializes a shard result as a fragment file body (doubles by bit
/// pattern: a join replays the producing run's numbers exactly).
[[nodiscard]] std::string serialize_shard_result(const ShardResult& result);

/// Parses a fragment; returns nullopt (never throws) on any corruption so
/// a torn or foreign file degrades to "shard not done yet".
[[nodiscard]] std::optional<ShardResult> parse_shard_result(
    const std::string& text);

/// Deterministic merge: consumes shard results strictly in planner order,
/// streams their rows into the BENCH JSON writer, accumulates the figure
/// groups and the run counters, and on `finish` renders the log table and
/// the CSV -- the one emission path shared by the in-process streaming
/// run, the forked multi-worker run and `--join`, which is what makes
/// their artifacts byte-identical.
class ShardAssembler {
 public:
  ShardAssembler(BenchJsonWriter* json, std::ostream* csv,
                 RunSummary& summary, std::ostream& log);

  void consume(const ShardResult& result);
  void finish();

 private:
  struct Group {
    std::size_t p;
    std::optional<double> z;
    std::optional<double> send_latency;
    std::optional<double> return_latency;
    std::string solver;
    Accumulator throughput, ratio, wall;
  };

  BenchJsonWriter* json_;
  std::ostream* csv_;
  RunSummary& summary_;
  std::ostream& log_;
  std::size_t next_index_ = 0;
  std::vector<Group> groups_;
  std::map<std::string, std::size_t> group_index_;
};

}  // namespace dlsched::experiments
