#include "experiments/bench_driver.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <tuple>
#include <utility>

#include "experiments/engine.hpp"
#include "experiments/spec_registry.hpp"
#include "obs/trace.hpp"
#include "service/worker.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace dlsched::experiments {

namespace {

// ------------------------------------------------------------ cluster side --

std::atomic<int> g_bench_signal{0};

extern "C" void on_bench_signal(int sig) { g_bench_signal.store(sig); }

/// `--worker tcp://HOST:PORT`: join a coordinator's claim board instead of
/// running a spec.  The spec itself arrives over the wire with each lease.
int run_worker_mode(const CliArgs& args, const std::string& endpoint) {
  service::TcpWorkerOptions options;
  options.endpoint = endpoint;
  options.worker_id =
      args.get_or("worker-id", "w" + std::to_string(::getpid()));
  const std::int64_t threads = args.get_int("threads", 0);
  DLSCHED_EXPECT(threads >= 0, "--threads wants a non-negative count");
  options.threads = static_cast<std::size_t>(threads);
  options.scratch_dir = args.get_or("scratch-dir", "");
  const std::int64_t abandon = args.get_int("abandon-after", 0);
  DLSCHED_EXPECT(abandon >= 0, "--abandon-after wants a non-negative count");
  options.abandon_after = static_cast<std::size_t>(abandon);
  const service::TcpWorkerSummary summary =
      service::run_tcp_worker(options, std::cout);
  std::cout << "worker " << options.worker_id << ": " << summary.executed
            << " shard(s) executed, " << summary.discarded << " discarded, "
            << summary.jobs << " job(s), " << summary.solved << " solved, "
            << summary.cache_hits << " cache hit(s)"
            << (summary.retired ? ", retired" : "")
            << (summary.drained ? ", drained" : "")
            << (summary.abandoned ? ", abandoned a lease" : "") << "\n";
  return 0;
}

/// `--workers auto[:MAX]` / `--workers N` with `--coordinator`; plain
/// `--workers N` keeps meaning the filesystem-board worker fleet.
void parse_workers(const CliArgs& args, RunOptions& options) {
  const std::optional<std::string> text = args.get("workers");
  if (text && text->rfind("auto", 0) == 0) {
    DLSCHED_EXPECT(!options.coordinator.empty(),
                   "--workers auto needs --coordinator HOST:PORT "
                   "(autoscaling drives the TCP claim board)");
    options.autoscale = true;
    if (text->size() > 4) {
      const std::string max_text =
          (*text)[4] == ':' ? text->substr(5) : std::string();
      std::size_t max = 0;
      if (!max_text.empty() &&
          max_text.find_first_not_of("0123456789") == std::string::npos) {
        max = std::stoul(max_text);
      }
      DLSCHED_EXPECT(max >= 1 && max <= 256,
                     "--workers auto:MAX wants 1 <= MAX <= 256 (got '" +
                         *text + "')");
      options.autoscale_max = max;
    }
    return;
  }
  const std::int64_t workers = args.get_int("workers", 1);
  DLSCHED_EXPECT(workers >= 1,
                 "--workers wants a positive process count or auto[:MAX]");
  if (!options.coordinator.empty()) {
    // With a coordinator the flag sizes the local TCP worker fleet; no
    // flag means passive (external workers connect with --worker).
    options.cluster_workers =
        text ? static_cast<std::size_t>(workers) : 0;
  } else {
    options.workers = static_cast<std::size_t>(workers);
  }
}

int list_specs() {
  Table table({"spec", "figure", "kind", "title"});
  for (const ExperimentSpec& spec : builtin_specs()) {
    table.begin_row()
        .cell(spec.name)
        .cell(spec.figure)
        .cell(kind_name(spec.kind))
        .cell(spec.title);
  }
  table.print_aligned(std::cout);
  std::cout << "\n" << builtin_specs().size()
            << " built-in specs; run one with --spec NAME or declare your "
               "own with --spec-file FILE.toml\n";
  return 0;
}

int list_generators() {
  Table table({"generator", "parameters", "description"});
  for (const gen::GeneratorInfo& info :
       gen::GeneratorRegistry::instance().infos()) {
    std::string params;
    for (const std::string& key : info.params) {
      if (!params.empty()) params += ",";
      params += key;
    }
    table.begin_row().cell(info.name).cell(params).cell(info.description);
  }
  table.print_aligned(std::cout);
  return 0;
}

int cache_stats(const CliArgs& args) {
  const std::string dir = args.get_or("cache-dir", ".dlsched_cache");
  const CacheInventory inventory = ResultCache::inspect(dir);
  if (!inventory.exists) {
    std::cout << "cache directory '" << dir << "' does not exist\n";
    return 0;
  }
  std::cout << "cache directory: " << dir << "\n"
            << "entries:         " << inventory.entries << "\n"
            << "total bytes:     " << inventory.total_bytes << "\n";
  if (inventory.has_last_run) {
    std::cout << "last run:        " << inventory.last_spec << " ("
              << inventory.last_run.hits << " hit(s), "
              << inventory.last_run.misses << " miss(es), "
              << inventory.last_run.stores << " store(s), "
              << inventory.last_run.evicted << " evicted)\n";
  } else {
    std::cout << "last run:        (no stats recorded yet)\n";
  }
  return 0;
}

/// Parses `--shard i/k` into (index, count); throws on malformed values.
/// Both halves must be plain digit runs -- std::stoul would happily wrap
/// "1/-2" into a huge count that silently runs a single shard.
std::pair<std::size_t, std::size_t> parse_shard(const std::string& text) {
  const auto digits = [](const std::string& s) {
    return !s.empty() && s.find_first_not_of("0123456789") == std::string::npos;
  };
  const std::size_t slash = text.find('/');
  std::size_t index = 0, count = 0;
  try {
    DLSCHED_EXPECT(slash != std::string::npos, "missing '/'");
    const std::string i_text = text.substr(0, slash);
    const std::string k_text = text.substr(slash + 1);
    DLSCHED_EXPECT(digits(i_text) && digits(k_text), "digits only");
    index = std::stoul(i_text);
    count = std::stoul(k_text);
    DLSCHED_EXPECT(count > 0 && index < count, "need i < k and k > 0");
  } catch (const std::exception&) {
    DLSCHED_FAIL("--shard wants i/k with 0 <= i < k (got '" + text + "')");
  }
  return {index, count};
}

int run_one(ExperimentSpec spec, const CliArgs& args,
            std::chrono::steady_clock::time_point run_epoch) {
  if (args.has("seed")) {
    spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 0));
  }
  if (args.has("repetitions")) {
    spec.repetitions =
        static_cast<std::size_t>(args.get_int("repetitions", 1));
  }
  if (const auto filter = args.get("filter")) {
    // Axis slicing (`--filter p=4,solver=affine_greedy|affine_fifo`):
    // the filtered spec shares the cache with the full sweep, so a slice
    // is both a cheap CI smoke and a warm-up for the full run.
    apply_spec_filter(spec, *filter);
  }
  RunOptions options;
  options.out_json = args.has("no-json")
                         ? std::string()
                         : args.get_or("out", "BENCH_" + spec.name + ".json");
  options.out_csv = args.has("no-csv") ? std::string()
                                       : args.get_or("csv", spec.name + ".csv");
  options.cache_dir = args.has("no-cache")
                          ? std::string()
                          : args.get_or("cache-dir", ".dlsched_cache");
  options.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  options.quick = args.has("quick");
  // Measured from before the spec was parsed, so the reported wall time
  // matches /usr/bin/time within noise.
  options.run_epoch = run_epoch;
  if (const auto trace = args.get("trace")) {
    DLSCHED_EXPECT(!trace->empty(), "--trace wants an output path");
    options.trace_path = *trace;
  }
  if (const auto coordinator = args.get("coordinator")) {
    options.coordinator = *coordinator;
  }
  parse_workers(args, options);
  if (const auto shard = args.get("shard")) {
    std::tie(options.shard_index, options.shard_count) = parse_shard(*shard);
    // A slice publishes fragments; the artifacts belong to --join.
    options.out_json.clear();
    options.out_csv.clear();
  }
  options.join_only = args.has("join");
  options.cache_max_bytes =
      static_cast<std::uint64_t>(args.get_int("cache-max-bytes", 0));
  // Both staleness knobs share one accepted range: long enough to be a
  // real heartbeat period, short enough that a dead worker's shard is
  // reassigned within the hour.
  options.stale_seconds =
      args.get_double("stale-seconds", options.stale_seconds);
  DLSCHED_EXPECT(
      options.stale_seconds >= 0.05 && options.stale_seconds <= 3600.0,
      "--stale-seconds " + format_double(options.stale_seconds, 6) +
          " is out of range (accepted: 0.05 to 3600 seconds)");
  options.lease_ttl_seconds =
      args.get_double("lease-ttl", options.lease_ttl_seconds);
  DLSCHED_EXPECT(
      options.lease_ttl_seconds >= 0.05 &&
          options.lease_ttl_seconds <= 3600.0,
      "--lease-ttl " + format_double(options.lease_ttl_seconds, 6) +
          " is out of range (accepted: 0.05 to 3600 seconds)");
  if (!options.coordinator.empty()) {
    // SIGTERM/SIGINT drain the coordinator instead of killing the run.
    std::signal(SIGTERM, on_bench_signal);
    std::signal(SIGINT, on_bench_signal);
    options.stop_signal = &g_bench_signal;
  }
  const RunSummary summary = run_spec(spec, options);
  return summary.failures == 0 ? 0 : 1;
}

}  // namespace

const std::vector<std::string>& bench_flags() {
  static const std::vector<std::string>* flags = new std::vector<std::string>{
      "list-specs", "list-generators", "all",     "quick",
      "no-cache",   "no-json",         "no-csv",  "cache-stats",
      "join"};
  return *flags;
}

int bench_main(const CliArgs& args) {
  // Stamp the run epoch and start the tracer before any spec parsing so
  // the root span (and wall_seconds) covers parse + plan time.
  const auto run_epoch = std::chrono::steady_clock::now();
  if (args.get("trace")) obs::Tracer::instance().enable("bench");
  if (const auto endpoint = args.get("worker")) {
    return run_worker_mode(args, *endpoint);
  }
  if (args.has("list-specs")) return list_specs();
  if (args.has("list-generators")) return list_generators();
  if (args.has("cache-stats")) return cache_stats(args);
  if (args.has("all")) {
    if (args.get("out") || args.get("csv") || args.get("trace")) {
      std::cerr << "--all names artifacts per spec; drop --out/--csv/"
                   "--trace\n";
      return 2;
    }
    int status = 0;
    for (const ExperimentSpec& spec : builtin_specs()) {
      status |= run_one(spec, args, std::chrono::steady_clock::now());
      std::cout << "\n";
    }
    return status;
  }
  if (const auto path = args.get("spec-file")) {
    return run_one(load_spec_file(*path), args, run_epoch);
  }
  if (const auto name = args.get("spec")) {
    return run_one(find_builtin_spec(*name), args, run_epoch);
  }
  std::cerr << "bench needs --spec NAME, --spec-file FILE, --all, "
               "--list-specs, --list-generators or --cache-stats\n";
  return 2;
}

}  // namespace dlsched::experiments
