#include "experiments/bench_driver.hpp"

#include <iostream>
#include <tuple>
#include <utility>

#include "experiments/engine.hpp"
#include "experiments/spec_registry.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace dlsched::experiments {

namespace {

int list_specs() {
  Table table({"spec", "figure", "kind", "title"});
  for (const ExperimentSpec& spec : builtin_specs()) {
    table.begin_row()
        .cell(spec.name)
        .cell(spec.figure)
        .cell(kind_name(spec.kind))
        .cell(spec.title);
  }
  table.print_aligned(std::cout);
  std::cout << "\n" << builtin_specs().size()
            << " built-in specs; run one with --spec NAME or declare your "
               "own with --spec-file FILE.toml\n";
  return 0;
}

int list_generators() {
  Table table({"generator", "parameters", "description"});
  for (const gen::GeneratorInfo& info :
       gen::GeneratorRegistry::instance().infos()) {
    std::string params;
    for (const std::string& key : info.params) {
      if (!params.empty()) params += ",";
      params += key;
    }
    table.begin_row().cell(info.name).cell(params).cell(info.description);
  }
  table.print_aligned(std::cout);
  return 0;
}

int cache_stats(const CliArgs& args) {
  const std::string dir = args.get_or("cache-dir", ".dlsched_cache");
  const CacheInventory inventory = ResultCache::inspect(dir);
  if (!inventory.exists) {
    std::cout << "cache directory '" << dir << "' does not exist\n";
    return 0;
  }
  std::cout << "cache directory: " << dir << "\n"
            << "entries:         " << inventory.entries << "\n"
            << "total bytes:     " << inventory.total_bytes << "\n";
  if (inventory.has_last_run) {
    std::cout << "last run:        " << inventory.last_spec << " ("
              << inventory.last_run.hits << " hit(s), "
              << inventory.last_run.misses << " miss(es), "
              << inventory.last_run.stores << " store(s), "
              << inventory.last_run.evicted << " evicted)\n";
  } else {
    std::cout << "last run:        (no stats recorded yet)\n";
  }
  return 0;
}

/// Parses `--shard i/k` into (index, count); throws on malformed values.
/// Both halves must be plain digit runs -- std::stoul would happily wrap
/// "1/-2" into a huge count that silently runs a single shard.
std::pair<std::size_t, std::size_t> parse_shard(const std::string& text) {
  const auto digits = [](const std::string& s) {
    return !s.empty() && s.find_first_not_of("0123456789") == std::string::npos;
  };
  const std::size_t slash = text.find('/');
  std::size_t index = 0, count = 0;
  try {
    DLSCHED_EXPECT(slash != std::string::npos, "missing '/'");
    const std::string i_text = text.substr(0, slash);
    const std::string k_text = text.substr(slash + 1);
    DLSCHED_EXPECT(digits(i_text) && digits(k_text), "digits only");
    index = std::stoul(i_text);
    count = std::stoul(k_text);
    DLSCHED_EXPECT(count > 0 && index < count, "need i < k and k > 0");
  } catch (const std::exception&) {
    DLSCHED_FAIL("--shard wants i/k with 0 <= i < k (got '" + text + "')");
  }
  return {index, count};
}

int run_one(ExperimentSpec spec, const CliArgs& args) {
  if (args.has("seed")) {
    spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 0));
  }
  if (args.has("repetitions")) {
    spec.repetitions =
        static_cast<std::size_t>(args.get_int("repetitions", 1));
  }
  if (const auto filter = args.get("filter")) {
    // Axis slicing (`--filter p=4,solver=affine_greedy|affine_fifo`):
    // the filtered spec shares the cache with the full sweep, so a slice
    // is both a cheap CI smoke and a warm-up for the full run.
    apply_spec_filter(spec, *filter);
  }
  RunOptions options;
  options.out_json = args.has("no-json")
                         ? std::string()
                         : args.get_or("out", "BENCH_" + spec.name + ".json");
  options.out_csv = args.has("no-csv") ? std::string()
                                       : args.get_or("csv", spec.name + ".csv");
  options.cache_dir = args.has("no-cache")
                          ? std::string()
                          : args.get_or("cache-dir", ".dlsched_cache");
  options.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  options.quick = args.has("quick");
  const std::int64_t workers = args.get_int("workers", 1);
  DLSCHED_EXPECT(workers >= 1, "--workers wants a positive process count");
  options.workers = static_cast<std::size_t>(workers);
  if (const auto shard = args.get("shard")) {
    std::tie(options.shard_index, options.shard_count) = parse_shard(*shard);
    // A slice publishes fragments; the artifacts belong to --join.
    options.out_json.clear();
    options.out_csv.clear();
  }
  options.join_only = args.has("join");
  options.cache_max_bytes =
      static_cast<std::uint64_t>(args.get_int("cache-max-bytes", 0));
  options.stale_seconds =
      args.get_double("stale-seconds", options.stale_seconds);
  const RunSummary summary = run_spec(spec, options);
  return summary.failures == 0 ? 0 : 1;
}

}  // namespace

const std::vector<std::string>& bench_flags() {
  static const std::vector<std::string>* flags = new std::vector<std::string>{
      "list-specs", "list-generators", "all",     "quick",
      "no-cache",   "no-json",         "no-csv",  "cache-stats",
      "join"};
  return *flags;
}

int bench_main(const CliArgs& args) {
  if (args.has("list-specs")) return list_specs();
  if (args.has("list-generators")) return list_generators();
  if (args.has("cache-stats")) return cache_stats(args);
  if (args.has("all")) {
    if (args.get("out") || args.get("csv")) {
      std::cerr << "--all names artifacts per spec; drop --out/--csv\n";
      return 2;
    }
    int status = 0;
    for (const ExperimentSpec& spec : builtin_specs()) {
      status |= run_one(spec, args);
      std::cout << "\n";
    }
    return status;
  }
  if (const auto path = args.get("spec-file")) {
    return run_one(load_spec_file(*path), args);
  }
  if (const auto name = args.get("spec")) {
    return run_one(find_builtin_spec(*name), args);
  }
  std::cerr << "bench needs --spec NAME, --spec-file FILE, --all, "
               "--list-specs, --list-generators or --cache-stats\n";
  return 2;
}

}  // namespace dlsched::experiments
