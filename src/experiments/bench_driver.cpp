#include "experiments/bench_driver.hpp"

#include <iostream>

#include "experiments/engine.hpp"
#include "experiments/spec_registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace dlsched::experiments {

namespace {

int list_specs() {
  Table table({"spec", "figure", "kind", "title"});
  for (const ExperimentSpec& spec : builtin_specs()) {
    table.begin_row()
        .cell(spec.name)
        .cell(spec.figure)
        .cell(kind_name(spec.kind))
        .cell(spec.title);
  }
  table.print_aligned(std::cout);
  std::cout << "\n" << builtin_specs().size()
            << " built-in specs; run one with --spec NAME or declare your "
               "own with --spec-file FILE.toml\n";
  return 0;
}

int list_generators() {
  Table table({"generator", "parameters", "description"});
  for (const gen::GeneratorInfo& info :
       gen::GeneratorRegistry::instance().infos()) {
    std::string params;
    for (const std::string& key : info.params) {
      if (!params.empty()) params += ",";
      params += key;
    }
    table.begin_row().cell(info.name).cell(params).cell(info.description);
  }
  table.print_aligned(std::cout);
  return 0;
}

int cache_stats(const CliArgs& args) {
  const std::string dir = args.get_or("cache-dir", ".dlsched_cache");
  const CacheInventory inventory = ResultCache::inspect(dir);
  if (!inventory.exists) {
    std::cout << "cache directory '" << dir << "' does not exist\n";
    return 0;
  }
  std::cout << "cache directory: " << dir << "\n"
            << "entries:         " << inventory.entries << "\n"
            << "total bytes:     " << inventory.total_bytes << "\n";
  if (inventory.has_last_run) {
    std::cout << "last run:        " << inventory.last_spec << " ("
              << inventory.last_run.hits << " hit(s), "
              << inventory.last_run.misses << " miss(es), "
              << inventory.last_run.stores << " store(s))\n";
  } else {
    std::cout << "last run:        (no stats recorded yet)\n";
  }
  return 0;
}

int run_one(ExperimentSpec spec, const CliArgs& args) {
  if (args.has("seed")) {
    spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 0));
  }
  if (args.has("repetitions")) {
    spec.repetitions =
        static_cast<std::size_t>(args.get_int("repetitions", 1));
  }
  RunOptions options;
  options.out_json = args.has("no-json")
                         ? std::string()
                         : args.get_or("out", "BENCH_" + spec.name + ".json");
  options.out_csv = args.has("no-csv") ? std::string()
                                       : args.get_or("csv", spec.name + ".csv");
  options.cache_dir = args.has("no-cache")
                          ? std::string()
                          : args.get_or("cache-dir", ".dlsched_cache");
  options.threads = static_cast<std::size_t>(args.get_int("threads", 0));
  options.quick = args.has("quick");
  const RunSummary summary = run_spec(spec, options);
  return summary.failures == 0 ? 0 : 1;
}

}  // namespace

const std::vector<std::string>& bench_flags() {
  static const std::vector<std::string>* flags = new std::vector<std::string>{
      "list-specs", "list-generators", "all",     "quick",
      "no-cache",   "no-json",         "no-csv",  "cache-stats"};
  return *flags;
}

int bench_main(const CliArgs& args) {
  if (args.has("list-specs")) return list_specs();
  if (args.has("list-generators")) return list_generators();
  if (args.has("cache-stats")) return cache_stats(args);
  if (args.has("all")) {
    if (args.get("out") || args.get("csv")) {
      std::cerr << "--all names artifacts per spec; drop --out/--csv\n";
      return 2;
    }
    int status = 0;
    for (const ExperimentSpec& spec : builtin_specs()) {
      status |= run_one(spec, args);
      std::cout << "\n";
    }
    return status;
  }
  if (const auto path = args.get("spec-file")) {
    return run_one(load_spec_file(*path), args);
  }
  if (const auto name = args.get("spec")) {
    return run_one(find_builtin_spec(*name), args);
  }
  std::cerr << "bench needs --spec NAME, --spec-file FILE, --all, "
               "--list-specs, --list-generators or --cache-stats\n";
  return 2;
}

}  // namespace dlsched::experiments
