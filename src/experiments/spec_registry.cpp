#include "experiments/spec_registry.hpp"

#include "util/error.hpp"

namespace dlsched::experiments {

namespace {

ExperimentSpec base(std::string name, std::string title, std::string figure,
                    SpecKind kind) {
  ExperimentSpec spec;
  spec.name = std::move(name);
  spec.title = std::move(title);
  spec.figure = std::move(figure);
  spec.kind = kind;
  return spec;
}

ExperimentSpec ensemble(std::string name, std::string title,
                        std::string figure, std::string generator,
                        bool include_inc_w) {
  ExperimentSpec spec =
      base(std::move(name), std::move(title), std::move(figure),
           SpecKind::Ensemble);
  spec.generator = std::move(generator);
  spec.workers = {11};  // the paper's 12-node cluster: 1 master + 11
  spec.include_inc_w = include_inc_w;
  return spec;
}

std::vector<ExperimentSpec> make_builtins() {
  std::vector<ExperimentSpec> specs;

  specs.push_back(base("fig08",
                       "linearity test: transfer time vs message size on "
                       "the threaded runtime and the DES",
                       "Figure 8", SpecKind::Linearity));

  specs.push_back(base("fig09",
                       "execution trace on a heterogeneous platform "
                       "(resource selection drops two of five workers)",
                       "Figure 9", SpecKind::Trace));

  specs.push_back(ensemble(
      "fig10", "homogeneous random platforms (bus, identical workers)",
      "Figure 10", "matrix_homogeneous", /*include_inc_w=*/false));

  specs.push_back(ensemble(
      "fig11", "homogeneous communication / heterogeneous computation",
      "Figure 11", "matrix_bus_hetero_comp", /*include_inc_w=*/true));

  specs.push_back(ensemble("fig12", "heterogeneous random star platforms",
                           "Figure 12", "matrix_heterogeneous",
                           /*include_inc_w=*/true));

  {
    ExperimentSpec spec = ensemble(
        "fig13a", "heterogeneous platforms, computation power x10",
        "Figure 13(a)", "matrix_heterogeneous", /*include_inc_w=*/true);
    spec.comp_speed_up = 10.0;
    specs.push_back(spec);
  }
  {
    ExperimentSpec spec = ensemble(
        "fig13b", "heterogeneous platforms, communication power x10",
        "Figure 13(b)", "matrix_heterogeneous", /*include_inc_w=*/true);
    spec.comm_speed_up = 10.0;
    specs.push_back(spec);
  }

  {
    ExperimentSpec spec = base(
        "fig14",
        "participation test: workers enrolled vs available (x = 1, 3)",
        "Figure 14", SpecKind::Participation);
    spec.x_values = {1.0, 3.0};
    spec.total_tasks = 1000;
    spec.matrix_sizes = {400};
    specs.push_back(spec);
  }

  {
    ExperimentSpec spec =
        base("ablation_ordering",
             "FIFO ordering choice: throughput relative to INC_C",
             "Theorem 1 / Section 5", SpecKind::Grid);
    spec.generator = "random_star";
    spec.workers = {4, 8};
    spec.z_values = {0.5};
    spec.repetitions = 30;
    spec.solvers = {"inc_c", "inc_w",       "dec_c",
                    "lifo",  "random_fifo", "brute_force"};
    spec.baseline = "inc_c";
    spec.max_workers_brute = 4;  // exhaustive comparator only where cheap
    specs.push_back(spec);
  }

  {
    ExperimentSpec spec = base(
        "ablation_local_search",
        "local search over (sigma1, sigma2) pairs vs structured optima",
        "Section 7 (open problem)", SpecKind::Grid);
    spec.generator = "random_star";
    spec.workers = {3, 4, 6, 9};
    spec.z_values = {0.5};
    spec.repetitions = 20;
    spec.solvers = {"fifo_optimal", "lifo", "local_search", "brute_force"};
    spec.baseline = "fifo_optimal";
    spec.max_workers_brute = 4;
    specs.push_back(spec);
  }

  {
    ExperimentSpec spec =
        base("ablation_two_port",
             "one-port vs two-port FIFO throughput across z",
             "Refs [7,8] / Figure 7", SpecKind::Grid);
    spec.generator = "random_star";
    spec.workers = {8};
    spec.z_values = {0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 3.0};
    spec.repetitions = 25;
    spec.solvers = {"fifo_optimal", "two_port_fifo"};
    spec.baseline = "fifo_optimal";
    spec.precision = Precision::Exact;
    specs.push_back(spec);
  }

  {
    ExperimentSpec spec = base(
        "ablation_selection",
        "resource selection: optimal FIFO vs forced full participation "
        "on straggler platforms",
        "Section 5.3.4", SpecKind::Selection);
    spec.generator = "bimodal";
    // One deliberately weak worker in ten: a strong cluster with factors
    // ~20x better than the straggler, the regime where selection engages.
    spec.generator_params = {{"fast_fraction", 0.9}, {"slow_factor", 20.0},
                             {"c_lo", 0.02},         {"c_hi", 0.2},
                             {"w_lo", 0.05},         {"w_hi", 0.5}};
    spec.workers = {10};
    spec.z_values = {0.1, 0.25, 0.5, 0.8, 1.5, 3.0};
    spec.repetitions = 25;
    specs.push_back(spec);
  }

  {
    ExperimentSpec spec =
        base("ablation_multiround",
             "multi-round dispatch: makespan vs round count and latency",
             "Section 6, ref [3]", SpecKind::Multiround);
    spec.workers = {4};
    spec.latencies = {0.0, 0.002, 0.01, 0.05};
    spec.max_rounds = 12;
    specs.push_back(spec);
  }

  {
    ExperimentSpec spec =
        base("micro_solvers",
             "per-solver wall time across platform sizes (JSON perf rows)",
             "all solvers", SpecKind::Grid);
    spec.generator = "random_star";
    spec.workers = {4, 8, 12};
    spec.z_values = {0.5};
    spec.repetitions = 3;
    // solvers empty: every registered, inapplicable ones skipped per size.
    specs.push_back(spec);
  }

  {
    ExperimentSpec spec =
        base("micro_substrate",
             "substrate microbenchmarks: exact vs double LP, DES event "
             "throughput, gemm",
             "Section 5 tooling", SpecKind::Micro);
    spec.repetitions = 5;
    specs.push_back(spec);
  }

  {
    ExperimentSpec spec = base(
        "hetero_stress",
        "heterogeneity stress sweep: correlated bounded-Pareto (c, w) "
        "draws across return ratios",
        "Section 5 (extended)", SpecKind::Grid);
    // Power-law speed magnitudes (mostly cheap workers, a heavy tail of
    // fast outliers) with rank-correlated (c, w) -- the big machines get
    // the fat pipes -- over sub- and super-critical return ratios.  This
    // accumulates BENCH history for both new generator mechanisms.
    spec.generator = "power_law";
    spec.generator_params = {{"alpha", 1.5}, {"rho", 0.6},
                             {"c_lo", 0.05},  {"c_hi", 2.0},
                             {"w_lo", 0.1},   {"w_hi", 8.0}};
    spec.workers = {6, 10};
    spec.z_values = {0.5, 1.5};
    spec.repetitions = 10;
    spec.solvers = {"fifo_optimal", "lifo", "inc_c", "inc_w", "mirror_fifo"};
    spec.baseline = "fifo_optimal";
    specs.push_back(spec);
  }

  {
    ExperimentSpec spec = base(
        "affine_surface",
        "affine model: latency x subset-size surface with DES-replayed "
        "realizations and latency-correlated per-worker draws",
        "Section 6", SpecKind::Grid);
    // The resource-selection regime of Section 6: the p axis sets the
    // subset-size budget (2^p enumeration stays cheap), the latency axes
    // span "latency-free" through "start-ups dominate", and the correlated
    // generator draws per-worker latency factors rank-correlated with link
    // slowness (remote workers pay both ways).  Every affine solve
    // realizes its timeline, validates it, and replays it on the DES
    // engine; the replay_rel_error column is the acceptance gate.
    spec.generator = "correlated";
    spec.generator_params = {{"rho", 0.6},    {"lat_lo", 0.5},
                             {"lat_hi", 1.5}, {"lat_rho", 0.8},
                             {"c_lo", 0.05},  {"c_hi", 0.6},
                             {"w_lo", 0.2},   {"w_hi", 2.0}};
    spec.workers = {4, 6, 8};
    spec.z_values = {0.5};
    spec.send_latencies = {0.0, 0.01, 0.05};
    spec.return_latencies = {0.005, 0.02};
    spec.repetitions = 3;
    spec.precision = Precision::Exact;  // the affine LP is exact-only
    spec.solvers = {"affine_subset", "affine_greedy", "affine_local_search",
                    "affine_fifo"};
    spec.baseline = "affine_subset";
    specs.push_back(spec);
  }

  {
    ExperimentSpec spec = base(
        "churn_surface",
        "platform churn: warm vs cold re-solve latency and throughput "
        "retention across chained join/leave/slowdown events",
        "Section 6 (extended)", SpecKind::Churn);
    spec.generator = "random_star";
    spec.workers = {6, 10};
    spec.repetitions = 3;
    spec.churn_events = 8;
    specs.push_back(spec);
  }

  {
    ExperimentSpec spec = base(
        "smoke", "tiny deterministic sweep for CI and cache smoke tests",
        "CI", SpecKind::Grid);
    spec.generator = "random_star";
    spec.workers = {4, 6};
    spec.z_values = {0.5};
    spec.repetitions = 2;
    spec.solvers = {"fifo_optimal", "lifo", "inc_c", "mirror_fifo"};
    spec.baseline = "fifo_optimal";
    specs.push_back(spec);
  }

  return specs;
}

}  // namespace

const std::vector<ExperimentSpec>& builtin_specs() {
  static const std::vector<ExperimentSpec>* specs =
      new std::vector<ExperimentSpec>(make_builtins());
  return *specs;
}

bool has_builtin_spec(const std::string& name) {
  for (const ExperimentSpec& spec : builtin_specs()) {
    if (spec.name == name) return true;
  }
  return false;
}

const ExperimentSpec& find_builtin_spec(const std::string& name) {
  for (const ExperimentSpec& spec : builtin_specs()) {
    if (spec.name == name) return spec;
  }
  std::string known;
  for (const ExperimentSpec& spec : builtin_specs()) {
    if (!known.empty()) known += ", ";
    known += spec.name;
  }
  DLSCHED_FAIL("unknown spec '" + name + "' (known: " + known + ")");
}

}  // namespace dlsched::experiments
