// Work-stealing shard scheduler over a shared filesystem board.
//
// N worker processes (forked by the engine's `--workers N` mode, or
// launched independently against the same cache directory -- even from
// different machines sharing it) claim shards through atomic claim files
// in a board directory under the shared `ResultCache` directory.  The
// protocol needs nothing but POSIX filesystem atomicity:
//
//   * claim:   write a unique temp file, then hard-link it to
//              `<shard>.claim` -- the link succeeds for exactly one
//              worker, even on NFS.
//   * publish: serialize the `ShardResult` to a temp file and rename it
//              to `<shard>.part`; a fragment is therefore always whole.
//   * steal:   a claim whose mtime has not been refreshed for
//              `stale_seconds` belongs to a crashed worker; the thief
//              renames it aside (rename is atomic, so exactly one thief
//              wins) and claims normally.  Live workers refresh their
//              claim's mtime from a side heartbeat thread (period
//              stale_seconds / 4, so even one solve that outlasts the
//              timeout keeps the claim fresh) plus after every finished
//              job, and every finished job was already checkpointed into
//              the result cache, so re-running a reclaimed shard replays
//              the dead worker's progress as cache hits.
//
// Faster workers simply claim more shards -- work stealing without any
// queue, broker or lock server.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "experiments/shard.hpp"

namespace dlsched::experiments {

/// Filesystem state of one distributed run: claims and fragments for the
/// shard plan it was created for.  Methods never throw on races -- losing
/// a claim or a steal is a normal outcome.
class ShardBoard {
 public:
  /// Opens (creating if needed) the board directory.
  explicit ShardBoard(std::string directory);

  [[nodiscard]] const std::string& directory() const noexcept {
    return directory_;
  }

  /// Removes every claim and fragment: `--workers` runs start fresh so a
  /// previous run's fragments can never leak into a new join.
  void reset();

  /// A published fragment exists for this shard.
  [[nodiscard]] bool is_done(const CompiledShard& shard) const;

  /// Atomically claims the shard for `worker_id`; false when another
  /// worker holds it (or already finished it).
  [[nodiscard]] bool try_claim(const CompiledShard& shard,
                               const std::string& worker_id);

  /// Steals a claim whose heartbeat is older than `stale_seconds`:
  /// renames it aside so exactly one thief wins.  Returns true when the
  /// caller may retry `try_claim`.
  [[nodiscard]] bool try_steal_stale(const CompiledShard& shard,
                                     double stale_seconds,
                                     const std::string& worker_id);

  /// Refreshes the claim's mtime (the liveness signal `try_steal_stale`
  /// checks).  Called from the executor's per-job checkpoint.
  void heartbeat(const CompiledShard& shard) const;

  /// Publishes a serialized result as the shard's fragment (temp +
  /// rename), then drops the claim.
  void publish(const CompiledShard& shard, const std::string& serialized,
               const std::string& worker_id);

  /// Drops the caller's claim without publishing (the shard turned out to
  /// be finished by someone else).
  void release(const CompiledShard& shard) const;

  /// Loads and parses the shard's fragment; nullopt when absent or torn.
  [[nodiscard]] std::optional<ShardResult> load(
      const CompiledShard& shard) const;

  /// Publishes an encoded `obs` trace as the shard's sidecar file
  /// (`<id>.part.trace`, temp + rename).  Best effort: tracing never
  /// fails a run, so write errors are swallowed.
  void publish_trace(const CompiledShard& shard, const std::string& encoded,
                     const std::string& worker_id) const;

  /// Reads the shard's trace sidecar; nullopt when absent (the normal
  /// case for untraced runs).
  [[nodiscard]] std::optional<std::string> load_trace(
      const CompiledShard& shard) const;

 private:
  [[nodiscard]] std::string claim_path(const CompiledShard& shard) const;
  [[nodiscard]] std::string fragment_path(const CompiledShard& shard) const;

  std::string directory_;
};

/// The board directory a plan lives under: inside the shared cache
/// directory, named by spec and plan fingerprint so different specs, axes
/// or `--quick` states never mix fragments.
[[nodiscard]] std::string board_directory(
    const std::string& cache_dir, const ExperimentSpec& spec,
    const std::vector<CompiledShard>& shards);

struct SchedulerOptions {
  std::string worker_id;          ///< unique per process (default: pid)
  double stale_seconds = 300.0;   ///< claim heartbeat timeout before steal
  double poll_seconds = 0.05;     ///< wait between passes when blocked
  std::size_t threads = 0;        ///< per-worker solve_batch pool size
};

/// What one worker process did.
struct WorkerSummary {
  std::size_t executed = 0;   ///< shards this worker claimed and published
  std::size_t stolen = 0;     ///< stale claims it reclaimed
  std::size_t jobs = 0;       ///< solver jobs inside its shards
  std::size_t solved = 0;     ///< jobs it actually executed
  std::size_t cache_hits = 0;
};

/// Runs the work-stealing loop over `shards` until every shard has a
/// published fragment: repeatedly scan in planner order, claim (or steal)
/// unfinished shards, execute them through the cached `solve_batch`
/// pipeline, publish fragments.  Returns when the board is complete.
[[nodiscard]] WorkerSummary run_worker(const ExperimentSpec& spec,
                                       const std::vector<CompiledShard>& shards,
                                       ShardBoard& board, ResultCache& cache,
                                       const SchedulerOptions& options);

}  // namespace dlsched::experiments
