// Runners for the special-shaped paper figures -- everything that is not a
// plain solver grid.  Internal to the engine; consumers go through
// experiments/engine.hpp.
#pragma once

#include <ostream>

#include "experiments/emitter.hpp"
#include "experiments/engine.hpp"

namespace dlsched::experiments::detail {

/// Figure 8: per-worker linear fits of transfer time vs message size, on
/// the threaded runtime (skipped under `quick`) and the noisy DES.
void run_linearity(const ExperimentSpec& spec, const RunOptions& options,
                   BenchJsonWriter* json, std::ostream* csv,
                   RunSummary& summary, std::ostream& log);

/// Figure 9: one heterogeneous execution -- LP solve (cached), DES replay,
/// ASCII Gantt to the log, SVG next to the JSON artifact.
void run_trace(const ExperimentSpec& spec, const RunOptions& options,
               ResultCache& cache, BenchJsonWriter* json, std::ostream* csv,
               RunSummary& summary, std::ostream& log);

/// Figure 14: LP vs DES time and enrolled workers as availability grows.
void run_participation(const ExperimentSpec& spec, const RunOptions& options,
                       ResultCache& cache, BenchJsonWriter* json,
                       std::ostream* csv, RunSummary& summary,
                       std::ostream& log);

/// Ablation: optimal (selecting) FIFO vs forced full participation.
void run_selection(const ExperimentSpec& spec, const RunOptions& options,
                   ResultCache& cache, BenchJsonWriter* json,
                   std::ostream* csv, RunSummary& summary, std::ostream& log);

/// Ablation: multi-round makespan across round counts and latencies.
void run_multiround(const ExperimentSpec& spec, const RunOptions& options,
                    BenchJsonWriter* json, std::ostream* csv,
                    RunSummary& summary, std::ostream& log);

/// Substrate microbenchmarks (exact vs double LP, DES events, gemm).
void run_micro(const ExperimentSpec& spec, const RunOptions& options,
               BenchJsonWriter* json, std::ostream* csv, RunSummary& summary,
               std::ostream& log);

/// Platform churn surface: per chained join/leave/slowdown event, the warm
/// vs cold re-solve wall and pivot counts (bit-identical solutions) and
/// the stale-schedule throughput retention from the DES replay.
void run_churn(const ExperimentSpec& spec, const RunOptions& options,
               BenchJsonWriter* json, std::ostream* csv, RunSummary& summary,
               std::ostream& log);

}  // namespace dlsched::experiments::detail
