// The built-in experiment specs: one per paper figure (fig08-fig14) and
// per ablation, plus the microbenchmarks and the CI smoke sweep.  Each is
// an `ExperimentSpec` value -- the engine knows nothing about individual
// figures, and `dlsched_bench --spec NAME` resolves here first.
#pragma once

#include <string>
#include <vector>

#include "experiments/spec.hpp"

namespace dlsched::experiments {

/// All built-in specs, in presentation order (figures first, then
/// ablations, micro, smoke).
[[nodiscard]] const std::vector<ExperimentSpec>& builtin_specs();

[[nodiscard]] bool has_builtin_spec(const std::string& name);

/// Looks a spec up by name; throws with the known names on a miss.
[[nodiscard]] const ExperimentSpec& find_builtin_spec(
    const std::string& name);

}  // namespace dlsched::experiments
