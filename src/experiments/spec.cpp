#include "experiments/spec.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace dlsched::experiments {

std::string kind_name(SpecKind kind) {
  switch (kind) {
    case SpecKind::Grid: return "grid";
    case SpecKind::Ensemble: return "ensemble";
    case SpecKind::Linearity: return "linearity";
    case SpecKind::Trace: return "trace";
    case SpecKind::Participation: return "participation";
    case SpecKind::Selection: return "selection";
    case SpecKind::Multiround: return "multiround";
    case SpecKind::Micro: return "micro";
    case SpecKind::Churn: return "churn";
  }
  return "?";
}

SpecKind kind_from_name(const std::string& name) {
  for (const SpecKind kind :
       {SpecKind::Grid, SpecKind::Ensemble, SpecKind::Linearity,
        SpecKind::Trace, SpecKind::Participation, SpecKind::Selection,
        SpecKind::Multiround, SpecKind::Micro, SpecKind::Churn}) {
    if (kind_name(kind) == name) return kind;
  }
  DLSCHED_FAIL("unknown spec kind '" + name +
               "' (known: grid, ensemble, linearity, trace, participation, "
               "selection, multiround, micro, churn)");
}

namespace {

/// One parsed TOML value: a scalar or a flat array of scalars.
struct TomlValue {
  std::vector<std::string> items;  ///< raw scalar tokens (quotes stripped)
  bool is_array = false;

  [[nodiscard]] const std::string& scalar(const std::string& key) const {
    DLSCHED_EXPECT(!is_array && items.size() == 1,
                   "key '" + key + "' expects a scalar value");
    return items.front();
  }
};

double to_double(const std::string& token, const std::string& key) {
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    DLSCHED_EXPECT(used == token.size(), "trailing characters");
    return value;
  } catch (const std::exception&) {
    DLSCHED_FAIL("key '" + key + "': '" + token + "' is not a number");
  }
}

std::uint64_t to_uint(const std::string& token, const std::string& key) {
  // Not via to_double: 64-bit seeds above 2^53 must parse exactly or the
  // engine's byte-for-byte reproducibility contract silently breaks.
  try {
    DLSCHED_EXPECT(token.find('-') == std::string::npos, "negative");
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(token, &used);
    DLSCHED_EXPECT(used == token.size(), "trailing characters");
    return value;
  } catch (const std::exception&) {
    DLSCHED_FAIL("key '" + key + "': '" + token +
                 "' is not a non-negative integer");
  }
}

bool to_bool(const std::string& token, const std::string& key) {
  if (token == "true") return true;
  if (token == "false") return false;
  DLSCHED_FAIL("key '" + key + "': expected true or false, got '" + token +
               "'");
}

std::vector<double> to_doubles(const TomlValue& value,
                               const std::string& key) {
  std::vector<double> out;
  out.reserve(value.items.size());
  for (const std::string& token : value.items) {
    out.push_back(to_double(token, key));
  }
  return out;
}

std::vector<std::size_t> to_sizes(const TomlValue& value,
                                  const std::string& key) {
  std::vector<std::size_t> out;
  out.reserve(value.items.size());
  for (const std::string& token : value.items) {
    out.push_back(static_cast<std::size_t>(to_uint(token, key)));
  }
  return out;
}

/// Splits on commas that sit outside quoted strings.
std::vector<std::string> split_outside_quotes(const std::string& body) {
  std::vector<std::string> parts;
  std::string current;
  bool in_string = false;
  for (const char ch : body) {
    if (ch == '"') in_string = !in_string;
    if (ch == ',' && !in_string) {
      parts.push_back(current);
      current.clear();
    } else {
      current += ch;
    }
  }
  parts.push_back(current);
  return parts;
}

/// Splits a `[a, b, c]` body or a single scalar into quote-stripped tokens.
TomlValue parse_value(std::string raw, const std::string& key,
                      const std::string& where) {
  raw = trim(raw);
  DLSCHED_EXPECT(!raw.empty(), where + ": key '" + key + "' has no value");
  TomlValue value;
  std::string body = raw;
  if (raw.front() == '[') {
    DLSCHED_EXPECT(raw.back() == ']',
                   where + ": key '" + key + "': unterminated array");
    value.is_array = true;
    body = raw.substr(1, raw.size() - 2);
    if (trim(body).empty()) return value;
  }
  for (const std::string& part : split_outside_quotes(body)) {
    std::string token = trim(part);
    DLSCHED_EXPECT(!token.empty(),
                   where + ": key '" + key + "': empty array element");
    if (token.size() >= 2 && token.front() == '"' && token.back() == '"') {
      token = token.substr(1, token.size() - 2);
    }
    value.items.push_back(std::move(token));
  }
  if (!value.is_array) {
    DLSCHED_EXPECT(value.items.size() == 1,
                   where + ": key '" + key +
                       "': commas outside an array (use [..])");
  }
  return value;
}

/// Cuts a trailing `# comment` that is not inside a quoted string.
std::string strip_comment(const std::string& line) {
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '"') in_string = !in_string;
    if (line[i] == '#' && !in_string) return line.substr(0, i);
  }
  return line;
}

const char* kKnownKeys =
    "name, title, figure, kind, generator, workers, z, send_latencies, "
    "return_latencies, compute_latency, repetitions, seed, solvers, "
    "baseline, precision, time_budget_seconds, max_workers_brute, "
    "matrix_sizes, platforms, total_tasks, comm_speed_up, comp_speed_up, "
    "include_inc_w, x, latencies, max_rounds, churn_events";

void apply_key(ExperimentSpec& spec, const std::string& key,
               const TomlValue& value, const std::string& where) {
  if (key == "name") {
    spec.name = value.scalar(key);
  } else if (key == "title") {
    spec.title = value.scalar(key);
  } else if (key == "figure") {
    spec.figure = value.scalar(key);
  } else if (key == "kind") {
    spec.kind = kind_from_name(value.scalar(key));
  } else if (key == "generator") {
    spec.generator = value.scalar(key);
  } else if (key == "workers") {
    spec.workers = to_sizes(value, key);
  } else if (key == "z") {
    spec.z_values = to_doubles(value, key);
  } else if (key == "send_latencies") {
    spec.send_latencies = to_doubles(value, key);
  } else if (key == "return_latencies") {
    spec.return_latencies = to_doubles(value, key);
  } else if (key == "compute_latency") {
    spec.compute_latency = to_double(value.scalar(key), key);
  } else if (key == "repetitions") {
    spec.repetitions = static_cast<std::size_t>(
        to_uint(value.scalar(key), key));
  } else if (key == "seed") {
    spec.seed = to_uint(value.scalar(key), key);
  } else if (key == "solvers") {
    spec.solvers = value.items;
  } else if (key == "baseline") {
    spec.baseline = value.scalar(key);
  } else if (key == "precision") {
    const std::string& p = value.scalar(key);
    if (p == "exact") {
      spec.precision = Precision::Exact;
    } else if (p == "fast") {
      spec.precision = Precision::Fast;
    } else {
      DLSCHED_FAIL(where + ": precision must be \"exact\" or \"fast\"");
    }
  } else if (key == "time_budget_seconds") {
    spec.time_budget_seconds = to_double(value.scalar(key), key);
  } else if (key == "max_workers_brute") {
    spec.max_workers_brute = static_cast<std::size_t>(
        to_uint(value.scalar(key), key));
  } else if (key == "matrix_sizes") {
    spec.matrix_sizes = to_sizes(value, key);
  } else if (key == "platforms") {
    spec.platforms = static_cast<std::size_t>(
        to_uint(value.scalar(key), key));
  } else if (key == "total_tasks") {
    spec.total_tasks = to_uint(value.scalar(key), key);
  } else if (key == "comm_speed_up") {
    spec.comm_speed_up = to_double(value.scalar(key), key);
  } else if (key == "comp_speed_up") {
    spec.comp_speed_up = to_double(value.scalar(key), key);
  } else if (key == "include_inc_w") {
    spec.include_inc_w = to_bool(value.scalar(key), key);
  } else if (key == "x") {
    spec.x_values = to_doubles(value, key);
  } else if (key == "latencies") {
    spec.latencies = to_doubles(value, key);
  } else if (key == "max_rounds") {
    spec.max_rounds = static_cast<std::size_t>(
        to_uint(value.scalar(key), key));
  } else if (key == "churn_events") {
    spec.churn_events = static_cast<std::size_t>(
        to_uint(value.scalar(key), key));
  } else {
    DLSCHED_FAIL(where + ": unknown key '" + key +
                 "' (known: " + kKnownKeys + ")");
  }
}

}  // namespace

ExperimentSpec parse_spec_toml(const std::string& text,
                               const std::string& source) {
  ExperimentSpec spec;
  std::string section;
  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = trim(strip_comment(raw));
    if (line.empty()) continue;
    const std::string where =
        source + ":" + std::to_string(line_no);
    if (line.front() == '[') {
      DLSCHED_EXPECT(line.back() == ']', where + ": malformed section");
      section = trim(line.substr(1, line.size() - 2));
      DLSCHED_EXPECT(section == "generator.params" || section == "spec",
                     where + ": unknown section [" + section +
                         "] (known: [spec], [generator.params])");
      continue;
    }
    const std::size_t eq = line.find('=');
    DLSCHED_EXPECT(eq != std::string::npos,
                   where + ": expected `key = value`");
    const std::string key = trim(line.substr(0, eq));
    const TomlValue value = parse_value(line.substr(eq + 1), key, where);
    if (section == "generator.params") {
      spec.generator_params[key] = to_double(value.scalar(key), key);
    } else {
      apply_key(spec, key, value, where);
    }
  }
  return spec;
}

namespace {

/// C99 hexfloat: `std::stod` (under `to_double`) parses it back to the
/// identical bit pattern, unlike any decimal rendering of finite width.
std::string hex_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", value);
  return buf;
}

void render_string(std::ostream& out, const char* key,
                   const std::string& value) {
  DLSCHED_EXPECT(value.find('"') == std::string::npos &&
                     value.find('\n') == std::string::npos,
                 std::string("render_spec_toml: key '") + key +
                     "' holds a quote or newline");
  out << key << " = \"" << value << "\"\n";
}

void render_sizes(std::ostream& out, const char* key,
                  const std::vector<std::size_t>& values) {
  out << key << " = [";
  for (std::size_t i = 0; i < values.size(); ++i) {
    out << (i ? ", " : "") << values[i];
  }
  out << "]\n";
}

void render_doubles(std::ostream& out, const char* key,
                    const std::vector<double>& values) {
  out << key << " = [";
  for (std::size_t i = 0; i < values.size(); ++i) {
    out << (i ? ", " : "") << hex_double(values[i]);
  }
  out << "]\n";
}

}  // namespace

std::string render_spec_toml(const ExperimentSpec& spec) {
  std::ostringstream out;
  render_string(out, "name", spec.name);
  render_string(out, "title", spec.title);
  render_string(out, "figure", spec.figure);
  render_string(out, "kind", kind_name(spec.kind));
  render_string(out, "generator", spec.generator);
  render_sizes(out, "workers", spec.workers);
  render_doubles(out, "z", spec.z_values);
  render_doubles(out, "send_latencies", spec.send_latencies);
  render_doubles(out, "return_latencies", spec.return_latencies);
  out << "compute_latency = " << hex_double(spec.compute_latency) << '\n';
  out << "repetitions = " << spec.repetitions << '\n';
  out << "seed = " << spec.seed << '\n';
  out << "solvers = [";
  for (std::size_t i = 0; i < spec.solvers.size(); ++i) {
    out << (i ? ", " : "") << '"' << spec.solvers[i] << '"';
  }
  out << "]\n";
  render_string(out, "baseline", spec.baseline);
  render_string(out, "precision",
                spec.precision == Precision::Exact ? "exact" : "fast");
  out << "time_budget_seconds = " << hex_double(spec.time_budget_seconds)
      << '\n';
  out << "max_workers_brute = " << spec.max_workers_brute << '\n';
  render_sizes(out, "matrix_sizes", spec.matrix_sizes);
  out << "platforms = " << spec.platforms << '\n';
  out << "total_tasks = " << spec.total_tasks << '\n';
  out << "comm_speed_up = " << hex_double(spec.comm_speed_up) << '\n';
  out << "comp_speed_up = " << hex_double(spec.comp_speed_up) << '\n';
  out << "include_inc_w = " << (spec.include_inc_w ? "true" : "false")
      << '\n';
  render_doubles(out, "x", spec.x_values);
  render_doubles(out, "latencies", spec.latencies);
  out << "max_rounds = " << spec.max_rounds << '\n';
  out << "churn_events = " << spec.churn_events << '\n';
  if (!spec.generator_params.empty()) {
    out << "[generator.params]\n";
    for (const auto& [key, value] : spec.generator_params) {
      out << key << " = " << hex_double(value) << '\n';
    }
  }
  return out.str();
}

ExperimentSpec load_spec_file(const std::string& path) {
  std::ifstream in(path);
  DLSCHED_EXPECT(in.good(), "cannot read spec file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  ExperimentSpec spec = parse_spec_toml(text.str(), path);
  if (spec.name.empty()) {
    spec.name = std::filesystem::path(path).stem().string();
  }
  return spec;
}

void validate_spec(const ExperimentSpec& spec) {
  DLSCHED_EXPECT(!spec.name.empty(), "spec has no name");
  const std::string who = "spec '" + spec.name + "'";
  DLSCHED_EXPECT(spec.repetitions > 0, who + ": repetitions must be >= 1");
  const bool uses_generator =
      spec.kind == SpecKind::Grid || spec.kind == SpecKind::Ensemble ||
      spec.kind == SpecKind::Selection || spec.kind == SpecKind::Churn;
  if (uses_generator) {
    // Resolves the name (throws with candidates on a miss) without
    // building a platform.
    DLSCHED_EXPECT(gen::GeneratorRegistry::instance().contains(spec.generator),
                   who + ": unknown generator '" + spec.generator +
                       "' (see dlsched_bench --list-generators)");
  }
  if (spec.kind == SpecKind::Grid || spec.kind == SpecKind::Selection) {
    const SolverRegistry& registry = SolverRegistry::instance();
    for (const std::string& solver : spec.solvers) {
      (void)registry.create(solver);  // throws with known names on a miss
    }
    if (!spec.baseline.empty()) (void)registry.create(spec.baseline);
  }
  if (spec.kind == SpecKind::Ensemble) {
    DLSCHED_EXPECT(!spec.matrix_sizes.empty(),
                   who + ": ensemble specs need matrix_sizes");
    DLSCHED_EXPECT(spec.platforms > 0, who + ": platforms must be >= 1");
  }
  if (spec.kind == SpecKind::Participation) {
    DLSCHED_EXPECT(!spec.x_values.empty(),
                   who + ": participation specs need x values");
  }
  if (spec.kind == SpecKind::Multiround) {
    DLSCHED_EXPECT(!spec.latencies.empty() && spec.max_rounds > 0,
                   who + ": multiround specs need latencies and max_rounds");
  }
  if (spec.kind == SpecKind::Churn) {
    DLSCHED_EXPECT(spec.churn_events > 0,
                   who + ": churn specs need churn_events >= 1");
  }
  if (!spec.send_latencies.empty() || !spec.return_latencies.empty() ||
      spec.compute_latency != 0.0) {
    DLSCHED_EXPECT(spec.kind == SpecKind::Grid,
                   who + ": latency axes apply to grid specs only");
    for (const double v : spec.send_latencies) {
      DLSCHED_EXPECT(v >= 0.0, who + ": send latencies must be >= 0");
    }
    for (const double v : spec.return_latencies) {
      DLSCHED_EXPECT(v >= 0.0, who + ": return latencies must be >= 0");
    }
    DLSCHED_EXPECT(spec.compute_latency >= 0.0,
                   who + ": compute_latency must be >= 0");
  }
}

namespace {

/// One `key=value` filter clause; `value` may be a |-separated list.
void apply_filter_clause(ExperimentSpec& spec, const std::string& key,
                         const std::string& value) {
  std::vector<std::string> wanted;
  std::string token;
  for (const char ch : value) {
    if (ch == '|') {
      wanted.push_back(token);
      token.clear();
    } else {
      token += ch;
    }
  }
  wanted.push_back(token);
  DLSCHED_EXPECT(!value.empty() && !wanted.empty(),
                 "--filter: key '" + key + "' has no value");

  const auto keep_doubles = [&](std::vector<double>& axis,
                                const char* what) {
    std::vector<double> keep;
    for (const std::string& item : wanted) {
      const double v = to_double(item, key);
      DLSCHED_EXPECT(std::find(axis.begin(), axis.end(), v) != axis.end(),
                     "--filter: " + std::string(what) + " value '" + item +
                         "' is not on the spec's axis");
      keep.push_back(v);
    }
    // Preserve the spec's axis order (planner order must stay canonical).
    std::vector<double> filtered;
    for (const double v : axis) {
      if (std::find(keep.begin(), keep.end(), v) != keep.end()) {
        filtered.push_back(v);
      }
    }
    axis = std::move(filtered);
  };

  if (key == "p") {
    std::vector<std::size_t> keep;
    for (const std::string& item : wanted) {
      const auto v = static_cast<std::size_t>(to_uint(item, key));
      DLSCHED_EXPECT(std::find(spec.workers.begin(), spec.workers.end(),
                               v) != spec.workers.end(),
                     "--filter: p value '" + item +
                         "' is not on the spec's axis");
      keep.push_back(v);
    }
    std::vector<std::size_t> filtered;
    for (const std::size_t v : spec.workers) {
      if (std::find(keep.begin(), keep.end(), v) != keep.end()) {
        filtered.push_back(v);
      }
    }
    spec.workers = std::move(filtered);
  } else if (key == "z") {
    keep_doubles(spec.z_values, "z");
  } else if (key == "send_latency") {
    keep_doubles(spec.send_latencies, "send_latency");
  } else if (key == "return_latency") {
    keep_doubles(spec.return_latencies, "return_latency");
  } else if (key == "solver") {
    std::vector<std::string> all = spec.solvers.empty()
                                       ? SolverRegistry::instance().names()
                                       : spec.solvers;
    std::vector<std::string> filtered;
    for (const std::string& name : all) {
      if (std::find(wanted.begin(), wanted.end(), name) != wanted.end()) {
        filtered.push_back(name);
      }
    }
    for (const std::string& item : wanted) {
      DLSCHED_EXPECT(std::find(all.begin(), all.end(), item) != all.end(),
                     "--filter: solver '" + item +
                         "' is not in the spec's solver set");
    }
    spec.solvers = std::move(filtered);
  } else if (key == "repetitions") {
    const auto cap = static_cast<std::size_t>(to_uint(value, key));
    DLSCHED_EXPECT(cap >= 1, "--filter: repetitions must be >= 1");
    spec.repetitions = std::min(spec.repetitions, cap);
  } else {
    DLSCHED_FAIL("--filter: unknown key '" + key +
                 "' (known: p, z, send_latency, return_latency, solver, "
                 "repetitions)");
  }
}

}  // namespace

void apply_spec_filter(ExperimentSpec& spec, const std::string& filter) {
  std::string clause;
  const auto apply = [&](const std::string& text) {
    if (trim(text).empty()) return;
    const std::size_t eq = text.find('=');
    DLSCHED_EXPECT(eq != std::string::npos,
                   "--filter wants comma-separated key=value pairs (got '" +
                       text + "')");
    apply_filter_clause(spec, trim(text.substr(0, eq)),
                        trim(text.substr(eq + 1)));
  };
  for (const char ch : filter) {
    if (ch == ',') {
      apply(clause);
      clause.clear();
    } else {
      clause += ch;
    }
  }
  apply(clause);
}

}  // namespace dlsched::experiments
