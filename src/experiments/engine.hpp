// The experiment engine: compiles an `ExperimentSpec` into a job grid,
// executes it through the cached, sharded `solve_batch` pipeline, and
// streams machine-readable JSON (`BENCH_<spec>.json`) plus the figure-data
// CSV.  The engine is the single entry point behind `dlsched_bench` and
// the CLI's `bench` subcommand; adding a sweep means writing a spec, not a
// binary.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "experiments/cache.hpp"
#include "experiments/spec.hpp"
#include "obs/trace.hpp"

namespace dlsched::experiments {

struct RunOptions {
  std::string out_json;    ///< BENCH_*.json path; empty = don't write
  std::string out_csv;     ///< figure-data CSV path; empty = don't write
  std::string cache_dir;   ///< result-cache directory; empty = no cache
  std::size_t threads = 0; ///< solve_batch pool size (0 = hardware)
  bool quick = false;      ///< shrink axes (CI smoke / tests)
  std::ostream* log = nullptr;  ///< tables + summary; null = std::cout

  // ----- distributed execution (grid specs only; the shard board lives in
  // the shared cache directory -- see experiments/scheduler.hpp) -----------
  std::size_t workers = 1;       ///< >1: fork N work-stealing worker processes
  std::size_t shard_count = 0;   ///< `--shard i/k` slice mode (0 = off):
  std::size_t shard_index = 0;   ///<   execute shards with index % k == i,
                                 ///<   publish fragments, skip artifacts
  bool join_only = false;        ///< assemble published fragments, no solving
  double stale_seconds = 300.0;  ///< claim heartbeat timeout before stealing

  // ----- cluster execution (grid specs only; the claim board lives in a
  // TCP coordinator -- see service/coordinator.hpp) ------------------------
  std::string coordinator;       ///< "HOST:PORT" to listen on ("" = off)
  std::size_t cluster_workers = 0;  ///< local TCP worker processes to fork
  bool autoscale = false;        ///< size the local fleet to the backlog
  std::size_t autoscale_max = 0; ///< autoscale cap (0 = hardware)
  double lease_ttl_seconds = 30.0;  ///< shard lease TTL before reassignment
  /// When set, a nonzero value drains the coordinator mid-run (the signal
  /// handler hook for SIGTERM/SIGINT graceful shutdown).
  const std::atomic<int>* stop_signal = nullptr;

  // ----- cache hygiene ----------------------------------------------------
  std::uint64_t cache_max_bytes = 0;  ///< LRU-evict down to this (0 = off)

  // ----- observability ----------------------------------------------------
  /// `--trace PATH`: merge every process's spans into one Chrome
  /// trace_event JSON timeline (Perfetto-loadable).  Requires the caller
  /// to have enabled `obs::Tracer` before the run starts.
  std::string trace_path;
  /// When set, `wall_seconds` (and the root span) is measured from this
  /// instant instead of run_spec entry -- the driver stamps it before
  /// spec parsing so the reported wall time matches `/usr/bin/time`.
  std::optional<std::chrono::steady_clock::time_point> run_epoch;
};

/// What one spec run did.  `cache_hits`/`deduped` are the re-use counters
/// the acceptance criteria ask to see: a second run of an overlapping
/// sweep should report `cache_hits == jobs` and identical artifacts.
struct RunSummary {
  std::string spec;
  std::size_t jobs = 0;           ///< solver jobs the grid enumerated
  std::size_t cache_hits = 0;     ///< served from the result cache
  std::size_t deduped = 0;        ///< served by within-batch dedupe
  std::size_t solved = 0;         ///< actually executed solves
  std::size_t failures = 0;       ///< solve errors + validation failures
  std::size_t skipped = 0;        ///< solver inapplicable at a grid point
  std::size_t rows = 0;           ///< JSON rows emitted
  std::size_t shards = 0;         ///< grid shards planned (or sliced/joined)
  std::size_t evicted = 0;        ///< cache entries LRU-evicted post-run
  double wall_seconds = 0.0;
  CacheStats cache;               ///< final cache counters (incl. stores)
  /// Per-phase wall attribution (traced runs only: span count and total
  /// span seconds per category, merged across every process).
  std::vector<obs::PhaseAttribution> phases;

  /// One-line human summary ("smoke: 16 jobs, 16 cache hits, ...").
  [[nodiscard]] std::string describe() const;
};

/// Runs one spec end to end.  Throws dlsched::Error on structural
/// problems (unknown generator/solver, unwritable outputs); individual
/// job failures are recorded in the summary and the rows instead.
[[nodiscard]] RunSummary run_spec(const ExperimentSpec& spec,
                                  const RunOptions& options);

/// Deterministic per-instance seed: a stable mix of the spec's seed block
/// and the grid coordinates, so overlapping specs (a subset of another's
/// axes) regenerate identical platforms and hit the shared cache.
[[nodiscard]] std::uint64_t instance_seed(std::uint64_t base, std::size_t p,
                                          double z, std::size_t rep);

/// One cached solve outside a batch: cache lookup, else solve + validate +
/// store.  Shared by the special-shaped figure runners (fig14, fig09).
struct CachedRun {
  CachedSolve solve;
  bool from_cache = false;
};
[[nodiscard]] CachedRun run_solver_cached(ResultCache& cache,
                                          const std::string& solver,
                                          const SolveRequest& request);

}  // namespace dlsched::experiments
