// The dlsched_bench command driver, shared verbatim by the standalone
// binary (bench/dlsched_bench.cpp) and the CLI's `bench` subcommand so
// their options can never drift apart.
#pragma once

#include <string>
#include <vector>

namespace dlsched {
class CliArgs;
}

namespace dlsched::experiments {

/// The value-less options the driver understands; callers must append
/// these to their `CliArgs::parse` flag list.
[[nodiscard]] const std::vector<std::string>& bench_flags();

/// Runs one bench invocation from parsed arguments:
///   --list-specs | --list-generators | --all |
///   --spec NAME | --spec-file FILE
///   [--out FILE] [--csv FILE] [--no-json] [--no-csv]
///   [--cache-dir DIR] [--no-cache] [--cache-max-bytes N]
///   [--threads N] [--quick] [--seed N] [--repetitions N]
///   [--workers N] [--shard i/k] [--join] [--stale-seconds S]
///   [--coordinator HOST:PORT [--workers N|auto[:MAX]] [--lease-ttl S]]
///   | --worker tcp://HOST:PORT [--worker-id ID] [--scratch-dir DIR]
///     [--abandon-after N]
/// Returns a process exit code (0 ok, 1 failures, 2 usage).
[[nodiscard]] int bench_main(const CliArgs& args);

}  // namespace dlsched::experiments
