#include "experiments/figures.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/solver.hpp"
#include "core/throughput.hpp"
#include "schedule/rounding.hpp"
#include "sim/des_executor.hpp"
#include "util/stats.hpp"

namespace dlsched::experiments {

HeuristicTimes run_heuristic(const StarPlatform& platform,
                             Heuristic heuristic,
                             std::uint64_t total_tasks,
                             std::uint64_t noise_seed) {
  SolveRequest request;
  request.platform = platform;
  request.precision = Precision::Fast;
  const ScenarioSolutionD solution =
      SolverRegistry::instance()
          .run(solver_name_for(heuristic), request)
          .solution_double();
  HeuristicTimes times;
  times.lp = makespan_for_load(solution.throughput,
                               static_cast<double>(total_tasks));

  // Integral loads per the paper's rounding policy (sigma_1 order).
  std::vector<double> ordered;
  ordered.reserve(solution.scenario.send_order.size());
  const double scale = static_cast<double>(total_tasks) / solution.throughput;
  for (std::size_t w : solution.scenario.send_order) {
    ordered.push_back(solution.alpha[w] * scale);
  }
  const std::vector<std::uint64_t> integral =
      round_loads(ordered, total_tasks);
  std::vector<double> loads(platform.size(), 0.0);
  for (std::size_t k = 0; k < solution.scenario.send_order.size(); ++k) {
    loads[solution.scenario.send_order[k]] =
        static_cast<double>(integral[k]);
  }

  const sim::DesResult result =
      sim::execute(platform, solution.scenario, loads,
                   sim::NoiseModel::cluster_like(noise_seed));
  times.real = result.makespan;
  return times;
}

namespace {

/// The six raw numbers one trial contributes.
struct TrialOutcome {
  double inc_c_lp = 0.0;
  double inc_c_ratio = 0.0;
  double inc_w_ratio_lp = 0.0;
  double inc_w_ratio_real = 0.0;
  double lifo_ratio_lp = 0.0;
  double lifo_ratio_real = 0.0;
};

}  // namespace

EnsembleRow run_ensemble(const FigureConfig& config,
                         const SpeedGenerator& generator,
                         std::size_t matrix_size, bool include_inc_w) {
  MatrixApp::Config app_config;
  app_config.matrix_size = matrix_size;
  const MatrixApp app(app_config);

  // Seeds derived sequentially so results do not depend on thread count.
  Rng master_rng(config.seed + matrix_size);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seeds(
      config.platforms);
  for (auto& s : seeds) {
    s.first = master_rng.fork_seed();   // platform stream
    s.second = master_rng.fork_seed();  // noise stream
  }

  std::vector<TrialOutcome> outcomes(config.platforms);
  auto run_trial = [&](std::size_t trial) {
    Rng platform_rng(seeds[trial].first);
    const std::uint64_t noise_seed = seeds[trial].second;
    StarPlatform platform =
        app.platform(generator(config.workers, platform_rng));
    if (config.comm_speed_up != 1.0 || config.comp_speed_up != 1.0) {
      platform = platform.speed_up(config.comm_speed_up,
                                   config.comp_speed_up);
    }
    const HeuristicTimes inc_c = run_heuristic(
        platform, Heuristic::IncC, config.total_tasks, noise_seed);
    const HeuristicTimes lifo = run_heuristic(
        platform, Heuristic::Lifo, config.total_tasks, noise_seed ^ 0x10);
    TrialOutcome& out = outcomes[trial];
    out.inc_c_lp = inc_c.lp;
    out.inc_c_ratio = inc_c.real / inc_c.lp;
    out.lifo_ratio_lp = lifo.lp / inc_c.lp;
    out.lifo_ratio_real = lifo.real / inc_c.lp;
    if (include_inc_w) {
      const HeuristicTimes inc_w = run_heuristic(
          platform, Heuristic::IncW, config.total_tasks, noise_seed ^ 0x20);
      out.inc_w_ratio_lp = inc_w.lp / inc_c.lp;
      out.inc_w_ratio_real = inc_w.real / inc_c.lp;
    }
  };

  std::size_t thread_count = config.threads != 0
                                 ? config.threads
                                 : std::thread::hardware_concurrency();
  thread_count = std::max<std::size_t>(1, std::min(thread_count,
                                                   config.platforms));
  if (thread_count == 1) {
    for (std::size_t trial = 0; trial < config.platforms; ++trial) {
      run_trial(trial);
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(thread_count);
    for (std::size_t t = 0; t < thread_count; ++t) {
      pool.emplace_back([&] {
        for (std::size_t trial = next.fetch_add(1);
             trial < config.platforms; trial = next.fetch_add(1)) {
          run_trial(trial);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  // Deterministic fold in trial order.
  Accumulator inc_c_lp;
  Accumulator inc_c_real;
  Accumulator inc_w_lp;
  Accumulator inc_w_real;
  Accumulator lifo_lp;
  Accumulator lifo_real;
  for (const TrialOutcome& out : outcomes) {
    inc_c_lp.add(out.inc_c_lp);
    inc_c_real.add(out.inc_c_ratio);
    lifo_lp.add(out.lifo_ratio_lp);
    lifo_real.add(out.lifo_ratio_real);
    if (include_inc_w) {
      inc_w_lp.add(out.inc_w_ratio_lp);
      inc_w_real.add(out.inc_w_ratio_real);
    }
  }

  EnsembleRow row;
  row.matrix_size = matrix_size;
  row.inc_c_lp = inc_c_lp.mean();
  row.inc_c_real_ratio = inc_c_real.mean();
  row.lifo_lp_ratio = lifo_lp.mean();
  row.lifo_real_ratio = lifo_real.mean();
  if (include_inc_w) {
    row.inc_w_lp_ratio = inc_w_lp.mean();
    row.inc_w_real_ratio = inc_w_real.mean();
  }
  return row;
}

}  // namespace dlsched::experiments
