// Deterministic machine-readable output for the experiment engine.
//
// `BenchJsonWriter` streams `BENCH_<spec>.json`: a header object carrying
// the spec's identity plus a `rows` array with one object per
// (solver, instance) measurement.  `CsvWriter` streams the figure-data
// CSV.  All doubles are rendered with round-trip precision ("%.17g"
// semantics) so a cached re-run emits byte-identical files.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace dlsched::experiments {

struct ExperimentSpec;

/// Renders a double as round-trip JSON (nan/inf become null).
[[nodiscard]] std::string json_double(double value);
/// Escapes a string for JSON (quotes included).
[[nodiscard]] std::string json_string(const std::string& text);

/// An ordered field list rendered as one JSON object.  Insertion order is
/// emission order, so rows stay diffable.
class JsonObject {
 public:
  JsonObject& add(const std::string& name, const std::string& value);
  JsonObject& add(const std::string& name, const char* value);
  JsonObject& add(const std::string& name, double value);
  JsonObject& add(const std::string& name, bool value);
  JsonObject& add(const std::string& name, std::size_t value);
  JsonObject& add(const std::string& name, int value);
  /// Pre-rendered JSON (for nested arrays/objects).
  JsonObject& add_raw(const std::string& name, std::string json);

  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Renders a string list as a JSON array.
[[nodiscard]] std::string json_string_array(
    const std::vector<std::string>& values);

/// Renders an index list (participant sets, orders) as a JSON array.
[[nodiscard]] std::string json_index_array(
    const std::vector<std::size_t>& values);

/// Renders a double list (axis values) as a JSON array.
[[nodiscard]] std::string json_double_array(const std::vector<double>& values);

/// Streams `{"spec": {...}, "rows": [...]}`.  The header is derived from
/// the spec (name, title, figure, kind, generator, axes, solver list) and
/// contains nothing run-dependent -- cache summaries go to the log, never
/// into the artifact, so re-runs stay byte-identical.
class BenchJsonWriter {
 public:
  BenchJsonWriter(std::ostream& out, const ExperimentSpec& spec,
                  const std::vector<std::string>& resolved_solvers);
  ~BenchJsonWriter();

  void row(const JsonObject& object);
  /// Streams an already-rendered row object (the shard-join path replays
  /// rows rendered by worker processes byte for byte).
  void raw_row(const std::string& rendered);
  /// Queues a named pre-rendered JSON section emitted after the rows
  /// array by `finish()`.  Only traced runs add one (the per-phase
  /// attribution table), so untraced artifacts stay byte-identical.
  void add_trailer_raw(const std::string& name, std::string json);
  /// Closes the rows array and the document (idempotent).
  void finish();

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ostream& out_;
  std::size_t rows_ = 0;
  bool finished_ = false;
  std::vector<std::pair<std::string, std::string>> trailers_;
};

/// Streams a CSV with a fixed header; numeric cells are rendered with
/// round-trip precision by the `cell` helpers.
class CsvWriter {
 public:
  CsvWriter(std::ostream& out, const std::vector<std::string>& header);

  CsvWriter& cell(const std::string& value);
  CsvWriter& cell(double value);
  CsvWriter& cell(std::size_t value);
  /// Terminates the current row.
  void end_row();

 private:
  std::ostream& out_;
  std::size_t columns_;
  std::vector<std::string> current_;
};

}  // namespace dlsched::experiments
