// Shared machinery of the figure-reproduction benches (paper Section 5).
//
// Every experiment follows the paper's template: generate an ensemble of
// random platforms from speed factors in [1, 10], schedule M = 1000 matrix
// products with each heuristic via the LP, round to integral tasks, and
// execute "for real" -- here on the discrete-event simulator with a
// cluster-like noise model standing in for the MPI testbed.  Results are
// normalized by the INC_C LP prediction, exactly like the paper's plots.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/heuristics.hpp"
#include "platform/generators.hpp"
#include "platform/matrix_app.hpp"
#include "sim/noise.hpp"
#include "util/rng.hpp"

namespace dlsched::experiments {

/// Experiment-wide constants (paper Section 5.1).
struct FigureConfig {
  std::uint64_t total_tasks = 1000;     ///< M
  std::size_t workers = 11;             ///< 12-node cluster: 1 master + 11
  std::size_t platforms = 50;           ///< ensemble size per data point
  std::uint64_t seed = 20061408;        ///< base seed (deterministic)
  double comm_speed_up = 1.0;           ///< Figure 13(b) uses 10
  double comp_speed_up = 1.0;           ///< Figure 13(a) uses 10
  /// Worker threads for the ensemble (0 = hardware concurrency).  Results
  /// are bit-identical regardless of thread count: per-trial seeds are
  /// derived up front and trial results folded in trial order.
  std::size_t threads = 0;
};

/// A generator of per-platform speed factors.
using SpeedGenerator =
    std::function<std::vector<WorkerSpeeds>(std::size_t, Rng&)>;

/// One heuristic's outcome on one platform.
struct HeuristicTimes {
  double lp = 0.0;    ///< LP-predicted makespan for M tasks
  double real = 0.0;  ///< DES-with-noise makespan (integral tasks)
};

/// Schedules and "executes" one heuristic on one platform.
[[nodiscard]] HeuristicTimes run_heuristic(const StarPlatform& platform,
                                           Heuristic heuristic,
                                           std::uint64_t total_tasks,
                                           std::uint64_t noise_seed);

/// One row of a Figures 10-13 style table: the six normalized series.
struct EnsembleRow {
  std::size_t matrix_size = 0;
  double inc_c_lp = 0.0;        ///< absolute seconds (the normalizer)
  double inc_c_real_ratio = 0.0;
  double inc_w_lp_ratio = 0.0;
  double inc_w_real_ratio = 0.0;
  double lifo_lp_ratio = 0.0;
  double lifo_real_ratio = 0.0;
};

/// Runs the full ensemble for one matrix size.  The engine's Ensemble kind
/// (experiments/engine.hpp) drives this per spec and handles presentation.
[[nodiscard]] EnsembleRow run_ensemble(const FigureConfig& config,
                                       const SpeedGenerator& generator,
                                       std::size_t matrix_size,
                                       bool include_inc_w);

}  // namespace dlsched::experiments
