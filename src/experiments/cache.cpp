#include "experiments/cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace dlsched::experiments {

namespace fs = std::filesystem;

CachedSolve cached_from_outcome(const BatchOutcome& outcome) {
  CachedSolve solve;
  solve.solver = outcome.solver;
  solve.solved = outcome.solved;
  solve.validated = outcome.ok;
  solve.error = outcome.error;
  solve.validate_seconds = outcome.validate_seconds;
  if (!outcome.solved) return solve;
  const SolveResult& result = outcome.result;
  solve.throughput = result.throughput();
  solve.alpha = result.solution.alpha_double();
  solve.send_order = result.solution.scenario.send_order;
  solve.return_order = result.solution.scenario.return_order;
  solve.workers_used = result.solution.enrolled().size();
  solve.provably_optimal = result.provably_optimal;
  solve.mirrored = result.mirrored;
  solve.used_two_port = result.used_two_port;
  solve.exact = result.exact;
  solve.budget_exhausted = result.budget_exhausted;
  solve.has_alt = result.alt_throughput.has_value();
  if (solve.has_alt) solve.alt_throughput = result.alt_throughput->to_double();
  solve.scenarios_tried = result.scenarios_tried;
  solve.lp_evaluations = result.lp_evaluations;
  solve.best_rounds = result.best_rounds;
  solve.lp_pivots = result.solution.lp_pivots;
  solve.lp_fallbacks = result.lp_fallbacks;
  solve.lp_warm_starts = result.lp_warm_starts;
  solve.lp_pivots_saved = result.lp_pivots_saved;
  solve.subsets_pruned = result.subsets_pruned;
  solve.subsets_screened = result.subsets_screened;
  solve.arena_acquires = result.arena_acquires;
  solve.arena_pool_hits = result.arena_pool_hits;
  solve.wall_seconds = result.wall_seconds;
  solve.participants = result.participants;
  solve.replayed = result.replayed;
  solve.replay_makespan = result.replay_makespan;
  solve.replay_rel_error = result.replay_rel_error;
  return solve;
}

ScenarioSolutionD solution_from_cached(const CachedSolve& solve) {
  DLSCHED_EXPECT(solve.solved, "cannot replay an unsolved cache entry");
  ScenarioSolutionD solution;
  solution.throughput = solve.throughput;
  solution.alpha = solve.alpha;
  solution.scenario = Scenario::general(solve.send_order, solve.return_order);
  return solution;
}

// ----------------------------------------------------------- serialization --

// Entry files are a line-oriented text format; doubles travel as 64-bit
// hex bit patterns so a cached value replays the original run's numbers
// exactly, and free-form text (the key, error messages) is length-prefixed.
// The primitives are shared with the shard-result fragments (shard.cpp).

namespace detail {

void put_double(std::ostream& out, double value) {
  out << std::hex << std::bit_cast<std::uint64_t>(value) << std::dec;
}

double get_double(std::istream& in) {
  std::uint64_t bits = 0;
  in >> std::hex >> bits >> std::dec;
  return std::bit_cast<double>(bits);
}

void put_blob(std::ostream& out, const std::string& label,
              const std::string& text) {
  out << label << ' ' << text.size() << '\n' << text << '\n';
}

std::string get_blob(std::istream& in, const std::string& label) {
  std::string seen;
  std::size_t size = 0;
  in >> seen >> size;
  DLSCHED_EXPECT(seen == label && in.good(),
                 "cache entry: expected '" + label + "' blob");
  in.ignore(1);  // the newline after the size
  std::string text(size, '\0');
  in.read(text.data(), static_cast<std::streamsize>(size));
  in.ignore(1);
  DLSCHED_EXPECT(in.good(), "cache entry: truncated '" + label + "' blob");
  return text;
}

}  // namespace detail

namespace {

using detail::get_blob;
using detail::get_double;
using detail::put_blob;
using detail::put_double;

void put_indices(std::ostream& out, const std::string& label,
                 const std::vector<std::size_t>& values) {
  out << label << ' ' << values.size();
  for (const std::size_t v : values) out << ' ' << v;
  out << '\n';
}

std::vector<std::size_t> get_indices(std::istream& in,
                                     const std::string& label) {
  std::string seen;
  std::size_t count = 0;
  in >> seen >> count;
  DLSCHED_EXPECT(seen == label && in.good(),
                 "cache entry: expected '" + label + "' list");
  std::vector<std::size_t> values(count);
  for (std::size_t& v : values) in >> v;
  return values;
}

std::string serialize(const std::string& canonical_key,
                      const CachedSolve& s) {
  std::ostringstream out;
  // Version 4 added the warm-start / pruning counters; version 3 the
  // pivot / fallback / limb-arena counters; version 2 the participant set
  // and the affine replay certificate.  Entries of older versions degrade
  // to misses and are re-solved.
  out << "dlsched-cache 5\n";
  put_blob(out, "key", canonical_key);
  put_blob(out, "solver", s.solver);
  put_blob(out, "error", s.error);
  out << "flags " << s.solved << ' ' << s.validated << ' '
      << s.provably_optimal << ' ' << s.mirrored << ' ' << s.used_two_port
      << ' ' << s.exact << ' ' << s.budget_exhausted << ' ' << s.has_alt
      << ' ' << s.replayed << '\n';
  out << "counts " << s.workers_used << ' ' << s.scenarios_tried << ' '
      << s.lp_evaluations << ' ' << s.best_rounds << ' ' << s.lp_pivots
      << ' ' << s.lp_fallbacks << ' ' << s.lp_warm_starts << ' '
      << s.lp_pivots_saved << ' ' << s.subsets_pruned << ' '
      << s.subsets_screened << ' ' << s.arena_acquires << ' '
      << s.arena_pool_hits << '\n';
  out << "scalars ";
  put_double(out, s.throughput);
  out << ' ';
  put_double(out, s.alt_throughput);
  out << ' ';
  put_double(out, s.wall_seconds);
  out << ' ';
  put_double(out, s.validate_seconds);
  out << ' ';
  put_double(out, s.replay_makespan);
  out << ' ';
  put_double(out, s.replay_rel_error);
  out << '\n';
  out << "alpha " << s.alpha.size();
  for (const double a : s.alpha) {
    out << ' ';
    put_double(out, a);
  }
  out << '\n';
  put_indices(out, "send", s.send_order);
  put_indices(out, "ret", s.return_order);
  put_indices(out, "part", s.participants);
  out << "end\n";
  return out.str();
}

/// Parses an entry; returns nullopt (never throws) on any mismatch so a
/// corrupt or colliding file degrades to a cache miss.
std::optional<CachedSolve> deserialize(const std::string& text,
                                       const std::string& canonical_key) {
  try {
    std::istringstream in(text);
    std::string magic;
    int version = 0;
    in >> magic >> version;
    DLSCHED_EXPECT(magic == "dlsched-cache" && version == 5,
                   "cache entry: bad header");
    in.ignore(1);
    if (get_blob(in, "key") != canonical_key) return std::nullopt;
    CachedSolve s;
    s.solver = get_blob(in, "solver");
    s.error = get_blob(in, "error");
    std::string label;
    in >> label;
    DLSCHED_EXPECT(label == "flags", "cache entry: expected flags");
    in >> s.solved >> s.validated >> s.provably_optimal >> s.mirrored >>
        s.used_two_port >> s.exact >> s.budget_exhausted >> s.has_alt >>
        s.replayed;
    in >> label;
    DLSCHED_EXPECT(label == "counts", "cache entry: expected counts");
    in >> s.workers_used >> s.scenarios_tried >> s.lp_evaluations >>
        s.best_rounds >> s.lp_pivots >> s.lp_fallbacks >> s.lp_warm_starts >>
        s.lp_pivots_saved >> s.subsets_pruned >> s.subsets_screened >>
        s.arena_acquires >> s.arena_pool_hits;
    in >> label;
    DLSCHED_EXPECT(label == "scalars", "cache entry: expected scalars");
    s.throughput = get_double(in);
    s.alt_throughput = get_double(in);
    s.wall_seconds = get_double(in);
    s.validate_seconds = get_double(in);
    s.replay_makespan = get_double(in);
    s.replay_rel_error = get_double(in);
    in >> label;
    DLSCHED_EXPECT(label == "alpha", "cache entry: expected alpha");
    std::size_t count = 0;
    in >> count;
    s.alpha.resize(count);
    for (double& a : s.alpha) a = get_double(in);
    s.send_order = get_indices(in, "send");
    s.return_order = get_indices(in, "ret");
    s.participants = get_indices(in, "part");
    in >> label;
    DLSCHED_EXPECT(label == "end" && !in.fail(),
                   "cache entry: missing end marker");
    return s;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

ResultCache::ResultCache(std::string directory)
    : directory_(std::move(directory)) {
  DLSCHED_EXPECT(!directory_.empty(), "empty cache directory");
  std::error_code ec;
  fs::create_directories(directory_, ec);
  DLSCHED_EXPECT(!ec, "cannot create cache directory '" + directory_ + "'");
}

std::optional<CachedSolve> ResultCache::lookup(
    const std::string& hash_hex, const std::string& canonical_key) {
  if (!enabled()) {
    ++stats.misses;
    return std::nullopt;
  }
  const fs::path path = fs::path(directory_) / (hash_hex + ".entry");
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    ++stats.misses;
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::optional<CachedSolve> value =
      deserialize(text.str(), canonical_key);
  if (value) {
    ++stats.hits;
    // Refresh the recency signal LRU eviction orders by.  Advisory: a
    // read-only cache directory still serves hits.
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  } else {
    ++stats.misses;
  }
  return value;
}

void ResultCache::store(const std::string& hash_hex,
                        const std::string& canonical_key,
                        const CachedSolve& value) {
  if (!enabled()) return;
  const fs::path path = fs::path(directory_) / (hash_hex + ".entry");
  // Write-then-rename so a crashed run never leaves a torn entry.  The
  // temp name embeds the pid plus a counter: workers in different
  // processes may store the same job concurrently (work stealing re-runs
  // an in-flight shard) and must never interleave writes into one file.
  static std::atomic<std::uint64_t> counter{0};
  const fs::path tmp = path.string() + ".tmp." + std::to_string(::getpid()) +
                       "." + std::to_string(counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary);
    DLSCHED_EXPECT(out.good(),
                   "cannot write cache entry under '" + directory_ + "'");
    out << serialize(canonical_key, value);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (!ec) ++stats.stores;
}

std::size_t ResultCache::evict_to(std::uint64_t max_bytes) {
  if (!enabled() || max_bytes == 0) return 0;
  struct Entry {
    fs::path path;
    fs::file_time_type mtime;
    std::uint64_t bytes = 0;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const fs::directory_entry& file :
       fs::directory_iterator(directory_, ec)) {
    if (ec) break;
    if (!file.is_regular_file(ec) || ec) continue;
    if (file.path().extension() != ".entry") continue;
    Entry entry;
    entry.path = file.path();
    entry.mtime = file.last_write_time(ec);
    if (ec) continue;
    entry.bytes = file.file_size(ec);
    if (ec) continue;
    total += entry.bytes;
    entries.push_back(std::move(entry));
  }
  if (total <= max_bytes) return 0;
  // Oldest first; filename tie-break keeps the order deterministic when a
  // burst of stores lands within one mtime granule.
  std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                               const Entry& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.path.filename() < b.path.filename();
  });
  std::size_t evicted = 0;
  for (const Entry& entry : entries) {
    if (total <= max_bytes) break;
    std::error_code remove_ec;
    if (fs::remove(entry.path, remove_ec) && !remove_ec) {
      total -= entry.bytes;
      ++evicted;
    }
  }
  stats.evicted += evicted;
  return evicted;
}

namespace {
constexpr const char* kLastRunFile = "last_run.stats";
}  // namespace

void ResultCache::write_last_run(const std::string& spec) const {
  if (!enabled()) return;
  const fs::path path = fs::path(directory_) / kLastRunFile;
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) return;  // stats are advisory; never fail a run on them
  out << "dlsched-cache-stats 1\n"
      << "spec " << spec << '\n'
      << "hits " << stats.hits << '\n'
      << "misses " << stats.misses << '\n'
      << "stores " << stats.stores << '\n'
      << "evicted " << stats.evicted << '\n';
}

CacheInventory ResultCache::inspect(const std::string& directory) {
  CacheInventory inventory;
  std::error_code ec;
  if (!fs::is_directory(directory, ec) || ec) return inventory;
  inventory.exists = true;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(directory, ec)) {
    if (ec) break;
    if (!entry.is_regular_file(ec) || ec) continue;
    if (entry.path().extension() != ".entry") continue;
    ++inventory.entries;
    const std::uintmax_t size = entry.file_size(ec);
    if (!ec) inventory.total_bytes += size;
  }
  std::ifstream in(fs::path(directory) / kLastRunFile, std::ios::binary);
  if (in.good()) {
    std::string magic, label;
    int version = 0;
    in >> magic >> version;
    if (magic == "dlsched-cache-stats" && version == 1) {
      CacheInventory parsed = inventory;
      // Spec names may contain spaces (they come from user spec files):
      // take the rest of the line, not one >> token.
      bool ok = static_cast<bool>(in >> label) && label == "spec" &&
                static_cast<bool>(std::getline(in, parsed.last_spec));
      if (ok) {
        const std::size_t start = parsed.last_spec.find_first_not_of(' ');
        parsed.last_spec =
            start == std::string::npos ? "" : parsed.last_spec.substr(start);
      }
      parsed.has_last_run =
          ok && (in >> label >> parsed.last_run.hits) && label == "hits" &&
          (in >> label >> parsed.last_run.misses) && label == "misses" &&
          (in >> label >> parsed.last_run.stores) && label == "stores";
      // The eviction counter arrived after version 1 shipped; stats files
      // written before it simply report 0.
      if (parsed.has_last_run &&
          !((in >> label >> parsed.last_run.evicted) && label == "evicted")) {
        parsed.last_run.evicted = 0;
      }
      if (parsed.has_last_run) inventory = parsed;
    }
  }
  return inventory;
}

}  // namespace dlsched::experiments
