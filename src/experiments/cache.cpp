#include "experiments/cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/wire.hpp"
#include "util/error.hpp"

namespace dlsched::experiments {

namespace fs = std::filesystem;

ScenarioSolutionD solution_from_cached(const CachedSolve& solve) {
  DLSCHED_EXPECT(solve.solved, "cannot replay an unsolved cache entry");
  ScenarioSolutionD solution;
  solution.throughput = solve.throughput;
  solution.alpha = solve.alpha;
  solution.scenario = Scenario::general(solve.send_order, solve.return_order);
  return solution;
}

// ----------------------------------------------------------- serialization --

// An entry file is the stored key followed by the versioned wire result
// body (service/wire.cpp): the cache, the shard fragments and the daemon's
// socket responses all carry the same bytes for the same solve.

namespace {

std::string serialize(const std::string& canonical_key,
                      const CachedSolve& s) {
  std::ostringstream out;
  // Version 6 delegated the value encoding to the wire codec; version 4
  // added the warm-start / pruning counters, version 3 the pivot /
  // fallback / limb-arena counters, version 2 the participant set and the
  // affine replay certificate.  Entries of older versions degrade to
  // misses and are re-solved.
  out << "dlsched-cache 6\n";
  service::put_blob(out, "key", canonical_key);
  out << service::encode_result_body(s);
  return out.str();
}

/// Parses an entry; returns nullopt (never throws) on any mismatch so a
/// corrupt or colliding file degrades to a cache miss.
std::optional<CachedSolve> deserialize(const std::string& text,
                                       const std::string& canonical_key) {
  try {
    std::istringstream in(text);
    std::string magic;
    int version = 0;
    in >> magic >> version;
    DLSCHED_EXPECT(magic == "dlsched-cache" && version == 6,
                   "cache entry: bad header");
    in.ignore(1);
    if (service::get_blob(in, "key") != canonical_key) return std::nullopt;
    const auto body_start = in.tellg();
    DLSCHED_EXPECT(body_start != std::istringstream::pos_type(-1),
                   "cache entry: missing result body");
    return service::decode_result_body(
        std::string_view(text).substr(static_cast<std::size_t>(body_start)));
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

ResultCache::ResultCache(std::string directory)
    : directory_(std::move(directory)) {
  DLSCHED_EXPECT(!directory_.empty(), "empty cache directory");
  std::error_code ec;
  fs::create_directories(directory_, ec);
  DLSCHED_EXPECT(!ec, "cannot create cache directory '" + directory_ + "'");
}

std::optional<CachedSolve> ResultCache::lookup(
    const std::string& hash_hex, const std::string& canonical_key) {
  if (!enabled()) {
    ++stats.misses;
    obs::MetricsRegistry::process().add("cache.misses");
    return std::nullopt;
  }
  obs::ObsSpan span("cache", "lookup");
  const fs::path path = fs::path(directory_) / (hash_hex + ".entry");
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    ++stats.misses;
    obs::MetricsRegistry::process().add("cache.misses");
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::optional<CachedSolve> value =
      deserialize(text.str(), canonical_key);
  if (value) {
    ++stats.hits;
    obs::MetricsRegistry::process().add("cache.hits");
    // Refresh the recency signal LRU eviction orders by.  Advisory: a
    // read-only cache directory still serves hits.
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  } else {
    ++stats.misses;
    obs::MetricsRegistry::process().add("cache.misses");
  }
  return value;
}

void ResultCache::store(const std::string& hash_hex,
                        const std::string& canonical_key,
                        const CachedSolve& value) {
  if (!enabled()) return;
  const fs::path path = fs::path(directory_) / (hash_hex + ".entry");
  // Write-then-rename so a crashed run never leaves a torn entry.  The
  // temp name embeds the pid plus a counter: workers in different
  // processes may store the same job concurrently (work stealing re-runs
  // an in-flight shard) and must never interleave writes into one file.
  static std::atomic<std::uint64_t> counter{0};
  const fs::path tmp = path.string() + ".tmp." + std::to_string(::getpid()) +
                       "." + std::to_string(counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary);
    DLSCHED_EXPECT(out.good(),
                   "cannot write cache entry under '" + directory_ + "'");
    out << serialize(canonical_key, value);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (!ec) {
    ++stats.stores;
    obs::MetricsRegistry::process().add("cache.stores");
  }
}

std::size_t ResultCache::evict_to(std::uint64_t max_bytes) {
  if (!enabled() || max_bytes == 0) return 0;
  obs::ObsSpan span("cache", "evict");
  struct Entry {
    fs::path path;
    fs::file_time_type mtime;
    std::uint64_t bytes = 0;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const fs::directory_entry& file :
       fs::directory_iterator(directory_, ec)) {
    if (ec) break;
    if (!file.is_regular_file(ec) || ec) continue;
    if (file.path().extension() != ".entry") continue;
    Entry entry;
    entry.path = file.path();
    entry.mtime = file.last_write_time(ec);
    if (ec) continue;
    entry.bytes = file.file_size(ec);
    if (ec) continue;
    total += entry.bytes;
    entries.push_back(std::move(entry));
  }
  if (total <= max_bytes) return 0;
  // Oldest first; filename tie-break keeps the order deterministic when a
  // burst of stores lands within one mtime granule.
  std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                               const Entry& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.path.filename() < b.path.filename();
  });
  std::size_t evicted = 0;
  for (const Entry& entry : entries) {
    if (total <= max_bytes) break;
    std::error_code remove_ec;
    if (fs::remove(entry.path, remove_ec) && !remove_ec) {
      total -= entry.bytes;
      ++evicted;
    }
  }
  stats.evicted += evicted;
  obs::MetricsRegistry::process().add("cache.evicted", evicted);
  return evicted;
}

namespace {
constexpr const char* kLastRunFile = "last_run.stats";
}  // namespace

void ResultCache::write_last_run(const std::string& spec) const {
  if (!enabled()) return;
  const fs::path path = fs::path(directory_) / kLastRunFile;
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) return;  // stats are advisory; never fail a run on them
  out << "dlsched-cache-stats 1\n"
      << "spec " << spec << '\n'
      << "hits " << stats.hits << '\n'
      << "misses " << stats.misses << '\n'
      << "stores " << stats.stores << '\n'
      << "evicted " << stats.evicted << '\n';
}

CacheInventory ResultCache::inspect(const std::string& directory) {
  CacheInventory inventory;
  std::error_code ec;
  if (!fs::is_directory(directory, ec) || ec) return inventory;
  inventory.exists = true;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(directory, ec)) {
    if (ec) break;
    if (!entry.is_regular_file(ec) || ec) continue;
    if (entry.path().extension() != ".entry") continue;
    ++inventory.entries;
    const std::uintmax_t size = entry.file_size(ec);
    if (!ec) inventory.total_bytes += size;
  }
  std::ifstream in(fs::path(directory) / kLastRunFile, std::ios::binary);
  if (in.good()) {
    std::string magic, label;
    int version = 0;
    in >> magic >> version;
    if (magic == "dlsched-cache-stats" && version == 1) {
      CacheInventory parsed = inventory;
      // Spec names may contain spaces (they come from user spec files):
      // take the rest of the line, not one >> token.
      bool ok = static_cast<bool>(in >> label) && label == "spec" &&
                static_cast<bool>(std::getline(in, parsed.last_spec));
      if (ok) {
        const std::size_t start = parsed.last_spec.find_first_not_of(' ');
        parsed.last_spec =
            start == std::string::npos ? "" : parsed.last_spec.substr(start);
      }
      parsed.has_last_run =
          ok && (in >> label >> parsed.last_run.hits) && label == "hits" &&
          (in >> label >> parsed.last_run.misses) && label == "misses" &&
          (in >> label >> parsed.last_run.stores) && label == "stores";
      // The eviction counter arrived after version 1 shipped; stats files
      // written before it simply report 0.
      if (parsed.has_last_run &&
          !((in >> label >> parsed.last_run.evicted) && label == "evicted")) {
        parsed.last_run.evicted = 0;
      }
      if (parsed.has_last_run) inventory = parsed;
    }
  }
  return inventory;
}

}  // namespace dlsched::experiments
