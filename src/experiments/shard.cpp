#include "experiments/shard.hpp"

#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "experiments/engine.hpp"
#include "obs/trace.hpp"
#include "service/wire.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace dlsched::experiments {

std::vector<std::string> grid_solvers(const ExperimentSpec& spec) {
  return spec.solvers.empty() ? SolverRegistry::instance().names()
                              : spec.solvers;
}

// ---------------------------------------------------------------- planning --

namespace {

/// Canonical z rendering for shard keys: the bit pattern, so planning is
/// immune to formatting differences.
std::string z_key(const std::optional<double>& z) {
  if (!z) return "-";
  std::ostringstream out;
  detail::put_double(out, *z);
  return out.str();
}

}  // namespace

std::vector<CompiledShard> plan_shards(const ExperimentSpec& spec) {
  obs::ObsSpan span("shard", "plan");
  DLSCHED_EXPECT(spec.kind == SpecKind::Grid,
                 "spec '" + spec.name +
                     "': only grid specs compile into shards");
  const std::vector<std::string> solvers = grid_solvers(spec);
  const SolverRegistry& registry = SolverRegistry::instance();
  std::map<std::string, std::unique_ptr<Solver>> solver_objects;
  for (const std::string& name : solvers) {
    solver_objects.emplace(name, registry.create(name));
  }

  // Axis values; an absent axis contributes one point and no parameter.
  std::vector<std::optional<std::size_t>> p_axis{std::nullopt};
  if (!spec.workers.empty()) {
    p_axis.assign(spec.workers.begin(), spec.workers.end());
  }
  std::vector<std::optional<double>> z_axis{std::nullopt};
  if (!spec.z_values.empty()) {
    z_axis.assign(spec.z_values.begin(), spec.z_values.end());
  }
  std::vector<std::optional<double>> slat_axis{std::nullopt};
  if (!spec.send_latencies.empty()) {
    slat_axis.assign(spec.send_latencies.begin(),
                     spec.send_latencies.end());
  }
  std::vector<std::optional<double>> rlat_axis{std::nullopt};
  if (!spec.return_latencies.empty()) {
    rlat_axis.assign(spec.return_latencies.begin(),
                     spec.return_latencies.end());
  }

  // One shard per (p, z) slice, further split per repetition: the
  // repetition split keeps shard weights comparable when one platform
  // size dwarfs the others (micro_solvers' p = 12 slice is ~97% of the
  // spec), which is what lets work stealing actually balance the grid.
  // The latency axes fold *inside* each shard as cells -- one generated
  // platform spans the whole latency surface (isolating the latency
  // effect), and walking the cells in order gives the warm-start chain
  // its structurally adjacent LPs.  Planner order is the nested loop
  // order (p, then z, then rep; cells: send latency, then return
  // latency), so concatenating shard outputs in planner order reproduces
  // a single-process run's artifacts byte for byte.
  std::vector<CompiledShard> shards;
  shards.reserve(p_axis.size() * z_axis.size() * spec.repetitions);
  for (const auto& p : p_axis) {
    for (const auto& z : z_axis) {
      for (std::size_t rep = 0; rep < spec.repetitions; ++rep) {
        CompiledShard shard;
        shard.index = shards.size();
        shard.p = p;
        shard.z = z;
        shard.rep = rep;
        // The shard id hashes the job identities of every cell, so it is
        // stable across runs and processes yet changes with any axis,
        // seed, generator or solver-set edit.
        std::ostringstream id_key;
        id_key << "shard\nspec " << spec.name << "\npoint "
               << (p ? std::to_string(*p) : std::string("-")) << ' '
               << z_key(z) << ' ' << rep << "\njobs ";
        // The latency axes are deliberately outside the instance seed:
        // one platform (and one set of latency factors) spans the whole
        // latency surface.
        const std::uint64_t seed = instance_seed(
            spec.seed, p.value_or(0), z.value_or(-1.0), rep);
        gen::GenParams params = spec.generator_params;
        if (p) params["p"] = static_cast<double>(*p);
        if (z) params["z"] = *z;
        Rng rng(seed);
        const gen::GeneratedPlatform generated =
            gen::GeneratorRegistry::instance().make_generated(
                spec.generator, params, rng);
        SolveRequest base;
        base.platform = generated.platform;
        base.costs.compute_latency = spec.compute_latency;
        base.precision = spec.precision;
        base.time_budget_seconds = spec.time_budget_seconds;
        base.max_workers_brute = spec.max_workers_brute;
        base.seed = seed;
        shard.cells.reserve(slat_axis.size() * rlat_axis.size());
        for (const auto& slat : slat_axis) {
          for (const auto& rlat : rlat_axis) {
            GridCell cell;
            cell.send_latency = slat;
            cell.return_latency = rlat;
            cell.request = base;
            if (slat) cell.request.costs.send_latency = *slat;
            if (rlat) cell.request.costs.return_latency = *rlat;
            // Generator-drawn latency factors scale by the axis value
            // into per-worker overrides (factor 1 == the global latency).
            if (generated.has_latency_draws()) {
              const std::size_t n = generated.platform.size();
              if (slat && *slat > 0.0) {
                auto& per = cell.request.costs.send_latency_per_worker;
                per.resize(n);
                for (std::size_t i = 0; i < n; ++i) {
                  per[i] = *slat * generated.latency_factor[i];
                }
              }
              if (rlat && *rlat > 0.0) {
                auto& per = cell.request.costs.return_latency_per_worker;
                per.resize(n);
                for (std::size_t i = 0; i < n; ++i) {
                  per[i] = *rlat * generated.latency_factor[i];
                }
              }
            }
            id_key << "cell " << z_key(slat) << ' ' << z_key(rlat) << ' ';
            for (const std::string& solver : solvers) {
              if (!solver_objects.at(solver)->applicable(cell.request)) {
                ++cell.skipped;
                continue;
              }
              id_key << job_hash_hex(solver, cell.request) << ' ';
              GridSlot slot;
              slot.z = z;
              slot.rep = rep;
              slot.seed = seed;
              slot.solver = solver;
              cell.slots.push_back(std::move(slot));
            }
            shard.cells.push_back(std::move(cell));
          }
        }
        shard.id = job_hash_from_key(id_key.str());
        shards.push_back(std::move(shard));
      }
    }
  }
  return shards;
}

std::string plan_fingerprint(const std::vector<CompiledShard>& shards) {
  std::string key = "plan ";
  for (const CompiledShard& shard : shards) {
    key += shard.id;
    key += ' ';
  }
  return job_hash_from_key(key);
}

// --------------------------------------------------------------- execution --

ShardResult execute_shard(const ExperimentSpec& spec,
                          const CompiledShard& shard, ResultCache& cache,
                          std::size_t threads,
                          const std::function<void()>& checkpoint) {
  obs::ObsSpan span("shard", "execute");
  if (span.active()) span.rename("execute:" + shard.id);
  ShardResult result;
  result.id = shard.id;
  result.index = shard.index;
  const CacheStats before = cache.stats;

  // Each solver's solved alpha from the previous cell, carried into its
  // next-cell request as the warm-start seed.  The hint comes from the
  // cached record on a hit and from the fresh solution on a miss --
  // `CachedSolve::alpha` round-trips bit-exactly, so the chain (and with
  // it every emitted counter) is independent of the cache state.
  std::map<std::string, std::vector<double>> prev_alpha;

  for (const GridCell& cell : shard.cells) {
    result.jobs += cell.slots.size();
    result.skipped += cell.skipped;

    // ----- cache pass, then one thread-pooled batch over the misses -------
    // Keys are computed from the unhinted request; `warm_alpha` is
    // excluded from the canonical serialization, so hinted and unhinted
    // solves of the same job share one cache entry.
    std::vector<CachedSolve> solves(cell.slots.size());
    std::vector<SolveRequest> hinted;  // stable storage for the views
    std::vector<BatchJobView> views;
    std::vector<std::size_t> view_slot;
    std::vector<std::pair<std::string, std::string>> view_keys;  // hash, key
    hinted.reserve(cell.slots.size());
    for (std::size_t i = 0; i < cell.slots.size(); ++i) {
      const GridSlot& slot = cell.slots[i];
      const std::string key = job_canonical_key(slot.solver, cell.request);
      const std::string hash = job_hash_from_key(key);
      if (std::optional<CachedSolve> hit = cache.lookup(hash, key)) {
        solves[i] = std::move(*hit);
        ++result.cache_hits;
        continue;
      }
      SolveRequest request = cell.request;
      if (const auto it = prev_alpha.find(slot.solver);
          it != prev_alpha.end()) {
        request.warm_alpha = it->second;
      }
      hinted.push_back(std::move(request));
      views.push_back({slot.solver, &hinted.back()});
      view_slot.push_back(i);
      view_keys.emplace_back(hash, key);
    }
    // Checkpoint each finished job into the cache immediately (the hook
    // is serialized by solve_batch): if this worker dies mid-shard,
    // whoever reclaims the stale claim re-runs the shard as cache hits up
    // to the point of the crash.
    const BatchProgressHook hook = [&](const BatchProgress& progress,
                                       const BatchOutcome& outcome) {
      cache.store(view_keys[progress.job_index].first,
                  view_keys[progress.job_index].second,
                  cached_from_outcome(outcome));
      if (checkpoint) checkpoint();
      return true;
    };
    const std::vector<BatchOutcome> outcomes =
        solve_batch(std::span<const BatchJobView>(views), threads, hook);
    for (std::size_t v = 0; v < outcomes.size(); ++v) {
      solves[view_slot[v]] = cached_from_outcome(outcomes[v]);
      if (outcomes[v].deduped) {
        ++result.deduped;
      } else {
        ++result.solved;  // stored by the checkpoint hook already
      }
    }
    for (std::size_t i = 0; i < cell.slots.size(); ++i) {
      if (solves[i].solved && !solves[i].alpha.empty()) {
        prev_alpha[cell.slots[i].solver] = solves[i].alpha;
      }
    }

    // ----- render rows + the aggregation inputs ---------------------------
    double baseline_throughput = 0.0;
    for (std::size_t i = 0; i < cell.slots.size(); ++i) {
      if (cell.slots[i].solver == spec.baseline && solves[i].solved) {
        baseline_throughput = solves[i].throughput;
      }
    }
    result.rows.reserve(result.rows.size() + cell.slots.size());
    for (std::size_t i = 0; i < cell.slots.size(); ++i) {
      const GridSlot& slot = cell.slots[i];
      const CachedSolve& s = solves[i];
      if (!s.solved || !s.validated) ++result.failures;
      ShardRow out;
      out.solved = s.solved;
      out.validated = s.validated;
      out.p = cell.request.platform.size();
      out.z = slot.z;
      out.send_latency = cell.send_latency;
      out.return_latency = cell.return_latency;
      out.solver = slot.solver;
      JsonObject row;
      row.add("solver", slot.solver).add("p", out.p);
      if (slot.z) row.add("z", *slot.z);
      if (cell.send_latency) row.add("send_latency", *cell.send_latency);
      if (cell.return_latency) {
        row.add("return_latency", *cell.return_latency);
      }
      row.add("rep", slot.rep).add("seed", slot.seed);
      row.add("solved", s.solved);
      if (!s.solved) {
        row.add("error", s.error);
      } else {
        // One field list for every result emitter (the grid baselines are
        // byte-compared in CI, so the order lives in exactly one place).
        service::append_result_fields(row, s);
        out.throughput = s.throughput;
        out.wall_seconds = s.wall_seconds;
        if (!spec.baseline.empty() && baseline_throughput > 0.0) {
          out.has_ratio = true;
          out.ratio = s.throughput / baseline_throughput;
        }
      }
      out.json = row.render();
      result.rows.push_back(std::move(out));
    }
  }

  result.cache.hits = cache.stats.hits - before.hits;
  result.cache.misses = cache.stats.misses - before.misses;
  result.cache.stores = cache.stats.stores - before.stores;
  return result;
}

// ----------------------------------------------------------- serialization --

std::string serialize_shard_result(const ShardResult& r) {
  std::ostringstream out;
  // Version 2 added the affine latency coordinates; version-1 fragments
  // fail to parse and degrade to "shard not done yet".
  out << "dlsched-shard 2\n";
  out << "id " << r.id << " index " << r.index << '\n';
  out << "counts " << r.jobs << ' ' << r.cache_hits << ' ' << r.deduped
      << ' ' << r.solved << ' ' << r.failures << ' ' << r.skipped << '\n';
  out << "cache " << r.cache.hits << ' ' << r.cache.misses << ' '
      << r.cache.stores << '\n';
  out << "rows " << r.rows.size() << '\n';
  const auto put_optional = [&out](const std::optional<double>& value) {
    out << value.has_value() << ' ';
    detail::put_double(out, value.value_or(0.0));
  };
  for (const ShardRow& row : r.rows) {
    detail::put_blob(out, "row", row.json);
    out << "agg " << row.solved << ' ' << row.validated << ' ' << row.p
        << ' ';
    put_optional(row.z);
    out << ' ';
    put_optional(row.send_latency);
    out << ' ';
    put_optional(row.return_latency);
    out << ' ' << row.solver << ' ';
    detail::put_double(out, row.throughput);
    out << ' ';
    detail::put_double(out, row.wall_seconds);
    out << ' ' << row.has_ratio << ' ';
    detail::put_double(out, row.ratio);
    out << '\n';
  }
  out << "end\n";
  return out.str();
}

std::optional<ShardResult> parse_shard_result(const std::string& text) {
  try {
    std::istringstream in(text);
    std::string magic, label;
    int version = 0;
    in >> magic >> version;
    DLSCHED_EXPECT(magic == "dlsched-shard" && version == 2,
                   "shard fragment: bad header");
    ShardResult r;
    in >> label >> r.id;
    DLSCHED_EXPECT(label == "id", "shard fragment: expected id");
    in >> label >> r.index;
    DLSCHED_EXPECT(label == "index", "shard fragment: expected index");
    in >> label >> r.jobs >> r.cache_hits >> r.deduped >> r.solved >>
        r.failures >> r.skipped;
    DLSCHED_EXPECT(label == "counts", "shard fragment: expected counts");
    in >> label >> r.cache.hits >> r.cache.misses >> r.cache.stores;
    DLSCHED_EXPECT(label == "cache", "shard fragment: expected cache");
    std::size_t rows = 0;
    in >> label >> rows;
    DLSCHED_EXPECT(label == "rows" && in.good(),
                   "shard fragment: expected row count");
    in.ignore(1);
    r.rows.reserve(rows);
    const auto get_optional = [&in]() -> std::optional<double> {
      bool has = false;
      in >> has;
      const double bits = detail::get_double(in);
      return has ? std::optional<double>(bits) : std::nullopt;
    };
    for (std::size_t i = 0; i < rows; ++i) {
      ShardRow row;
      row.json = detail::get_blob(in, "row");
      in >> label >> row.solved >> row.validated >> row.p;
      DLSCHED_EXPECT(label == "agg", "shard fragment: expected agg");
      row.z = get_optional();
      row.send_latency = get_optional();
      row.return_latency = get_optional();
      in >> row.solver;
      row.throughput = detail::get_double(in);
      row.wall_seconds = detail::get_double(in);
      in >> row.has_ratio;
      row.ratio = detail::get_double(in);
      DLSCHED_EXPECT(in.good(), "shard fragment: truncated row");
      r.rows.push_back(std::move(row));
    }
    in >> label;
    DLSCHED_EXPECT(label == "end" && !in.fail(),
                   "shard fragment: missing end marker");
    return r;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

// ---------------------------------------------------------------- assembly --

ShardAssembler::ShardAssembler(BenchJsonWriter* json, std::ostream* csv,
                               RunSummary& summary, std::ostream& log)
    : json_(json), csv_(csv), summary_(summary), log_(log) {}

void ShardAssembler::consume(const ShardResult& result) {
  DLSCHED_EXPECT(result.index == next_index_,
                 "shard results must be assembled in planner order (got "
                 "shard " + std::to_string(result.index) + ", expected " +
                 std::to_string(next_index_) + ")");
  ++next_index_;
  summary_.jobs += result.jobs;
  summary_.cache_hits += result.cache_hits;
  summary_.deduped += result.deduped;
  summary_.solved += result.solved;
  summary_.failures += result.failures;
  summary_.skipped += result.skipped;
  for (const ShardRow& row : result.rows) {
    if (json_) {
      json_->raw_row(row.json);
      ++summary_.rows;
    }
    if (!row.solved) continue;
    std::ostringstream group_key;
    group_key << row.p << '|' << (row.z ? json_double(*row.z) : "-") << '|'
              << (row.send_latency ? json_double(*row.send_latency) : "-")
              << '|'
              << (row.return_latency ? json_double(*row.return_latency)
                                     : "-")
              << '|' << row.solver;
    const auto [it, inserted] =
        group_index_.try_emplace(group_key.str(), groups_.size());
    if (inserted) {
      groups_.push_back({row.p, row.z, row.send_latency, row.return_latency,
                         row.solver, {}, {}, {}});
    }
    Group& group = groups_[it->second];
    group.throughput.add(row.throughput);
    group.wall.add(row.wall_seconds);
    if (row.has_ratio) group.ratio.add(row.ratio);
  }
}

void ShardAssembler::finish() {
  obs::ObsSpan span("shard", "assemble");
  const std::vector<std::string> header{
      "p",           "z",         "send_latency", "return_latency",
      "solver",      "instances", "mean_throughput",
      "mean_wall_seconds", "mean_ratio_vs_baseline",
      "min_ratio",   "max_ratio"};
  std::optional<CsvWriter> csv_writer;
  if (csv_) csv_writer.emplace(*csv_, header);
  Table table(header);
  table.set_precision(5);
  const auto axis_cell = [](const std::optional<double>& v) {
    return v ? format_double(*v, 4) : std::string("-");
  };
  for (const Group& group : groups_) {
    const bool has_ratio = group.ratio.count() > 0;
    table.begin_row()
        .cell(group.p)
        .cell(axis_cell(group.z))
        .cell(axis_cell(group.send_latency))
        .cell(axis_cell(group.return_latency))
        .cell(group.solver)
        .cell(group.throughput.count())
        .cell(group.throughput.mean())
        .cell(group.wall.mean())
        .cell(has_ratio ? format_double(group.ratio.mean(), 5)
                        : std::string("-"))
        .cell(has_ratio ? format_double(group.ratio.min(), 5)
                        : std::string("-"))
        .cell(has_ratio ? format_double(group.ratio.max(), 5)
                        : std::string("-"));
    if (csv_writer) {
      csv_writer->cell(std::to_string(group.p))
          .cell(group.z ? json_double(*group.z) : std::string(""))
          .cell(group.send_latency ? json_double(*group.send_latency)
                                   : std::string(""))
          .cell(group.return_latency ? json_double(*group.return_latency)
                                     : std::string(""))
          .cell(group.solver)
          .cell(group.throughput.count())
          .cell(group.throughput.mean())
          .cell(group.wall.mean());
      if (has_ratio) {
        csv_writer->cell(group.ratio.mean())
            .cell(group.ratio.min())
            .cell(group.ratio.max());
      } else {
        csv_writer->cell(std::string(""))
            .cell(std::string(""))
            .cell(std::string(""));
      }
      csv_writer->end_row();
    }
  }
  table.print_aligned(log_);
}

}  // namespace dlsched::experiments
