// Content-addressed result cache for the experiment engine.
//
// Every solve in a sweep is keyed by `job_hash_hex(solver, request)` over
// the canonical request serialization (core/solver.hpp), so overlapping
// sweeps -- a re-run, a superset spec, two figures sharing instances --
// never re-solve a (request, solver) pair.  Values are `CachedSolve`
// records: everything the emitters and the DES replay need, with doubles
// stored by bit pattern so a cache hit reproduces the original run's
// output byte for byte.  Entries live one-per-file under a cache
// directory; the full canonical key is stored and verified on load, so a
// hash collision degrades to a miss, never to a wrong result.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "service/wire.hpp"

namespace dlsched::experiments {

/// The cacheable projection of a `BatchOutcome` IS the canonical wire
/// record: cache entries store the versioned wire result body, so the
/// daemon's responses and a cache hit are the same bytes by construction.
using CachedSolve = service::SolveRecord;

/// Projects a batch outcome into its cacheable form.
[[nodiscard]] inline CachedSolve cached_from_outcome(
    const BatchOutcome& outcome) {
  return service::record_from_outcome(outcome);
}

/// Rebuilds the double-precision solution shape for DES replay /
/// rounding.  Requires `solve.solved` and a non-empty scenario.
[[nodiscard]] ScenarioSolutionD solution_from_cached(
    const CachedSolve& solve);

struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t stores = 0;
  std::size_t evicted = 0;  ///< entries removed by LRU eviction
};

/// On-disk inventory of a cache directory plus the hit/miss counters of
/// the run that last used it (`dlsched_bench --cache-stats`).  Engine runs
/// persist their counters via `ResultCache::write_last_run`.
struct CacheInventory {
  bool exists = false;          ///< the directory is present
  std::size_t entries = 0;      ///< *.entry files
  std::uint64_t total_bytes = 0;  ///< summed entry sizes
  bool has_last_run = false;    ///< a last-run marker was found and parsed
  std::string last_spec;        ///< spec name of the most recent run
  CacheStats last_run;          ///< its hit/miss/store counters
};

/// Directory-backed cache.  A default-constructed cache is disabled: every
/// lookup misses and stores are dropped, so callers need no branching.
class ResultCache {
 public:
  ResultCache() = default;
  /// Opens (creating if needed) the cache directory.
  explicit ResultCache(std::string directory);

  [[nodiscard]] bool enabled() const noexcept { return !directory_.empty(); }
  [[nodiscard]] const std::string& directory() const noexcept {
    return directory_;
  }

  /// Returns the stored value for this job, verifying the canonical key.
  /// A hit refreshes the entry's modification time, which is the recency
  /// signal `evict_to` orders by.
  [[nodiscard]] std::optional<CachedSolve> lookup(
      const std::string& hash_hex, const std::string& canonical_key);

  /// Persists a value (no-op when disabled).  Safe under concurrent writers
  /// in different processes: entries land via unique-temp-then-rename.
  void store(const std::string& hash_hex, const std::string& canonical_key,
             const CachedSolve& value);

  /// LRU eviction (`--cache-max-bytes`): removes the least recently used
  /// entries until the summed entry bytes fit in `max_bytes`.  Recency is
  /// the entry file's mtime (stores and hits both refresh it).  Returns the
  /// number of entries removed, also accumulated into `stats.evicted`.
  /// No-op (returns 0) when disabled or `max_bytes` is 0.
  std::size_t evict_to(std::uint64_t max_bytes);

  /// Writes `stats` and the spec name as the directory's last-run marker
  /// (no-op when disabled).  `inspect` reads it back.
  void write_last_run(const std::string& spec) const;

  /// Scans a cache directory without opening it as a cache: entry count,
  /// total bytes, and the persisted counters of the last run.
  [[nodiscard]] static CacheInventory inspect(const std::string& directory);

  CacheStats stats;

 private:
  std::string directory_;
};

/// Line-oriented serialization primitives, now owned by `service/wire`
/// (the cache entries, the shard-result fragments and the socket protocol
/// all encode with the same functions).  Kept as forwards so existing
/// callers keep compiling.
namespace detail {
inline void put_double(std::ostream& out, double value) {
  service::put_double(out, value);
}
[[nodiscard]] inline double get_double(std::istream& in) {
  return service::get_double(in);
}
inline void put_blob(std::ostream& out, const std::string& label,
                     const std::string& text) {
  service::put_blob(out, label, text);
}
[[nodiscard]] inline std::string get_blob(std::istream& in,
                                          const std::string& label) {
  return service::get_blob(in, label);
}
}  // namespace detail

}  // namespace dlsched::experiments
