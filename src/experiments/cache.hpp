// Content-addressed result cache for the experiment engine.
//
// Every solve in a sweep is keyed by `job_hash_hex(solver, request)` over
// the canonical request serialization (core/solver.hpp), so overlapping
// sweeps -- a re-run, a superset spec, two figures sharing instances --
// never re-solve a (request, solver) pair.  Values are `CachedSolve`
// records: everything the emitters and the DES replay need, with doubles
// stored by bit pattern so a cache hit reproduces the original run's
// output byte for byte.  Entries live one-per-file under a cache
// directory; the full canonical key is stored and verified on load, so a
// hash collision degrades to a miss, never to a wrong result.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/solver.hpp"

namespace dlsched::experiments {

/// The cacheable projection of a `BatchOutcome`: solution numbers (as
/// doubles -- all emitters and the DES consume doubles), communication
/// orders, provenance flags and diagnostics.
struct CachedSolve {
  std::string solver;
  bool solved = false;
  bool validated = false;
  std::string error;  ///< exception text when !solved

  double throughput = 0.0;
  std::vector<double> alpha;               ///< platform-indexed
  std::vector<std::size_t> send_order;     ///< sigma_1
  std::vector<std::size_t> return_order;   ///< sigma_2
  std::size_t workers_used = 0;            ///< alpha > 0 count
  /// Chosen participant set of a selection-style solver (sorted; empty
  /// when enrolment is implied by alpha > 0).
  std::vector<std::size_t> participants;

  // Affine DES-replay certificate (affine/replay.hpp).
  bool replayed = false;
  double replay_makespan = 0.0;
  double replay_rel_error = 0.0;

  bool provably_optimal = false;
  bool mirrored = false;
  bool used_two_port = false;
  bool exact = true;
  bool budget_exhausted = false;
  bool has_alt = false;
  double alt_throughput = 0.0;
  std::size_t scenarios_tried = 0;
  std::size_t lp_evaluations = 0;
  std::size_t best_rounds = 0;
  std::size_t lp_pivots = 0;           ///< simplex pivots of the final LP
  std::size_t lp_fallbacks = 0;        ///< Fast mode: exact re-solves
  std::size_t lp_warm_starts = 0;      ///< exact solves with accepted seed
  std::size_t lp_pivots_saved = 0;     ///< pivots under the chain's cold ref
  std::size_t subsets_pruned = 0;      ///< bound-pruned subset candidates
  std::size_t subsets_screened = 0;    ///< margin-screened subset candidates
  std::uint64_t arena_acquires = 0;    ///< limb-arena buffer requests
  std::uint64_t arena_pool_hits = 0;   ///< ... served from the recycled pool

  double wall_seconds = 0.0;      ///< of the run that actually solved
  double validate_seconds = 0.0;
};

/// Projects a batch outcome into its cacheable form.
[[nodiscard]] CachedSolve cached_from_outcome(const BatchOutcome& outcome);

/// Rebuilds the double-precision solution shape for DES replay /
/// rounding.  Requires `solve.solved` and a non-empty scenario.
[[nodiscard]] ScenarioSolutionD solution_from_cached(
    const CachedSolve& solve);

struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t stores = 0;
  std::size_t evicted = 0;  ///< entries removed by LRU eviction
};

/// On-disk inventory of a cache directory plus the hit/miss counters of
/// the run that last used it (`dlsched_bench --cache-stats`).  Engine runs
/// persist their counters via `ResultCache::write_last_run`.
struct CacheInventory {
  bool exists = false;          ///< the directory is present
  std::size_t entries = 0;      ///< *.entry files
  std::uint64_t total_bytes = 0;  ///< summed entry sizes
  bool has_last_run = false;    ///< a last-run marker was found and parsed
  std::string last_spec;        ///< spec name of the most recent run
  CacheStats last_run;          ///< its hit/miss/store counters
};

/// Directory-backed cache.  A default-constructed cache is disabled: every
/// lookup misses and stores are dropped, so callers need no branching.
class ResultCache {
 public:
  ResultCache() = default;
  /// Opens (creating if needed) the cache directory.
  explicit ResultCache(std::string directory);

  [[nodiscard]] bool enabled() const noexcept { return !directory_.empty(); }
  [[nodiscard]] const std::string& directory() const noexcept {
    return directory_;
  }

  /// Returns the stored value for this job, verifying the canonical key.
  /// A hit refreshes the entry's modification time, which is the recency
  /// signal `evict_to` orders by.
  [[nodiscard]] std::optional<CachedSolve> lookup(
      const std::string& hash_hex, const std::string& canonical_key);

  /// Persists a value (no-op when disabled).  Safe under concurrent writers
  /// in different processes: entries land via unique-temp-then-rename.
  void store(const std::string& hash_hex, const std::string& canonical_key,
             const CachedSolve& value);

  /// LRU eviction (`--cache-max-bytes`): removes the least recently used
  /// entries until the summed entry bytes fit in `max_bytes`.  Recency is
  /// the entry file's mtime (stores and hits both refresh it).  Returns the
  /// number of entries removed, also accumulated into `stats.evicted`.
  /// No-op (returns 0) when disabled or `max_bytes` is 0.
  std::size_t evict_to(std::uint64_t max_bytes);

  /// Writes `stats` and the spec name as the directory's last-run marker
  /// (no-op when disabled).  `inspect` reads it back.
  void write_last_run(const std::string& spec) const;

  /// Scans a cache directory without opening it as a cache: entry count,
  /// total bytes, and the persisted counters of the last run.
  [[nodiscard]] static CacheInventory inspect(const std::string& directory);

  CacheStats stats;

 private:
  std::string directory_;
};

/// Line-oriented serialization primitives shared by the cache entries and
/// the shard-result fragments (experiments/shard.hpp): doubles travel as
/// 64-bit hex bit patterns so values round-trip bit-exactly, and free-form
/// text (keys, rendered JSON rows, error messages) is length-prefixed.
namespace detail {
void put_double(std::ostream& out, double value);
[[nodiscard]] double get_double(std::istream& in);
void put_blob(std::ostream& out, const std::string& label,
              const std::string& text);
[[nodiscard]] std::string get_blob(std::istream& in,
                                   const std::string& label);
}  // namespace detail

}  // namespace dlsched::experiments
