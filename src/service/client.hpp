// Blocking client for a running `dlsched_serve` daemon or a cluster
// coordinator.
//
// One `ServeClient` is one connection -- an AF_UNIX path or a
// `tcp://host:port` endpoint (service/net.hpp grammar) -- speaking the
// wire protocol (service/wire.hpp).  Requests are synchronous -- send a
// frame, read the reply frame -- and concurrency comes from opening
// several clients (the replay tool runs one per worker thread).  Protocol
// violations surface as `dlsched::Error`; a solver failure is NOT an
// error here, it travels inside the returned record
// (`record.solved == false`).
#pragma once

#include <string>
#include <string_view>

#include "service/wire.hpp"

namespace dlsched::service {

/// One daemon answer to a solve request.
struct SolveReply {
  enum class Kind { Result, Rejected };
  Kind kind = Kind::Result;
  SolveRecord record;   ///< valid when kind == Result
  RejectInfo reject;    ///< valid when kind == Rejected
  /// The reply's raw payload bytes (the encoded result body for Result):
  /// what the byte-identity checks compare.
  std::string raw_body;
};

class ServeClient {
 public:
  /// Connects to an AF_UNIX path or `tcp://host:port` endpoint; throws
  /// `dlsched::Error` on failure.
  explicit ServeClient(const std::string& endpoint);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Sends one solve request and reads its reply.  Throws on protocol
  /// errors (including a ProtocolError frame from the daemon).
  [[nodiscard]] SolveReply solve(const std::string& solver,
                                 const SolveRequest& request);

  /// Queries the stats mailbox; returns the report JSON.
  [[nodiscard]] std::string stats_json();

  /// Sends raw bytes and reads one frame back -- the adversarial-decode
  /// tests use this to poke the daemon with garbage.
  [[nodiscard]] Frame raw_roundtrip(std::string_view bytes);

 private:
  [[nodiscard]] Frame read_frame();

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace dlsched::service
