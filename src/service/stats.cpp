#include "service/stats.hpp"

#include "experiments/emitter.hpp"

namespace dlsched::service {

namespace {
// Registry names for the daemon's cumulative counters; the claim-board
// gauges mirror under "board.*".  README "Observability" lists them all.
constexpr const char* kAdmitted = "service.admitted";
constexpr const char* kRejected = "service.rejected";
constexpr const char* kCacheHits = "service.cache_hits";
constexpr const char* kSolved = "service.solved";
constexpr const char* kDeduped = "service.deduped";
constexpr const char* kProtocolErrors = "service.protocol_errors";
constexpr const char* kLatency = "service.latency";
}  // namespace

void ServiceStats::on_admitted() {
  registry_.add(kAdmitted);
  const std::lock_guard<std::mutex> lock(mutex_);
  ++state_.queued;
}

void ServiceStats::on_rejected() { registry_.add(kRejected); }

void ServiceStats::on_protocol_error() { registry_.add(kProtocolErrors); }

void ServiceStats::on_batch_started(std::size_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  state_.queued -= n < state_.queued ? n : state_.queued;
  state_.in_flight += n;
}

void ServiceStats::on_completed(Completion kind, double latency_seconds) {
  switch (kind) {
    case Completion::CacheHit:
      registry_.add(kCacheHits);
      break;
    case Completion::Solved:
      registry_.add(kSolved);
      break;
    case Completion::Deduped:
      registry_.add(kDeduped);
      break;
  }
  registry_.observe(kLatency, latency_seconds);
}

void ServiceStats::on_batch_finished(std::size_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  state_.in_flight -= n < state_.in_flight ? n : state_.in_flight;
}

void ServiceStats::set_draining(bool draining) {
  const std::lock_guard<std::mutex> lock(mutex_);
  state_.draining = draining;
}

void ServiceStats::set_board(const CoordinatorGauges& board) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    state_.board = board;
  }
  registry_.set_gauge("board.shards_total",
                      static_cast<std::int64_t>(board.shards_total));
  registry_.set_gauge("board.shards_done",
                      static_cast<std::int64_t>(board.shards_done));
  registry_.set_gauge("board.shard_backlog",
                      static_cast<std::int64_t>(board.shard_backlog));
  registry_.set_gauge("board.leases_outstanding",
                      static_cast<std::int64_t>(board.leases_outstanding));
  registry_.set_gauge("board.fragment_bytes",
                      static_cast<std::int64_t>(board.fragment_bytes));
  registry_.set_gauge("board.fragments_discarded",
                      static_cast<std::int64_t>(board.fragments_discarded));
  registry_.set_gauge("board.lease_reassignments",
                      static_cast<std::int64_t>(board.lease_reassignments));
  registry_.set_gauge("board.workers_spawned",
                      static_cast<std::int64_t>(board.workers_spawned));
  registry_.set_gauge("board.workers_retired",
                      static_cast<std::int64_t>(board.workers_retired));
}

StatsSnapshot ServiceStats::snapshot() const {
  StatsSnapshot s;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    s = state_;
  }
  s.admitted = registry_.counter(kAdmitted);
  s.rejected = registry_.counter(kRejected);
  s.cache_hits = registry_.counter(kCacheHits);
  s.solved = registry_.counter(kSolved);
  s.deduped = registry_.counter(kDeduped);
  s.protocol_errors = registry_.counter(kProtocolErrors);
  s.latency = registry_.histogram(kLatency);
  return s;
}

std::string ServiceStats::render_json() const {
  const StatsSnapshot s = snapshot();
  const std::uint64_t answered = s.cache_hits + s.solved + s.deduped;
  experiments::JsonObject report;
  report.add("admitted", static_cast<std::size_t>(s.admitted))
      .add("rejected", static_cast<std::size_t>(s.rejected))
      .add("cache_hits", static_cast<std::size_t>(s.cache_hits))
      .add("solved", static_cast<std::size_t>(s.solved))
      .add("deduped", static_cast<std::size_t>(s.deduped))
      .add("protocol_errors", static_cast<std::size_t>(s.protocol_errors))
      .add("completed", static_cast<std::size_t>(answered))
      .add("queued", s.queued)
      .add("in_flight", s.in_flight)
      .add("draining", s.draining)
      .add("uptime_seconds", registry_.uptime_seconds())
      .add("hit_ratio",
           answered == 0 ? 0.0
                         : static_cast<double>(s.cache_hits) /
                               static_cast<double>(answered))
      .add("latency_p50_s", s.latency.quantile_upper(0.50))
      .add("latency_p90_s", s.latency.quantile_upper(0.90))
      .add("latency_p99_s", s.latency.quantile_upper(0.99));
  report.add_raw("latency_us_log2_buckets", s.latency.render_buckets_json());
  if (s.board.cluster) {
    report.add("shards_total", s.board.shards_total)
        .add("shards_done", s.board.shards_done)
        .add("shard_backlog", s.board.shard_backlog)
        .add("leases_outstanding", s.board.leases_outstanding)
        .add("fragment_bytes", static_cast<std::size_t>(s.board.fragment_bytes))
        .add("fragments_discarded",
             static_cast<std::size_t>(s.board.fragments_discarded))
        .add("lease_reassignments",
             static_cast<std::size_t>(s.board.lease_reassignments))
        .add("workers_spawned",
             static_cast<std::size_t>(s.board.workers_spawned))
        .add("workers_retired",
             static_cast<std::size_t>(s.board.workers_retired));
  }
  return report.render();
}

}  // namespace dlsched::service
