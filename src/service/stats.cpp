#include "service/stats.hpp"

#include <bit>
#include <cmath>

#include "experiments/emitter.hpp"

namespace dlsched::service {

void LatencyHistogram::add(double seconds) noexcept {
  if (!(seconds >= 0.0)) seconds = 0.0;  // NaN / negative clock skew
  const double micros = seconds * 1e6;
  std::size_t bucket = 0;
  if (micros >= 1.0) {
    const auto floor_micros = static_cast<std::uint64_t>(micros);
    bucket = static_cast<std::size_t>(std::bit_width(floor_micros)) - 1;
    if (bucket >= kBuckets) bucket = kBuckets - 1;
  }
  ++counts_[bucket];
  ++total_;
}

double LatencyHistogram::quantile_upper(double q) const noexcept {
  if (total_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      return static_cast<double>(std::uint64_t{1} << (i + 1)) * 1e-6;
    }
  }
  return static_cast<double>(std::uint64_t{1} << kBuckets) * 1e-6;
}

void ServiceStats::on_admitted() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++state_.admitted;
  ++state_.queued;
}

void ServiceStats::on_rejected() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++state_.rejected;
}

void ServiceStats::on_protocol_error() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++state_.protocol_errors;
}

void ServiceStats::on_batch_started(std::size_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  state_.queued -= n < state_.queued ? n : state_.queued;
  state_.in_flight += n;
}

void ServiceStats::on_completed(Completion kind, double latency_seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  switch (kind) {
    case Completion::CacheHit:
      ++state_.cache_hits;
      break;
    case Completion::Solved:
      ++state_.solved;
      break;
    case Completion::Deduped:
      ++state_.deduped;
      break;
  }
  state_.latency.add(latency_seconds);
}

void ServiceStats::on_batch_finished(std::size_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  state_.in_flight -= n < state_.in_flight ? n : state_.in_flight;
}

void ServiceStats::set_draining(bool draining) {
  const std::lock_guard<std::mutex> lock(mutex_);
  state_.draining = draining;
}

void ServiceStats::set_board(const CoordinatorGauges& board) {
  const std::lock_guard<std::mutex> lock(mutex_);
  state_.board = board;
}

StatsSnapshot ServiceStats::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

std::string ServiceStats::render_json() const {
  const StatsSnapshot s = snapshot();
  const std::uint64_t answered = s.cache_hits + s.solved + s.deduped;
  experiments::JsonObject report;
  report.add("admitted", static_cast<std::size_t>(s.admitted))
      .add("rejected", static_cast<std::size_t>(s.rejected))
      .add("cache_hits", static_cast<std::size_t>(s.cache_hits))
      .add("solved", static_cast<std::size_t>(s.solved))
      .add("deduped", static_cast<std::size_t>(s.deduped))
      .add("protocol_errors", static_cast<std::size_t>(s.protocol_errors))
      .add("completed", static_cast<std::size_t>(answered))
      .add("queued", s.queued)
      .add("in_flight", s.in_flight)
      .add("draining", s.draining)
      .add("hit_ratio",
           answered == 0 ? 0.0
                         : static_cast<double>(s.cache_hits) /
                               static_cast<double>(answered))
      .add("latency_p50_s", s.latency.quantile_upper(0.50))
      .add("latency_p90_s", s.latency.quantile_upper(0.90))
      .add("latency_p99_s", s.latency.quantile_upper(0.99));
  std::string buckets = "[";
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (i != 0) buckets += ',';
    buckets += std::to_string(s.latency.buckets()[i]);
  }
  buckets += ']';
  report.add_raw("latency_us_log2_buckets", std::move(buckets));
  if (s.board.cluster) {
    report.add("shards_total", s.board.shards_total)
        .add("shards_done", s.board.shards_done)
        .add("shard_backlog", s.board.shard_backlog)
        .add("leases_outstanding", s.board.leases_outstanding)
        .add("fragment_bytes", static_cast<std::size_t>(s.board.fragment_bytes))
        .add("fragments_discarded",
             static_cast<std::size_t>(s.board.fragments_discarded))
        .add("lease_reassignments",
             static_cast<std::size_t>(s.board.lease_reassignments))
        .add("workers_spawned",
             static_cast<std::size_t>(s.board.workers_spawned))
        .add("workers_retired",
             static_cast<std::size_t>(s.board.workers_retired));
  }
  return report.render();
}

}  // namespace dlsched::service
