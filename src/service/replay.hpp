// Replay load generation for `dlsched_serve`.
//
// A *stream* is a recorded sequence of solve-request frames -- exactly
// the bytes a set of clients would write -- stored in one file.
// `record_stream` synthesizes a deterministic stream from the platform
// generators (same seed, same bytes), `run_replay` fires a stream at a
// running daemon with N concurrent connections and collects per-request
// latencies plus every response body in request order, and
// `render_bench_json` turns the report into `BENCH_serve.json` for the
// gated perf trajectory.  Because responses are kept in request order,
// two runs of the same stream can be compared byte for byte (the CI
// serve-smoke job's cold-vs-warm check).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dlsched::service {

struct RecordParams {
  std::size_t requests = 64;   ///< total requests in the stream
  std::size_t distinct = 16;   ///< distinct jobs; the rest repeat cyclically
  std::size_t p = 6;           ///< workers per generated platform
  std::uint64_t seed = 1;      ///< generator seed base
  std::string solver = "fifo_optimal";
  std::string generator = "random_star";
};

/// Synthesizes a stream: `requests` solve-request frames over `distinct`
/// generated platforms (request i uses platform i % distinct).
/// Deterministic in the params.
[[nodiscard]] std::string record_stream(const RecordParams& params);

/// Parses a stream back into its request payloads (the frame bodies);
/// throws `dlsched::Error` on malformed bytes.
[[nodiscard]] std::vector<std::string> load_stream(const std::string& bytes);

struct ReplayParams {
  std::string socket_path;
  std::size_t concurrency = 4;  ///< client connections / worker threads
  std::size_t max_retries = 64; ///< per request, on backpressure rejects
};

struct ReplayReport {
  std::size_t requests = 0;
  std::size_t completed = 0;     ///< answered with a result
  std::size_t failed = 0;        ///< gave up (drain / retries exhausted)
  std::size_t rejects = 0;       ///< backpressure rejects observed
  double wall_seconds = 0.0;
  std::vector<double> latency_seconds;  ///< per completed request
  /// Response result bodies in request order ("" for failed slots).
  std::vector<std::string> responses;
  std::string stats_before;  ///< daemon stats JSON before the run
  std::string stats_after;   ///< ... and after
};

/// Fires the stream at the daemon.  Rejected requests honor the advertised
/// retry-after and retry up to `max_retries`; a reject with a negative
/// retry-after (drain) fails the request immediately.
[[nodiscard]] ReplayReport run_replay(const ReplayParams& params,
                                      const std::vector<std::string>& bodies);

/// Renders the report as the BENCH_serve.json document: exact p50/p90/p99
/// latency, requests/s, and the cache hit ratio of this run (computed
/// from the daemon's before/after counters).
[[nodiscard]] std::string render_bench_json(const ReplayReport& report,
                                            std::size_t concurrency);

/// Extracts a numeric field from a flat stats JSON object; throws when
/// absent.  (The daemon's report is machine-written, flat and unescaped,
/// so a tiny scanner is enough -- no JSON parser dependency.)
[[nodiscard]] double json_number_field(const std::string& json,
                                       const std::string& key);

}  // namespace dlsched::service
