#include "service/replay.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "experiments/emitter.hpp"
#include "platform/generators.hpp"
#include "service/client.hpp"
#include "service/wire.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dlsched::service {

std::string record_stream(const RecordParams& params) {
  DLSCHED_EXPECT(params.requests > 0, "record: zero requests");
  DLSCHED_EXPECT(params.distinct > 0, "record: zero distinct jobs");
  const std::size_t distinct = std::min(params.distinct, params.requests);
  std::vector<std::string> bodies;
  bodies.reserve(distinct);
  for (std::size_t i = 0; i < distinct; ++i) {
    gen::GenParams gen_params;
    gen_params["p"] = static_cast<double>(params.p);
    Rng rng(params.seed + i);
    const gen::GeneratedPlatform generated =
        gen::GeneratorRegistry::instance().make_generated(
            params.generator, gen_params, rng);
    SolveRequest request;
    request.platform = generated.platform;
    request.seed = params.seed + i;
    bodies.push_back(encode_request_body(params.solver, request));
  }
  std::string stream;
  for (std::size_t i = 0; i < params.requests; ++i) {
    stream += encode_frame(FrameType::SolveRequest, bodies[i % distinct]);
  }
  return stream;
}

std::vector<std::string> load_stream(const std::string& bytes) {
  std::vector<std::string> bodies;
  std::string_view rest = bytes;
  while (!rest.empty()) {
    const FrameDecode decode = try_decode_frame(rest);
    DLSCHED_EXPECT(decode.status == DecodeStatus::Ok,
                   "stream file: malformed frame: " +
                       (decode.error.empty() ? "truncated" : decode.error));
    DLSCHED_EXPECT(decode.frame.type == FrameType::SolveRequest,
                   "stream file: non-request frame in stream");
    bodies.push_back(std::move(decode.frame.payload));
    rest.remove_prefix(decode.consumed);
  }
  DLSCHED_EXPECT(!bodies.empty(), "stream file: no requests");
  return bodies;
}

ReplayReport run_replay(const ReplayParams& params,
                        const std::vector<std::string>& bodies) {
  DLSCHED_EXPECT(params.concurrency > 0, "replay: zero concurrency");
  ReplayReport report;
  report.requests = bodies.size();
  report.responses.assign(bodies.size(), "");
  std::vector<double> latency(bodies.size(), -1.0);
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> rejects{0};
  std::atomic<std::size_t> failed{0};

  {
    ServeClient stats_client(params.socket_path);
    report.stats_before = stats_client.stats_json();
  }

  const auto run_started = std::chrono::steady_clock::now();
  const std::size_t workers = std::min(params.concurrency, bodies.size());
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) {
    pool.emplace_back([&] {
      ServeClient client(params.socket_path);
      for (std::size_t i = next.fetch_add(1); i < bodies.size();
           i = next.fetch_add(1)) {
        const std::string frame =
            encode_frame(FrameType::SolveRequest, bodies[i]);
        const auto started = std::chrono::steady_clock::now();
        bool done = false;
        for (std::size_t attempt = 0; attempt <= params.max_retries;
             ++attempt) {
          Frame reply = client.raw_roundtrip(frame);
          if (reply.type == FrameType::SolveResult) {
            latency[i] = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - started)
                             .count();
            report.responses[i] = std::move(reply.payload);
            done = true;
            break;
          }
          DLSCHED_EXPECT(reply.type == FrameType::Reject,
                         "replay: unexpected reply frame");
          rejects.fetch_add(1);
          const RejectInfo info = decode_reject_body(reply.payload);
          if (info.retry_after_ms < 0.0) break;  // draining: do not retry
          std::this_thread::sleep_for(std::chrono::duration<double,
                                                            std::milli>(
              info.retry_after_ms));
        }
        if (!done) failed.fetch_add(1);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  report.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - run_started)
                            .count();

  {
    ServeClient stats_client(params.socket_path);
    report.stats_after = stats_client.stats_json();
  }

  report.rejects = rejects.load();
  report.failed = failed.load();
  for (const double l : latency) {
    if (l >= 0.0) report.latency_seconds.push_back(l);
  }
  report.completed = report.latency_seconds.size();
  return report;
}

namespace {

/// Exact quantile over a sorted sample (nearest-rank).
double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

}  // namespace

double json_number_field(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle);
  DLSCHED_EXPECT(at != std::string::npos,
                 "stats report: missing field '" + key + "'");
  return std::stod(json.substr(at + needle.size()));
}

std::string render_bench_json(const ReplayReport& report,
                              std::size_t concurrency) {
  std::vector<double> sorted = report.latency_seconds;
  std::sort(sorted.begin(), sorted.end());
  // This run's hit ratio from the daemon's cumulative counters: the
  // warm-replay gate (>= 0.9) reads this field.
  const double answered_delta =
      json_number_field(report.stats_after, "completed") -
      json_number_field(report.stats_before, "completed");
  const double hits_delta =
      json_number_field(report.stats_after, "cache_hits") -
      json_number_field(report.stats_before, "cache_hits");
  experiments::JsonObject doc;
  doc.add("bench", "serve")
      .add("requests", report.requests)
      .add("completed", report.completed)
      .add("failed", report.failed)
      .add("rejects", report.rejects)
      .add("concurrency", concurrency)
      .add("wall_seconds", report.wall_seconds)
      .add("requests_per_second",
           report.wall_seconds > 0.0
               ? static_cast<double>(report.completed) / report.wall_seconds
               : 0.0)
      .add("latency_p50_s", quantile(sorted, 0.50))
      .add("latency_p90_s", quantile(sorted, 0.90))
      .add("latency_p99_s", quantile(sorted, 0.99))
      .add("hit_ratio",
           answered_delta > 0.0 ? hits_delta / answered_delta : 0.0);
  doc.add_raw("server_stats", report.stats_after);
  return doc.render() + "\n";
}

}  // namespace dlsched::service
