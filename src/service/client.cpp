#include "service/client.hpp"

#include <unistd.h>

#include "service/net.hpp"
#include "util/error.hpp"

namespace dlsched::service {

ServeClient::ServeClient(const std::string& endpoint) {
  fd_ = net::connect_endpoint(net::parse_endpoint(endpoint));
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

Frame ServeClient::read_frame() {
  return net::read_frame(fd_, buffer_, "client");
}

Frame ServeClient::raw_roundtrip(std::string_view bytes) {
  DLSCHED_EXPECT(net::send_all(fd_, bytes), "client: cannot write to peer");
  return read_frame();
}

SolveReply ServeClient::solve(const std::string& solver,
                              const SolveRequest& request) {
  const Frame reply = raw_roundtrip(encode_frame(
      FrameType::SolveRequest, encode_request_body(solver, request)));
  SolveReply out;
  out.raw_body = reply.payload;
  switch (reply.type) {
    case FrameType::SolveResult:
      out.kind = SolveReply::Kind::Result;
      out.record = decode_result_body(reply.payload);
      return out;
    case FrameType::Reject:
      out.kind = SolveReply::Kind::Rejected;
      out.reject = decode_reject_body(reply.payload);
      return out;
    case FrameType::ProtocolError:
      DLSCHED_FAIL("client: daemon protocol error: " + reply.payload);
    default:
      DLSCHED_FAIL("client: unexpected reply frame type " +
                   std::to_string(static_cast<int>(reply.type)));
  }
}

std::string ServeClient::stats_json() {
  const Frame reply =
      raw_roundtrip(encode_frame(FrameType::StatsQuery, ""));
  DLSCHED_EXPECT(reply.type == FrameType::StatsReport,
                 "client: expected a StatsReport reply");
  return reply.payload;
}

}  // namespace dlsched::service
