#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace dlsched::service {

ServeClient::ServeClient(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  DLSCHED_EXPECT(!socket_path.empty() &&
                     socket_path.size() < sizeof(addr.sun_path),
                 "client: bad socket path '" + socket_path + "'");
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  DLSCHED_EXPECT(fd_ >= 0, "client: cannot create socket");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    DLSCHED_FAIL("client: cannot connect to '" + socket_path +
                 "': " + std::strerror(err));
  }
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

Frame ServeClient::read_frame() {
  char chunk[4096];
  for (;;) {
    const FrameDecode decode = try_decode_frame(buffer_);
    if (decode.status == DecodeStatus::Ok) {
      buffer_.erase(0, decode.consumed);
      return decode.frame;
    }
    DLSCHED_EXPECT(decode.status == DecodeStatus::NeedMore,
                   "client: malformed frame from daemon: " + decode.error);
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    DLSCHED_EXPECT(n > 0, "client: daemon closed the connection");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Frame ServeClient::raw_roundtrip(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    DLSCHED_EXPECT(n > 0, "client: cannot write to daemon");
    sent += static_cast<std::size_t>(n);
  }
  return read_frame();
}

SolveReply ServeClient::solve(const std::string& solver,
                              const SolveRequest& request) {
  const Frame reply = raw_roundtrip(encode_frame(
      FrameType::SolveRequest, encode_request_body(solver, request)));
  SolveReply out;
  out.raw_body = reply.payload;
  switch (reply.type) {
    case FrameType::SolveResult:
      out.kind = SolveReply::Kind::Result;
      out.record = decode_result_body(reply.payload);
      return out;
    case FrameType::Reject:
      out.kind = SolveReply::Kind::Rejected;
      out.reject = decode_reject_body(reply.payload);
      return out;
    case FrameType::ProtocolError:
      DLSCHED_FAIL("client: daemon protocol error: " + reply.payload);
    default:
      DLSCHED_FAIL("client: unexpected reply frame type " +
                   std::to_string(static_cast<int>(reply.type)));
  }
}

std::string ServeClient::stats_json() {
  const Frame reply =
      raw_roundtrip(encode_frame(FrameType::StatsQuery, ""));
  DLSCHED_EXPECT(reply.type == FrameType::StatsReport,
                 "client: expected a StatsReport reply");
  return reply.payload;
}

}  // namespace dlsched::service
