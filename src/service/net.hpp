// Shared SOCK_STREAM plumbing for the service layer.
//
// The daemon (server.cpp), the cluster coordinator (coordinator.cpp), the
// TCP workers (worker.cpp) and the blocking client (client.cpp) all speak
// the same framed protocol over either an AF_UNIX socket or TCP; this
// header owns the endpoint grammar and the few syscall loops they share
// so the retry/EINTR/partial-write handling exists once.
//
// Endpoint grammar:
//   * `tcp://host:port` or bare `host:port` -- a TCP endpoint (the bare
//     form is what `--coordinator 127.0.0.1:7070` passes).
//   * anything else -- an AF_UNIX socket path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "service/wire.hpp"

namespace dlsched::service::net {

struct Endpoint {
  bool tcp = false;
  std::string host;        ///< TCP only
  std::uint16_t port = 0;  ///< TCP only
  std::string path;        ///< AF_UNIX only
  [[nodiscard]] std::string describe() const;
};

/// Parses the endpoint grammar above; throws `dlsched::Error` on a
/// malformed TCP form (missing or non-numeric port).
[[nodiscard]] Endpoint parse_endpoint(const std::string& text);

/// Connects a blocking stream socket to the endpoint; returns the fd.
/// Throws `dlsched::Error` (with errno text) when the peer is not there.
[[nodiscard]] int connect_endpoint(const Endpoint& endpoint);

/// Binds + listens a TCP socket on `host:port` (port 0 = ephemeral) and
/// returns the fd; `bound_port` receives the actual port.  Throws on
/// failure.
[[nodiscard]] int listen_tcp(const std::string& host, std::uint16_t port,
                             std::uint16_t& bound_port);

/// Writes all of `bytes`, riding out EINTR and partial writes with
/// MSG_NOSIGNAL; returns false when the peer is gone.
[[nodiscard]] bool send_all(int fd, std::string_view bytes);

/// Reads one complete frame from `fd`, appending to `buffer` (which may
/// already hold a partial next frame).  Throws `dlsched::Error` on EOF or
/// a malformed frame, prefixed with `who`.
[[nodiscard]] Frame read_frame(int fd, std::string& buffer, const char* who);

}  // namespace dlsched::service::net
