#include "service/wire.hpp"

#include <bit>
#include <sstream>

#include "experiments/emitter.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace dlsched::service {

// ------------------------------------------------------------ primitives --

void put_double(std::ostream& out, double value) {
  out << std::hex << std::bit_cast<std::uint64_t>(value) << std::dec;
}

double get_double(std::istream& in) {
  std::uint64_t bits = 0;
  in >> std::hex >> bits >> std::dec;
  return std::bit_cast<double>(bits);
}

void put_blob(std::ostream& out, const std::string& label,
              const std::string& text) {
  out << label << ' ' << text.size() << '\n' << text << '\n';
}

std::string get_blob(std::istream& in, const std::string& label) {
  std::string seen;
  std::size_t size = 0;
  in >> seen >> size;
  DLSCHED_EXPECT(seen == label && in.good(),
                 "wire body: expected '" + label + "' blob");
  in.ignore(1);  // the newline after the size
  std::string text(size, '\0');
  in.read(text.data(), static_cast<std::streamsize>(size));
  in.ignore(1);
  DLSCHED_EXPECT(in.good(), "wire body: truncated '" + label + "' blob");
  return text;
}

void put_indices(std::ostream& out, const std::string& label,
                 const std::vector<std::size_t>& values) {
  out << label << ' ' << values.size();
  for (const std::size_t v : values) out << ' ' << v;
  out << '\n';
}

std::vector<std::size_t> get_indices(std::istream& in,
                                     const std::string& label) {
  std::string seen;
  std::size_t count = 0;
  in >> seen >> count;
  DLSCHED_EXPECT(seen == label && in.good(),
                 "wire body: expected '" + label + "' list");
  std::vector<std::size_t> values(count);
  for (std::size_t& v : values) in >> v;
  DLSCHED_EXPECT(!in.fail(), "wire body: truncated '" + label + "' list");
  return values;
}

void put_doubles(std::ostream& out, const std::string& label,
                 const std::vector<double>& values) {
  out << label << ' ' << values.size();
  for (const double v : values) {
    out << ' ';
    put_double(out, v);
  }
  out << '\n';
}

std::vector<double> get_doubles(std::istream& in, const std::string& label) {
  std::string seen;
  std::size_t count = 0;
  in >> seen >> count;
  DLSCHED_EXPECT(seen == label && in.good(),
                 "wire body: expected '" + label + "' list");
  std::vector<double> values(count);
  for (double& v : values) v = get_double(in);
  DLSCHED_EXPECT(!in.fail(), "wire body: truncated '" + label + "' list");
  return values;
}

namespace {

/// Shared header check for the versioned text bodies.
void expect_body_header(std::istream& in, const std::string& magic,
                        int version) {
  std::string seen;
  int seen_version = 0;
  in >> seen >> seen_version;
  DLSCHED_EXPECT(seen == magic && seen_version == version && in.good(),
                 "wire body: expected '" + magic + " " +
                     std::to_string(version) + "' header");
  in.ignore(1);
}

std::string expect_label(std::istream& in, const std::string& label,
                         const char* what) {
  std::string seen;
  in >> seen;
  DLSCHED_EXPECT(seen == label && in.good(),
                 std::string("wire body: expected ") + what);
  return seen;
}

}  // namespace

// ------------------------------------------------------------ the record --

SolveRecord record_from_outcome(const BatchOutcome& outcome) {
  SolveRecord record;
  record.solver = outcome.solver;
  record.solved = outcome.solved;
  record.validated = outcome.ok;
  record.error = outcome.error;
  record.validate_seconds = outcome.validate_seconds;
  if (!outcome.solved) return record;
  const SolveResult& result = outcome.result;
  record.throughput = result.throughput();
  record.alpha = result.solution.alpha_double();
  record.send_order = result.solution.scenario.send_order;
  record.return_order = result.solution.scenario.return_order;
  record.workers_used = result.solution.enrolled().size();
  record.provably_optimal = result.provably_optimal;
  record.mirrored = result.mirrored;
  record.used_two_port = result.used_two_port;
  record.exact = result.exact;
  record.budget_exhausted = result.budget_exhausted;
  record.has_alt = result.alt_throughput.has_value();
  if (record.has_alt) {
    record.alt_throughput = result.alt_throughput->to_double();
  }
  record.scenarios_tried = result.scenarios_tried;
  record.lp_evaluations = result.lp_evaluations;
  record.best_rounds = result.best_rounds;
  record.lp_pivots = result.solution.lp_pivots;
  record.lp_fallbacks = result.lp_fallbacks;
  record.lp_warm_starts = result.lp_warm_starts;
  record.lp_pivots_saved = result.lp_pivots_saved;
  record.subsets_pruned = result.subsets_pruned;
  record.subsets_screened = result.subsets_screened;
  record.arena_acquires = result.arena_acquires;
  record.arena_pool_hits = result.arena_pool_hits;
  record.wall_seconds = result.wall_seconds;
  record.participants = result.participants;
  record.replayed = result.replayed;
  record.replay_makespan = result.replay_makespan;
  record.replay_rel_error = result.replay_rel_error;
  return record;
}

void append_result_fields(experiments::JsonObject& row,
                          const SolveRecord& s) {
  DLSCHED_EXPECT(s.solved, "append_result_fields wants a solved record");
  // The canonical field order.  The grid baselines were emitted with this
  // sequence; keep appends at the end so committed artifacts stay
  // comparable across PRs.
  row.add("throughput", s.throughput)
      .add("workers_used", s.workers_used)
      .add("validated", s.validated)
      .add("provably_optimal", s.provably_optimal)
      .add("exact", s.exact)
      .add("scenarios_tried", s.scenarios_tried)
      .add("lp_evaluations", s.lp_evaluations)
      .add("lp_pivots", s.lp_pivots)
      .add("lp_fallbacks", s.lp_fallbacks)
      .add("lp_warm_starts", s.lp_warm_starts)
      .add("lp_pivots_saved", s.lp_pivots_saved)
      .add("subsets_pruned", s.subsets_pruned)
      .add("subsets_screened", s.subsets_screened)
      .add("arena_acquires", static_cast<std::size_t>(s.arena_acquires))
      .add("arena_pool_hits", static_cast<std::size_t>(s.arena_pool_hits));
  if (!s.participants.empty()) {
    row.add_raw("participants",
                experiments::json_index_array(s.participants));
  }
  if (s.replayed) {
    row.add("replay_makespan", s.replay_makespan)
        .add("replay_rel_error", s.replay_rel_error);
  }
  if (s.has_alt) row.add("alt_throughput", s.alt_throughput);
  row.add("wall_seconds", s.wall_seconds)
      .add("validate_seconds", s.validate_seconds);
}

// ----------------------------------------------------------- result body --

namespace {
constexpr const char* kResultMagic = "dlsched-wire-result";
constexpr int kResultVersion = 1;
constexpr const char* kRequestMagic = "dlsched-wire-request";
constexpr int kRequestVersion = 1;
constexpr const char* kRejectMagic = "dlsched-wire-reject";
constexpr int kRejectVersion = 1;
}  // namespace

std::string encode_result_body(const SolveRecord& s) {
  std::ostringstream out;
  out << kResultMagic << ' ' << kResultVersion << '\n';
  put_blob(out, "solver", s.solver);
  put_blob(out, "error", s.error);
  out << "flags " << s.solved << ' ' << s.validated << ' '
      << s.provably_optimal << ' ' << s.mirrored << ' ' << s.used_two_port
      << ' ' << s.exact << ' ' << s.budget_exhausted << ' ' << s.has_alt
      << ' ' << s.replayed << '\n';
  out << "counts " << s.workers_used << ' ' << s.scenarios_tried << ' '
      << s.lp_evaluations << ' ' << s.best_rounds << ' ' << s.lp_pivots
      << ' ' << s.lp_fallbacks << ' ' << s.lp_warm_starts << ' '
      << s.lp_pivots_saved << ' ' << s.subsets_pruned << ' '
      << s.subsets_screened << ' ' << s.arena_acquires << ' '
      << s.arena_pool_hits << '\n';
  out << "scalars ";
  put_double(out, s.throughput);
  out << ' ';
  put_double(out, s.alt_throughput);
  out << ' ';
  put_double(out, s.wall_seconds);
  out << ' ';
  put_double(out, s.validate_seconds);
  out << ' ';
  put_double(out, s.replay_makespan);
  out << ' ';
  put_double(out, s.replay_rel_error);
  out << '\n';
  put_doubles(out, "alpha", s.alpha);
  put_indices(out, "send", s.send_order);
  put_indices(out, "ret", s.return_order);
  put_indices(out, "part", s.participants);
  out << "end\n";
  return out.str();
}

SolveRecord decode_result_body(std::string_view body) {
  std::istringstream in{std::string(body)};
  expect_body_header(in, kResultMagic, kResultVersion);
  SolveRecord s;
  s.solver = get_blob(in, "solver");
  s.error = get_blob(in, "error");
  expect_label(in, "flags", "flags");
  in >> s.solved >> s.validated >> s.provably_optimal >> s.mirrored >>
      s.used_two_port >> s.exact >> s.budget_exhausted >> s.has_alt >>
      s.replayed;
  expect_label(in, "counts", "counts");
  in >> s.workers_used >> s.scenarios_tried >> s.lp_evaluations >>
      s.best_rounds >> s.lp_pivots >> s.lp_fallbacks >> s.lp_warm_starts >>
      s.lp_pivots_saved >> s.subsets_pruned >> s.subsets_screened >>
      s.arena_acquires >> s.arena_pool_hits;
  expect_label(in, "scalars", "scalars");
  s.throughput = get_double(in);
  s.alt_throughput = get_double(in);
  s.wall_seconds = get_double(in);
  s.validate_seconds = get_double(in);
  s.replay_makespan = get_double(in);
  s.replay_rel_error = get_double(in);
  DLSCHED_EXPECT(!in.fail(), "wire body: truncated result scalars");
  s.alpha = get_doubles(in, "alpha");
  s.send_order = get_indices(in, "send");
  s.return_order = get_indices(in, "ret");
  s.participants = get_indices(in, "part");
  std::string label;
  in >> label;
  DLSCHED_EXPECT(label == "end" && !in.fail(),
                 "wire body: missing result end marker");
  return s;
}

// ---------------------------------------------------------- request body --

std::string encode_request_body(const std::string& solver,
                                const SolveRequest& r) {
  std::ostringstream out;
  out << kRequestMagic << ' ' << kRequestVersion << '\n';
  put_blob(out, "solver", solver);
  out << "workers " << r.platform.size() << '\n';
  for (const Worker& w : r.platform.workers()) {
    put_blob(out, "name", w.name);
    out << "cwd ";
    put_double(out, w.c);
    out << ' ';
    put_double(out, w.w);
    out << ' ';
    put_double(out, w.d);
    out << '\n';
  }
  out << "scenario " << r.scenario.has_value() << '\n';
  if (r.scenario) {
    put_indices(out, "send", r.scenario->send_order);
    put_indices(out, "ret", r.scenario->return_order);
  }
  put_indices(out, "participants", r.participants);
  out << "two_port " << r.two_port << '\n';
  out << "precision " << (r.precision == Precision::Exact ? 'e' : 'f')
      << '\n';
  out << "costs ";
  put_double(out, r.costs.send_latency);
  out << ' ';
  put_double(out, r.costs.compute_latency);
  out << ' ';
  put_double(out, r.costs.return_latency);
  out << '\n';
  put_doubles(out, "send_lat_pw", r.costs.send_latency_per_worker);
  put_doubles(out, "ret_lat_pw", r.costs.return_latency_per_worker);
  out << "scalars ";
  put_double(out, r.horizon);
  out << ' ';
  put_double(out, r.time_budget_seconds);
  out << ' ' << r.seed << '\n';
  out << "guards " << r.max_workers_brute << ' ' << r.max_workers_subset
      << ' ' << r.local_search_restarts << ' ' << r.local_search_max_steps
      << ' ' << r.max_rounds << '\n';
  put_doubles(out, "warm", r.warm_alpha);
  out << "end\n";
  return out.str();
}

WireRequest decode_request_body(std::string_view body) {
  std::istringstream in{std::string(body)};
  expect_body_header(in, kRequestMagic, kRequestVersion);
  WireRequest wire;
  wire.solver = get_blob(in, "solver");
  SolveRequest& r = wire.request;
  std::size_t worker_count = 0;
  expect_label(in, "workers", "worker count");
  in >> worker_count;
  DLSCHED_EXPECT(in.good() && worker_count <= 1u << 20,
                 "wire body: implausible worker count");
  in.ignore(1);
  std::vector<Worker> workers;
  workers.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    Worker w;
    w.name = get_blob(in, "name");
    expect_label(in, "cwd", "worker costs");
    w.c = get_double(in);
    w.w = get_double(in);
    w.d = get_double(in);
    DLSCHED_EXPECT(!in.fail(), "wire body: truncated worker costs");
    workers.push_back(std::move(w));
  }
  // The StarPlatform constructor re-validates (c > 0, w > 0, d >= 0), so a
  // malformed request fails here, not deep inside a solver.
  r.platform = StarPlatform(std::move(workers));
  bool has_scenario = false;
  expect_label(in, "scenario", "scenario presence");
  in >> has_scenario;
  DLSCHED_EXPECT(!in.fail(), "wire body: truncated scenario flag");
  if (has_scenario) {
    const std::vector<std::size_t> send = get_indices(in, "send");
    const std::vector<std::size_t> ret = get_indices(in, "ret");
    r.scenario = Scenario::general(send, ret);
  }
  r.participants = get_indices(in, "participants");
  expect_label(in, "two_port", "two_port");
  in >> r.two_port;
  char precision = 'e';
  expect_label(in, "precision", "precision");
  in >> precision;
  DLSCHED_EXPECT(precision == 'e' || precision == 'f',
                 "wire body: precision must be 'e' or 'f'");
  r.precision = precision == 'e' ? Precision::Exact : Precision::Fast;
  expect_label(in, "costs", "costs");
  r.costs.send_latency = get_double(in);
  r.costs.compute_latency = get_double(in);
  r.costs.return_latency = get_double(in);
  r.costs.send_latency_per_worker = get_doubles(in, "send_lat_pw");
  r.costs.return_latency_per_worker = get_doubles(in, "ret_lat_pw");
  expect_label(in, "scalars", "request scalars");
  r.horizon = get_double(in);
  r.time_budget_seconds = get_double(in);
  in >> r.seed;
  expect_label(in, "guards", "guards");
  in >> r.max_workers_brute >> r.max_workers_subset >>
      r.local_search_restarts >> r.local_search_max_steps >> r.max_rounds;
  DLSCHED_EXPECT(!in.fail(), "wire body: truncated guards");
  r.warm_alpha = get_doubles(in, "warm");
  std::string label;
  in >> label;
  DLSCHED_EXPECT(label == "end" && !in.fail(),
                 "wire body: missing request end marker");
  return wire;
}

// ----------------------------------------------------------- reject body --

std::string encode_reject_body(const RejectInfo& info) {
  std::ostringstream out;
  out << kRejectMagic << ' ' << kRejectVersion << '\n';
  out << "retry_after_ms ";
  put_double(out, info.retry_after_ms);
  out << '\n';
  put_blob(out, "reason", info.reason);
  out << "end\n";
  return out.str();
}

RejectInfo decode_reject_body(std::string_view body) {
  std::istringstream in{std::string(body)};
  expect_body_header(in, kRejectMagic, kRejectVersion);
  RejectInfo info;
  expect_label(in, "retry_after_ms", "retry_after_ms");
  info.retry_after_ms = get_double(in);
  DLSCHED_EXPECT(!in.fail(), "wire body: truncated reject");
  info.reason = get_blob(in, "reason");
  std::string label;
  in >> label;
  DLSCHED_EXPECT(label == "end" && !in.fail(),
                 "wire body: missing reject end marker");
  return info;
}

// --------------------------------------------------- cluster lease bodies --

namespace {
constexpr const char* kLeaseRequestMagic = "dlsched-wire-lease-req";
constexpr int kLeaseRequestVersion = 1;
constexpr const char* kLeaseGrantMagic = "dlsched-wire-lease-grant";
constexpr int kLeaseGrantVersion = 1;
constexpr const char* kFragmentMagic = "dlsched-wire-fragment";
constexpr int kFragmentVersion = 1;
constexpr const char* kAckMagic = "dlsched-wire-ack";
constexpr int kAckVersion = 1;

void put_entries(std::ostream& out,
                 const std::vector<WireCacheEntry>& entries) {
  out << "records " << entries.size() << '\n';
  for (const WireCacheEntry& entry : entries) {
    put_blob(out, "hash", entry.hash);
    put_blob(out, "key", entry.key);
    put_blob(out, "body", entry.body);
  }
}

std::vector<WireCacheEntry> get_entries(std::istream& in) {
  std::size_t count = 0;
  expect_label(in, "records", "record count");
  in >> count;
  DLSCHED_EXPECT(in.good() && count <= 1u << 24,
                 "wire body: implausible record count");
  in.ignore(1);
  std::vector<WireCacheEntry> entries;
  entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    WireCacheEntry entry;
    entry.hash = get_blob(in, "hash");
    entry.key = get_blob(in, "key");
    entry.body = get_blob(in, "body");
    entries.push_back(std::move(entry));
  }
  return entries;
}

void expect_end(std::istream& in, const char* what) {
  std::string label;
  in >> label;
  DLSCHED_EXPECT(label == "end" && !in.fail(),
                 std::string("wire body: missing ") + what + " end marker");
}

}  // namespace

std::string encode_lease_request(const LeaseRequestBody& body) {
  std::ostringstream out;
  out << kLeaseRequestMagic << ' ' << kLeaseRequestVersion << '\n';
  out << "kind " << (body.kind == LeaseRequestBody::Kind::Acquire ? 'a' : 'r')
      << '\n';
  put_blob(out, "worker", body.worker_id);
  out << "retirable " << body.retirable << '\n';
  out << "shard " << body.shard_index << '\n';
  put_blob(out, "id", body.shard_id);
  out << "end\n";
  return out.str();
}

LeaseRequestBody decode_lease_request(std::string_view body) {
  std::istringstream in{std::string(body)};
  expect_body_header(in, kLeaseRequestMagic, kLeaseRequestVersion);
  LeaseRequestBody request;
  char kind = 'a';
  expect_label(in, "kind", "lease-request kind");
  in >> kind;
  DLSCHED_EXPECT(kind == 'a' || kind == 'r',
                 "wire body: lease-request kind must be 'a' or 'r'");
  request.kind = kind == 'a' ? LeaseRequestBody::Kind::Acquire
                             : LeaseRequestBody::Kind::Renew;
  in.ignore(1);
  request.worker_id = get_blob(in, "worker");
  expect_label(in, "retirable", "retirable flag");
  in >> request.retirable;
  expect_label(in, "shard", "shard index");
  in >> request.shard_index;
  DLSCHED_EXPECT(!in.fail(), "wire body: truncated lease request");
  in.ignore(1);
  request.shard_id = get_blob(in, "id");
  expect_end(in, "lease-request");
  return request;
}

std::string encode_lease_grant(const LeaseGrantBody& body) {
  std::ostringstream out;
  out << kLeaseGrantMagic << ' ' << kLeaseGrantVersion << '\n';
  char kind = 'w';
  switch (body.kind) {
    case LeaseGrantBody::Kind::Work: kind = 'w'; break;
    case LeaseGrantBody::Kind::Wait: kind = 'p'; break;  // "pause"
    case LeaseGrantBody::Kind::Retire: kind = 'r'; break;
    case LeaseGrantBody::Kind::Done: kind = 'd'; break;
  }
  out << "kind " << kind << '\n';
  out << "retry_after_ms ";
  put_double(out, body.retry_after_ms);
  out << '\n';
  out << "shard " << body.shard_index << '\n';
  put_blob(out, "id", body.shard_id);
  put_blob(out, "fingerprint", body.plan_fingerprint);
  out << "ttl ";
  put_double(out, body.lease_ttl_seconds);
  out << '\n';
  out << "traced " << body.traced << '\n';
  put_blob(out, "spec", body.spec_toml);
  put_entries(out, body.records);
  out << "end\n";
  return out.str();
}

LeaseGrantBody decode_lease_grant(std::string_view body) {
  std::istringstream in{std::string(body)};
  expect_body_header(in, kLeaseGrantMagic, kLeaseGrantVersion);
  LeaseGrantBody grant;
  char kind = 'p';
  expect_label(in, "kind", "lease-grant kind");
  in >> kind;
  switch (kind) {
    case 'w': grant.kind = LeaseGrantBody::Kind::Work; break;
    case 'p': grant.kind = LeaseGrantBody::Kind::Wait; break;
    case 'r': grant.kind = LeaseGrantBody::Kind::Retire; break;
    case 'd': grant.kind = LeaseGrantBody::Kind::Done; break;
    default:
      DLSCHED_FAIL("wire body: unknown lease-grant kind '" +
                   std::string(1, kind) + "'");
  }
  expect_label(in, "retry_after_ms", "retry_after_ms");
  grant.retry_after_ms = get_double(in);
  expect_label(in, "shard", "shard index");
  in >> grant.shard_index;
  DLSCHED_EXPECT(!in.fail(), "wire body: truncated lease grant");
  in.ignore(1);
  grant.shard_id = get_blob(in, "id");
  grant.plan_fingerprint = get_blob(in, "fingerprint");
  expect_label(in, "ttl", "lease ttl");
  grant.lease_ttl_seconds = get_double(in);
  expect_label(in, "traced", "traced flag");
  in >> grant.traced;
  DLSCHED_EXPECT(!in.fail(), "wire body: truncated lease grant");
  in.ignore(1);
  grant.spec_toml = get_blob(in, "spec");
  grant.records = get_entries(in);
  expect_end(in, "lease-grant");
  return grant;
}

std::string encode_fragment_push(const FragmentPushBody& body) {
  std::ostringstream out;
  out << kFragmentMagic << ' ' << kFragmentVersion << '\n';
  put_blob(out, "worker", body.worker_id);
  out << "shard " << body.shard_index << '\n';
  put_blob(out, "id", body.shard_id);
  put_blob(out, "fingerprint", body.plan_fingerprint);
  put_blob(out, "fragment", body.fragment);
  put_entries(out, body.records);
  if (!body.trace.empty()) put_blob(out, "trace", body.trace);
  out << "end\n";
  return out.str();
}

FragmentPushBody decode_fragment_push(std::string_view body) {
  std::istringstream in{std::string(body)};
  expect_body_header(in, kFragmentMagic, kFragmentVersion);
  FragmentPushBody push;
  push.worker_id = get_blob(in, "worker");
  expect_label(in, "shard", "shard index");
  in >> push.shard_index;
  DLSCHED_EXPECT(!in.fail(), "wire body: truncated fragment push");
  in.ignore(1);
  push.shard_id = get_blob(in, "id");
  push.plan_fingerprint = get_blob(in, "fingerprint");
  push.fragment = get_blob(in, "fragment");
  push.records = get_entries(in);
  // Optional trace section: present only when the worker was tracing.
  std::string label;
  in >> label;
  DLSCHED_EXPECT(!in.fail(), "wire body: truncated fragment push");
  if (label == "trace") {
    std::size_t size = 0;
    in >> size;
    DLSCHED_EXPECT(in.good(), "wire body: expected 'trace' blob");
    in.ignore(1);
    push.trace.assign(size, '\0');
    in.read(push.trace.data(), static_cast<std::streamsize>(size));
    in.ignore(1);
    DLSCHED_EXPECT(in.good(), "wire body: truncated 'trace' blob");
    in >> label;
  }
  DLSCHED_EXPECT(label == "end" && !in.fail(),
                 "wire body: missing fragment-push end marker");
  return push;
}

std::string encode_ack(const AckBody& body) {
  std::ostringstream out;
  out << kAckMagic << ' ' << kAckVersion << '\n';
  out << "ok " << body.ok << '\n';
  put_blob(out, "message", body.message);
  out << "end\n";
  return out.str();
}

AckBody decode_ack(std::string_view body) {
  std::istringstream in{std::string(body)};
  expect_body_header(in, kAckMagic, kAckVersion);
  AckBody ack;
  expect_label(in, "ok", "ack flag");
  in >> ack.ok;
  DLSCHED_EXPECT(!in.fail(), "wire body: truncated ack");
  in.ignore(1);
  ack.message = get_blob(in, "message");
  expect_end(in, "ack");
  return ack;
}

// ----------------------------------------------------------------- frames --

namespace {

constexpr std::size_t kHeaderBytes = 4 + 1 + 4;

void put_u32(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xff));
  out.push_back(static_cast<char>((value >> 8) & 0xff));
  out.push_back(static_cast<char>((value >> 16) & 0xff));
  out.push_back(static_cast<char>((value >> 24) & 0xff));
}

std::uint32_t get_u32(std::string_view bytes, std::size_t at) {
  return static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes[at])) |
         static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes[at + 1]))
             << 8 |
         static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes[at + 2]))
             << 16 |
         static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes[at + 3]))
             << 24;
}

bool known_type(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(FrameType::SolveRequest) &&
         type <= static_cast<std::uint8_t>(FrameType::Drain);
}

}  // namespace

std::string encode_frame(FrameType type, std::string_view payload) {
  obs::ObsSpan span("wire", "encode_frame");
  DLSCHED_EXPECT(payload.size() <= kMaxFramePayload,
                 "frame payload exceeds kMaxFramePayload");
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  put_u32(out, kWireMagic);
  out.push_back(static_cast<char>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

FrameDecode try_decode_frame(std::string_view bytes) {
  obs::ObsSpan span("wire", "decode_frame");
  FrameDecode decode;
  if (bytes.size() < kHeaderBytes) {
    decode.status = DecodeStatus::NeedMore;
    return decode;
  }
  const std::uint32_t magic = get_u32(bytes, 0);
  if ((magic & ~0xffu) != kWireMagicBase) {
    decode.status = DecodeStatus::BadMagic;
    decode.error = "not a dlsched-serve frame (bad magic)";
    return decode;
  }
  decode.version = magic & 0xffu;
  if (decode.version != kWireVersion) {
    decode.status = DecodeStatus::BadVersion;
    decode.error = "wire version mismatch: peer speaks v" +
                   std::to_string(decode.version) + ", this build speaks v" +
                   std::to_string(kWireVersion);
    return decode;
  }
  const std::uint8_t type = static_cast<unsigned char>(bytes[4]);
  if (!known_type(type)) {
    decode.status = DecodeStatus::BadType;
    decode.error = "unknown frame type " + std::to_string(type);
    return decode;
  }
  const std::uint32_t length = get_u32(bytes, 5);
  if (length > kMaxFramePayload) {
    decode.status = DecodeStatus::Oversized;
    decode.error = "frame payload length " + std::to_string(length) +
                   " exceeds the " + std::to_string(kMaxFramePayload) +
                   "-byte bound";
    return decode;
  }
  if (bytes.size() < kHeaderBytes + length) {
    decode.status = DecodeStatus::NeedMore;
    return decode;
  }
  decode.status = DecodeStatus::Ok;
  decode.frame.type = static_cast<FrameType>(type);
  decode.frame.payload = std::string(bytes.substr(kHeaderBytes, length));
  decode.consumed = kHeaderBytes + length;
  return decode;
}

}  // namespace dlsched::service
