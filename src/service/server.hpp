// `dlsched_serve`: the scheduling daemon.
//
// A `Server` owns one AF_UNIX listening socket and answers wire-protocol
// frames (service/wire.hpp).  The request lifecycle:
//
//   accept -> decode frame -> admission -> micro-batch -> respond
//
//   * admission: a `ResultCache` short-circuit answers repeat queries
//     without queueing; fresh work enters a *bounded* queue.  A full
//     queue (or a draining daemon) answers Reject-with-retry-after
//     immediately -- backpressure is explicit, clients never hang.
//   * micro-batching: one batcher thread gathers admitted requests (up
//     to `batch_max`, waiting `batch_wait_ms` after the first) and runs
//     them through `solve_batch`, so concurrent identical requests
//     collapse via within-batch dedupe and the solver pool is shared.
//   * responses are the encoded wire result body -- deduped followers
//     receive the *same bytes* as their primary, and every solve is
//     stored to the cache, so a daemon answer is byte-identical to a
//     direct `solve_batch` + cache round-trip of the same request.
//
// A stats mailbox (service/stats.hpp) is queryable over the same socket.
// Shutdown is a graceful drain: finish queued and in-flight work, refuse
// new requests, then close.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "experiments/cache.hpp"
#include "service/stats.hpp"
#include "service/wire.hpp"

namespace dlsched::service {

struct ServerConfig {
  std::string socket_path;       ///< AF_UNIX path; replaced if stale
  std::size_t solve_threads = 0; ///< solve_batch pool (0 = hardware)
  std::size_t queue_capacity = 64;  ///< bounded admission queue
  std::size_t batch_max = 16;       ///< micro-batch size cap
  double batch_wait_ms = 2.0;       ///< gather window after the first job
  std::string cache_dir;            ///< ResultCache dir; empty = disabled
  double retry_after_ms = 25.0;     ///< advertised backpressure delay
};

class Server {
 public:
  /// Binds, listens and spawns the accept + batcher threads; throws
  /// `dlsched::Error` when the socket cannot be set up.
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Stops admitting: every subsequent solve request (cache hit or not)
  /// gets Reject with `retry_after_ms < 0`; queued and in-flight work
  /// still completes and the stats mailbox keeps answering.
  void begin_drain();

  /// Graceful shutdown: drain, finish everything, close every
  /// connection, unlink the socket.  Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] const ServerConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] StatsSnapshot stats() const { return stats_.snapshot(); }

 private:
  struct Pending {
    WireRequest wire;
    std::string hash;
    std::string key;
    std::chrono::steady_clock::time_point admitted_at;
    std::promise<std::string> response;  ///< an encoded frame
    bool fulfilled = false;
  };

  void accept_loop();
  void batcher_loop();
  void handle_connection(int fd);
  /// Decodes and dispatches one frame payload; returns the encoded
  /// response frame to write back.
  [[nodiscard]] std::string handle_solve_payload(const std::string& payload);
  void run_batch(std::vector<std::unique_ptr<Pending>> batch);

  ServerConfig config_;
  ServiceStats stats_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::thread batcher_thread_;
  std::vector<std::thread> connection_threads_;  // guarded by conn_mutex_
  std::vector<int> connection_fds_;              // guarded by conn_mutex_
  std::mutex conn_mutex_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<Pending>> queue_;  // guarded by queue_mutex_
  bool draining_ = false;                       // guarded by queue_mutex_
  std::atomic<bool> accept_stop_{false};

  std::mutex cache_mutex_;
  experiments::ResultCache cache_;  // guarded by cache_mutex_

  bool stopped_ = false;  // stop() ran (main-thread use only)
};

}  // namespace dlsched::service
