#include "service/worker.hpp"

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "experiments/cache.hpp"
#include "experiments/shard.hpp"
#include "experiments/spec.hpp"
#include "obs/trace.hpp"
#include "service/net.hpp"
#include "service/wire.hpp"
#include "util/error.hpp"

namespace dlsched::service {

namespace {

namespace fs = std::filesystem;

/// A fresh private scratch-cache directory, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& worker_id) {
    std::random_device rd;
    const auto tag = static_cast<std::uint64_t>(rd()) << 32 |
                     static_cast<std::uint64_t>(::getpid());
    path_ = fs::temp_directory_path() /
            ("dlsched-worker-" + worker_id + "-" + std::to_string(tag));
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

/// The lease heartbeat: renews on its own connection every ttl/4 (floored
/// at 50ms) while a shard executes.  Every failure mode -- refused
/// renewal, drain, closed socket -- just stops the heartbeat: execution
/// continues and the coordinator's first-accepted-push-wins commit
/// resolves any race, exactly like a worker whose mtime refresh stalls on
/// the filesystem board.
class LeaseRenewer {
 public:
  LeaseRenewer(net::Endpoint endpoint, std::string worker_id,
               std::size_t shard_index, std::string shard_id,
               double ttl_seconds)
      : endpoint_(std::move(endpoint)),
        worker_id_(std::move(worker_id)),
        shard_index_(shard_index),
        shard_id_(std::move(shard_id)),
        period_seconds_(ttl_seconds / 4.0 < 0.05 ? 0.05 : ttl_seconds / 4.0) {
    thread_ = std::thread([this] { loop(); });
  }
  ~LeaseRenewer() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void loop() {
    int fd = -1;
    try {
      fd = net::connect_endpoint(endpoint_);
    } catch (const std::exception&) {
      return;  // no heartbeat; the TTL race decides
    }
    std::string buffer;
    LeaseRequestBody renew;
    renew.kind = LeaseRequestBody::Kind::Renew;
    renew.worker_id = worker_id_;
    renew.shard_index = shard_index_;
    renew.shard_id = shard_id_;
    const std::string frame =
        encode_frame(FrameType::LeaseRequest, encode_lease_request(renew));
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait_for(lock, std::chrono::duration<double>(period_seconds_),
                     [this] { return stop_; });
        if (stop_) break;
      }
      try {
        const obs::ObsSpan renew_span("lease", "renew");
        if (!net::send_all(fd, frame)) break;
        const Frame reply = net::read_frame(fd, buffer, "renewer");
        if (reply.type != FrameType::Ack) break;  // Drain, or junk
        if (!decode_ack(reply.payload).ok) break;  // lease lost
      } catch (const std::exception&) {
        break;
      }
    }
    ::close(fd);
  }

  net::Endpoint endpoint_;
  std::string worker_id_;
  std::size_t shard_index_;
  std::string shard_id_;
  double period_seconds_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// One shipped spec, parsed and re-planned once per fingerprint.
struct PlanEntry {
  experiments::ExperimentSpec spec;
  std::vector<experiments::CompiledShard> shards;
};

const PlanEntry& plan_for(std::map<std::string, PlanEntry>& plans,
                          const LeaseGrantBody& grant) {
  const auto it = plans.find(grant.plan_fingerprint);
  if (it != plans.end()) return it->second;
  PlanEntry entry;
  entry.spec = experiments::parse_spec_toml(grant.spec_toml,
                                            "<coordinator grant>");
  entry.shards = experiments::plan_shards(entry.spec);
  const std::string local = experiments::plan_fingerprint(entry.shards);
  // The one invariant everything downstream rests on: the worker's local
  // plan IS the coordinator's plan.  Disagreement means the spec did not
  // survive the wire bit-exactly (or the builds diverge) -- refuse loudly
  // rather than execute a shard whose identity is in doubt.
  DLSCHED_EXPECT(local == grant.plan_fingerprint,
                 "worker: plan fingerprint mismatch (coordinator " +
                     grant.plan_fingerprint + ", local " + local +
                     "); spec did not round-trip bit-exactly");
  return plans.emplace(grant.plan_fingerprint, std::move(entry))
      .first->second;
}

}  // namespace

TcpWorkerSummary run_tcp_worker(const TcpWorkerOptions& options,
                                std::ostream& log) {
  DLSCHED_EXPECT(!options.worker_id.empty(), "worker: empty worker id");
  const net::Endpoint endpoint = net::parse_endpoint(options.endpoint);
  const int fd = net::connect_endpoint(endpoint);
  const std::size_t threads = options.threads == 0 ? 1 : options.threads;

  std::optional<ScratchDir> owned_scratch;
  std::string scratch = options.scratch_dir;
  if (scratch.empty()) {
    owned_scratch.emplace(options.worker_id);
    scratch = owned_scratch->str();
  }
  experiments::ResultCache cache(scratch);

  TcpWorkerSummary summary;
  std::map<std::string, PlanEntry> plans;
  std::string buffer;

  LeaseRequestBody acquire;
  acquire.kind = LeaseRequestBody::Kind::Acquire;
  acquire.worker_id = options.worker_id;
  acquire.retirable = options.retirable;
  const std::string acquire_frame =
      encode_frame(FrameType::LeaseRequest, encode_lease_request(acquire));

  for (;;) {
    Frame reply;
    obs::ObsSpan acquire_span("lease", "acquire");
    try {
      DLSCHED_EXPECT(net::send_all(fd, acquire_frame),
                     "worker: coordinator connection lost");
      reply = net::read_frame(fd, buffer, "worker");
    } catch (const std::exception& e) {
      // A coordinator that went away (stop() shuts connections down) is
      // a drain, not a crash: the worker's job is simply over.
      log << "dlsched worker " << options.worker_id
          << ": coordinator gone (" << e.what() << "); exiting\n";
      summary.drained = true;
      break;
    }
    if (reply.type == FrameType::Drain) {
      log << "dlsched worker " << options.worker_id << ": drained ("
          << reply.payload << ")\n";
      summary.drained = true;
      break;
    }
    DLSCHED_EXPECT(reply.type == FrameType::LeaseGrant,
                   "worker: expected LeaseGrant, got frame type " +
                       std::to_string(static_cast<int>(reply.type)));
    const LeaseGrantBody grant = decode_lease_grant(reply.payload);
    // A tracing coordinator asks the fleet to trace: an independently
    // launched worker has no --trace flag, the grant is its switch.
    // (Forked local workers inherit an already-enabled tracer instead,
    // which also keeps their epoch on the coordinator's timeline.)
    if (grant.traced && !obs::Tracer::instance().enabled()) {
      obs::Tracer::instance().enable(options.worker_id);
    }
    if (acquire_span.active()) acquire_span.rename("acquire:" + grant.shard_id);
    acquire_span.finish();
    if (grant.kind == LeaseGrantBody::Kind::Wait) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(grant.retry_after_ms));
      continue;
    }
    if (grant.kind == LeaseGrantBody::Kind::Retire) {
      log << "dlsched worker " << options.worker_id << ": retired\n";
      summary.retired = true;
      break;
    }
    if (grant.kind == LeaseGrantBody::Kind::Done) {
      log << "dlsched worker " << options.worker_id << ": all shards done\n";
      break;
    }

    if (options.abandon_after > 0 &&
        summary.executed >= options.abandon_after) {
      // Chaos hook: die like a kill -9'd worker -- holding the freshly
      // granted lease, pushing nothing, renewing nothing.  The
      // coordinator must re-pend the shard once the lease TTL expires.
      log << "dlsched worker " << options.worker_id
          << ": abandoning the lease on shard " << grant.shard_index
          << " (" << grant.shard_id << ")\n";
      summary.abandoned = true;
      break;
    }

    // Work: re-plan, seed the scratch cache with the grant's records,
    // execute under a heartbeat, push the fragment plus fresh records.
    const PlanEntry& plan = plan_for(plans, grant);
    DLSCHED_EXPECT(grant.shard_index < plan.shards.size() &&
                       plan.shards[grant.shard_index].id == grant.shard_id,
                   "worker: grant names shard " + grant.shard_id +
                       " at index " + std::to_string(grant.shard_index) +
                       ", which is not in the local plan");
    const experiments::CompiledShard& shard = plan.shards[grant.shard_index];
    for (const WireCacheEntry& entry : grant.records) {
      cache.store(entry.hash, entry.key, decode_result_body(entry.body));
    }

    experiments::ShardResult result;
    {
      const LeaseRenewer renewer(endpoint, options.worker_id, shard.index,
                                 shard.id, grant.lease_ttl_seconds);
      result = experiments::execute_shard(plan.spec, shard, cache, threads);
    }

    obs::ObsSpan push_span("lease", "push");
    if (push_span.active()) push_span.rename("push:" + shard.id);
    FragmentPushBody push;
    push.worker_id = options.worker_id;
    push.shard_index = shard.index;
    push.shard_id = shard.id;
    push.plan_fingerprint = grant.plan_fingerprint;
    push.fragment = experiments::serialize_shard_result(result);
    for (const experiments::GridCell& cell : shard.cells) {
      for (const experiments::GridSlot& slot : cell.slots) {
        WireCacheEntry entry;
        entry.key = job_canonical_key(slot.solver, cell.request);
        entry.hash = job_hash_from_key(entry.key);
        if (const auto hit = cache.lookup(entry.hash, entry.key)) {
          entry.body = encode_result_body(*hit);
          push.records.push_back(std::move(entry));
        }
      }
    }

    // Everything recorded since the previous push (or since enable) rides
    // along inside this push; the coordinator folds it into the timeline.
    if (obs::Tracer::instance().enabled()) {
      push.trace = obs::encode_trace(obs::Tracer::instance().drain());
    }

    Frame ack_frame;
    try {
      DLSCHED_EXPECT(
          net::send_all(fd, encode_frame(FrameType::FragmentPush,
                                         encode_fragment_push(push))),
          "worker: coordinator connection lost");
      ack_frame = net::read_frame(fd, buffer, "worker");
    } catch (const std::exception& e) {
      log << "dlsched worker " << options.worker_id
          << ": coordinator gone mid-push (" << e.what() << "); exiting\n";
      summary.drained = true;
      break;
    }
    summary.jobs += result.jobs;
    summary.solved += result.solved;
    summary.cache_hits += result.cache_hits;
    DLSCHED_EXPECT(ack_frame.type == FrameType::Ack,
                   "worker: expected Ack for fragment push, got frame type " +
                       std::to_string(static_cast<int>(ack_frame.type)));
    const AckBody ack = decode_ack(ack_frame.payload);
    if (ack.ok && ack.message == "accepted") {
      ++summary.executed;
      log << "dlsched worker " << options.worker_id << ": shard "
          << shard.index << " (" << shard.id << ") accepted, "
          << result.jobs << " job(s), " << result.solved << " solved, "
          << result.cache_hits << " cache hit(s)\n";
    } else {
      ++summary.discarded;
      log << "dlsched worker " << options.worker_id << ": shard "
          << shard.index << " (" << shard.id
          << ") discarded by coordinator: " << ack.message << "\n";
    }
  }

  ::close(fd);
  return summary;
}

}  // namespace dlsched::service
