#include "service/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace dlsched::service::net {

std::string Endpoint::describe() const {
  if (tcp) return "tcp://" + host + ":" + std::to_string(port);
  return path;
}

Endpoint parse_endpoint(const std::string& text) {
  DLSCHED_EXPECT(!text.empty(), "endpoint: empty");
  Endpoint endpoint;
  std::string rest = text;
  bool forced_tcp = false;
  if (rest.rfind("tcp://", 0) == 0) {
    forced_tcp = true;
    rest = rest.substr(6);
  }
  const std::size_t colon = rest.rfind(':');
  const bool looks_tcp = forced_tcp || (colon != std::string::npos &&
                                        rest.find('/') == std::string::npos);
  if (!looks_tcp) {
    endpoint.path = text;
    return endpoint;
  }
  DLSCHED_EXPECT(colon != std::string::npos && colon > 0 &&
                     colon + 1 < rest.size(),
                 "endpoint '" + text + "': expected host:port");
  endpoint.tcp = true;
  endpoint.host = rest.substr(0, colon);
  const std::string port_text = rest.substr(colon + 1);
  try {
    std::size_t used = 0;
    const unsigned long port = std::stoul(port_text, &used);
    DLSCHED_EXPECT(used == port_text.size() && port <= 65535, "range");
    endpoint.port = static_cast<std::uint16_t>(port);
  } catch (const std::exception&) {
    DLSCHED_FAIL("endpoint '" + text + "': port '" + port_text +
                 "' is not a number in [0, 65535]");
  }
  return endpoint;
}

namespace {

sockaddr_in tcp_addr(const std::string& host, std::uint16_t port,
                     const std::string& what) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  DLSCHED_EXPECT(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                 what + ": '" + host +
                     "' is not an IPv4 address (use e.g. 127.0.0.1)");
  return addr;
}

}  // namespace

int connect_endpoint(const Endpoint& endpoint) {
  if (endpoint.tcp) {
    const sockaddr_in addr =
        tcp_addr(endpoint.host, endpoint.port, "connect");
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    DLSCHED_EXPECT(fd >= 0, "net: cannot create TCP socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const int err = errno;
      ::close(fd);
      DLSCHED_FAIL("net: cannot connect to " + endpoint.describe() + ": " +
                   std::strerror(err));
    }
    // Lease/ack frames are tiny and latency-sensitive; don't batch them.
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  DLSCHED_EXPECT(!endpoint.path.empty() &&
                     endpoint.path.size() < sizeof(addr.sun_path),
                 "net: bad socket path '" + endpoint.path + "'");
  std::strncpy(addr.sun_path, endpoint.path.c_str(),
               sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  DLSCHED_EXPECT(fd >= 0, "net: cannot create socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    DLSCHED_FAIL("net: cannot connect to '" + endpoint.path +
                 "': " + std::strerror(err));
  }
  return fd;
}

int listen_tcp(const std::string& host, std::uint16_t port,
               std::uint16_t& bound_port) {
  sockaddr_in addr = tcp_addr(host, port, "listen");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  DLSCHED_EXPECT(fd >= 0, "net: cannot create TCP socket");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    DLSCHED_FAIL("net: cannot bind " + host + ":" + std::to_string(port) +
                 ": " + std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    DLSCHED_FAIL("net: cannot listen on " + host + ":" +
                 std::to_string(port) + ": " + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  DLSCHED_EXPECT(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
      "net: getsockname failed");
  bound_port = ntohs(bound.sin_port);
  return fd;
}

bool send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

Frame read_frame(int fd, std::string& buffer, const char* who) {
  char chunk[4096];
  for (;;) {
    const FrameDecode decode = try_decode_frame(buffer);
    if (decode.status == DecodeStatus::Ok) {
      buffer.erase(0, decode.consumed);
      return decode.frame;
    }
    DLSCHED_EXPECT(decode.status == DecodeStatus::NeedMore,
                   std::string(who) + ": malformed frame from peer: " +
                       decode.error);
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    DLSCHED_EXPECT(n > 0, std::string(who) + ": peer closed the connection");
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace dlsched::service::net
