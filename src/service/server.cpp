#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/trace.hpp"
#include "service/net.hpp"
#include "util/error.hpp"

namespace dlsched::service {

// The framed-write loop lives in service/net.hpp now, shared with the
// cluster coordinator and the TCP workers.
using net::send_all;

Server::Server(ServerConfig config) : config_(std::move(config)) {
  DLSCHED_EXPECT(!config_.socket_path.empty(), "serve: empty socket path");
  DLSCHED_EXPECT(config_.queue_capacity > 0, "serve: zero queue capacity");
  DLSCHED_EXPECT(config_.batch_max > 0, "serve: zero batch size");
  if (!config_.cache_dir.empty()) {
    cache_ = experiments::ResultCache(config_.cache_dir);
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  DLSCHED_EXPECT(config_.socket_path.size() < sizeof(addr.sun_path),
                 "serve: socket path too long for AF_UNIX ('" +
                     config_.socket_path + "')");
  std::strncpy(addr.sun_path, config_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  DLSCHED_EXPECT(listen_fd_ >= 0, "serve: cannot create socket");
  // A previous daemon's socket file would make bind fail; a *live*
  // daemon is beyond this process's knowledge, so last-one-wins.
  ::unlink(config_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    DLSCHED_FAIL("serve: cannot listen on '" + config_.socket_path +
                 "': " + std::strerror(err));
  }

  accept_thread_ = std::thread([this] { accept_loop(); });
  batcher_thread_ = std::thread([this] { batcher_loop(); });
}

Server::~Server() { stop(); }

void Server::begin_drain() {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    draining_ = true;
  }
  stats_.set_draining(true);
  queue_cv_.notify_all();
}

void Server::stop() {
  if (stopped_) return;
  stopped_ = true;

  begin_drain();

  // Stop accepting first so no connection thread is born mid-teardown.
  accept_stop_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();

  // The batcher exits once draining and empty; every queued request has
  // been answered by then.
  if (batcher_thread_.joinable()) batcher_thread_.join();

  // Unblock connection readers (their clients may keep the socket open)
  // and collect them.
  std::vector<std::thread> connections;
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    connections.swap(connection_threads_);
  }
  for (std::thread& t : connections) {
    if (t.joinable()) t.join();
  }

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(config_.socket_path.c_str());
}

// ------------------------------------------------------------ accept side --

void Server::accept_loop() {
  while (!accept_stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back(
        [this, fd] { handle_connection(fd); });
  }
}

void Server::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed or shutdown() during stop
    buffer.append(chunk, static_cast<std::size_t>(n));
    // Drain every complete frame in the buffer; a malformed prefix ends
    // the connection (after a ProtocolError reply) because framing can
    // no longer be trusted.
    for (;;) {
      const FrameDecode decode = try_decode_frame(buffer);
      if (decode.status == DecodeStatus::NeedMore) break;
      if (decode.status != DecodeStatus::Ok) {
        stats_.on_protocol_error();
        (void)send_all(fd,
                       encode_frame(FrameType::ProtocolError, decode.error));
        open = false;
        break;
      }
      buffer.erase(0, decode.consumed);
      std::string reply;
      switch (decode.frame.type) {
        case FrameType::SolveRequest:
          reply = handle_solve_payload(decode.frame.payload);
          break;
        case FrameType::StatsQuery:
          reply = encode_frame(FrameType::StatsReport,
                               stats_.render_json());
          break;
        default:
          stats_.on_protocol_error();
          reply = encode_frame(
              FrameType::ProtocolError,
              "unexpected client frame type " +
                  std::to_string(static_cast<int>(decode.frame.type)));
          open = false;
          break;
      }
      if (!send_all(fd, reply)) {
        open = false;
        break;
      }
    }
  }
  ::close(fd);
}

std::string Server::handle_solve_payload(const std::string& payload) {
  obs::ObsSpan admit_span("daemon", "admit");
  const auto admitted_at = std::chrono::steady_clock::now();
  auto pending = std::make_unique<Pending>();
  try {
    pending->wire = decode_request_body(payload);
  } catch (const std::exception& e) {
    stats_.on_protocol_error();
    return encode_frame(FrameType::ProtocolError, e.what());
  }
  pending->key = job_canonical_key(pending->wire.solver,
                                   pending->wire.request);
  pending->hash = job_hash_from_key(pending->key);
  pending->admitted_at = admitted_at;

  // A draining daemon refuses every solve request -- even would-be cache
  // hits -- so clients migrate away instead of trickling in forever; the
  // stats mailbox stays queryable.
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    if (draining_) {
      stats_.on_rejected();
      return encode_frame(
          FrameType::Reject,
          encode_reject_body({-1.0, "daemon is draining"}));
    }
  }

  // Cache short-circuit: repeat queries never touch the queue.  The
  // stored body is the bytes the original solve was answered with.
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    if (std::optional<SolveRecord> hit =
            cache_.lookup(pending->hash, pending->key)) {
      stats_.on_admitted();
      stats_.on_batch_started(1);  // bookkeeping: leaves `queued` at once
      const double latency =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        admitted_at)
              .count();
      stats_.on_completed(ServiceStats::Completion::CacheHit, latency);
      stats_.on_batch_finished(1);
      return encode_frame(FrameType::SolveResult,
                          encode_result_body(*hit));
    }
  }

  std::future<std::string> response = pending->response.get_future();
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (draining_) {
      lock.unlock();
      stats_.on_rejected();
      return encode_frame(
          FrameType::Reject,
          encode_reject_body({-1.0, "daemon is draining"}));
    }
    if (queue_.size() >= config_.queue_capacity) {
      lock.unlock();
      stats_.on_rejected();
      return encode_frame(
          FrameType::Reject,
          encode_reject_body(
              {config_.retry_after_ms, "admission queue full"}));
    }
    queue_.push_back(std::move(pending));
  }
  stats_.on_admitted();
  queue_cv_.notify_one();
  // Close the admission span before blocking on the batcher: the wait is
  // the batch/settle spans' time, not admission's.
  admit_span.finish();
  return response.get();
}

// ----------------------------------------------------------- batcher side --

void Server::batcher_loop() {
  const auto wait = std::chrono::duration<double, std::milli>(
      config_.batch_wait_ms);
  for (;;) {
    std::vector<std::unique_ptr<Pending>> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return !queue_.empty() || draining_; });
      if (queue_.empty()) return;  // draining and drained
      // Gather window: give concurrent clients a moment to land in the
      // same micro-batch (that is where dedupe and pool sharing pay).
      if (queue_.size() < config_.batch_max && config_.batch_wait_ms > 0) {
        queue_cv_.wait_for(lock, wait, [this] {
          return queue_.size() >= config_.batch_max;
        });
      }
      const std::size_t take = std::min(queue_.size(), config_.batch_max);
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    stats_.on_batch_started(batch.size());
    run_batch(std::move(batch));
  }
}

void Server::run_batch(std::vector<std::unique_ptr<Pending>> batch) {
  obs::ObsSpan batch_span("daemon", "batch");
  if (batch_span.active()) {
    batch_span.rename("batch:" + std::to_string(batch.size()));
  }
  const auto settle = [&](Pending& pending, const std::string& frame,
                          ServiceStats::Completion kind) {
    if (pending.fulfilled) return;
    const obs::ObsSpan settle_span("daemon", "settle");
    pending.fulfilled = true;
    const double latency =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      pending.admitted_at)
            .count();
    stats_.on_completed(kind, latency);
    pending.response.set_value(frame);
  };

  // Batch-time cache re-check.  The admission-time lookup runs before an
  // identical in-flight request finishes, so a duplicate can slip into a
  // *later* batch than its twin; because batches run serially, that twin
  // has stored its record by the time this batch starts, and the re-check
  // answers the duplicate with the twin's exact bytes instead of solving
  // it again.  After this pass, identical requests are byte-identical
  // answers in every interleaving: same batch via dedupe, earlier batch
  // via this lookup, earlier response via the admission-time lookup.
  std::vector<std::size_t> live;  // batch indices that still need solving
  live.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::optional<SolveRecord> hit;
    {
      const std::lock_guard<std::mutex> lock(cache_mutex_);
      hit = cache_.lookup(batch[i]->hash, batch[i]->key);
    }
    if (hit) {
      settle(*batch[i],
             encode_frame(FrameType::SolveResult, encode_result_body(*hit)),
             ServiceStats::Completion::CacheHit);
    } else {
      live.push_back(i);
    }
  }

  std::vector<BatchJobView> views;
  views.reserve(live.size());
  for (const std::size_t i : live) {
    views.push_back({batch[i]->wire.solver, &batch[i]->wire.request});
  }

  // The hook answers a primary AND its deduped followers the moment the
  // primary's outcome is final -- all with the primary's bytes, so
  // concurrent identical requests are answered identically.
  const BatchProgressHook hook = [&](const BatchProgress& progress,
                                     const BatchOutcome& outcome) {
    Pending& primary = *batch[live[progress.job_index]];
    const SolveRecord record = record_from_outcome(outcome);
    // The record round-trips bit-exactly, so a later cache hit re-encodes
    // to these same bytes: cold and warm answers are byte-identical.
    const std::string body = encode_result_body(record);
    try {
      const std::lock_guard<std::mutex> lock(cache_mutex_);
      cache_.store(primary.hash, primary.key, record);
    } catch (const std::exception&) {
      // The cache is an accelerator; a full disk must not fail the solve.
    }
    const std::string frame = encode_frame(FrameType::SolveResult, body);
    settle(primary, frame, ServiceStats::Completion::Solved);
    for (const std::size_t follower : progress.duplicates) {
      settle(*batch[live[follower]], frame,
             ServiceStats::Completion::Deduped);
    }
    return true;
  };

  const std::vector<BatchOutcome> outcomes =
      solve_batch(std::span<const BatchJobView>(views),
                  config_.solve_threads, hook);

  // Belt and braces: anything the hook did not settle (it settles every
  // job today) is answered from the joined outcomes so no client hangs.
  for (std::size_t v = 0; v < live.size(); ++v) {
    Pending& pending = *batch[live[v]];
    if (pending.fulfilled) continue;
    const std::string body =
        encode_result_body(record_from_outcome(outcomes[v]));
    settle(pending, encode_frame(FrameType::SolveResult, body),
           outcomes[v].deduped ? ServiceStats::Completion::Deduped
                               : ServiceStats::Completion::Solved);
  }
  stats_.on_batch_finished(batch.size());
}

}  // namespace dlsched::service
