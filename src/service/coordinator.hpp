// The cluster coordinator: the work-stealing shard board, owned in
// memory and served over TCP.
//
// The filesystem board (experiments/scheduler.hpp) coordinates workers
// through a shared cache directory: hard-link claims, mtime heartbeats,
// fragment files.  A `Coordinator` carries the same semantics onto the
// wire protocol so a grid sweep can span machines with nothing shared but
// the network:
//
//   * hard-link claim        ->  shard lease with a deadline (LeaseGrant)
//   * mtime heartbeat        ->  lease renewal (LeaseRequest kind=Renew)
//   * rename-aside stealing  ->  lease-expiry reassignment (the sweep in
//                                every Acquire re-pends expired leases)
//   * fragment file          ->  FragmentPush (first accepted push wins;
//                                duplicates are discarded, like losing
//                                the publish rename)
//
// Byte-identity is preserved by making the coordinator's `ResultCache`
// the one synchronization medium: a Work grant ships the shard's cached
// records (a warm worker replays them bit for bit), and an accepted
// fragment ships the worker's fresh records back before the shard is
// marked done.  After a cluster run, a single-process run over the
// coordinator's cache directory renders the identical artifact -- the
// invariant the filesystem board established in PR 4, with the cache dir
// now private to the coordinator host.
//
// The stats mailbox answers StatsQuery on the same port, extended with
// the claim-board gauges (`CoordinatorGauges`).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "experiments/cache.hpp"
#include "experiments/shard.hpp"
#include "experiments/spec.hpp"
#include "obs/trace.hpp"
#include "service/stats.hpp"
#include "service/wire.hpp"

namespace dlsched::service {

struct CoordinatorConfig {
  std::string host = "127.0.0.1";  ///< IPv4 listen address
  std::uint16_t port = 0;          ///< 0 = ephemeral (see `port()`)
  double lease_ttl_seconds = 30.0; ///< unrenewed leases re-pend after this
  /// Advertised retry delay for Wait grants (everything leased out).
  double wait_retry_ms = 50.0;
};

class Coordinator {
 public:
  /// Binds, listens and spawns the accept thread.  `shards` is the full
  /// plan in planner order; `cache` is the run's result cache (guarded
  /// here, shared with nobody else while the coordinator lives).  Throws
  /// `dlsched::Error` when the socket cannot be set up.
  Coordinator(const experiments::ExperimentSpec& spec,
              std::vector<experiments::CompiledShard> shards,
              experiments::ResultCache& cache, CoordinatorConfig config);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// `tcp://host:port` -- what workers pass to `--worker`.
  [[nodiscard]] std::string endpoint() const;

  /// Stops granting leases: every subsequent LeaseRequest (acquire or
  /// renew) is answered with a Drain frame, so workers exit.  In-flight
  /// FragmentPushes are still accepted -- leased work is not wasted.
  void begin_drain();

  /// Shutdown: drain, close every connection, join the threads.
  /// Idempotent; the destructor calls it.
  void stop();

  /// True once every shard has an accepted fragment (records stored).
  [[nodiscard]] bool finished() const;
  /// Blocks until `finished()` or the timeout elapses; returns
  /// `finished()`.
  bool wait_finished(double timeout_seconds);

  /// The accepted shard results in planner order; requires `finished()`.
  [[nodiscard]] std::vector<experiments::ShardResult> take_results();

  /// The trace sections workers shipped inside their FragmentPushes,
  /// merged per worker id (empty when tracing was off).  Moves them out.
  [[nodiscard]] std::vector<obs::ProcessTrace> take_worker_traces();

  /// Autoscaler hooks: grant `count` further Retire answers to retirable
  /// workers' next Acquires, and account a spawned local worker.
  void request_retire(std::size_t count);
  void note_worker_spawned();

  [[nodiscard]] StatsSnapshot stats() const { return stats_.snapshot(); }
  [[nodiscard]] CoordinatorGauges gauges() const {
    return stats_.snapshot().board;
  }

 private:
  enum class SlotState : std::uint8_t {
    Pending,     ///< unleased (or lease expired)
    Leased,      ///< granted, deadline in the future
    Committing,  ///< a fragment is being accepted (records storing)
    Done,        ///< fragment accepted, records stored
  };
  struct Slot {
    SlotState state = SlotState::Pending;
    std::string holder;  ///< worker id of the live lease
    std::chrono::steady_clock::time_point deadline{};
    std::size_t reassignments = 0;
  };

  void accept_loop();
  void handle_connection(int fd);
  [[nodiscard]] std::string handle_lease_payload(const std::string& payload);
  [[nodiscard]] std::string handle_fragment_payload(
      const std::string& payload);
  /// Re-pends every expired lease (board lock held).
  void sweep_expired_locked();
  /// Mirrors the board shape into the stats mailbox (board lock held).
  void publish_gauges_locked();
  [[nodiscard]] std::string drain_frame() const;

  experiments::ExperimentSpec spec_;
  std::vector<experiments::CompiledShard> shards_;
  std::string spec_toml_;
  std::string fingerprint_;
  CoordinatorConfig config_;
  std::uint16_t port_ = 0;

  mutable std::mutex board_mutex_;
  std::vector<Slot> slots_;                                  // board lock
  std::vector<std::optional<experiments::ShardResult>> results_;  // board lock
  std::size_t done_count_ = 0;                               // board lock
  std::size_t retire_credits_ = 0;                           // board lock
  bool draining_ = false;                                    // board lock
  CoordinatorGauges gauges_;                                 // board lock
  std::condition_variable done_cv_;

  std::mutex cache_mutex_;
  experiments::ResultCache& cache_;  // guarded by cache_mutex_

  std::mutex trace_mutex_;
  std::vector<obs::ProcessTrace> worker_traces_;  // guarded by trace_mutex_

  ServiceStats stats_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::vector<std::thread> connection_threads_;  // guarded by conn_mutex_
  std::vector<int> connection_fds_;              // guarded by conn_mutex_
  std::mutex conn_mutex_;
  std::atomic<bool> accept_stop_{false};
  bool stopped_ = false;  // stop() ran (main-thread use only)
};

}  // namespace dlsched::service
