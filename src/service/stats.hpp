// The dlsched_serve stats mailbox.
//
// One shared `ServiceStats` instance tracks the daemon's request
// lifecycle -- admitted / rejected / cache-hit / solved / deduped
// cumulative counters, current queue depth and in-flight count, and a
// log-bucketed per-request latency histogram -- and renders itself as one
// JSON object for the StatsReport frame.  Mutation is mutex-guarded (the
// counters move together: a request leaves `queued` exactly when it
// enters `in_flight`), queries take a consistent snapshot.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

namespace dlsched::service {

/// Power-of-two microsecond buckets: bucket i counts latencies in
/// [2^i, 2^(i+1)) us, bucket 0 additionally holds sub-microsecond
/// requests.  32 buckets cover ~71 minutes, far beyond any solve budget.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void add(double seconds) noexcept;

  /// Upper bound (in seconds) of the bucket holding quantile `q` of the
  /// recorded latencies; 0 when empty.  Bucketed, so good to ~2x -- the
  /// replay client computes exact quantiles client-side.
  [[nodiscard]] double quantile_upper(double q) const noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets()
      const noexcept {
    return counts_;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
};

/// Gauges the cluster coordinator publishes alongside the request
/// counters (service/coordinator.hpp): the live shape of the in-memory
/// claim board.  `cluster = true` marks the snapshot as coming from a
/// coordinator; the daemon leaves it false and `render_json` then omits
/// the block, keeping daemon reports unchanged.
struct CoordinatorGauges {
  bool cluster = false;
  std::size_t shards_total = 0;
  std::size_t shards_done = 0;            ///< accepted fragments
  std::size_t shard_backlog = 0;          ///< current: unleased, unfinished
  std::size_t leases_outstanding = 0;     ///< current: granted, live
  std::uint64_t fragment_bytes = 0;       ///< accepted fragment payloads
  std::uint64_t fragments_discarded = 0;  ///< duplicate / corrupt pushes
  std::uint64_t lease_reassignments = 0;  ///< TTL expiries re-granted
  std::uint64_t workers_spawned = 0;      ///< autoscaler spawns
  std::uint64_t workers_retired = 0;      ///< autoscaler retires
};

/// Counter snapshot; every field cumulative unless noted.
struct StatsSnapshot {
  std::uint64_t admitted = 0;    ///< accepted into the queue or cache-hit
  std::uint64_t rejected = 0;    ///< backpressure / drain rejects
  std::uint64_t cache_hits = 0;  ///< answered from the ResultCache
  std::uint64_t solved = 0;      ///< answered by running a solver
  std::uint64_t deduped = 0;     ///< answered as within-batch duplicates
  std::uint64_t protocol_errors = 0;  ///< malformed frames / bodies seen
  std::size_t queued = 0;        ///< current: admitted, not yet batched
  std::size_t in_flight = 0;     ///< current: inside solve_batch
  bool draining = false;
  LatencyHistogram latency;      ///< admission-to-response, completed only
  CoordinatorGauges board;       ///< cluster claim board (coordinator only)
};

/// The mailbox.  All methods are thread-safe.
class ServiceStats {
 public:
  void on_admitted();
  void on_rejected();
  void on_protocol_error();
  /// `queued - n`, `in_flight + n`: a micro-batch left the queue.
  void on_batch_started(std::size_t n);
  /// One request completed (`kind` routes the cumulative counter).
  enum class Completion { CacheHit, Solved, Deduped };
  void on_completed(Completion kind, double latency_seconds);
  /// A batch's requests all completed: `in_flight - n`.
  void on_batch_finished(std::size_t n);
  void set_draining(bool draining);
  /// Publishes a fresh claim-board gauge snapshot (coordinator only; the
  /// coordinator owns the board state under its own lock and mirrors it
  /// here after every mutation, so StatsQuery never touches the board).
  void set_board(const CoordinatorGauges& board);

  [[nodiscard]] StatsSnapshot snapshot() const;

  /// The StatsReport payload: one JSON object with every counter, the
  /// derived cache hit ratio, bucketed latency quantiles and the raw
  /// histogram buckets.
  [[nodiscard]] std::string render_json() const;

 private:
  mutable std::mutex mutex_;
  StatsSnapshot state_;
};

}  // namespace dlsched::service
