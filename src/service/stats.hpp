// The dlsched_serve stats mailbox.
//
// One shared `ServiceStats` instance tracks the daemon's request
// lifecycle -- admitted / rejected / cache-hit / solved / deduped
// cumulative counters, current queue depth and in-flight count, and a
// log-bucketed per-request latency histogram -- and renders itself as one
// JSON object for the StatsReport frame.  Mutation is mutex-guarded (the
// counters move together: a request leaves `queued` exactly when it
// enters `in_flight`), queries take a consistent snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"

namespace dlsched::service {

/// The daemon's latency histogram is the observability layer's log2
/// histogram -- one implementation, one JSON rendering, shared with the
/// bench phase table (see src/obs/metrics.hpp for bucket semantics).
using LatencyHistogram = obs::Log2Histogram;

/// Gauges the cluster coordinator publishes alongside the request
/// counters (service/coordinator.hpp): the live shape of the in-memory
/// claim board.  `cluster = true` marks the snapshot as coming from a
/// coordinator; the daemon leaves it false and `render_json` then omits
/// the block, keeping daemon reports unchanged.
struct CoordinatorGauges {
  bool cluster = false;
  std::size_t shards_total = 0;
  std::size_t shards_done = 0;            ///< accepted fragments
  std::size_t shard_backlog = 0;          ///< current: unleased, unfinished
  std::size_t leases_outstanding = 0;     ///< current: granted, live
  std::uint64_t fragment_bytes = 0;       ///< accepted fragment payloads
  std::uint64_t fragments_discarded = 0;  ///< duplicate / corrupt pushes
  std::uint64_t lease_reassignments = 0;  ///< TTL expiries re-granted
  std::uint64_t workers_spawned = 0;      ///< autoscaler spawns
  std::uint64_t workers_retired = 0;      ///< autoscaler retires
};

/// Counter snapshot; every field cumulative unless noted.
struct StatsSnapshot {
  std::uint64_t admitted = 0;    ///< accepted into the queue or cache-hit
  std::uint64_t rejected = 0;    ///< backpressure / drain rejects
  std::uint64_t cache_hits = 0;  ///< answered from the ResultCache
  std::uint64_t solved = 0;      ///< answered by running a solver
  std::uint64_t deduped = 0;     ///< answered as within-batch duplicates
  std::uint64_t protocol_errors = 0;  ///< malformed frames / bodies seen
  std::size_t queued = 0;        ///< current: admitted, not yet batched
  std::size_t in_flight = 0;     ///< current: inside solve_batch
  bool draining = false;
  LatencyHistogram latency;      ///< admission-to-response, completed only
  CoordinatorGauges board;       ///< cluster claim board (coordinator only)
};

/// The mailbox.  All methods are thread-safe.
class ServiceStats {
 public:
  void on_admitted();
  void on_rejected();
  void on_protocol_error();
  /// `queued - n`, `in_flight + n`: a micro-batch left the queue.
  void on_batch_started(std::size_t n);
  /// One request completed (`kind` routes the cumulative counter).
  enum class Completion { CacheHit, Solved, Deduped };
  void on_completed(Completion kind, double latency_seconds);
  /// A batch's requests all completed: `in_flight - n`.
  void on_batch_finished(std::size_t n);
  void set_draining(bool draining);
  /// Publishes a fresh claim-board gauge snapshot (coordinator only; the
  /// coordinator owns the board state under its own lock and mirrors it
  /// here after every mutation, so StatsQuery never touches the board).
  void set_board(const CoordinatorGauges& board);

  [[nodiscard]] StatsSnapshot snapshot() const;

  /// The StatsReport payload: one JSON object with every counter, the
  /// derived cache hit ratio, bucketed latency quantiles, the raw
  /// histogram buckets and the service uptime.
  [[nodiscard]] std::string render_json() const;

  /// The registry behind the cumulative counters and the latency
  /// histogram; its birth stamp is the reported `uptime_seconds`.
  [[nodiscard]] const obs::MetricsRegistry& registry() const {
    return registry_;
  }

 private:
  // Cumulative counters and the latency histogram live in the metrics
  // registry (names "service.*"); only the level values -- queue depth,
  // in-flight count, drain flag and the mirrored claim board -- stay in
  // the mutex-guarded snapshot state.
  obs::MetricsRegistry registry_;
  mutable std::mutex mutex_;
  StatsSnapshot state_;
};

}  // namespace dlsched::service
