// The dlsched service wire protocol: the ONE request/result codec.
//
// Before this module, three ad-hoc serializations of the same
// (SolveRequest, SolveResult) pair coexisted -- the result-cache entry
// format, the shard-fragment row renderer and `dlsched_cli compare
// --json` -- and adding a statistic meant editing all three.  This header
// owns the canonical encodings end to end:
//
//   * `SolveRecord` -- the canonical result projection (what a solve is,
//     once the exact arithmetic has been rendered to bit-exact doubles).
//     The experiment cache stores it, the daemon answers with it, the
//     JSON emitters render it.
//   * request/result/reject *bodies* -- line-oriented text (doubles as
//     64-bit hex bit patterns, free-form text length-prefixed) shared by
//     the cache entries and the socket protocol.
//   * *frames* -- the transport envelope for `dlsched_serve`: protocol
//     magic carrying the wire version, a frame type, and a length-prefixed
//     payload.  The decoder never throws and never crashes on garbage: it
//     reports malformed input (bad magic, future version, oversized
//     length, unknown type) as a status, and short input as NeedMore.
//
// Idiom reference: the IPS channelized transport (SNIPPETS.md Snippet 1)
// -- version-carrying protocol magic, fixed descriptor layout, command/ack
// plus stats mailboxes -- transplanted onto a local SOCK_STREAM socket.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/solver.hpp"

namespace dlsched::experiments {
class JsonObject;
}  // namespace dlsched::experiments

namespace dlsched::service {

// ------------------------------------------------------------ primitives --

// Line-oriented serialization primitives shared by every body codec, the
// cache entries and the shard-result fragments: doubles travel as 64-bit
// hex bit patterns so values round-trip bit-exactly, and free-form text
// (keys, rendered JSON rows, error messages) is length-prefixed.
void put_double(std::ostream& out, double value);
[[nodiscard]] double get_double(std::istream& in);
void put_blob(std::ostream& out, const std::string& label,
              const std::string& text);
[[nodiscard]] std::string get_blob(std::istream& in,
                                   const std::string& label);
void put_indices(std::ostream& out, const std::string& label,
                 const std::vector<std::size_t>& values);
[[nodiscard]] std::vector<std::size_t> get_indices(std::istream& in,
                                                   const std::string& label);
void put_doubles(std::ostream& out, const std::string& label,
                 const std::vector<double>& values);
[[nodiscard]] std::vector<double> get_doubles(std::istream& in,
                                              const std::string& label);

// ------------------------------------------------------------ the record --

/// The canonical result projection of a `BatchOutcome`: solution numbers
/// (as doubles -- all emitters and the DES consume doubles),
/// communication orders, provenance flags and diagnostics.  This is the
/// field list; every serialization of a solve result routes through it.
struct SolveRecord {
  std::string solver;
  bool solved = false;
  bool validated = false;
  std::string error;  ///< exception text when !solved

  double throughput = 0.0;
  std::vector<double> alpha;               ///< platform-indexed
  std::vector<std::size_t> send_order;     ///< sigma_1
  std::vector<std::size_t> return_order;   ///< sigma_2
  std::size_t workers_used = 0;            ///< alpha > 0 count
  /// Chosen participant set of a selection-style solver (sorted; empty
  /// when enrolment is implied by alpha > 0).
  std::vector<std::size_t> participants;

  // Affine DES-replay certificate (affine/replay.hpp).
  bool replayed = false;
  double replay_makespan = 0.0;
  double replay_rel_error = 0.0;

  bool provably_optimal = false;
  bool mirrored = false;
  bool used_two_port = false;
  bool exact = true;
  bool budget_exhausted = false;
  bool has_alt = false;
  double alt_throughput = 0.0;
  std::size_t scenarios_tried = 0;
  std::size_t lp_evaluations = 0;
  std::size_t best_rounds = 0;
  std::size_t lp_pivots = 0;           ///< simplex pivots of the final LP
  std::size_t lp_fallbacks = 0;        ///< Fast mode: exact re-solves
  std::size_t lp_warm_starts = 0;      ///< exact solves with accepted seed
  std::size_t lp_pivots_saved = 0;     ///< pivots under the chain's cold ref
  std::size_t subsets_pruned = 0;      ///< bound-pruned subset candidates
  std::size_t subsets_screened = 0;    ///< margin-screened subset candidates
  std::uint64_t arena_acquires = 0;    ///< limb-arena buffer requests
  std::uint64_t arena_pool_hits = 0;   ///< ... served from the recycled pool

  double wall_seconds = 0.0;      ///< of the run that actually solved
  double validate_seconds = 0.0;
};

/// Projects a batch outcome into its canonical record.
[[nodiscard]] SolveRecord record_from_outcome(const BatchOutcome& outcome);

/// Appends the record's result fields to a JSON row, in the canonical
/// order shared by the experiment-grid rows, `compare --json` and the
/// daemon's own emitters.  Adding a statistic to `SolveRecord` extends
/// every consumer here, in one place.  Requires `record.solved`.
void append_result_fields(experiments::JsonObject& row,
                          const SolveRecord& record);

// ----------------------------------------------------------- body codecs --

/// Serializes a record as the versioned wire result body (also the value
/// part of a result-cache entry).  Bit-exact: decode(encode(r)) == r.
[[nodiscard]] std::string encode_result_body(const SolveRecord& record);

/// Parses a result body; throws `dlsched::Error` on any malformation.
[[nodiscard]] SolveRecord decode_result_body(std::string_view body);

/// A decoded solve-request frame: the solver name plus the full request.
/// Unlike `request_canonical_key` (a one-way identity), this codec is
/// reversible and carries worker names and the warm-start hint.
struct WireRequest {
  std::string solver;
  SolveRequest request;
};

/// Serializes a (solver, request) pair as the versioned wire request body.
[[nodiscard]] std::string encode_request_body(const std::string& solver,
                                              const SolveRequest& request);

/// Parses a request body; throws `dlsched::Error` on any malformation
/// (including platform values the library would reject, e.g. c <= 0).
[[nodiscard]] WireRequest decode_request_body(std::string_view body);

/// Backpressure reply: the admission queue was full (or the daemon is
/// draining).  `retry_after_ms < 0` means "do not retry" (drain).
struct RejectInfo {
  double retry_after_ms = 0.0;
  std::string reason;
};

[[nodiscard]] std::string encode_reject_body(const RejectInfo& info);
[[nodiscard]] RejectInfo decode_reject_body(std::string_view body);

// --------------------------------------------------- cluster lease bodies --
//
// The TCP shard board (service/coordinator.hpp).  A coordinator owns the
// claim board in memory -- leases with deadlines replace the filesystem
// board's hard-link claims -- and workers stream serialized `ShardResult`
// fragments back over the same framed protocol.  The result cache is the
// synchronization medium: a Work grant ships the shard's cached records
// so warm workers replay them bit-exactly, and an accepted fragment ships
// the worker's fresh records back, keeping the coordinator's cache (and
// therefore any later single-process run over it) byte-identical to what
// the cluster produced.

/// One result-cache entry in flight: content hash, canonical request key,
/// and the encoded wire result body.
struct WireCacheEntry {
  std::string hash;
  std::string key;
  std::string body;
};

/// Worker -> coordinator: acquire a new shard lease, or renew a held one
/// (the TCP analogue of the filesystem board's mtime heartbeat).
struct LeaseRequestBody {
  enum class Kind : std::uint8_t { Acquire, Renew };
  Kind kind = Kind::Acquire;
  std::string worker_id;
  /// Coordinator-spawned local workers are retirable: the autoscaler may
  /// answer their next Acquire with a Retire grant as backlog drains.
  bool retirable = false;
  std::size_t shard_index = 0;  ///< Renew: the held shard
  std::string shard_id;         ///< Renew: cross-check against the plan
};

[[nodiscard]] std::string encode_lease_request(const LeaseRequestBody& body);
[[nodiscard]] LeaseRequestBody decode_lease_request(std::string_view body);

/// Coordinator -> worker: the answer to an Acquire.
struct LeaseGrantBody {
  enum class Kind : std::uint8_t {
    Work,    ///< a shard lease: spec, shard identity, TTL, cached records
    Wait,    ///< everything leased out; retry after `retry_after_ms`
    Retire,  ///< autoscaler: surplus retirable worker, exit now
    Done,    ///< every shard is finished, exit now
  };
  Kind kind = Kind::Wait;
  double retry_after_ms = 0.0;  ///< Wait only

  // Work only:
  std::size_t shard_index = 0;
  std::string shard_id;
  std::string plan_fingerprint;   ///< worker re-plans and must agree
  double lease_ttl_seconds = 0.0; ///< renew well before this expires
  bool traced = false;            ///< record obs spans, ship them in pushes
  std::string spec_toml;          ///< bit-exact spec (render_spec_toml)
  std::vector<WireCacheEntry> records;  ///< the shard's cached solves
};

[[nodiscard]] std::string encode_lease_grant(const LeaseGrantBody& body);
[[nodiscard]] LeaseGrantBody decode_lease_grant(std::string_view body);

/// Worker -> coordinator: one completed shard.  `fragment` is the
/// `serialize_shard_result` byte stream (exactly what the filesystem
/// board writes to a fragment file); `records` carries every cache entry
/// for the shard's jobs so the coordinator's cache ends up as if it had
/// executed the shard itself.
struct FragmentPushBody {
  std::string worker_id;
  std::size_t shard_index = 0;
  std::string shard_id;
  std::string plan_fingerprint;
  std::string fragment;
  std::vector<WireCacheEntry> records;
  /// Optional wire section: the worker's encoded `obs` trace buffer
  /// (spans since its previous push).  Empty = absent on the wire, so
  /// untraced runs ship exactly the bytes they always did.
  std::string trace;
};

[[nodiscard]] std::string encode_fragment_push(const FragmentPushBody& body);
[[nodiscard]] FragmentPushBody decode_fragment_push(std::string_view body);

/// Coordinator -> worker: reply to a FragmentPush or a Renew.  `ok =
/// false` means the push was discarded (duplicate/corrupt) or the lease
/// is no longer held; the message says why.
struct AckBody {
  bool ok = false;
  std::string message;
};

[[nodiscard]] std::string encode_ack(const AckBody& body);
[[nodiscard]] AckBody decode_ack(std::string_view body);

// ----------------------------------------------------------------- frames --

/// Protocol version, carried in the low byte of the magic.  A daemon and
/// a client disagree loudly (BadVersion, with both versions named), never
/// by misparsing each other's bytes.
inline constexpr std::uint32_t kWireVersion = 1;
/// Frame magic: "dlsched serve" upper bits | protocol version.
inline constexpr std::uint32_t kWireMagicBase = 0xd15c5e00u;
inline constexpr std::uint32_t kWireMagic = kWireMagicBase | kWireVersion;
/// Hard payload bound: an oversized length prefix is rejected before any
/// allocation, so garbage bytes can never balloon memory.
inline constexpr std::uint32_t kMaxFramePayload = 16u * 1024u * 1024u;

enum class FrameType : std::uint8_t {
  SolveRequest = 1,   ///< request body -> SolveResult | Reject | ProtocolError
  SolveResult = 2,    ///< result body (solver errors travel IN the record)
  Reject = 3,         ///< reject body: backpressure / draining
  StatsQuery = 4,     ///< empty payload -> StatsReport
  StatsReport = 5,    ///< the stats mailbox, rendered as one JSON object
  ProtocolError = 6,  ///< human-readable reason; the connection closes
  LeaseRequest = 7,   ///< lease-request body -> LeaseGrant | Ack (renew)
  LeaseGrant = 8,     ///< lease-grant body: work / wait / retire / done
  FragmentPush = 9,   ///< fragment-push body -> Ack
  Ack = 10,           ///< ack body: fragment / renewal accepted or refused
  Drain = 11,         ///< coordinator draining; payload = reason, then EOF
};

struct Frame {
  FrameType type = FrameType::ProtocolError;
  std::string payload;
};

/// Frame envelope: magic (4 bytes LE), type (1), payload length (4, LE),
/// payload bytes.
[[nodiscard]] std::string encode_frame(FrameType type,
                                       std::string_view payload);

enum class DecodeStatus {
  Ok,          ///< `frame` is valid, drop `consumed` bytes
  NeedMore,    ///< the buffer holds a prefix of a valid frame
  BadMagic,    ///< not this protocol at all
  BadVersion,  ///< right protocol, different version (see `version`)
  BadType,     ///< unknown frame type
  Oversized,   ///< length prefix exceeds kMaxFramePayload
};

struct FrameDecode {
  DecodeStatus status = DecodeStatus::NeedMore;
  Frame frame;               ///< valid when status == Ok
  std::size_t consumed = 0;  ///< bytes consumed when status == Ok
  std::uint32_t version = 0; ///< version seen (BadVersion diagnostics)
  std::string error;         ///< human-readable reason for Bad*/Oversized
};

/// Attempts to decode one frame from the front of `bytes`.  Never throws;
/// any byte sequence yields a status (malformed input degrades to an
/// error status, short input to NeedMore).
[[nodiscard]] FrameDecode try_decode_frame(std::string_view bytes);

}  // namespace dlsched::service
