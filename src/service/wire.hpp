// The dlsched service wire protocol: the ONE request/result codec.
//
// Before this module, three ad-hoc serializations of the same
// (SolveRequest, SolveResult) pair coexisted -- the result-cache entry
// format, the shard-fragment row renderer and `dlsched_cli compare
// --json` -- and adding a statistic meant editing all three.  This header
// owns the canonical encodings end to end:
//
//   * `SolveRecord` -- the canonical result projection (what a solve is,
//     once the exact arithmetic has been rendered to bit-exact doubles).
//     The experiment cache stores it, the daemon answers with it, the
//     JSON emitters render it.
//   * request/result/reject *bodies* -- line-oriented text (doubles as
//     64-bit hex bit patterns, free-form text length-prefixed) shared by
//     the cache entries and the socket protocol.
//   * *frames* -- the transport envelope for `dlsched_serve`: protocol
//     magic carrying the wire version, a frame type, and a length-prefixed
//     payload.  The decoder never throws and never crashes on garbage: it
//     reports malformed input (bad magic, future version, oversized
//     length, unknown type) as a status, and short input as NeedMore.
//
// Idiom reference: the IPS channelized transport (SNIPPETS.md Snippet 1)
// -- version-carrying protocol magic, fixed descriptor layout, command/ack
// plus stats mailboxes -- transplanted onto a local SOCK_STREAM socket.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/solver.hpp"

namespace dlsched::experiments {
class JsonObject;
}  // namespace dlsched::experiments

namespace dlsched::service {

// ------------------------------------------------------------ primitives --

// Line-oriented serialization primitives shared by every body codec, the
// cache entries and the shard-result fragments: doubles travel as 64-bit
// hex bit patterns so values round-trip bit-exactly, and free-form text
// (keys, rendered JSON rows, error messages) is length-prefixed.
void put_double(std::ostream& out, double value);
[[nodiscard]] double get_double(std::istream& in);
void put_blob(std::ostream& out, const std::string& label,
              const std::string& text);
[[nodiscard]] std::string get_blob(std::istream& in,
                                   const std::string& label);
void put_indices(std::ostream& out, const std::string& label,
                 const std::vector<std::size_t>& values);
[[nodiscard]] std::vector<std::size_t> get_indices(std::istream& in,
                                                   const std::string& label);
void put_doubles(std::ostream& out, const std::string& label,
                 const std::vector<double>& values);
[[nodiscard]] std::vector<double> get_doubles(std::istream& in,
                                              const std::string& label);

// ------------------------------------------------------------ the record --

/// The canonical result projection of a `BatchOutcome`: solution numbers
/// (as doubles -- all emitters and the DES consume doubles),
/// communication orders, provenance flags and diagnostics.  This is the
/// field list; every serialization of a solve result routes through it.
struct SolveRecord {
  std::string solver;
  bool solved = false;
  bool validated = false;
  std::string error;  ///< exception text when !solved

  double throughput = 0.0;
  std::vector<double> alpha;               ///< platform-indexed
  std::vector<std::size_t> send_order;     ///< sigma_1
  std::vector<std::size_t> return_order;   ///< sigma_2
  std::size_t workers_used = 0;            ///< alpha > 0 count
  /// Chosen participant set of a selection-style solver (sorted; empty
  /// when enrolment is implied by alpha > 0).
  std::vector<std::size_t> participants;

  // Affine DES-replay certificate (affine/replay.hpp).
  bool replayed = false;
  double replay_makespan = 0.0;
  double replay_rel_error = 0.0;

  bool provably_optimal = false;
  bool mirrored = false;
  bool used_two_port = false;
  bool exact = true;
  bool budget_exhausted = false;
  bool has_alt = false;
  double alt_throughput = 0.0;
  std::size_t scenarios_tried = 0;
  std::size_t lp_evaluations = 0;
  std::size_t best_rounds = 0;
  std::size_t lp_pivots = 0;           ///< simplex pivots of the final LP
  std::size_t lp_fallbacks = 0;        ///< Fast mode: exact re-solves
  std::size_t lp_warm_starts = 0;      ///< exact solves with accepted seed
  std::size_t lp_pivots_saved = 0;     ///< pivots under the chain's cold ref
  std::size_t subsets_pruned = 0;      ///< bound-pruned subset candidates
  std::size_t subsets_screened = 0;    ///< margin-screened subset candidates
  std::uint64_t arena_acquires = 0;    ///< limb-arena buffer requests
  std::uint64_t arena_pool_hits = 0;   ///< ... served from the recycled pool

  double wall_seconds = 0.0;      ///< of the run that actually solved
  double validate_seconds = 0.0;
};

/// Projects a batch outcome into its canonical record.
[[nodiscard]] SolveRecord record_from_outcome(const BatchOutcome& outcome);

/// Appends the record's result fields to a JSON row, in the canonical
/// order shared by the experiment-grid rows, `compare --json` and the
/// daemon's own emitters.  Adding a statistic to `SolveRecord` extends
/// every consumer here, in one place.  Requires `record.solved`.
void append_result_fields(experiments::JsonObject& row,
                          const SolveRecord& record);

// ----------------------------------------------------------- body codecs --

/// Serializes a record as the versioned wire result body (also the value
/// part of a result-cache entry).  Bit-exact: decode(encode(r)) == r.
[[nodiscard]] std::string encode_result_body(const SolveRecord& record);

/// Parses a result body; throws `dlsched::Error` on any malformation.
[[nodiscard]] SolveRecord decode_result_body(std::string_view body);

/// A decoded solve-request frame: the solver name plus the full request.
/// Unlike `request_canonical_key` (a one-way identity), this codec is
/// reversible and carries worker names and the warm-start hint.
struct WireRequest {
  std::string solver;
  SolveRequest request;
};

/// Serializes a (solver, request) pair as the versioned wire request body.
[[nodiscard]] std::string encode_request_body(const std::string& solver,
                                              const SolveRequest& request);

/// Parses a request body; throws `dlsched::Error` on any malformation
/// (including platform values the library would reject, e.g. c <= 0).
[[nodiscard]] WireRequest decode_request_body(std::string_view body);

/// Backpressure reply: the admission queue was full (or the daemon is
/// draining).  `retry_after_ms < 0` means "do not retry" (drain).
struct RejectInfo {
  double retry_after_ms = 0.0;
  std::string reason;
};

[[nodiscard]] std::string encode_reject_body(const RejectInfo& info);
[[nodiscard]] RejectInfo decode_reject_body(std::string_view body);

// ----------------------------------------------------------------- frames --

/// Protocol version, carried in the low byte of the magic.  A daemon and
/// a client disagree loudly (BadVersion, with both versions named), never
/// by misparsing each other's bytes.
inline constexpr std::uint32_t kWireVersion = 1;
/// Frame magic: "dlsched serve" upper bits | protocol version.
inline constexpr std::uint32_t kWireMagicBase = 0xd15c5e00u;
inline constexpr std::uint32_t kWireMagic = kWireMagicBase | kWireVersion;
/// Hard payload bound: an oversized length prefix is rejected before any
/// allocation, so garbage bytes can never balloon memory.
inline constexpr std::uint32_t kMaxFramePayload = 16u * 1024u * 1024u;

enum class FrameType : std::uint8_t {
  SolveRequest = 1,   ///< request body -> SolveResult | Reject | ProtocolError
  SolveResult = 2,    ///< result body (solver errors travel IN the record)
  Reject = 3,         ///< reject body: backpressure / draining
  StatsQuery = 4,     ///< empty payload -> StatsReport
  StatsReport = 5,    ///< the stats mailbox, rendered as one JSON object
  ProtocolError = 6,  ///< human-readable reason; the connection closes
};

struct Frame {
  FrameType type = FrameType::ProtocolError;
  std::string payload;
};

/// Frame envelope: magic (4 bytes LE), type (1), payload length (4, LE),
/// payload bytes.
[[nodiscard]] std::string encode_frame(FrameType type,
                                       std::string_view payload);

enum class DecodeStatus {
  Ok,          ///< `frame` is valid, drop `consumed` bytes
  NeedMore,    ///< the buffer holds a prefix of a valid frame
  BadMagic,    ///< not this protocol at all
  BadVersion,  ///< right protocol, different version (see `version`)
  BadType,     ///< unknown frame type
  Oversized,   ///< length prefix exceeds kMaxFramePayload
};

struct FrameDecode {
  DecodeStatus status = DecodeStatus::NeedMore;
  Frame frame;               ///< valid when status == Ok
  std::size_t consumed = 0;  ///< bytes consumed when status == Ok
  std::uint32_t version = 0; ///< version seen (BadVersion diagnostics)
  std::string error;         ///< human-readable reason for Bad*/Oversized
};

/// Attempts to decode one frame from the front of `bytes`.  Never throws;
/// any byte sequence yields a status (malformed input degrades to an
/// error status, short input to NeedMore).
[[nodiscard]] FrameDecode try_decode_frame(std::string_view bytes);

}  // namespace dlsched::service
