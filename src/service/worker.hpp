// The TCP shard worker: the remote end of the cluster coordinator's
// claim board (service/coordinator.hpp).
//
// `run_tcp_worker` connects to a coordinator, then loops: acquire a
// lease, re-plan the shipped spec locally (the plan fingerprints must
// agree -- a mismatch is a loud error, never silent wrong work), seed a
// private scratch cache with the grant's records, execute the shard
// through the ordinary per-shard executor, and stream the serialized
// result back as a FragmentPush together with every cache entry the
// shard produced.  A renewal thread heartbeats the lease on a second
// connection while the shard runs, the TCP analogue of the filesystem
// board's mtime refresh.
//
// The worker is expendable by design: losing a renewal race does not
// abort execution (the coordinator's first-accepted-push-wins commit
// resolves it), and a closed coordinator connection is a clean drained
// exit, not a crash.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

namespace dlsched::service {

struct TcpWorkerOptions {
  std::string endpoint;      ///< "tcp://host:port" (or "host:port")
  std::string worker_id;     ///< unique per worker; names leases
  std::size_t threads = 1;   ///< per-shard solve_batch thread count
  /// Coordinator-spawned local workers set this; the autoscaler may then
  /// answer an Acquire with a Retire grant as backlog drains.
  bool retirable = false;
  /// Scratch cache directory.  Empty (the default): a fresh private
  /// temp directory, removed when the worker exits.
  std::string scratch_dir;
  /// Chaos hook (0 = off): after this many accepted shards, acquire one
  /// more lease and exit abruptly while holding it -- a deterministic
  /// stand-in for a worker kill -9'd mid-shard, used by the CI
  /// crash-reassignment leg and recovery drills.
  std::size_t abandon_after = 0;
};

/// What one worker did, for the exit log line and the tests.
struct TcpWorkerSummary {
  std::size_t executed = 0;   ///< fragments the coordinator accepted
  std::size_t discarded = 0;  ///< fragments refused (duplicate / stale)
  std::size_t jobs = 0;       ///< jobs across executed shards
  std::size_t solved = 0;
  std::size_t cache_hits = 0;
  bool retired = false;       ///< exited on a Retire grant
  bool drained = false;       ///< exited on Drain or coordinator close
  bool abandoned = false;     ///< chaos hook fired: died holding a lease
};

/// Runs the lease loop until the coordinator answers Done, Retire or
/// Drain (or closes the connection).  Progress lines go to `log`.
/// Throws `dlsched::Error` for setup failures (bad endpoint, unreachable
/// coordinator, plan-fingerprint mismatch).
TcpWorkerSummary run_tcp_worker(const TcpWorkerOptions& options,
                                std::ostream& log);

}  // namespace dlsched::service
