#include "service/coordinator.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "service/net.hpp"
#include "util/error.hpp"

namespace dlsched::service {

using net::send_all;

Coordinator::Coordinator(const experiments::ExperimentSpec& spec,
                         std::vector<experiments::CompiledShard> shards,
                         experiments::ResultCache& cache,
                         CoordinatorConfig config)
    : spec_(spec),
      shards_(std::move(shards)),
      spec_toml_(experiments::render_spec_toml(spec)),
      fingerprint_(experiments::plan_fingerprint(shards_)),
      config_(std::move(config)),
      cache_(cache) {
  DLSCHED_EXPECT(!shards_.empty(), "coordinator: empty shard plan");
  DLSCHED_EXPECT(config_.lease_ttl_seconds > 0.0,
                 "coordinator: lease TTL must be positive");
  slots_.resize(shards_.size());
  results_.resize(shards_.size());
  gauges_.cluster = true;
  gauges_.shards_total = shards_.size();
  {
    const std::lock_guard<std::mutex> lock(board_mutex_);
    publish_gauges_locked();
  }
  listen_fd_ = net::listen_tcp(config_.host, config_.port, port_);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

Coordinator::~Coordinator() { stop(); }

std::string Coordinator::endpoint() const {
  return "tcp://" + config_.host + ":" + std::to_string(port_);
}

void Coordinator::begin_drain() {
  {
    const std::lock_guard<std::mutex> lock(board_mutex_);
    draining_ = true;
  }
  stats_.set_draining(true);
}

void Coordinator::stop() {
  if (stopped_) return;
  stopped_ = true;
  begin_drain();

  accept_stop_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::thread> connections;
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    connections.swap(connection_threads_);
  }
  for (std::thread& t : connections) {
    if (t.joinable()) t.join();
  }

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

bool Coordinator::finished() const {
  const std::lock_guard<std::mutex> lock(board_mutex_);
  return done_count_ == shards_.size();
}

bool Coordinator::wait_finished(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(board_mutex_);
  done_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [this] { return done_count_ == shards_.size(); });
  return done_count_ == shards_.size();
}

std::vector<experiments::ShardResult> Coordinator::take_results() {
  const std::lock_guard<std::mutex> lock(board_mutex_);
  DLSCHED_EXPECT(done_count_ == shards_.size(),
                 "coordinator: take_results before every shard finished");
  std::vector<experiments::ShardResult> results;
  results.reserve(results_.size());
  for (std::optional<experiments::ShardResult>& result : results_) {
    results.push_back(std::move(*result));
    result.reset();
  }
  return results;
}

std::vector<obs::ProcessTrace> Coordinator::take_worker_traces() {
  const std::lock_guard<std::mutex> lock(trace_mutex_);
  std::vector<obs::ProcessTrace> traces;
  traces.swap(worker_traces_);
  return traces;
}

void Coordinator::request_retire(std::size_t count) {
  const std::lock_guard<std::mutex> lock(board_mutex_);
  retire_credits_ += count;
}

void Coordinator::note_worker_spawned() {
  const std::lock_guard<std::mutex> lock(board_mutex_);
  ++gauges_.workers_spawned;
  publish_gauges_locked();
}

// --------------------------------------------------------------- the board --

void Coordinator::sweep_expired_locked() {
  const auto now = std::chrono::steady_clock::now();
  for (Slot& slot : slots_) {
    if (slot.state == SlotState::Leased && slot.deadline < now) {
      // The TCP analogue of stealing a stale claim: the lease re-pends
      // and the next Acquire is granted it.  A late FragmentPush from
      // the original holder still competes -- first accepted push wins,
      // exactly like the filesystem board's publish rename.
      slot.state = SlotState::Pending;
      slot.holder.clear();
      ++slot.reassignments;
      ++gauges_.lease_reassignments;
    }
  }
}

void Coordinator::publish_gauges_locked() {
  std::size_t backlog = 0;
  std::size_t leased = 0;
  for (const Slot& slot : slots_) {
    if (slot.state == SlotState::Pending) ++backlog;
    if (slot.state == SlotState::Leased) ++leased;
  }
  gauges_.shard_backlog = backlog;
  gauges_.leases_outstanding = leased;
  gauges_.shards_done = done_count_;
  stats_.set_board(gauges_);
}

std::string Coordinator::drain_frame() const {
  return encode_frame(FrameType::Drain, "coordinator is draining");
}

std::string Coordinator::handle_lease_payload(const std::string& payload) {
  LeaseRequestBody request;
  try {
    request = decode_lease_request(payload);
  } catch (const std::exception& e) {
    stats_.on_protocol_error();
    return encode_frame(FrameType::ProtocolError, e.what());
  }

  if (request.kind == LeaseRequestBody::Kind::Renew) {
    const std::lock_guard<std::mutex> lock(board_mutex_);
    if (draining_) return drain_frame();
    AckBody ack;
    if (request.shard_index < slots_.size() &&
        slots_[request.shard_index].state == SlotState::Leased &&
        slots_[request.shard_index].holder == request.worker_id &&
        shards_[request.shard_index].id == request.shard_id) {
      slots_[request.shard_index].deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(config_.lease_ttl_seconds));
      ack.ok = true;
      ack.message = "renewed";
    } else {
      ack.ok = false;
      ack.message = "lease not held (expired and reassigned?)";
    }
    return encode_frame(FrameType::Ack, encode_ack(ack));
  }

  // Acquire: sweep, maybe retire, then grant the first pending shard in
  // planner order.  The grant's cached records are gathered outside the
  // board lock -- the lease deadline is already running, and cache reads
  // have their own lock.
  std::size_t grant_index = 0;
  bool granted = false;
  {
    const std::lock_guard<std::mutex> lock(board_mutex_);
    if (draining_) return drain_frame();
    sweep_expired_locked();
    if (request.retirable && retire_credits_ > 0) {
      --retire_credits_;
      ++gauges_.workers_retired;
      publish_gauges_locked();
      LeaseGrantBody grant;
      grant.kind = LeaseGrantBody::Kind::Retire;
      return encode_frame(FrameType::LeaseGrant, encode_lease_grant(grant));
    }
    if (done_count_ == shards_.size()) {
      LeaseGrantBody grant;
      grant.kind = LeaseGrantBody::Kind::Done;
      return encode_frame(FrameType::LeaseGrant, encode_lease_grant(grant));
    }
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].state != SlotState::Pending) continue;
      slots_[i].state = SlotState::Leased;
      slots_[i].holder = request.worker_id;
      slots_[i].deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(config_.lease_ttl_seconds));
      grant_index = i;
      granted = true;
      break;
    }
    publish_gauges_locked();
    if (!granted) {
      LeaseGrantBody grant;
      grant.kind = LeaseGrantBody::Kind::Wait;
      grant.retry_after_ms = config_.wait_retry_ms;
      return encode_frame(FrameType::LeaseGrant, encode_lease_grant(grant));
    }
  }

  const experiments::CompiledShard& shard = shards_[grant_index];
  obs::ObsSpan grant_span("lease", "grant");
  if (grant_span.active()) grant_span.rename("grant:" + shard.id);
  LeaseGrantBody grant;
  grant.kind = LeaseGrantBody::Kind::Work;
  grant.shard_index = shard.index;
  grant.shard_id = shard.id;
  grant.plan_fingerprint = fingerprint_;
  grant.lease_ttl_seconds = config_.lease_ttl_seconds;
  // A tracing coordinator asks its workers to trace too; they ship the
  // spans back inside each FragmentPush.
  grant.traced = obs::Tracer::instance().enabled();
  grant.spec_toml = spec_toml_;
  {
    // Warm records: whatever the coordinator's cache already holds for
    // the shard's jobs.  The worker seeds its scratch cache with these,
    // so its rows replay the cached numbers exactly as a local run would.
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    for (const experiments::GridCell& cell : shard.cells) {
      for (const experiments::GridSlot& slot : cell.slots) {
        WireCacheEntry entry;
        entry.key = job_canonical_key(slot.solver, cell.request);
        entry.hash = job_hash_from_key(entry.key);
        if (const std::optional<experiments::CachedSolve> hit =
                cache_.lookup(entry.hash, entry.key)) {
          entry.body = encode_result_body(*hit);
          grant.records.push_back(std::move(entry));
        }
      }
    }
  }
  return encode_frame(FrameType::LeaseGrant, encode_lease_grant(grant));
}

std::string Coordinator::handle_fragment_payload(
    const std::string& payload) {
  FragmentPushBody push;
  try {
    push = decode_fragment_push(payload);
  } catch (const std::exception& e) {
    stats_.on_protocol_error();
    return encode_frame(FrameType::ProtocolError, e.what());
  }

  const auto refuse = [this, &payload](const std::string& why) {
    AckBody ack;
    ack.ok = false;
    ack.message = why;
    {
      const std::lock_guard<std::mutex> lock(board_mutex_);
      ++gauges_.fragments_discarded;
      publish_gauges_locked();
    }
    (void)payload;
    return encode_frame(FrameType::Ack, encode_ack(ack));
  };

  if (push.shard_index >= shards_.size() ||
      shards_[push.shard_index].id != push.shard_id) {
    return refuse("unknown shard (stale plan?)");
  }
  if (push.plan_fingerprint != fingerprint_) {
    return refuse("plan fingerprint mismatch");
  }
  const std::optional<experiments::ShardResult> result =
      experiments::parse_shard_result(push.fragment);
  if (!result || result->index != push.shard_index ||
      result->id != push.shard_id) {
    return refuse("corrupt fragment");
  }

  // Claim the commit under the board lock (exactly-once: duplicates and
  // late pushes from expired leases lose here), then store the records
  // *before* the shard counts as done -- `finished()` implies the cache
  // already holds every accepted shard's solves.
  obs::ObsSpan commit_span("lease", "commit");
  if (commit_span.active()) commit_span.rename("commit:" + push.shard_id);
  {
    const std::lock_guard<std::mutex> lock(board_mutex_);
    Slot& slot = slots_[push.shard_index];
    if (slot.state == SlotState::Done ||
        slot.state == SlotState::Committing) {
      ++gauges_.fragments_discarded;
      publish_gauges_locked();
      AckBody ack;
      ack.ok = true;
      ack.message = "duplicate";
      return encode_frame(FrameType::Ack, encode_ack(ack));
    }
    slot.state = SlotState::Committing;
    slot.holder = push.worker_id;
  }
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    for (const WireCacheEntry& entry : push.records) {
      try {
        cache_.store(entry.hash, entry.key,
                     decode_result_body(entry.body));
      } catch (const std::exception&) {
        // A malformed record degrades to a future cache miss, exactly
        // like a torn entry file; the fragment's rows are still good.
      }
    }
  }
  {
    const std::lock_guard<std::mutex> lock(board_mutex_);
    slots_[push.shard_index].state = SlotState::Done;
    results_[push.shard_index] = std::move(*result);
    ++done_count_;
    gauges_.fragment_bytes += payload.size();
    publish_gauges_locked();
  }
  done_cv_.notify_all();
  if (!push.trace.empty()) {
    // The worker's spans since its previous push.  Best effort: a
    // corrupt section only costs its spans, never the fragment.
    try {
      obs::ProcessTrace trace = obs::decode_trace(push.trace);
      const std::lock_guard<std::mutex> lock(trace_mutex_);
      obs::merge_process_trace(worker_traces_, std::move(trace));
    } catch (const std::exception&) {
    }
  }
  AckBody ack;
  ack.ok = true;
  ack.message = "accepted";
  return encode_frame(FrameType::Ack, encode_ack(ack));
}

// ------------------------------------------------------------ accept side --

void Coordinator::accept_loop() {
  while (!accept_stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void Coordinator::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    // A peer that dies mid-frame leaves a partial FragmentPush in the
    // buffer; the length prefix never completes, so the bytes are simply
    // dropped here -- a torn push can never corrupt the board.
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    for (;;) {
      const FrameDecode decode = try_decode_frame(buffer);
      if (decode.status == DecodeStatus::NeedMore) break;
      if (decode.status != DecodeStatus::Ok) {
        stats_.on_protocol_error();
        (void)send_all(fd,
                       encode_frame(FrameType::ProtocolError, decode.error));
        open = false;
        break;
      }
      buffer.erase(0, decode.consumed);
      std::string reply;
      switch (decode.frame.type) {
        case FrameType::LeaseRequest:
          reply = handle_lease_payload(decode.frame.payload);
          break;
        case FrameType::FragmentPush:
          reply = handle_fragment_payload(decode.frame.payload);
          break;
        case FrameType::StatsQuery:
          reply = encode_frame(FrameType::StatsReport, stats_.render_json());
          break;
        default:
          stats_.on_protocol_error();
          reply = encode_frame(
              FrameType::ProtocolError,
              "unexpected worker frame type " +
                  std::to_string(static_cast<int>(decode.frame.type)));
          open = false;
          break;
      }
      if (!send_all(fd, reply)) {
        open = false;
        break;
      }
    }
  }
  ::close(fd);
}

}  // namespace dlsched::service
