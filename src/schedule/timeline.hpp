// Explicit start/end instants for every activity of a schedule -- the data
// behind Figure 2 of the paper (and Figure 9's trace visualization).
#pragma once

#include <cstddef>
#include <vector>

#include "platform/star_platform.hpp"
#include "schedule/schedule.hpp"

namespace dlsched {

/// A half-open activity interval [start, end).
struct Interval {
  double start = 0.0;
  double end = 0.0;

  [[nodiscard]] double duration() const noexcept { return end - start; }
  [[nodiscard]] bool empty() const noexcept { return end <= start; }
  /// True if the interior of the intervals intersect.
  [[nodiscard]] bool overlaps(const Interval& other,
                              double eps = 1e-9) const noexcept {
    return start < other.end - eps && other.start < end - eps;
  }
};

/// The three phases of one worker's participation.
struct WorkerLane {
  std::size_t worker = 0;  ///< platform worker index
  Interval recv;           ///< initial data transfer (alpha * c)
  Interval compute;        ///< processing (alpha * w)
  Interval ret;            ///< result transfer (alpha * d)

  [[nodiscard]] double idle() const noexcept { return ret.start - compute.end; }
};

/// Fully laid-out schedule: one lane per enrolled worker plus the master's
/// busy intervals.
struct Timeline {
  std::vector<WorkerLane> lanes;    ///< in send order
  double makespan = 0.0;            ///< end of the last activity

  /// Master busy intervals (all sends then all returns), sorted by start.
  [[nodiscard]] std::vector<Interval> master_busy() const;
};

/// Lays out a schedule: sends back-to-back from t = 0 in entry order;
/// each worker computes immediately after its reception; its return starts
/// after its recorded idle gap.  No feasibility checking happens here --
/// that is validator.hpp's job.
[[nodiscard]] Timeline build_timeline(const StarPlatform& platform,
                                      const Schedule& schedule);

}  // namespace dlsched
