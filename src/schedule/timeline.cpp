#include "schedule/timeline.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dlsched {

std::vector<Interval> Timeline::master_busy() const {
  std::vector<Interval> busy;
  busy.reserve(2 * lanes.size());
  for (const WorkerLane& lane : lanes) {
    if (!lane.recv.empty()) busy.push_back(lane.recv);
    if (!lane.ret.empty()) busy.push_back(lane.ret);
  }
  std::sort(busy.begin(), busy.end(),
            [](const Interval& a, const Interval& b) {
              return a.start < b.start;
            });
  return busy;
}

Timeline build_timeline(const StarPlatform& platform,
                        const Schedule& schedule) {
  Timeline timeline;
  timeline.lanes.reserve(schedule.entries.size());
  double clock = 0.0;
  for (const ScheduleEntry& e : schedule.entries) {
    const Worker& worker = platform.worker(e.worker);
    WorkerLane lane;
    lane.worker = e.worker;
    lane.recv.start = clock;
    lane.recv.end = clock + e.alpha * worker.c;
    lane.compute.start = lane.recv.end;
    lane.compute.end = lane.compute.start + e.alpha * worker.w;
    lane.ret.start = lane.compute.end + e.idle;
    lane.ret.end = lane.ret.start + e.alpha * worker.d;
    clock = lane.recv.end;
    timeline.makespan = std::max(timeline.makespan, lane.ret.end);
    timeline.lanes.push_back(lane);
  }
  return timeline;
}

}  // namespace dlsched
