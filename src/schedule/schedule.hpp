// Schedule representation (paper Section 2.2).
//
// A schedule is fully described by: the enrolled workers with their loads
// (alpha_i), the send order sigma_1, the return order sigma_2, and the idle
// times x_i between the end of a worker's computation and the start of its
// return transfer.  This module stores that description; `timeline.hpp`
// derives explicit start/end instants from it and `validator.hpp` checks
// one-port feasibility independently.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "platform/star_platform.hpp"

namespace dlsched {

/// One enrolled worker in the schedule.
struct ScheduleEntry {
  std::size_t worker = 0;  ///< index into the platform
  double alpha = 0.0;      ///< load units assigned
  double idle = 0.0;       ///< x_i: gap between compute end and return start
};

/// A complete one-round schedule.  Entries appear in *send* order sigma_1;
/// `return_positions` lists entry indices in *return* order sigma_2.
struct Schedule {
  std::vector<ScheduleEntry> entries;
  std::vector<std::size_t> return_positions;
  double horizon = 1.0;  ///< the time bound T

  [[nodiscard]] std::size_t size() const noexcept { return entries.size(); }
  [[nodiscard]] double total_load() const noexcept;

  /// True if sigma_2 == sigma_1 (first served returns first).
  [[nodiscard]] bool is_fifo() const noexcept;
  /// True if sigma_2 == reverse(sigma_1).
  [[nodiscard]] bool is_lifo() const noexcept;

  /// Position of each entry in the return order (inverse of
  /// return_positions).
  [[nodiscard]] std::vector<std::size_t> return_rank() const;

  /// Uniform scaling of all loads and idle gaps together with the horizon;
  /// linearity of the cost model makes the result feasible iff the original
  /// was.
  [[nodiscard]] Schedule scaled(double factor) const;

  [[nodiscard]] std::string describe(const StarPlatform& platform) const;
};

/// Builds the paper's normalized schedule for given loads: initial messages
/// back-to-back from time 0 in `send_order`, return messages back-to-back
/// ending exactly at `horizon` in `return_order`; idle times are derived.
///
/// `send_order` / `return_order` contain worker indices (same set).
/// `alpha` is indexed by *platform* worker id; workers with alpha <= 0 are
/// dropped from the schedule.
///
/// Throws if the packing is infeasible (some worker's return would have to
/// start before its computation ends, or returns would start before all
/// sends finish).
[[nodiscard]] Schedule make_packed_schedule(const StarPlatform& platform,
                                            std::span<const std::size_t> send_order,
                                            std::span<const std::size_t> return_order,
                                            std::span<const double> alpha,
                                            double horizon = 1.0);

/// FIFO convenience: return order equals send order.
[[nodiscard]] Schedule make_packed_fifo(const StarPlatform& platform,
                                        std::span<const std::size_t> send_order,
                                        std::span<const double> alpha,
                                        double horizon = 1.0);

/// LIFO convenience: return order is the reversed send order.
[[nodiscard]] Schedule make_packed_lifo(const StarPlatform& platform,
                                        std::span<const std::size_t> send_order,
                                        std::span<const double> alpha,
                                        double horizon = 1.0);

}  // namespace dlsched
