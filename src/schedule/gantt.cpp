#include "schedule/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace dlsched {

namespace {

std::size_t to_column(double t, double makespan, std::size_t width) {
  if (makespan <= 0.0) return 0;
  const double f = std::clamp(t / makespan, 0.0, 1.0);
  return static_cast<std::size_t>(std::llround(f * static_cast<double>(width)));
}

void paint(std::string& row, std::size_t begin, std::size_t end, char ch) {
  for (std::size_t i = begin; i < end && i < row.size(); ++i) row[i] = ch;
}

}  // namespace

std::string render_ascii_gantt(const StarPlatform& platform,
                               const Timeline& timeline,
                               const GanttOptions& options) {
  DLSCHED_EXPECT(options.width >= 10, "gantt width too small");
  const double makespan = timeline.makespan;
  std::ostringstream out;
  out << "time 0 .. " << format_double(makespan, 6) << "  ('r' recv, 'c' compute, '.' idle, 's' send results)\n";

  std::size_t label_width = 6;
  for (const WorkerLane& lane : timeline.lanes) {
    label_width =
        std::max(label_width, platform.worker(lane.worker).name.size());
  }

  if (options.show_master_lane) {
    std::string row(options.width, ' ');
    for (const WorkerLane& lane : timeline.lanes) {
      paint(row, to_column(lane.recv.start, makespan, options.width),
            to_column(lane.recv.end, makespan, options.width), 'S');
      paint(row, to_column(lane.ret.start, makespan, options.width),
            to_column(lane.ret.end, makespan, options.width), 'R');
    }
    out << "master" << std::string(label_width - 6, ' ') << " |" << row
        << "|\n";
  }
  for (const WorkerLane& lane : timeline.lanes) {
    std::string row(options.width, ' ');
    paint(row, to_column(lane.recv.start, makespan, options.width),
          to_column(lane.recv.end, makespan, options.width), 'r');
    paint(row, to_column(lane.compute.start, makespan, options.width),
          to_column(lane.compute.end, makespan, options.width), 'c');
    paint(row, to_column(lane.compute.end, makespan, options.width),
          to_column(lane.ret.start, makespan, options.width), '.');
    paint(row, to_column(lane.ret.start, makespan, options.width),
          to_column(lane.ret.end, makespan, options.width), 's');
    const std::string& name = platform.worker(lane.worker).name;
    out << name << std::string(label_width - name.size(), ' ') << " |" << row
        << "|\n";
  }
  return out.str();
}

namespace {

void svg_rect(std::ostringstream& out, double x, double y, double w, double h,
              const char* fill) {
  out << "  <rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << w
      << "\" height=\"" << h << "\" fill=\"" << fill
      << "\" stroke=\"#333\" stroke-width=\"0.5\"/>\n";
}

}  // namespace

std::string render_svg_gantt(const StarPlatform& platform,
                             const Timeline& timeline,
                             const GanttOptions& options) {
  const double scale = options.svg_pixels_per_unit;
  const double lane_h = options.svg_lane_height;
  const double label_w = 90.0;
  const double makespan = std::max(timeline.makespan, 1e-12);
  const double chart_w = makespan * scale;
  const double total_w = label_w + chart_w + 20.0;
  const double total_h = (static_cast<double>(timeline.lanes.size()) + 2.0) *
                         (lane_h + 6.0);

  std::ostringstream out;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << total_w
      << "\" height=\"" << total_h << "\" viewBox=\"0 0 " << total_w << " "
      << total_h << "\">\n";
  out << "  <style>text{font-family:monospace;font-size:12px}</style>\n";

  double y = 8.0;
  // Master lane: every send (white) and every return (pale gray).
  out << "  <text x=\"4\" y=\"" << y + lane_h * 0.7 << "\">master</text>\n";
  for (const WorkerLane& lane : timeline.lanes) {
    if (!lane.recv.empty()) {
      svg_rect(out, label_w + lane.recv.start * scale, y,
               lane.recv.duration() * scale, lane_h, "#ffffff");
    }
    if (!lane.ret.empty()) {
      svg_rect(out, label_w + lane.ret.start * scale, y,
               lane.ret.duration() * scale, lane_h, "#cccccc");
    }
  }
  y += lane_h + 6.0;

  for (const WorkerLane& lane : timeline.lanes) {
    out << "  <text x=\"4\" y=\"" << y + lane_h * 0.7 << "\">"
        << platform.worker(lane.worker).name << "</text>\n";
    if (!lane.recv.empty()) {
      svg_rect(out, label_w + lane.recv.start * scale, y,
               lane.recv.duration() * scale, lane_h, "#ffffff");
    }
    if (!lane.compute.empty()) {
      svg_rect(out, label_w + lane.compute.start * scale, y,
               lane.compute.duration() * scale, lane_h, "#555555");
    }
    if (!lane.ret.empty()) {
      svg_rect(out, label_w + lane.ret.start * scale, y,
               lane.ret.duration() * scale, lane_h, "#cccccc");
    }
    y += lane_h + 6.0;
  }

  // Time axis.
  out << "  <line x1=\"" << label_w << "\" y1=\"" << y << "\" x2=\""
      << label_w + chart_w << "\" y2=\"" << y
      << "\" stroke=\"#000\" stroke-width=\"1\"/>\n";
  out << "  <text x=\"" << label_w << "\" y=\"" << y + 14.0
      << "\">0</text>\n";
  out << "  <text x=\"" << label_w + chart_w - 30.0 << "\" y=\"" << y + 14.0
      << "\">" << format_double(timeline.makespan, 4) << "</text>\n";
  out << "</svg>\n";
  return out.str();
}

}  // namespace dlsched
