// Integral task assignment (paper Section 5).
//
// The LP loads alpha_i are rational, but the application ships whole
// matrices.  The paper's policy: round every alpha_i down, then hand the K
// remaining tasks to the first K workers of the send order, one each.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dlsched {

/// Rounds fractional loads to integers summing exactly to `total_tasks`.
///
/// `alpha` is listed in send order (sigma_1) and is expected to sum to
/// (approximately) `total_tasks`; each result differs from floor(alpha_i)
/// by at most 1 and the sum is exactly `total_tasks`.  If the floors
/// already exceed `total_tasks` (possible only through floating-point
/// drift), excess is trimmed from the last workers.
[[nodiscard]] std::vector<std::uint64_t> round_loads(
    std::span<const double> alpha, std::uint64_t total_tasks);

/// Scales fractional throughput-form loads (computed for horizon T = 1) to
/// a concrete job of `total_tasks` units: alpha_i * total_tasks / sum.
[[nodiscard]] std::vector<double> scale_loads_to_total(
    std::span<const double> alpha, double total_tasks);

}  // namespace dlsched
