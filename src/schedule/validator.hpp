// Independent feasibility checker for one-port schedules.
//
// Every solver in src/core constructs schedules that *should* be feasible
// by design; this validator re-derives feasibility from first principles
// (the model of paper Section 2.1) so solver bugs surface as validation
// failures rather than silently optimistic throughput numbers.
#pragma once

#include <string>
#include <vector>

#include "platform/star_platform.hpp"
#include "schedule/schedule.hpp"
#include "schedule/timeline.hpp"

namespace dlsched {

/// Outcome of a validation pass.  `violations` is empty iff `ok`.
struct ValidationReport {
  bool ok = true;
  std::vector<std::string> violations;

  void fail(std::string message);
};

struct ValidationOptions {
  double eps = 1e-9;            ///< absolute slack for all comparisons
  bool check_horizon = true;    ///< require every activity to end by horizon
  bool check_return_order = true;  ///< require sigma_2 to match actual starts
};

/// Checks, against the given platform:
///  1. loads and idle gaps are non-negative, worker indices are distinct;
///  2. worker precedence: recv -> compute -> (idle) -> return, with
///     durations alpha*c, alpha*w, alpha*d;
///  3. one-port: no two master communications (any send, any return)
///     overlap;
///  4. returns occur in the schedule's declared sigma_2 order;
///  5. everything finishes by the horizon (when check_horizon).
[[nodiscard]] ValidationReport validate(const StarPlatform& platform,
                                        const Schedule& schedule,
                                        const ValidationOptions& options = {});

/// Same checks applied to a pre-built timeline (used by the simulator,
/// whose traces are not generated through build_timeline).
[[nodiscard]] ValidationReport validate_timeline(
    const StarPlatform& platform, const Timeline& timeline,
    double horizon, const ValidationOptions& options = {});

}  // namespace dlsched
