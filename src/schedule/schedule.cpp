#include "schedule/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace dlsched {

double Schedule::total_load() const noexcept {
  double total = 0.0;
  for (const ScheduleEntry& e : entries) total += e.alpha;
  return total;
}

bool Schedule::is_fifo() const noexcept {
  for (std::size_t i = 0; i < return_positions.size(); ++i) {
    if (return_positions[i] != i) return false;
  }
  return true;
}

bool Schedule::is_lifo() const noexcept {
  const std::size_t n = return_positions.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (return_positions[i] != n - 1 - i) return false;
  }
  return true;
}

std::vector<std::size_t> Schedule::return_rank() const {
  std::vector<std::size_t> rank(entries.size(), 0);
  for (std::size_t r = 0; r < return_positions.size(); ++r) {
    DLSCHED_EXPECT(return_positions[r] < entries.size(),
                   "return position out of range");
    rank[return_positions[r]] = r;
  }
  return rank;
}

Schedule Schedule::scaled(double factor) const {
  DLSCHED_EXPECT(factor > 0.0, "scale factor must be positive");
  Schedule out = *this;
  out.horizon *= factor;
  for (ScheduleEntry& e : out.entries) {
    e.alpha *= factor;
    e.idle *= factor;
  }
  return out;
}

std::string Schedule::describe(const StarPlatform& platform) const {
  std::ostringstream out;
  out << "Schedule (T = " << horizon << ", load = " << total_load() << ")\n";
  const std::vector<std::size_t> rank = return_rank();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const ScheduleEntry& e = entries[i];
    out << "  send#" << i + 1 << " return#" << rank[i] + 1 << "  "
        << platform.worker(e.worker).name << ": alpha=" << e.alpha
        << " idle=" << e.idle << "\n";
  }
  return out.str();
}

Schedule make_packed_schedule(const StarPlatform& platform,
                              std::span<const std::size_t> send_order,
                              std::span<const std::size_t> return_order,
                              std::span<const double> alpha, double horizon) {
  DLSCHED_EXPECT(alpha.size() == platform.size(),
                 "alpha must have one entry per platform worker");
  DLSCHED_EXPECT(send_order.size() == return_order.size(),
                 "send and return orders must cover the same workers");
  DLSCHED_EXPECT(horizon > 0.0, "horizon must be positive");
  const double eps = 1e-9 * std::max(1.0, horizon);

  // Enrolled workers: positive load, kept in the given orders.
  Schedule schedule;
  schedule.horizon = horizon;
  std::vector<std::size_t> entry_of_worker(platform.size(), SIZE_MAX);
  for (std::size_t w : send_order) {
    DLSCHED_EXPECT(w < platform.size(), "send order index out of range");
    DLSCHED_EXPECT(entry_of_worker[w] == SIZE_MAX, "duplicate in send order");
    if (alpha[w] <= 0.0) {
      entry_of_worker[w] = SIZE_MAX - 1;  // seen but not enrolled
      continue;
    }
    entry_of_worker[w] = schedule.entries.size();
    schedule.entries.push_back(ScheduleEntry{w, alpha[w], 0.0});
  }
  for (std::size_t w : return_order) {
    DLSCHED_EXPECT(w < platform.size(), "return order index out of range");
    DLSCHED_EXPECT(entry_of_worker[w] != SIZE_MAX,
                   "return order mentions a worker absent from send order");
    if (entry_of_worker[w] == SIZE_MAX - 1) continue;  // not enrolled
    schedule.return_positions.push_back(entry_of_worker[w]);
  }
  DLSCHED_EXPECT(schedule.return_positions.size() == schedule.entries.size(),
                 "return order does not cover all enrolled workers");

  if (schedule.entries.empty()) return schedule;

  // Sends back-to-back from time 0.
  std::vector<double> send_end(schedule.entries.size(), 0.0);
  double clock = 0.0;
  for (std::size_t i = 0; i < schedule.entries.size(); ++i) {
    const ScheduleEntry& e = schedule.entries[i];
    clock += e.alpha * platform.worker(e.worker).c;
    send_end[i] = clock;
  }
  const double all_sends_done = clock;

  // Returns back-to-back ending at `horizon`, in return order.
  std::vector<double> return_start(schedule.entries.size(), 0.0);
  double tail = horizon;
  for (std::size_t r = schedule.return_positions.size(); r-- > 0;) {
    const std::size_t pos = schedule.return_positions[r];
    const ScheduleEntry& e = schedule.entries[pos];
    tail -= e.alpha * platform.worker(e.worker).d;
    return_start[pos] = tail;
  }
  DLSCHED_EXPECT(tail >= all_sends_done - eps,
                 "infeasible packing: first return overlaps the sends");

  // Idle gaps; tiny negative values are floating-point noise.
  for (std::size_t i = 0; i < schedule.entries.size(); ++i) {
    ScheduleEntry& e = schedule.entries[i];
    const double compute_end =
        send_end[i] + e.alpha * platform.worker(e.worker).w;
    const double gap = return_start[i] - compute_end;
    DLSCHED_EXPECT(gap >= -eps,
                   "infeasible packing: return before computation end");
    e.idle = std::max(0.0, gap);
  }
  return schedule;
}

Schedule make_packed_fifo(const StarPlatform& platform,
                          std::span<const std::size_t> send_order,
                          std::span<const double> alpha, double horizon) {
  return make_packed_schedule(platform, send_order, send_order, alpha,
                              horizon);
}

Schedule make_packed_lifo(const StarPlatform& platform,
                          std::span<const std::size_t> send_order,
                          std::span<const double> alpha, double horizon) {
  std::vector<std::size_t> reversed(send_order.begin(), send_order.end());
  std::reverse(reversed.begin(), reversed.end());
  return make_packed_schedule(platform, send_order, reversed, alpha, horizon);
}

}  // namespace dlsched
