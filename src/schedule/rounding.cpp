#include "schedule/rounding.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dlsched {

std::vector<std::uint64_t> round_loads(std::span<const double> alpha,
                                       std::uint64_t total_tasks) {
  std::vector<std::uint64_t> loads(alpha.size(), 0);
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    DLSCHED_EXPECT(alpha[i] >= 0.0, "negative load");
    loads[i] = static_cast<std::uint64_t>(std::floor(alpha[i]));
    assigned += loads[i];
  }
  if (assigned < total_tasks) {
    // Distribute the K leftover tasks to the first K workers of sigma_1.
    std::uint64_t leftover = total_tasks - assigned;
    for (std::size_t i = 0; i < loads.size() && leftover > 0; ++i) {
      ++loads[i];
      --leftover;
    }
    // More leftovers than workers: keep cycling (can only happen when the
    // caller's alphas sum to far less than total_tasks).
    while (leftover > 0) {
      for (std::size_t i = 0; i < loads.size() && leftover > 0; ++i) {
        ++loads[i];
        --leftover;
      }
      DLSCHED_EXPECT(!loads.empty(), "cannot round loads with no workers");
    }
  } else if (assigned > total_tasks) {
    std::uint64_t excess = assigned - total_tasks;
    for (std::size_t i = loads.size(); i-- > 0 && excess > 0;) {
      const std::uint64_t take = std::min(loads[i], excess);
      loads[i] -= take;
      excess -= take;
    }
    DLSCHED_EXPECT(excess == 0, "could not trim excess load");
  }
  return loads;
}

std::vector<double> scale_loads_to_total(std::span<const double> alpha,
                                         double total_tasks) {
  DLSCHED_EXPECT(total_tasks >= 0.0, "negative task total");
  double sum = 0.0;
  for (double a : alpha) {
    DLSCHED_EXPECT(a >= 0.0, "negative load");
    sum += a;
  }
  DLSCHED_EXPECT(sum > 0.0 || total_tasks == 0.0,
                 "cannot scale zero throughput to a positive job");
  std::vector<double> scaled(alpha.begin(), alpha.end());
  if (sum > 0.0) {
    const double factor = total_tasks / sum;
    for (double& a : scaled) a *= factor;
  }
  return scaled;
}

}  // namespace dlsched
