// Gantt-chart rendering of timelines: ASCII for terminals (Figure 9's
// visualization) and SVG for files.
#pragma once

#include <string>

#include "platform/star_platform.hpp"
#include "schedule/timeline.hpp"

namespace dlsched {

struct GanttOptions {
  std::size_t width = 100;      ///< character columns (ASCII) for the time axis
  bool show_master_lane = true;
  double svg_pixels_per_unit = 600.0;  ///< horizontal scale of the SVG
  double svg_lane_height = 26.0;
};

/// ASCII chart: one row per worker ('r' = receiving, 'c' = computing,
/// '.' = idle gap, 's' = sending results) plus an optional master row
/// ('S' = sending, 'R' = receiving).
[[nodiscard]] std::string render_ascii_gantt(const StarPlatform& platform,
                                             const Timeline& timeline,
                                             const GanttOptions& options = {});

/// Self-contained SVG document with the same content (white = data
/// transfer, dark gray = computation, pale gray = output transfer --
/// matching the paper's Figure 9 palette).
[[nodiscard]] std::string render_svg_gantt(const StarPlatform& platform,
                                           const Timeline& timeline,
                                           const GanttOptions& options = {});

}  // namespace dlsched
