#include "schedule/validator.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace dlsched {

void ValidationReport::fail(std::string message) {
  ok = false;
  violations.push_back(std::move(message));
}

namespace {

std::string worker_name(const StarPlatform& platform, std::size_t index) {
  return index < platform.size() ? platform.worker(index).name
                                 : "worker#" + std::to_string(index);
}

void check_master_one_port(const StarPlatform& platform,
                           const Timeline& timeline, double eps,
                           ValidationReport& report) {
  struct Tagged {
    Interval interval;
    std::size_t worker;
    const char* kind;
  };
  std::vector<Tagged> busy;
  for (const WorkerLane& lane : timeline.lanes) {
    if (!lane.recv.empty()) busy.push_back({lane.recv, lane.worker, "send"});
    if (!lane.ret.empty()) busy.push_back({lane.ret, lane.worker, "return"});
  }
  std::sort(busy.begin(), busy.end(), [](const Tagged& a, const Tagged& b) {
    return a.interval.start < b.interval.start;
  });
  for (std::size_t i = 0; i + 1 < busy.size(); ++i) {
    if (busy[i].interval.end > busy[i + 1].interval.start + eps) {
      std::ostringstream out;
      out << "one-port violation: " << busy[i].kind << " of "
          << worker_name(platform, busy[i].worker) << " ["
          << busy[i].interval.start << ", " << busy[i].interval.end
          << ") overlaps " << busy[i + 1].kind << " of "
          << worker_name(platform, busy[i + 1].worker) << " ["
          << busy[i + 1].interval.start << ", " << busy[i + 1].interval.end
          << ")";
      report.fail(out.str());
    }
  }
}

void check_lane_precedence(const StarPlatform& platform,
                           const WorkerLane& lane, double eps,
                           ValidationReport& report) {
  const std::string name = worker_name(platform, lane.worker);
  if (lane.recv.start < -eps) {
    report.fail(name + ": activity before time 0");
  }
  if (lane.compute.start < lane.recv.end - eps) {
    report.fail(name + ": computation starts before reception ends");
  }
  if (lane.ret.start < lane.compute.end - eps) {
    report.fail(name + ": return starts before computation ends");
  }
  if (lane.recv.end < lane.recv.start - eps ||
      lane.compute.end < lane.compute.start - eps ||
      lane.ret.end < lane.ret.start - eps) {
    report.fail(name + ": negative-duration activity");
  }
}

}  // namespace

ValidationReport validate_timeline(const StarPlatform& platform,
                                   const Timeline& timeline, double horizon,
                                   const ValidationOptions& options) {
  ValidationReport report;
  for (const WorkerLane& lane : timeline.lanes) {
    if (lane.worker >= platform.size()) {
      report.fail("lane references worker index out of range");
      continue;
    }
    check_lane_precedence(platform, lane, options.eps, report);
    if (options.check_horizon && lane.ret.end > horizon + options.eps) {
      std::ostringstream out;
      out << worker_name(platform, lane.worker) << ": finishes at "
          << lane.ret.end << " after horizon " << horizon;
      report.fail(out.str());
    }
  }
  check_master_one_port(platform, timeline, options.eps, report);
  return report;
}

ValidationReport validate(const StarPlatform& platform,
                          const Schedule& schedule,
                          const ValidationOptions& options) {
  ValidationReport report;

  // Structural checks on the schedule itself.
  std::vector<bool> seen(platform.size(), false);
  for (const ScheduleEntry& e : schedule.entries) {
    if (e.worker >= platform.size()) {
      report.fail("schedule references worker index out of range");
      return report;
    }
    if (seen[e.worker]) {
      report.fail(worker_name(platform, e.worker) +
                  ": appears twice in the schedule");
    }
    seen[e.worker] = true;
    if (e.alpha < -options.eps) {
      report.fail(worker_name(platform, e.worker) + ": negative load");
    }
    if (e.idle < -options.eps) {
      report.fail(worker_name(platform, e.worker) + ": negative idle gap");
    }
  }
  if (schedule.return_positions.size() != schedule.entries.size()) {
    report.fail("return order does not cover all enrolled workers");
    return report;
  }
  std::vector<bool> covered(schedule.entries.size(), false);
  for (std::size_t pos : schedule.return_positions) {
    if (pos >= schedule.entries.size() || covered[pos]) {
      report.fail("return order is not a permutation of the entries");
      return report;
    }
    covered[pos] = true;
  }

  const Timeline timeline = build_timeline(platform, schedule);
  ValidationReport physical =
      validate_timeline(platform, timeline, schedule.horizon, options);
  for (std::string& v : physical.violations) report.fail(std::move(v));

  // Declared sigma_2 must match the actual chronological return order.
  if (options.check_return_order) {
    double previous_end = 0.0;
    for (std::size_t r = 0; r < schedule.return_positions.size(); ++r) {
      const WorkerLane& lane = timeline.lanes[schedule.return_positions[r]];
      if (lane.ret.empty()) continue;
      if (lane.ret.start < previous_end - options.eps) {
        std::ostringstream out;
        out << "return order violated at position " << r << " ("
            << worker_name(platform, lane.worker) << ")";
        report.fail(out.str());
      }
      previous_end = std::max(previous_end, lane.ret.end);
    }
  }
  return report;
}

}  // namespace dlsched
