// A scheduling scenario (paper Section 2.3): which workers participate and
// in which orders the initial and return messages travel.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "platform/star_platform.hpp"

namespace dlsched {

/// Candidate worker set + communication orders.  `send_order` and
/// `return_order` list the *same* worker indices; participation is decided
/// by the LP (workers may receive alpha = 0).
struct Scenario {
  std::vector<std::size_t> send_order;    ///< sigma_1
  std::vector<std::size_t> return_order;  ///< sigma_2

  [[nodiscard]] std::size_t size() const noexcept { return send_order.size(); }
  [[nodiscard]] bool is_fifo() const noexcept {
    return send_order == return_order;
  }
  [[nodiscard]] bool is_lifo() const noexcept;

  /// FIFO scenario over the given send order.
  static Scenario fifo(std::span<const std::size_t> order);
  /// LIFO scenario over the given send order.
  static Scenario lifo(std::span<const std::size_t> order);
  /// General scenario; throws unless both orders cover the same set.
  static Scenario general(std::span<const std::size_t> send,
                          std::span<const std::size_t> ret);

  /// Throws unless the scenario is internally consistent and references
  /// only workers of `platform`.
  void check(const StarPlatform& platform) const;

  [[nodiscard]] std::string describe() const;
};

}  // namespace dlsched
