#include "core/lifo.hpp"

#include "util/error.hpp"

namespace dlsched {

using numeric::Rational;

namespace {

/// Loads of the no-idle LIFO schedule for horizon T = 1, in send order.
std::vector<Rational> lifo_alphas(const StarPlatform& platform,
                                  const std::vector<std::size_t>& order) {
  DLSCHED_EXPECT(!order.empty(), "LIFO needs at least one worker");
  std::vector<Rational> alpha(order.size());
  const Worker& first = platform.worker(order[0]);
  alpha[0] = (Rational::from_double(first.c) + Rational::from_double(first.w) +
              Rational::from_double(first.d))
                 .inverse();
  for (std::size_t i = 1; i < order.size(); ++i) {
    const Worker& prev = platform.worker(order[i - 1]);
    const Worker& cur = platform.worker(order[i]);
    const Rational denom = Rational::from_double(cur.c) +
                           Rational::from_double(cur.w) +
                           Rational::from_double(cur.d);
    alpha[i] = alpha[i - 1] * Rational::from_double(prev.w) / denom;
  }
  return alpha;
}

}  // namespace

Rational lifo_throughput_for_order(const StarPlatform& platform,
                                   const std::vector<std::size_t>& order) {
  const std::vector<Rational> alpha = lifo_alphas(platform, order);
  Rational total;
  for (const Rational& a : alpha) total += a;
  return total;
}

LifoResult solve_lifo_closed_form(const StarPlatform& platform) {
  DLSCHED_EXPECT(!platform.empty(), "empty platform");
  LifoResult result;
  result.order = platform.order_by_c();
  const std::vector<Rational> ordered_alpha = lifo_alphas(platform, result.order);

  result.alpha.assign(platform.size(), Rational());
  std::vector<double> alpha_double(platform.size(), 0.0);
  for (std::size_t i = 0; i < result.order.size(); ++i) {
    result.alpha[result.order[i]] = ordered_alpha[i];
    alpha_double[result.order[i]] = ordered_alpha[i].to_double();
    result.throughput += ordered_alpha[i];
  }
  result.schedule =
      make_packed_lifo(platform, result.order, alpha_double, 1.0);
  return result;
}

ScenarioSolution solve_lifo_lp(const StarPlatform& platform) {
  DLSCHED_EXPECT(!platform.empty(), "empty platform");
  return solve_scenario(platform,
                        Scenario::lifo(platform.order_by_c()));
}

}  // namespace dlsched
