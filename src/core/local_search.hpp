// Local search over general permutation pairs (sigma_1, sigma_2).
//
// The paper leaves the complexity of the free-permutation problem open and
// conjectures NP-hardness (Section 7); brute force costs p!^2 LPs.  This
// module attacks the open problem heuristically: steepest-ascent hill
// climbing over the adjacent-transposition neighbourhood of both
// permutations, with multi-start from the structured schedules (FIFO,
// LIFO, random), using the double-precision LP as the oracle.
//
// Guarantees: the result is never worse than the best start (so never
// worse than optimal FIFO / optimal LIFO); on platforms small enough for
// brute force it is exact on most instances (measured in the tests and in
// bench/ablation_ordering).
#pragma once

#include <cstddef>

#include "core/scenario_lp.hpp"
#include "platform/star_platform.hpp"
#include "util/rng.hpp"

namespace dlsched {

struct LocalSearchOptions {
  std::size_t random_restarts = 3;   ///< extra random starts beyond FIFO/LIFO
  std::size_t max_steps = 200;       ///< ascent steps per start
  std::uint64_t seed = 1;            ///< restart generator seed
  bool search_sigma2_only = false;   ///< keep sigma_1 fixed (ablation)
};

struct LocalSearchResult {
  ScenarioSolutionD best;
  std::size_t lp_evaluations = 0;
  std::size_t ascents = 0;           ///< accepted improvement steps
};

/// Runs the search; the returned solution's scenario holds the best
/// (sigma_1, sigma_2) pair found.
[[nodiscard]] LocalSearchResult local_search_best_pair(
    const StarPlatform& platform, const LocalSearchOptions& options = {});

}  // namespace dlsched
