// Theorem 1 / Proposition 1: the optimal one-port FIFO schedule.
//
//   * when z = d/c < 1: serve workers in non-decreasing ci; the LP with
//     idle variables performs resource selection (alpha_i = 0 drops P_i);
//   * when z > 1: solve the mirrored platform (ci and di swapped, so the
//     mirror has z' = 1/z < 1) and flip the solution in time, which sends
//     initial messages in non-increasing ci order;
//   * when z = 1 the ordering is irrelevant (both branches agree).
//
// The whole procedure is polynomial: one sort + one LP solve.
#pragma once

#include "core/scenario_lp.hpp"
#include "platform/star_platform.hpp"
#include "schedule/schedule.hpp"

namespace dlsched {

struct FifoOptimalResult {
  ScenarioSolution solution;   ///< exact loads/throughput, platform-indexed
  Schedule schedule;           ///< realized packed schedule for T = 1
  bool mirrored = false;       ///< solved through the z > 1 transform
  /// True when Theorem 1 applies (uniform z); false means the ordering used
  /// (non-decreasing c) is a heuristic without an optimality proof.
  bool provably_optimal = true;
};

/// Computes the best FIFO schedule (with resource selection) in polynomial
/// time.  Requires a non-empty platform.
[[nodiscard]] FifoOptimalResult solve_fifo_optimal(
    const StarPlatform& platform);

}  // namespace dlsched
