#include "core/churn.hpp"

#include <algorithm>
#include <utility>

#include "sim/des_executor.hpp"
#include "util/error.hpp"

namespace dlsched {

PlatformDelta PlatformDelta::join(Worker w) {
  PlatformDelta delta;
  delta.kind = Kind::Join;
  delta.joined = std::move(w);
  return delta;
}

PlatformDelta PlatformDelta::leave(std::size_t worker) {
  PlatformDelta delta;
  delta.kind = Kind::Leave;
  delta.worker = worker;
  return delta;
}

PlatformDelta PlatformDelta::slowdown(std::size_t worker, double factor) {
  PlatformDelta delta;
  delta.kind = Kind::Slowdown;
  delta.worker = worker;
  delta.factor = factor;
  return delta;
}

const char* PlatformDelta::kind_name() const noexcept {
  switch (kind) {
    case Kind::Join: return "join";
    case Kind::Leave: return "leave";
    case Kind::Slowdown: return "slowdown";
  }
  return "?";
}

namespace {

/// Re-indexes a per-worker latency vector through the old -> new map.  A
/// joined worker (present in the new platform, absent from the map) gets
/// `fill`, the global scalar of the original costs.
std::vector<double> remap_latencies(const std::vector<double>& values,
                                    const std::vector<std::size_t>& old_to_new,
                                    std::size_t new_size, double fill) {
  if (values.empty()) return {};
  std::vector<double> out(new_size, fill);
  for (std::size_t i = 0; i < old_to_new.size(); ++i) {
    if (old_to_new[i] != SIZE_MAX) out[old_to_new[i]] = values[i];
  }
  return out;
}

}  // namespace

ChurnedPlatform apply_delta(const StarPlatform& platform,
                            const AffineCosts& costs,
                            const PlatformDelta& delta) {
  DLSCHED_EXPECT(!platform.empty(), "empty platform");
  std::vector<Worker> workers(platform.workers().begin(),
                              platform.workers().end());
  std::vector<std::size_t> old_to_new(platform.size());
  for (std::size_t i = 0; i < platform.size(); ++i) old_to_new[i] = i;
  switch (delta.kind) {
    case PlatformDelta::Kind::Join:
      workers.push_back(delta.joined);
      break;
    case PlatformDelta::Kind::Leave: {
      DLSCHED_EXPECT(delta.worker < platform.size(),
                     "churn: leave target out of range");
      DLSCHED_EXPECT(platform.size() > 1,
                     "churn: the last worker cannot leave");
      workers.erase(workers.begin() +
                    static_cast<std::ptrdiff_t>(delta.worker));
      old_to_new[delta.worker] = SIZE_MAX;
      for (std::size_t i = delta.worker + 1; i < platform.size(); ++i) {
        old_to_new[i] = i - 1;
      }
      break;
    }
    case PlatformDelta::Kind::Slowdown:
      DLSCHED_EXPECT(delta.worker < platform.size(),
                     "churn: slowdown target out of range");
      DLSCHED_EXPECT(delta.factor > 0.0,
                     "churn: slowdown factor must be positive");
      workers[delta.worker].w *= delta.factor;
      break;
  }
  ChurnedPlatform churned;
  churned.platform = StarPlatform(std::move(workers));
  churned.costs = costs;
  churned.costs.send_latency_per_worker =
      remap_latencies(costs.send_latency_per_worker, old_to_new,
                      churned.platform.size(), costs.send_latency);
  churned.costs.return_latency_per_worker =
      remap_latencies(costs.return_latency_per_worker, old_to_new,
                      churned.platform.size(), costs.return_latency);
  churned.old_to_new = std::move(old_to_new);
  return churned;
}

ResolveResult resolve(const SolveRequest& request,
                      const PlatformDelta& delta) {
  ChurnedPlatform churned =
      apply_delta(request.platform, request.costs, delta);
  const Scenario scenario =
      Scenario::fifo(churned.platform.order_by_c());
  LpOptions options = churned.costs.lp_options(!request.two_port);
  if (!request.warm_alpha.empty()) {
    DLSCHED_EXPECT(request.warm_alpha.size() == request.platform.size(),
                   "churn: warm_alpha must be pre-churn platform-indexed");
    std::vector<double> remapped(churned.platform.size(), 0.0);
    for (std::size_t i = 0; i < request.warm_alpha.size(); ++i) {
      const std::size_t j = churned.old_to_new[i];
      if (j != SIZE_MAX) remapped[j] = request.warm_alpha[i];
    }
    options.warm_basis = warm_basis_for(remapped, scenario);
  }
  ResolveResult out;
  out.solution = solve_scenario(churned.platform, scenario, options);
  out.platform = std::move(churned.platform);
  out.old_to_new = std::move(churned.old_to_new);
  out.costs = std::move(churned.costs);
  return out;
}

StaleExecution execute_stale(const ChurnedPlatform& churned,
                             const std::vector<double>& pre_alpha,
                             const Scenario& pre_scenario) {
  DLSCHED_EXPECT(pre_alpha.size() == churned.old_to_new.size(),
                 "churn: pre_alpha must be pre-churn platform-indexed");
  // The stale protocol: the pre-churn send order minus the departed
  // worker, remapped to churned indices, with the stale loads.
  std::vector<std::size_t> order;
  order.reserve(pre_scenario.send_order.size());
  std::vector<double> loads(churned.platform.size(), 0.0);
  double surviving = 0.0;
  for (const std::size_t w : pre_scenario.send_order) {
    const std::size_t j = churned.old_to_new[w];
    if (j == SIZE_MAX) continue;
    order.push_back(j);
    loads[j] = pre_alpha[w];
    surviving += pre_alpha[w];
  }
  StaleExecution out;
  out.surviving_load = surviving;
  if (order.empty() || surviving <= 0.0) return out;
  sim::DesOptions options;
  if (churned.costs.is_affine()) {
    const std::size_t p = churned.platform.size();
    options.send_latency.resize(p);
    options.compute_latency.assign(p, churned.costs.compute_latency);
    options.return_latency.resize(p);
    for (std::size_t i = 0; i < p; ++i) {
      options.send_latency[i] = churned.costs.send_latency_for(i);
      options.return_latency[i] = churned.costs.return_latency_for(i);
    }
    options.include_zero_loads = true;
  }
  const sim::DesResult run = sim::execute(
      churned.platform, Scenario::fifo(order), loads, options);
  out.makespan = run.makespan;
  if (run.makespan > 0.0) out.rate = surviving / run.makespan;
  return out;
}

}  // namespace dlsched
