// Exhaustive search over communication orderings.
//
// The paper conjectures the general problem (free choice of sigma_1 and
// sigma_2) is NP-hard; for small platforms this module enumerates every
// permutation pair and solves the scenario LP, providing ground truth for
// the optimality theorems (and counters for how quickly the search space
// explodes: p!^2 scenario LPs).
//
// Enumerating subsets is unnecessary: the LP performs resource selection by
// assigning zero load, so the optimum over all subsets is reached by some
// full-set permutation pair.
#pragma once

#include <cstddef>
#include <functional>

#include "core/scenario_lp.hpp"
#include "platform/star_platform.hpp"

namespace dlsched {

struct BruteForceOptions {
  bool fifo_only = false;      ///< restrict to sigma_2 == sigma_1
  bool lifo_only = false;      ///< restrict to sigma_2 == reverse(sigma_1)
  std::size_t max_workers = 7; ///< refuse larger platforms (p!^2 blow-up)
  /// Stop enumerating after this many seconds and report the best scenario
  /// seen so far (0 = search to completion).  A truncated search loses the
  /// exactness guarantee, flagged via `budget_exhausted`.
  double time_budget_seconds = 0.0;
};

struct BruteForceResult {
  ScenarioSolution best;          ///< exact optimum over the searched space
  std::size_t scenarios_tried = 0;
  bool budget_exhausted = false;  ///< stopped early on time_budget_seconds
};

/// Exact exhaustive search.  Throws if platform.size() > options.max_workers.
[[nodiscard]] BruteForceResult brute_force_best(
    const StarPlatform& platform, const BruteForceOptions& options = {});

struct BruteForceResultD {
  ScenarioSolutionD best;
  std::size_t scenarios_tried = 0;
  bool budget_exhausted = false;  ///< stopped early on time_budget_seconds
};

/// Double-precision exhaustive search (for slightly larger p in benches).
[[nodiscard]] BruteForceResultD brute_force_best_double(
    const StarPlatform& platform, const BruteForceOptions& options = {});

/// Visits every scenario in the searched space (exact solve per scenario).
/// Used by property tests that need the full distribution, not just the max.
void for_each_scenario(
    const StarPlatform& platform, const BruteForceOptions& options,
    const std::function<void(const ScenarioSolution&)>& visit);

}  // namespace dlsched
