// The affine cost model (paper Section 6): every message costs a start-up
// latency in addition to the linear term, and a computation pays a fixed
// overhead.  Legrand-Yang-Casanova [20] proved the resulting DLS problem
// NP-hard on heterogeneous stars, so no polynomial optimality result exists
// here; this module provides:
//   * the affine scenario LP (fixed participant set and orders);
//   * exact resource selection by subset enumeration for small platforms;
//   * a greedy heuristic (grow the non-decreasing-c prefix) for larger ones.
//
// The affine model is what makes multi-round strategies non-trivial (see
// core/multiround.hpp): with purely linear costs infinitely many rounds
// would be free.
#pragma once

#include <cstddef>

#include "core/scenario_lp.hpp"
#include "platform/star_platform.hpp"

namespace dlsched {

/// Per-activity start-up overheads (same for every worker, as in the
/// "query processing" variant of Barlas [4]).
struct AffineCosts {
  double send_latency = 0.0;
  double compute_latency = 0.0;
  double return_latency = 0.0;

  [[nodiscard]] LpOptions lp_options(bool one_port = true) const {
    LpOptions options;
    options.one_port = one_port;
    options.send_latency = send_latency;
    options.compute_latency = compute_latency;
    options.return_latency = return_latency;
    return options;
  }
};

/// FIFO affine LP over exactly the given participants (non-decreasing c
/// order is applied internally).  Workers outside `participants` pay
/// nothing.  lp_feasible is false when the constants alone exceed T = 1.
[[nodiscard]] ScenarioSolution solve_affine_fifo(
    const StarPlatform& platform, std::vector<std::size_t> participants,
    const AffineCosts& costs);

struct AffineSelectionResult {
  ScenarioSolution best;                 ///< best subset's solution
  std::vector<std::size_t> participants; ///< the chosen subset
  std::size_t subsets_tried = 0;
};

/// Exact resource selection: tries every non-empty subset (2^p - 1 LPs).
/// Throws if platform.size() > max_workers.
[[nodiscard]] AffineSelectionResult solve_affine_fifo_best_subset(
    const StarPlatform& platform, const AffineCosts& costs,
    std::size_t max_workers = 12);

/// Greedy selection: grow the prefix of the non-decreasing-c order while
/// the throughput improves.  Polynomial (p LPs); not optimal in general
/// (the problem is NP-hard [20]) but exact on the instances where the
/// optimal subset is a prefix -- the common case, exercised in tests.
[[nodiscard]] AffineSelectionResult solve_affine_fifo_greedy(
    const StarPlatform& platform, const AffineCosts& costs);

}  // namespace dlsched
