// The affine cost model (paper Section 6): every message costs a start-up
// latency in addition to the linear term, and a computation pays a fixed
// overhead.  Legrand-Yang-Casanova [20] proved the resulting DLS problem
// NP-hard on heterogeneous stars, so no polynomial optimality result exists
// here; this module provides the cost model and the affine scenario LP
// (fixed participant set and orders).  Resource *selection* -- exact subset
// enumeration, the greedy prefix and the participant-set local search --
// lives in the affine subsystem (affine/selection.hpp), together with the
// schedule realization (affine/realization.hpp) and the DES replay
// (affine/replay.hpp).
//
// The affine model is what makes multi-round strategies non-trivial (see
// core/multiround.hpp): with purely linear costs infinitely many rounds
// would be free.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/scenario_lp.hpp"
#include "platform/star_platform.hpp"

namespace dlsched {

/// Per-activity start-up overheads.  The scalar fields are *global* (the
/// same constant for every worker, as in the "query processing" variant of
/// Barlas [4]); the optional per-worker vectors override the send / return
/// latency worker by worker (platform-indexed), which is what the
/// latency-correlated platform generators produce.  Consumers that cannot
/// honour per-worker values (the multi-round executor, for one) assert
/// `!has_per_worker()` instead of silently collapsing the draws to the
/// global constant.
struct AffineCosts {
  double send_latency = 0.0;     ///< per initial message
  double compute_latency = 0.0;  ///< per computation start (always global)
  double return_latency = 0.0;   ///< per return message

  /// Per-worker overrides (platform-indexed).  Empty = use the global
  /// scalar for every worker; when non-empty the vector must cover the
  /// whole platform (asserted where it is consumed).
  std::vector<double> send_latency_per_worker;
  std::vector<double> return_latency_per_worker;

  /// Effective send latency of worker `i`.
  [[nodiscard]] double send_latency_for(std::size_t i) const {
    return send_latency_per_worker.empty() ? send_latency
                                           : send_latency_per_worker[i];
  }
  /// Effective return latency of worker `i`.
  [[nodiscard]] double return_latency_for(std::size_t i) const {
    return return_latency_per_worker.empty() ? return_latency
                                             : return_latency_per_worker[i];
  }

  [[nodiscard]] bool has_per_worker() const noexcept {
    return !send_latency_per_worker.empty() ||
           !return_latency_per_worker.empty();
  }

  /// Any non-zero constant anywhere (global or per-worker)?
  [[nodiscard]] bool is_affine() const noexcept;

  [[nodiscard]] LpOptions lp_options(bool one_port = true) const {
    LpOptions options;
    options.one_port = one_port;
    options.send_latency = send_latency;
    options.compute_latency = compute_latency;
    options.return_latency = return_latency;
    options.send_latencies = send_latency_per_worker;
    options.return_latencies = return_latency_per_worker;
    return options;
  }
};

/// FIFO affine LP over exactly the given participants (non-decreasing c
/// order is applied internally).  Workers outside `participants` pay
/// nothing.  lp_feasible is false when the constants alone exceed T = 1.
///
/// `parent_alpha` (platform-indexed doubles; empty = cold solve) warm-starts
/// the exact LP from the support of a structurally adjacent solution -- see
/// `warm_basis_for`.  The hint never changes the answer, only the pivot
/// count; `lp_warm_starts` in the result records whether the seed was
/// accepted.
[[nodiscard]] ScenarioSolution solve_affine_fifo(
    const StarPlatform& platform, std::vector<std::size_t> participants,
    const AffineCosts& costs, const std::vector<double>& parent_alpha = {});

/// Same LP over participants that are ALREADY in the order
/// `solve_affine_fifo` would produce (non-decreasing c, stable on the
/// platform-id order).  The hot path of the subset scans: no per-call
/// participant copy, no re-sort.  Asserts the c-order (the tie order within
/// equal c cannot be checked and is the caller's contract).
[[nodiscard]] ScenarioSolution solve_affine_fifo_sorted(
    const StarPlatform& platform, std::span<const std::size_t> participants,
    const AffineCosts& costs, const std::vector<double>& parent_alpha = {});

/// Double-precision variant of the same LP (Precision::Fast screening):
/// identical model and participant ordering, solved with the double
/// simplex.  Used by the selection strategies to rank candidate subsets
/// cheaply before the winner is re-solved exactly.
[[nodiscard]] ScenarioSolutionD solve_affine_fifo_fast(
    const StarPlatform& platform, std::vector<std::size_t> participants,
    const AffineCosts& costs);

/// Presorted-participants variant of the fast screen (same contract as
/// `solve_affine_fifo_sorted`; the double path ignores warm hints).
[[nodiscard]] ScenarioSolutionD solve_affine_fifo_fast_sorted(
    const StarPlatform& platform, std::span<const std::size_t> participants,
    const AffineCosts& costs);

}  // namespace dlsched
