// The optimal LIFO schedule (the comparator heuristic of paper Section 5,
// from the companion papers [7, 8]).
//
// The optimal two-port LIFO solution enrolls all workers in non-decreasing
// ci with no idle time, and happens to satisfy the one-port constraint, so
// it is also the optimal one-port LIFO schedule.  Closed form: with workers
// numbered in send order,
//
//   alpha_1 * (c_1 + w_1 + d_1) = T,
//   alpha_i * (c_i + w_i + d_i) = alpha_{i-1} * w_{i-1}   (i >= 2)
//
// which the derivation in DESIGN.md obtains from "sends back-to-back,
// no idle, returns contiguous in reverse order ending at T".
#pragma once

#include <vector>

#include "core/scenario_lp.hpp"
#include "numeric/rational.hpp"
#include "platform/star_platform.hpp"
#include "schedule/schedule.hpp"

namespace dlsched {

struct LifoResult {
  numeric::Rational throughput;           ///< sum of loads for T = 1
  std::vector<numeric::Rational> alpha;   ///< platform-indexed loads
  std::vector<std::size_t> order;         ///< send order used
  Schedule schedule;                      ///< packed schedule for T = 1
};

/// Closed-form optimal LIFO (all workers, non-decreasing ci, no idle).
[[nodiscard]] LifoResult solve_lifo_closed_form(const StarPlatform& platform);

/// Same scenario through the LP machinery; used to cross-check the closed
/// form and for sweeps that want double precision.
[[nodiscard]] ScenarioSolution solve_lifo_lp(const StarPlatform& platform);

/// Closed-form LIFO throughput for an arbitrary send order (used by the
/// ordering ablation; the recurrence applies to any order).
[[nodiscard]] numeric::Rational lifo_throughput_for_order(
    const StarPlatform& platform, const std::vector<std::size_t>& order);

}  // namespace dlsched
