#include "core/heuristics.hpp"

#include "util/error.hpp"

namespace dlsched {

const char* heuristic_name(Heuristic h) noexcept {
  switch (h) {
    case Heuristic::IncC: return "INC_C";
    case Heuristic::IncW: return "INC_W";
    case Heuristic::Lifo: return "LIFO";
    case Heuristic::DecC: return "DEC_C";
    case Heuristic::RandomFifo: return "RANDOM";
  }
  return "?";
}

Scenario heuristic_scenario(const StarPlatform& platform, Heuristic h,
                            Rng* rng) {
  DLSCHED_EXPECT(!platform.empty(), "empty platform");
  switch (h) {
    case Heuristic::IncC:
      return Scenario::fifo(platform.order_by_c());
    case Heuristic::IncW:
      return Scenario::fifo(platform.order_by_w());
    case Heuristic::Lifo:
      return Scenario::lifo(platform.order_by_c());
    case Heuristic::DecC:
      return Scenario::fifo(platform.order_by_c_desc());
    case Heuristic::RandomFifo: {
      DLSCHED_EXPECT(rng != nullptr, "RandomFifo needs an Rng");
      return Scenario::fifo(rng->permutation(platform.size()));
    }
  }
  DLSCHED_FAIL("unknown heuristic");
}

ScenarioSolutionD solve_heuristic(const StarPlatform& platform, Heuristic h,
                                  Rng* rng) {
  return solve_scenario_double(platform, heuristic_scenario(platform, h, rng));
}

ScenarioSolution solve_heuristic_exact(const StarPlatform& platform,
                                       Heuristic h, Rng* rng) {
  return solve_scenario(platform, heuristic_scenario(platform, h, rng));
}

}  // namespace dlsched
