// Unified solver interface over every scheduling algorithm in src/core.
//
// The paper is fundamentally a *comparison* of solution methodologies --
// optimal FIFO/LIFO, exhaustive search, ordering heuristics, local search,
// multi-round dispatch -- evaluated on the same star platform.  This module
// makes that comparison an architectural fact: each algorithm is wrapped in
// a `Solver` adapter registered by name in the `SolverRegistry`, every
// consumer (CLI, benches, figure sweeps, tests) selects back-ends by name,
// and `solve_batch` fans a set of jobs across a thread pool with every
// produced schedule re-checked by the independent validator.
//
// Adding an algorithm means registering one adapter; no consumer changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/affine.hpp"
#include "core/heuristics.hpp"
#include "core/scenario.hpp"
#include "core/scenario_lp.hpp"
#include "platform/star_platform.hpp"
#include "schedule/schedule.hpp"
#include "schedule/validator.hpp"

namespace dlsched {

/// Numeric back-end for a solve.  `Exact` keeps rational arithmetic end to
/// end (theorem-level guarantees); `Fast` allows the double-precision LP
/// where one exists (ensemble sweeps, large platforms).
enum class Precision { Exact, Fast };

/// One problem instance plus solve options, shared by every solver.
/// Solvers ignore the options that do not apply to them (a closed form has
/// no use for `time_budget_seconds`) and honour the ones that do.
struct SolveRequest {
  StarPlatform platform;

  /// Explicit communication orders for the `scenario_lp` solver; other
  /// solvers choose their own scenario and ignore this.
  std::optional<Scenario> scenario;

  /// Explicit participant set for the affine solvers (empty = all workers).
  std::vector<std::size_t> participants;

  bool two_port = false;           ///< drop the one-port row where supported
  AffineCosts costs;               ///< affine latencies (zero = linear model)
  Precision precision = Precision::Exact;
  double horizon = 1.0;            ///< schedule realization horizon T

  std::uint64_t seed = 1;          ///< randomized solvers (random_fifo, ...)
  double time_budget_seconds = 0.0;  ///< 0 = unlimited (search solvers)
  std::size_t max_workers_brute = 7;   ///< p!^2 guard (brute force)
  std::size_t max_workers_subset = 12; ///< 2^p guard (affine subsets)
  std::size_t local_search_restarts = 3;
  std::size_t local_search_max_steps = 200;
  std::size_t max_rounds = 8;      ///< multiround sweep upper bound

  /// Warm-start hint: platform-indexed alpha values of a structurally
  /// adjacent request's solution (a neighboring axis cell in a sweep, the
  /// pre-churn platform, ...).  Exact-LP solvers crash-start from the
  /// hint's support; everything else ignores it.  The hint is
  /// *non-semantic*: the LP engines' cold-fallback + uniqueness guarantee
  /// makes hinted and unhinted solves bit-identical in everything but
  /// pivot counts, so this field is deliberately EXCLUDED from
  /// `request_canonical_key` -- a cache entry computed cold answers a
  /// hinted request, and vice versa.
  std::vector<double> warm_alpha;
};

/// What every solver returns: the solution in the common `ScenarioSolution`
/// shape, a realized schedule, and provenance/diagnostics.
struct SolveResult {
  std::string solver;              ///< registry name that produced this

  /// Loads/throughput, platform-indexed.  Under `Precision::Fast` the
  /// rationals are lossless conversions of the double LP solution (so
  /// `.to_double()` round-trips bit-exactly).
  ScenarioSolution solution;

  /// Realized schedule for `request.horizon`.  Feasible on
  /// `schedule_platform` -- usually the request's platform, but e.g. the
  /// no-return model strips the d terms.
  Schedule schedule;
  StarPlatform schedule_platform;

  // ----- provenance -------------------------------------------------------
  bool provably_optimal = false;   ///< a theorem covers this instance
  bool mirrored = false;           ///< solved through the z > 1 mirror
  bool used_two_port = false;      ///< solution is for the two-port model
  bool exact = true;               ///< rational (not double) arithmetic

  /// Secondary throughput where the algorithm produces one: the one-port
  /// throughput after the Figure 7 transformation (`two_port_fifo`) or the
  /// two-port upper bound of Theorem 2 (`bus_closed_form`).
  std::optional<Rational> alt_throughput;
  bool comm_limited = false;       ///< Theorem 2: 1/(c+d) branch taken

  /// Chosen participant set (sorted worker indices) for selection-style
  /// solvers -- the affine subset / greedy / local-search family.  Empty
  /// for solvers whose enrolment is implied by alpha > 0.
  std::vector<std::size_t> participants;

  /// Affine DES-replay check (affine/replay.hpp): the realized timeline
  /// re-executed on the event engine must land on the LP horizon.
  bool replayed = false;
  double replay_makespan = 0.0;    ///< simulated completion time
  double replay_rel_error = 0.0;   ///< |makespan - horizon| / horizon

  // ----- search / evaluation statistics -----------------------------------
  std::size_t scenarios_tried = 0; ///< brute force / affine subset count
  std::size_t lp_evaluations = 0;  ///< local search oracle calls

  /// LPs re-solved with the exact engine under `Precision::Fast`: the
  /// margin set of a fast-screened selection scan, or a validated-double
  /// result that failed validation / replay and fell back to exact.
  std::size_t lp_fallbacks = 0;

  /// Warm-started exact LP solves whose seeded basis was accepted (crash
  /// succeeded and the warm optimum stood; cold fallbacks do not count).
  std::size_t lp_warm_starts = 0;
  /// Pivots avoided by accepted warm starts, measured against the most
  /// recent cold solve of the same warm chain (a deterministic proxy: the
  /// true counterfactual would require solving everything twice).
  std::size_t lp_pivots_saved = 0;
  /// Subset candidates skipped by the monotone throughput upper bound in
  /// the affine subset scan (provably unable to beat the incumbent).
  std::size_t subsets_pruned = 0;
  /// Subset candidates skipped by the inline double-LP margin screen
  /// after surviving the bound (affine subset scan).
  std::size_t subsets_screened = 0;

  /// Thread-local limb-arena activity during this solve (filled by
  /// `SolverRegistry::run`): big-integer buffer requests, and how many
  /// were served from the recycled pool instead of the allocator.
  std::uint64_t arena_acquires = 0;
  std::uint64_t arena_pool_hits = 0;
  std::size_t ascents = 0;         ///< local search accepted steps
  std::size_t best_rounds = 0;     ///< multiround: optimal R found
  double multiround_makespan = 0.0;
  bool budget_exhausted = false;   ///< stopped early on time_budget_seconds

  double wall_seconds = 0.0;       ///< filled by SolverRegistry::run
  std::string notes;               ///< free-form diagnostics

  [[nodiscard]] double throughput() const {
    return solution.throughput.to_double();
  }

  /// The solution reshaped for double-precision consumers (sweeps, DES
  /// feeds).  Lossless: under `Precision::Fast` this round-trips the
  /// double LP's numbers bit-exactly.
  [[nodiscard]] ScenarioSolutionD solution_double() const;
};

/// Abstract solution methodology.  Implementations are stateless; options
/// travel in the request.
class Solver {
 public:
  virtual ~Solver() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::string description() const = 0;
  /// Paper anchor (theorem / section / reference) this method implements.
  [[nodiscard]] virtual std::string paper_ref() const = 0;

  /// Whether this method can handle the request (e.g. Theorem 2 requires a
  /// bus).  On false, `why` (if given) receives a human-readable reason.
  [[nodiscard]] virtual bool applicable(const SolveRequest& request,
                                        std::string* why = nullptr) const;

  /// Solves the request.  Throws `dlsched::Error` on precondition
  /// violations (including inapplicable requests).
  [[nodiscard]] virtual SolveResult solve(const SolveRequest& request) const = 0;
};

using SolverFactory = std::function<std::unique_ptr<Solver>()>;

/// Descriptive registry entry (what `--list-solvers` prints).
struct SolverInfo {
  std::string name;
  std::string description;
  std::string paper_ref;
};

/// Name -> factory map over all registered solution methodologies.  The
/// process-wide instance comes pre-populated with every algorithm in
/// src/core; library users may register additional back-ends.
class SolverRegistry {
 public:
  /// The process-wide registry (builtins registered on first use).
  static SolverRegistry& instance();

  /// Registers a factory.  Throws on duplicate names.
  void add(SolverFactory factory);

  [[nodiscard]] bool contains(const std::string& name) const;
  /// Instantiates a solver.  Throws with the list of known names on miss.
  [[nodiscard]] std::unique_ptr<Solver> create(const std::string& name) const;
  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;
  /// Name/description/paper-ref rows, sorted by name.
  [[nodiscard]] std::vector<SolverInfo> infos() const;

  /// create + solve + wall-clock stamping in one call -- the main entry
  /// point for consumers.
  [[nodiscard]] SolveResult run(const std::string& name,
                                const SolveRequest& request) const;

  /// An empty registry (for tests); the process-wide instance is usually
  /// what you want.
  SolverRegistry() = default;

 private:
  std::vector<std::pair<std::string, SolverFactory>> factories_;
};

// ---------------------------------------------------------------- hashing --

/// Canonical byte-exact serialization of a request: every field that can
/// influence any solver's output, with doubles rendered by bit pattern.
/// Two requests with equal keys are interchangeable for *every* registered
/// solver; worker names are excluded (they never affect solving).
[[nodiscard]] std::string request_canonical_key(const SolveRequest& request);

/// FNV-1a over the canonical key.
[[nodiscard]] std::uint64_t request_hash(const SolveRequest& request);

/// The canonical identity of one (solver, request) job: the solver name
/// prepended to `request_canonical_key`.  Serializing the platform is the
/// expensive part -- callers that need both the key and its hash should
/// build the key once and hash it with `job_hash_from_key`.
[[nodiscard]] std::string job_canonical_key(const std::string& solver,
                                            const SolveRequest& request);

/// 128-bit hash of a `job_canonical_key` as 32 hex chars -- the
/// experiment engine's cache-file name.  Collisions are guarded against
/// by storing the canonical key alongside cached values.
[[nodiscard]] std::string job_hash_from_key(std::string_view canonical_key);

/// `job_hash_from_key(job_canonical_key(solver, request))`.
[[nodiscard]] std::string job_hash_hex(const std::string& solver,
                                       const SolveRequest& request);

// --------------------------------------------------------------- batching --

/// One unit of batch work: a solver name plus its request.
struct BatchJob {
  std::string solver;
  SolveRequest request;
};

/// Non-owning batch job: the experiment grid stores each distinct request
/// once and fans solver names over pointers, so enqueueing a p x z x seed x
/// solver grid never copies a platform.
struct BatchJobView {
  std::string solver;
  const SolveRequest* request = nullptr;
};

/// Outcome of one batch job.  `ok` means the solve completed and the
/// schedule passed the independent validator.
struct BatchOutcome {
  std::string solver;
  bool solved = false;             ///< solve() returned without throwing
  bool ok = false;                 ///< solved and validator-clean
  std::string error;               ///< exception text when !solved
  SolveResult result;              ///< valid when solved
  ValidationReport validation;     ///< valid when solved
  /// True when this job was byte-identical (same request hash + solver) to
  /// an earlier job in the batch: the outcome is a copy and neither the
  /// solver nor the validator ran again for it.
  bool deduped = false;
  /// True when the job never ran because a progress hook cancelled the
  /// batch; `solved` is false and `error` says so.
  bool cancelled = false;
  double validate_seconds = 0.0;   ///< validator wall time (0 when deduped)
};

/// Progress report delivered after each *primary* (non-deduped) batch job
/// finishes.  `completed`/`total` count primary jobs only, so `completed ==
/// total` on the last invocation.
struct BatchProgress {
  std::size_t job_index = 0;   ///< index of the just-finished job
  std::size_t completed = 0;   ///< primary jobs finished so far
  std::size_t total = 0;       ///< primary jobs in the batch
  /// Batch indices of the jobs deduped onto this primary (byte-identical
  /// solver + request), in job order.  This is the per-job attribution
  /// view: the outcome passed alongside answers `job_index` AND every
  /// index listed here, so a consumer tracking individual requests (the
  /// service daemon) can settle all of them the moment the primary
  /// finishes instead of waiting for the pool to join.  The span points
  /// into batch-call-lifetime storage; copy it to keep it past the hook.
  std::span<const std::size_t> duplicates;
};

/// Optional per-job completion hook for `solve_batch`: invoked serially
/// (never concurrently, under an internal mutex) from worker threads after
/// each primary job's outcome -- including validation -- is final.  The
/// experiment layer uses it to checkpoint finished results into the shared
/// result cache and refresh work-stealing claim heartbeats mid-shard.
/// Returning false cancels the batch: jobs not yet started are marked
/// `cancelled` instead of being run (in-flight jobs still finish).
using BatchProgressHook =
    std::function<bool(const BatchProgress&, const BatchOutcome&)>;

/// Runs every job on a pool of `threads` std::threads (0 = hardware
/// concurrency, capped at the job count) and validates each produced
/// schedule through schedule/validator.  Outcomes are returned in job
/// order regardless of thread interleaving; a throwing job yields an
/// outcome with `solved == false` instead of aborting the batch.
/// Byte-identical (request, solver) jobs are solved and validated once;
/// duplicates receive a copy of the outcome with `deduped` set.
/// `progress`, when given, is called serially after each primary job and
/// may cancel the remainder of the batch (see `BatchProgressHook`).
[[nodiscard]] std::vector<BatchOutcome> solve_batch(
    std::span<const BatchJob> jobs, std::size_t threads = 0,
    const BatchProgressHook& progress = {});

/// The non-owning primitive the owning overload and the experiment grid
/// are built on.  Every `request` pointer must stay valid for the call.
[[nodiscard]] std::vector<BatchOutcome> solve_batch(
    std::span<const BatchJobView> jobs, std::size_t threads = 0,
    const BatchProgressHook& progress = {});

/// Portfolio convenience: one request across many solvers.  Inapplicable
/// solvers are skipped (not errors) when `skip_inapplicable`.
[[nodiscard]] std::vector<BatchOutcome> solve_batch_across_solvers(
    const SolveRequest& request, std::span<const std::string> solvers,
    std::size_t threads = 0, bool skip_inapplicable = true);

/// Sweep convenience: one solver across many platforms (all other request
/// fields shared).
[[nodiscard]] std::vector<BatchOutcome> solve_batch_across_platforms(
    const std::string& solver, std::span<const StarPlatform> platforms,
    const SolveRequest& base_request = {}, std::size_t threads = 0);

/// Registry name of the adapter wrapping heuristic `h` ("inc_c", "inc_w",
/// "lifo", "dec_c", "random_fifo").
[[nodiscard]] const char* solver_name_for(Heuristic h) noexcept;

}  // namespace dlsched
