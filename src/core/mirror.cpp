#include "core/mirror.hpp"

#include <algorithm>
#include <utility>

#include "schedule/validator.hpp"
#include "util/error.hpp"

namespace dlsched {

Schedule flip_schedule(const StarPlatform& platform,
                       const Schedule& mirrored_schedule) {
  const std::size_t q = mirrored_schedule.entries.size();
  std::vector<double> alpha(platform.size(), 0.0);
  for (const ScheduleEntry& e : mirrored_schedule.entries) {
    DLSCHED_EXPECT(e.worker < platform.size(),
                   "mirrored schedule references unknown worker");
    alpha[e.worker] = e.alpha;
  }
  // Old return order as worker ids, reversed -> new send order.
  std::vector<std::size_t> new_send;
  new_send.reserve(q);
  for (std::size_t r = q; r-- > 0;) {
    new_send.push_back(
        mirrored_schedule.entries[mirrored_schedule.return_positions[r]]
            .worker);
  }
  // Old send order reversed -> new return order.
  std::vector<std::size_t> new_return;
  new_return.reserve(q);
  for (std::size_t i = q; i-- > 0;) {
    new_return.push_back(mirrored_schedule.entries[i].worker);
  }
  return make_packed_schedule(platform, new_send, new_return, alpha,
                              mirrored_schedule.horizon);
}

std::optional<Schedule> try_flip_schedule(const StarPlatform& platform,
                                          const Schedule& mirrored_schedule) {
  Schedule flipped = flip_schedule(platform, mirrored_schedule);
  if (!validate(platform, flipped).ok) return std::nullopt;
  return std::optional<Schedule>(std::move(flipped));
}

}  // namespace dlsched
