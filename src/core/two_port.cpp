#include "core/two_port.hpp"

#include "util/error.hpp"

namespace dlsched {

ScenarioSolution solve_scenario_two_port(const StarPlatform& platform,
                                         const Scenario& scenario) {
  LpOptions options;
  options.one_port = false;
  return solve_scenario(platform, scenario, options);
}

TwoPortFifoResult solve_fifo_optimal_two_port(const StarPlatform& platform) {
  DLSCHED_EXPECT(!platform.empty(), "empty platform");
  TwoPortFifoResult result;
  // The time-reversal (mirror) argument holds under two-port as well: for
  // z > 1 the optimal FIFO sends in non-increasing ci order.
  const bool mirrored = platform.has_uniform_z() && platform.z() > 1.0;
  result.solution = solve_scenario_two_port(
      platform, Scenario::fifo(mirrored ? platform.order_by_c_desc()
                                        : platform.order_by_c()));

  // Communication load of the two-port optimum.
  Rational comm;
  for (std::size_t i = 0; i < platform.size(); ++i) {
    comm += result.solution.alpha[i] *
            (Rational::from_double(platform.worker(i).c) +
             Rational::from_double(platform.worker(i).d));
  }
  result.one_port_throughput = comm > Rational(1)
                                   ? result.solution.throughput / comm
                                   : result.solution.throughput;
  return result;
}

Schedule one_port_from_two_port(const StarPlatform& platform,
                                const ScenarioSolution& two_port,
                                double horizon) {
  DLSCHED_EXPECT(two_port.lp_feasible, "infeasible two-port solution");
  Rational comm;
  for (std::size_t i = 0; i < platform.size(); ++i) {
    comm += two_port.alpha[i] *
            (Rational::from_double(platform.worker(i).c) +
             Rational::from_double(platform.worker(i).d));
  }
  std::vector<double> alpha = two_port.alpha_double();
  if (comm > Rational(1)) {
    const double k = comm.to_double();
    for (double& a : alpha) a /= k;
  }
  for (double& a : alpha) a *= horizon;
  return make_packed_schedule(platform, two_port.scenario.send_order,
                              two_port.scenario.return_order, alpha,
                              horizon);
}

}  // namespace dlsched
