// The exchange arguments of the paper's Lemma 2 / Theorem 1 proof, as
// executable transformations on FIFO schedules ("proof as code").
//
// Both operate on adjacent workers (P_i, P_j = P_{i+1}) of a packed FIFO
// schedule and never decrease the total load:
//
//  * `shift_idle_right` (proof case c_i <= c_j, Figure 5): absorb P_i's
//    idle gap by enlarging alpha_i and shrinking alpha_j so that all
//    communication intervals stay in place; the gap moves to P_j and the
//    load grows by (c_j - c_i)/c_j * x_i/(c_i + w_i) >= 0.
//
//  * `swap_adjacent` (proof case c_i > c_j, Figure 6): exchange the two
//    workers in the send order, rebalancing loads so the surrounding
//    communications are untouched; under d = z c with z < 1 the load grows
//    by alpha_i (c_i - c_j)(1 - z)/(c_j + w_j) > 0.
//
// `sort_by_exchanges` bubbles a FIFO schedule into non-decreasing c order
// by repeated swaps -- literally executing the proof that the sorted order
// is optimal.  The tests verify monotone load growth and feasibility at
// every step.
#pragma once

#include <cstddef>

#include "platform/star_platform.hpp"
#include "schedule/schedule.hpp"

namespace dlsched {

struct ExchangeResult {
  Schedule schedule;
  double load_gain = 0.0;  ///< total_load(after) - total_load(before)
};

/// Proof case c_i <= c_{i+1}.  `position` indexes the schedule's entries
/// (send order).  Requires a FIFO schedule and c_i <= c_{i+1}.
[[nodiscard]] ExchangeResult shift_idle_right(const StarPlatform& platform,
                                              const Schedule& schedule,
                                              std::size_t position);

/// Proof case c_i > c_{i+1}.  Requires a FIFO schedule and a uniform
/// return ratio z = d/c on the two workers involved.
[[nodiscard]] ExchangeResult swap_adjacent(const StarPlatform& platform,
                                           const Schedule& schedule,
                                           std::size_t position);

/// Bubble the schedule into non-decreasing c order via `swap_adjacent`.
/// Every swap is individually load-non-decreasing when z <= 1.
[[nodiscard]] Schedule sort_by_exchanges(const StarPlatform& platform,
                                         Schedule schedule);

}  // namespace dlsched
