// The linear program of paper Section 2.3, generalized to any permutation
// pair (sigma_1, sigma_2) under the paper's normalization: initial messages
// back-to-back from time 0 in sigma_1 order, return messages back-to-back
// ending exactly at T = 1 in sigma_2 order.
//
//   maximize  rho = sum_i alpha_i
//   s.t. (2a) for every worker i:
//            sum_{sigma1(j) <= sigma1(i)} c_j alpha_j + w_i alpha_i + x_i
//          + sum_{sigma2(j) >= sigma2(i)} d_j alpha_j              <= 1
//        (2b) sum_i (c_i + d_i) alpha_i <= 1        [one-port]
//        (2c,d) alpha_i, x_i >= 0
//
// The idle variables x_i are pure slack: here they ARE the slack of the
// chain rows (2a) rather than explicit columns.  Modelling them as columns
// alongside the solver's own row slacks would duplicate every chain row's
// slack column, so any optimum with a non-binding chain row would carry a
// zero-reduced-cost twin and the warm-start uniqueness gate (lp/simplex.hpp)
// could never accept a seed.  `ScenarioSolution::idle` recovers x_i from
// the row slack, which also makes idle well-defined at every vertex (the
// explicit-column formulation splits slack between x_i and s_i arbitrarily).
#pragma once

#include <vector>

#include "core/scenario.hpp"
#include "lp/problem.hpp"
#include "numeric/rational.hpp"
#include "platform/star_platform.hpp"
#include "schedule/schedule.hpp"

namespace dlsched {

using numeric::Rational;

/// Result of solving one scenario exactly.
struct ScenarioSolution {
  Rational throughput;                ///< rho = sum alpha_i (load per T = 1)
  std::vector<Rational> alpha;        ///< indexed by *platform* worker id
  std::vector<Rational> idle;         ///< LP idle variables, same indexing
  Scenario scenario;                  ///< the scenario that was solved
  std::size_t lp_pivots = 0;
  /// 1 when this solve was warm-started from `LpOptions::warm_basis` and
  /// the seed was accepted (0 on cold solves and cold fallbacks).
  std::size_t lp_warm_starts = 0;
  bool lp_feasible = true;            ///< false only with affine constants

  /// Workers with alpha > 0 (resource selection outcome).
  [[nodiscard]] std::vector<std::size_t> enrolled() const;
  /// alpha as doubles, platform-indexed.
  [[nodiscard]] std::vector<double> alpha_double() const;
};

/// Variations of the scheduling LP.  The defaults reproduce the paper's
/// model exactly; the extensions cover the companion papers' two-port model
/// ([7, 8] -- drop the one-port row) and the affine cost model of the
/// related work (Section 6): each message / computation additionally costs
/// a constant latency.  With latencies, every worker listed in the scenario
/// pays its constants whether or not it receives load, so resource
/// selection must be done over subsets (see core/affine.hpp).
struct LpOptions {
  bool one_port = true;          ///< false: the two-port model of [7, 8]
  double send_latency = 0.0;     ///< per initial message (affine model)
  double compute_latency = 0.0;  ///< per computation start (affine model)
  double return_latency = 0.0;   ///< per return message (affine model)

  /// Per-worker latency overrides (platform-indexed; empty = the global
  /// scalar applies to every worker).  Drawn by the latency-correlated
  /// platform generators; see core/affine.hpp.
  std::vector<double> send_latencies;
  std::vector<double> return_latencies;

  /// Exact LP engine.  Both produce bit-identical solutions; the
  /// fraction-free Bareiss tableau avoids per-entry gcd reductions and is
  /// the default.
  lp::ExactEngine exact_engine = lp::ExactEngine::Bareiss;

  /// Warm-start seed in this LP's structural-variable space (alpha_k = k
  /// in sigma_1 position order); empty = cold solve.  Build
  /// it with `warm_basis_for` from a structurally adjacent solution.  A
  /// seed never changes the result -- the engines fall back cold whenever
  /// it does not fit -- it only reduces pivots; the double path ignores it.
  std::vector<std::size_t> warm_basis;

  /// Effective latencies of platform worker `i`.
  [[nodiscard]] double send_latency_for(std::size_t i) const {
    return send_latencies.empty() ? send_latency : send_latencies[i];
  }
  [[nodiscard]] double return_latency_for(std::size_t i) const {
    return return_latencies.empty() ? return_latency : return_latencies[i];
  }

  [[nodiscard]] bool is_affine() const noexcept {
    if (send_latency != 0.0 || compute_latency != 0.0 ||
        return_latency != 0.0) {
      return true;
    }
    for (const double v : send_latencies) {
      if (v != 0.0) return true;
    }
    for (const double v : return_latencies) {
      if (v != 0.0) return true;
    }
    return false;
  }
};

/// Warm-start seed for solving `child` on a platform where worker `w`
/// received load `parent_alpha[w]` in a structurally adjacent solve: the
/// alpha columns (in `child`'s sigma_1 numbering) of workers with positive
/// alpha.  Support-based on the *double* representation deliberately, so a
/// seed derived from a fresh exact solution and one derived from its cached
/// double form agree bit-for-bit -- warm pivot counts stay invariant across
/// cache states and execution modes.  Workers absent from `parent_alpha`
/// (platform grew) are simply not seeded.
[[nodiscard]] std::vector<std::size_t> warm_basis_for(
    const std::vector<double>& parent_alpha, const Scenario& child);

/// Builds the LP for a scenario (exact rational coefficients taken from the
/// platform's doubles losslessly).  Exposed separately so tests and
/// examples can inspect the model.
[[nodiscard]] lp::LpProblem build_scenario_lp(const StarPlatform& platform,
                                              const Scenario& scenario,
                                              const LpOptions& options = {});

/// Solves the scenario LP exactly.  Throws if the LP is not optimal
/// (cannot happen in the linear model: alpha = 0 is always feasible; with
/// affine latencies the constants may make the scenario infeasible, which
/// is reported via lp_feasible = false and zero throughput).
[[nodiscard]] ScenarioSolution solve_scenario(const StarPlatform& platform,
                                              const Scenario& scenario,
                                              const LpOptions& options);
[[nodiscard]] ScenarioSolution solve_scenario(const StarPlatform& platform,
                                              const Scenario& scenario);

/// Double-precision variant for large sweeps (same model, simplex over
/// doubles).  Returns platform-indexed alphas and the throughput.
struct ScenarioSolutionD {
  double throughput = 0.0;
  std::vector<double> alpha;
  Scenario scenario;
  std::size_t lp_pivots = 0;
  bool lp_feasible = true;  ///< false only with affine constants
};
[[nodiscard]] ScenarioSolutionD solve_scenario_double(
    const StarPlatform& platform, const Scenario& scenario);
/// Options-aware variant (affine constants allowed; an infeasible LP is
/// reported via lp_feasible = false, mirroring the exact path).
[[nodiscard]] ScenarioSolutionD solve_scenario_double(
    const StarPlatform& platform, const Scenario& scenario,
    const LpOptions& options);

/// Lossless lift of a double-precision LP solution into the exact shape
/// (`Rational::from_double` is exact, so `.to_double()` round-trips
/// bit-exactly).  Idle variables are zeroed: the double path drops them.
[[nodiscard]] ScenarioSolution lift_solution(const ScenarioSolutionD& d);

/// Constructs the normalized (packed) schedule realizing a solution for a
/// horizon T (loads scale linearly with T).
[[nodiscard]] Schedule realize_schedule(const StarPlatform& platform,
                                        const ScenarioSolution& solution,
                                        double horizon = 1.0);
[[nodiscard]] Schedule realize_schedule(const StarPlatform& platform,
                                        const ScenarioSolutionD& solution,
                                        double horizon = 1.0);

}  // namespace dlsched
