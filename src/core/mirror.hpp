// The time-reversal ("mirror") argument used for z > 1 (end of paper
// Section 3): a schedule for platform (c_i, w_i, d_i) read backwards in
// time is a schedule for the mirrored platform (d_i, w_i, c_i), with sends
// and returns exchanging roles.  FIFO maps to FIFO (with the order
// reversed) and LIFO maps to LIFO.
#pragma once

#include <optional>

#include "platform/star_platform.hpp"
#include "schedule/schedule.hpp"

namespace dlsched {

/// Flips a packed schedule built for `platform.mirrored()` into a packed
/// schedule for `platform`:
///   * new send order   = reverse of the old return order,
///   * new return order = reverse of the old send order,
///   * identical loads and horizon (idle gaps are re-derived).
[[nodiscard]] Schedule flip_schedule(const StarPlatform& platform,
                                     const Schedule& mirrored_schedule);

/// `flip_schedule` plus a pass through the independent schedule validator:
/// returns std::nullopt when the flipped schedule is not feasible on
/// `platform`.  This is the guard of the `mirror_fifo` Precision::Fast
/// path -- a double-LP vertex can carry rounding noise that only shows up
/// after the time reversal, in which case the caller re-solves exactly.
[[nodiscard]] std::optional<Schedule> try_flip_schedule(
    const StarPlatform& platform, const Schedule& mirrored_schedule);

}  // namespace dlsched
