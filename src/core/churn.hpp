// Platform churn: incremental re-solving when the star changes under a
// running computation (a worker joins, leaves, or slows down).
//
// The paper's LPs are solved for a fixed platform; in a deployment the
// platform drifts.  Re-solving from scratch costs a full Phase I; the
// pre-churn optimum is a structurally adjacent basis, so `resolve`
// crash-starts the new FIFO LP from the old solution's alpha support
// (core/scenario_lp.hpp's `warm_basis_for`) and falls back cold when the
// seed no longer fits -- the answer is bit-identical to a cold solve
// either way, only the pivot count moves.
//
// `execute_stale` quantifies what churn costs when nobody re-solves: the
// pre-churn loads are replayed on the churned platform by the DES engine
// (a departed worker's load is simply lost; a slowed worker drags the
// makespan), giving the stale throughput that the churn_surface spec
// reports as "retention" against the re-solved optimum.
#pragma once

#include <cstddef>
#include <vector>

#include "core/affine.hpp"
#include "core/scenario_lp.hpp"
#include "core/solver.hpp"
#include "platform/star_platform.hpp"

namespace dlsched {

/// One platform-churn event.
struct PlatformDelta {
  enum class Kind { Join, Leave, Slowdown };
  Kind kind = Kind::Slowdown;
  std::size_t worker = 0;  ///< target, pre-churn index (Leave / Slowdown)
  Worker joined;           ///< the new worker (Join; appended at the end)
  double factor = 1.0;     ///< Slowdown: w' = w * factor (> 1 = slower)

  static PlatformDelta join(Worker w);
  static PlatformDelta leave(std::size_t worker);
  static PlatformDelta slowdown(std::size_t worker, double factor);

  [[nodiscard]] const char* kind_name() const noexcept;
};

/// A churned platform plus the pre -> post index map (SIZE_MAX marks the
/// departed worker; a joined worker takes the last index) and the request
/// costs re-indexed to the new platform (a joined worker falls back to the
/// global latency scalars).
struct ChurnedPlatform {
  StarPlatform platform;
  std::vector<std::size_t> old_to_new;
  AffineCosts costs;
};

[[nodiscard]] ChurnedPlatform apply_delta(const StarPlatform& platform,
                                          const AffineCosts& costs,
                                          const PlatformDelta& delta);

/// Outcome of a churn re-solve.
struct ResolveResult {
  ScenarioSolution solution;  ///< FIFO optimum on the churned platform
  StarPlatform platform;      ///< the churned platform
  std::vector<std::size_t> old_to_new;
  AffineCosts costs;          ///< re-indexed costs used for the solve
};

/// Re-solves the INC_C FIFO LP after `delta` hits `request.platform`.
/// `request.warm_alpha` (the pre-churn loads, pre-churn indexing) is
/// remapped through the index map and used as the warm-start seed; leave
/// it empty for a cold re-solve.  Honours `request.two_port` and the
/// request's affine costs.  The warm hint never changes the solution
/// (`solution.lp_warm_starts` records whether the seed was accepted).
[[nodiscard]] ResolveResult resolve(const SolveRequest& request,
                                    const PlatformDelta& delta);

/// What happens when nobody re-solves: the pre-churn loads, replayed on
/// the churned platform by the DES engine.
struct StaleExecution {
  double rate = 0.0;            ///< surviving load / simulated makespan
  double makespan = 0.0;        ///< DES completion time of the stale run
  double surviving_load = 0.0;  ///< pre-churn load still assigned
};

/// Replays `pre_alpha` (pre-churn platform indexing) over `pre_scenario`'s
/// send order on the churned platform: the departed worker's load (and
/// protocol slot) is dropped, everyone else keeps the stale assignment.
/// `churned.costs` supplies the affine constants.  Returns a zero rate
/// when no load survives.
[[nodiscard]] StaleExecution execute_stale(
    const ChurnedPlatform& churned, const std::vector<double>& pre_alpha,
    const Scenario& pre_scenario);

}  // namespace dlsched
