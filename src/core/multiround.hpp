// Multi-round divisible-load scheduling (paper Section 6: Altilar-Paker [3]
// and the multi-installment literature).  The master dispatches each
// worker's share in R equal installments instead of one message; a worker
// can start computing after its first installment, which pipelines
// communication behind computation -- at the price of R times the message
// latencies, which is why the affine model is required (with purely linear
// costs R = infinity would be free).
//
// This module evaluates (it does not claim optimality -- the multi-round
// problem is NP-hard even on stars [20]):
//   * a round-robin one-port FIFO multi-round schedule built from a given
//     per-worker load split, executed exactly on the DES event engine;
//   * a sweep helper that finds the best R for a load by direct evaluation.
#pragma once

#include <cstddef>
#include <span>

#include "core/affine.hpp"
#include "platform/star_platform.hpp"
#include "sim/trace.hpp"

namespace dlsched {

struct MultiRoundPlan {
  std::vector<std::size_t> order;     ///< send order (round-robin per round)
  std::vector<double> loads;          ///< platform-indexed total loads
  std::size_t rounds = 1;
  AffineCosts costs;
};

struct MultiRoundResult {
  double makespan = 0.0;
  sim::Trace trace;
};

/// Executes a multi-round plan on the discrete-event engine under the
/// one-port model: round r sends chunk loads[w]/R to every worker in
/// order; a worker computes installments as they arrive (appending to its
/// backlog); results return in one message per worker, FIFO, after all
/// sends.  Latencies from `costs` apply per message / computation burst.
[[nodiscard]] MultiRoundResult execute_multi_round(
    const StarPlatform& platform, const MultiRoundPlan& plan);

struct RoundSweepPoint {
  std::size_t rounds = 0;
  double makespan = 0.0;
};

/// Evaluates R = 1..max_rounds and returns every point (the tests and the
/// ablation bench use the full curve; min_element gives the winner).
[[nodiscard]] std::vector<RoundSweepPoint> sweep_rounds(
    const StarPlatform& platform, std::span<const double> loads,
    const AffineCosts& costs, std::size_t max_rounds);

}  // namespace dlsched
