// Classical divisible-load theory WITHOUT return messages -- the baselines
// the paper's introduction builds on:
//   * bus networks: the closed-form of Bataineh-Hsiung-Robertazzi [5] and
//     the DLS book [10];
//   * star networks: Beaumont-Casanova-Legrand-Robert-Yang [6] -- serve
//     workers by non-decreasing ci (largest bandwidth first), all workers
//     participate, all finish simultaneously.
//
// In both cases the optimum satisfies, with workers numbered in send order,
//     sum_{j <= i} c_j alpha_j + w_i alpha_i = T       for every i,
// giving the recurrence  alpha_{i+1} = alpha_i * w_i / (c_{i+1} + w_{i+1}),
// alpha_1 = 1 / (c_1 + w_1).
//
// These baselines quantify the cost of return messages: rho(no returns) >=
// rho(z > 0), and the gap grows with z (bench/ablation_selection and the
// tests exercise this).
#pragma once

#include <vector>

#include "numeric/rational.hpp"
#include "platform/star_platform.hpp"
#include "schedule/schedule.hpp"

namespace dlsched {

struct NoReturnResult {
  numeric::Rational throughput;
  std::vector<numeric::Rational> alpha;  ///< platform-indexed
  std::vector<std::size_t> order;        ///< send order (non-decreasing c)
  Schedule schedule;                     ///< packed schedule, d ignored
};

/// Optimal no-return-message schedule on a star ([6]); specializes to the
/// bus closed form [5, 10] when the platform is a bus.  The platform's d
/// values are ignored.
[[nodiscard]] NoReturnResult solve_no_return_optimal(
    const StarPlatform& platform);

/// Closed-form throughput for an arbitrary send order (used to verify the
/// ordering result of [6] exhaustively in tests).
[[nodiscard]] numeric::Rational no_return_throughput_for_order(
    const StarPlatform& platform, const std::vector<std::size_t>& order);

}  // namespace dlsched
