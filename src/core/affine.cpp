#include "core/affine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dlsched {

bool AffineCosts::is_affine() const noexcept {
  if (send_latency != 0.0 || compute_latency != 0.0 ||
      return_latency != 0.0) {
    return true;
  }
  const auto any_nonzero = [](const std::vector<double>& values) {
    return std::any_of(values.begin(), values.end(),
                       [](double v) { return v != 0.0; });
  };
  return any_nonzero(send_latency_per_worker) ||
         any_nonzero(return_latency_per_worker);
}

namespace {

/// Shared precondition checks (both precisions, both entry shapes).
void check_affine_inputs(const StarPlatform& platform,
                         std::span<const std::size_t> participants,
                         const AffineCosts& costs) {
  DLSCHED_EXPECT(!participants.empty(), "no participants");
  DLSCHED_EXPECT(costs.send_latency_per_worker.empty() ||
                     costs.send_latency_per_worker.size() == platform.size(),
                 "per-worker send latencies must be platform-indexed");
  DLSCHED_EXPECT(costs.return_latency_per_worker.empty() ||
                     costs.return_latency_per_worker.size() ==
                         platform.size(),
                 "per-worker return latencies must be platform-indexed");
}

/// Theorem 1 ordering: non-decreasing c among the participants (the
/// natural heuristic remains the FIFO order under affine costs).
std::vector<std::size_t> fifo_participants(
    const StarPlatform& platform, std::vector<std::size_t> participants,
    const AffineCosts& costs) {
  check_affine_inputs(platform, participants, costs);
  std::stable_sort(participants.begin(), participants.end(),
                   [&](std::size_t a, std::size_t b) {
                     return platform.worker(a).c < platform.worker(b).c;
                   });
  return participants;
}

void check_sorted(const StarPlatform& platform,
                  std::span<const std::size_t> participants) {
  DLSCHED_EXPECT(
      std::is_sorted(participants.begin(), participants.end(),
                     [&](std::size_t a, std::size_t b) {
                       return platform.worker(a).c < platform.worker(b).c;
                     }),
      "participants must already be in non-decreasing-c order");
}

/// Exact solve of a presorted FIFO scenario, warm-started from
/// `parent_alpha`'s support when non-empty.
ScenarioSolution solve_sorted(const StarPlatform& platform,
                              std::span<const std::size_t> participants,
                              const AffineCosts& costs,
                              const std::vector<double>& parent_alpha) {
  const Scenario scenario = Scenario::fifo(participants);
  LpOptions options = costs.lp_options();
  if (!parent_alpha.empty()) {
    options.warm_basis = warm_basis_for(parent_alpha, scenario);
  }
  return solve_scenario(platform, scenario, options);
}

}  // namespace

ScenarioSolution solve_affine_fifo(const StarPlatform& platform,
                                   std::vector<std::size_t> participants,
                                   const AffineCosts& costs,
                                   const std::vector<double>& parent_alpha) {
  return solve_sorted(
      platform, fifo_participants(platform, std::move(participants), costs),
      costs, parent_alpha);
}

ScenarioSolution solve_affine_fifo_sorted(
    const StarPlatform& platform, std::span<const std::size_t> participants,
    const AffineCosts& costs, const std::vector<double>& parent_alpha) {
  check_affine_inputs(platform, participants, costs);
  check_sorted(platform, participants);
  return solve_sorted(platform, participants, costs, parent_alpha);
}

ScenarioSolutionD solve_affine_fifo_fast(const StarPlatform& platform,
                                         std::vector<std::size_t> participants,
                                         const AffineCosts& costs) {
  return solve_scenario_double(
      platform,
      Scenario::fifo(
          fifo_participants(platform, std::move(participants), costs)),
      costs.lp_options());
}

ScenarioSolutionD solve_affine_fifo_fast_sorted(
    const StarPlatform& platform, std::span<const std::size_t> participants,
    const AffineCosts& costs) {
  check_affine_inputs(platform, participants, costs);
  check_sorted(platform, participants);
  return solve_scenario_double(platform, Scenario::fifo(participants),
                               costs.lp_options());
}

}  // namespace dlsched
