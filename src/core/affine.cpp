#include "core/affine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dlsched {

bool AffineCosts::is_affine() const noexcept {
  if (send_latency != 0.0 || compute_latency != 0.0 ||
      return_latency != 0.0) {
    return true;
  }
  const auto any_nonzero = [](const std::vector<double>& values) {
    return std::any_of(values.begin(), values.end(),
                       [](double v) { return v != 0.0; });
  };
  return any_nonzero(send_latency_per_worker) ||
         any_nonzero(return_latency_per_worker);
}

namespace {

/// Shared precondition checks + Theorem 1 ordering for both precisions.
std::vector<std::size_t> fifo_participants(
    const StarPlatform& platform, std::vector<std::size_t> participants,
    const AffineCosts& costs) {
  DLSCHED_EXPECT(!participants.empty(), "no participants");
  DLSCHED_EXPECT(costs.send_latency_per_worker.empty() ||
                     costs.send_latency_per_worker.size() == platform.size(),
                 "per-worker send latencies must be platform-indexed");
  DLSCHED_EXPECT(costs.return_latency_per_worker.empty() ||
                     costs.return_latency_per_worker.size() ==
                         platform.size(),
                 "per-worker return latencies must be platform-indexed");
  // Non-decreasing c among the participants (Theorem 1's order remains the
  // natural heuristic under affine costs).
  std::stable_sort(participants.begin(), participants.end(),
                   [&](std::size_t a, std::size_t b) {
                     return platform.worker(a).c < platform.worker(b).c;
                   });
  return participants;
}

}  // namespace

ScenarioSolution solve_affine_fifo(const StarPlatform& platform,
                                   std::vector<std::size_t> participants,
                                   const AffineCosts& costs) {
  return solve_scenario(
      platform,
      Scenario::fifo(
          fifo_participants(platform, std::move(participants), costs)),
      costs.lp_options());
}

ScenarioSolutionD solve_affine_fifo_fast(const StarPlatform& platform,
                                         std::vector<std::size_t> participants,
                                         const AffineCosts& costs) {
  return solve_scenario_double(
      platform,
      Scenario::fifo(
          fifo_participants(platform, std::move(participants), costs)),
      costs.lp_options());
}

}  // namespace dlsched
