#include "core/affine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dlsched {

ScenarioSolution solve_affine_fifo(const StarPlatform& platform,
                                   std::vector<std::size_t> participants,
                                   const AffineCosts& costs) {
  DLSCHED_EXPECT(!participants.empty(), "no participants");
  // Non-decreasing c among the participants (Theorem 1's order remains the
  // natural heuristic under affine costs).
  std::stable_sort(participants.begin(), participants.end(),
                   [&](std::size_t a, std::size_t b) {
                     return platform.worker(a).c < platform.worker(b).c;
                   });
  return solve_scenario(platform, Scenario::fifo(participants),
                        costs.lp_options());
}

AffineSelectionResult solve_affine_fifo_best_subset(
    const StarPlatform& platform, const AffineCosts& costs,
    std::size_t max_workers) {
  DLSCHED_EXPECT(!platform.empty(), "empty platform");
  DLSCHED_EXPECT(platform.size() <= max_workers,
                 "platform too large for subset enumeration");
  AffineSelectionResult result;
  const std::size_t p = platform.size();
  for (std::size_t mask = 1; mask < (std::size_t{1} << p); ++mask) {
    std::vector<std::size_t> subset;
    for (std::size_t i = 0; i < p; ++i) {
      if (mask & (std::size_t{1} << i)) subset.push_back(i);
    }
    ScenarioSolution solution =
        solve_affine_fifo(platform, std::move(subset), costs);
    ++result.subsets_tried;
    if (!solution.lp_feasible) continue;
    if (result.participants.empty() ||
        solution.throughput > result.best.throughput) {
      result.best = std::move(solution);
      result.participants = result.best.scenario.send_order;
    }
  }
  DLSCHED_EXPECT(!result.participants.empty(),
                 "no feasible subset (constants exceed the horizon)");
  return result;
}

AffineSelectionResult solve_affine_fifo_greedy(const StarPlatform& platform,
                                               const AffineCosts& costs) {
  DLSCHED_EXPECT(!platform.empty(), "empty platform");
  const std::vector<std::size_t> order = platform.order_by_c();
  AffineSelectionResult result;
  bool have_best = false;
  for (std::size_t k = 1; k <= order.size(); ++k) {
    std::vector<std::size_t> prefix(order.begin(),
                                    order.begin() + static_cast<std::ptrdiff_t>(k));
    ScenarioSolution solution = solve_affine_fifo(platform, prefix, costs);
    ++result.subsets_tried;
    if (!solution.lp_feasible) break;  // longer prefixes only add constants
    if (!have_best || solution.throughput > result.best.throughput) {
      result.best = std::move(solution);
      result.participants = result.best.scenario.send_order;
      have_best = true;
    }
  }
  DLSCHED_EXPECT(have_best, "no feasible prefix (constants exceed horizon)");
  return result;
}

}  // namespace dlsched
