#include "core/fifo_optimal.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dlsched {

FifoOptimalResult solve_fifo_optimal(const StarPlatform& platform) {
  DLSCHED_EXPECT(!platform.empty(), "empty platform");
  const bool uniform_z = platform.has_uniform_z();
  const double z = uniform_z ? platform.z() : 1.0;

  FifoOptimalResult result;
  result.provably_optimal = uniform_z;

  if (!uniform_z || z <= 1.0) {
    // Direct case: non-decreasing ci (Theorem 1).  For z == 1 any order is
    // optimal; non-decreasing ci is as good as any.
    const std::vector<std::size_t> order = platform.order_by_c();
    result.solution = solve_scenario(platform, Scenario::fifo(order));
    result.schedule = realize_schedule(platform, result.solution);
    return result;
  }

  // z > 1: solve the mirrored instance (z' = 1/z < 1) and flip time.
  // The mirror's FIFO schedule in non-decreasing c' = d order becomes, after
  // the flip, a FIFO schedule sending in the reversed order -- i.e.
  // non-increasing ci -- with identical loads and throughput.
  const StarPlatform mirror = platform.mirrored();
  const std::vector<std::size_t> mirror_order = mirror.order_by_c();
  const ScenarioSolution mirror_solution =
      solve_scenario(mirror, Scenario::fifo(mirror_order));

  std::vector<std::size_t> flipped_order(mirror_order.rbegin(),
                                         mirror_order.rend());
  result.mirrored = true;
  result.solution = mirror_solution;
  result.solution.scenario = Scenario::fifo(flipped_order);
  // Idle gaps move to different workers under the flip; the packed
  // construction below recomputes them, so reset the LP slack values.
  for (auto& x : result.solution.idle) x = Rational();
  result.schedule = realize_schedule(platform, result.solution);
  return result;
}

}  // namespace dlsched
