// The heuristics compared in the paper's Section 5 experiments, plus extra
// orderings for the ablation benches.
//
//   INC_C : FIFO, workers in non-decreasing ci (optimal by Theorem 1
//           when z < 1);
//   INC_W : FIFO, workers in non-decreasing wi;
//   LIFO  : the optimal LIFO solution (non-decreasing ci);
//   DEC_C / RANDOM : ablation orderings.
//
// All heuristics feed a full worker list to the scenario LP; the LP drops
// workers by assigning them zero load (resource selection).
#pragma once

#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "core/scenario_lp.hpp"
#include "platform/star_platform.hpp"
#include "util/rng.hpp"

namespace dlsched {

enum class Heuristic { IncC, IncW, Lifo, DecC, RandomFifo };

[[nodiscard]] const char* heuristic_name(Heuristic h) noexcept;

/// The scenario (orders) a heuristic uses on the given platform.  RandomFifo
/// requires an Rng.
[[nodiscard]] Scenario heuristic_scenario(const StarPlatform& platform,
                                          Heuristic h, Rng* rng = nullptr);

/// Solves the heuristic's scenario LP in double precision (the form used by
/// the experiment sweeps).
[[nodiscard]] ScenarioSolutionD solve_heuristic(const StarPlatform& platform,
                                                Heuristic h,
                                                Rng* rng = nullptr);

/// Exact variant for the theorem-level tests.
[[nodiscard]] ScenarioSolution solve_heuristic_exact(
    const StarPlatform& platform, Heuristic h, Rng* rng = nullptr);

}  // namespace dlsched
