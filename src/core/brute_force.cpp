#include "core/brute_force.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "util/error.hpp"

namespace dlsched {

namespace {

/// Calls `body` with every (sigma_1, sigma_2) pair permitted by `options`;
/// `body` returns false to stop the enumeration early (time budget).
template <class Body>
void enumerate(const StarPlatform& platform, const BruteForceOptions& options,
               Body body) {
  DLSCHED_EXPECT(!platform.empty(), "empty platform");
  DLSCHED_EXPECT(platform.size() <= options.max_workers,
                 "platform too large for exhaustive search");
  DLSCHED_EXPECT(!(options.fifo_only && options.lifo_only),
                 "fifo_only and lifo_only are mutually exclusive");

  std::vector<std::size_t> sigma1(platform.size());
  std::iota(sigma1.begin(), sigma1.end(), std::size_t{0});
  do {
    if (options.fifo_only) {
      if (!body(Scenario::fifo(sigma1))) return;
    } else if (options.lifo_only) {
      if (!body(Scenario::lifo(sigma1))) return;
    } else {
      std::vector<std::size_t> sigma2(sigma1.begin(), sigma1.end());
      std::sort(sigma2.begin(), sigma2.end());
      do {
        if (!body(Scenario::general(sigma1, sigma2))) return;
      } while (std::next_permutation(sigma2.begin(), sigma2.end()));
    }
  } while (std::next_permutation(sigma1.begin(), sigma1.end()));
}

/// Stateful deadline check; at least one scenario is always evaluated.
class Deadline {
 public:
  explicit Deadline(double seconds) : enabled_(seconds > 0.0) {
    if (enabled_) {
      end_ = std::chrono::steady_clock::now() +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(seconds));
    }
  }
  [[nodiscard]] bool expired() const {
    return enabled_ && std::chrono::steady_clock::now() >= end_;
  }

 private:
  bool enabled_;
  std::chrono::steady_clock::time_point end_;
};

}  // namespace

BruteForceResult brute_force_best(const StarPlatform& platform,
                                  const BruteForceOptions& options) {
  BruteForceResult result;
  bool have_best = false;
  const Deadline deadline(options.time_budget_seconds);
  enumerate(platform, options, [&](const Scenario& scenario) {
    ScenarioSolution solution = solve_scenario(platform, scenario);
    ++result.scenarios_tried;
    if (!have_best || solution.throughput > result.best.throughput) {
      result.best = std::move(solution);
      have_best = true;
    }
    result.budget_exhausted = deadline.expired();
    return !result.budget_exhausted;
  });
  DLSCHED_EXPECT(have_best, "no scenario was evaluated");
  return result;
}

BruteForceResultD brute_force_best_double(const StarPlatform& platform,
                                          const BruteForceOptions& options) {
  BruteForceResultD result;
  bool have_best = false;
  const Deadline deadline(options.time_budget_seconds);
  enumerate(platform, options, [&](const Scenario& scenario) {
    ScenarioSolutionD solution = solve_scenario_double(platform, scenario);
    ++result.scenarios_tried;
    if (!have_best || solution.throughput > result.best.throughput) {
      result.best = std::move(solution);
      have_best = true;
    }
    result.budget_exhausted = deadline.expired();
    return !result.budget_exhausted;
  });
  DLSCHED_EXPECT(have_best, "no scenario was evaluated");
  return result;
}

void for_each_scenario(
    const StarPlatform& platform, const BruteForceOptions& options,
    const std::function<void(const ScenarioSolution&)>& visit) {
  enumerate(platform, options, [&](const Scenario& scenario) {
    visit(solve_scenario(platform, scenario));
    return true;
  });
}

}  // namespace dlsched
