// Throughput <-> makespan conversions and the analytic (noise-free)
// executor used as reference for the discrete-event simulator.
//
// Linearity of the cost model makes the two objectives equivalent
// (Section 2.2): a schedule processing rho load units in T = 1 processes M
// units in M / rho.
#pragma once

#include <span>

#include "core/scenario.hpp"
#include "core/scenario_lp.hpp"
#include "platform/star_platform.hpp"
#include "schedule/schedule.hpp"
#include "schedule/timeline.hpp"

namespace dlsched {

/// Time to process `load` units at throughput `throughput` (both > 0).
[[nodiscard]] double makespan_for_load(double throughput, double load);

/// Scales a throughput-form solution (horizon 1) into a schedule processing
/// exactly `load` units; the horizon becomes load / throughput.
[[nodiscard]] Schedule schedule_for_load(const StarPlatform& platform,
                                         const ScenarioSolutionD& solution,
                                         double load);

/// Deterministic forward sweep of a normalized one-port execution with
/// fixed per-worker loads (fractional or integral):
///   * initial messages back-to-back from t = 0 in sigma_1 order,
///   * each worker computes immediately after its reception,
///   * return r starts at max(all sends done, previous return done, own
///     computation done), in sigma_2 order.
/// Returns the resulting makespan.  This is the exact execution-time model
/// the paper's LP lower-bounds; with integral loads it quantifies the
/// rounding penalty.
[[nodiscard]] double packed_makespan(const StarPlatform& platform,
                                     const Scenario& scenario,
                                     std::span<const double> loads);

/// Same sweep, returning the full timeline (workers with zero load are
/// skipped).
[[nodiscard]] Timeline packed_timeline(const StarPlatform& platform,
                                       const Scenario& scenario,
                                       std::span<const double> loads);

}  // namespace dlsched
