#include "core/local_search.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dlsched {

namespace {

/// One steepest-ascent climb from `scenario`; returns the local optimum.
ScenarioSolutionD climb(const StarPlatform& platform, Scenario scenario,
                        const LocalSearchOptions& options,
                        std::size_t& lp_evaluations, std::size_t& ascents) {
  ScenarioSolutionD current = solve_scenario_double(platform, scenario);
  ++lp_evaluations;
  const std::size_t q = scenario.size();
  if (q < 2) return current;

  for (std::size_t step = 0; step < options.max_steps; ++step) {
    ScenarioSolutionD best_neighbor;
    bool improved = false;

    auto consider = [&](const Scenario& candidate) {
      ScenarioSolutionD solution = solve_scenario_double(platform, candidate);
      ++lp_evaluations;
      if (solution.throughput >
          (improved ? best_neighbor.throughput : current.throughput) +
              1e-12) {
        best_neighbor = std::move(solution);
        improved = true;
      }
    };

    // Adjacent transpositions in sigma_1 (keeping sigma_2), unless frozen.
    if (!options.search_sigma2_only) {
      for (std::size_t i = 0; i + 1 < q; ++i) {
        Scenario candidate = current.scenario;
        std::swap(candidate.send_order[i], candidate.send_order[i + 1]);
        consider(candidate);
      }
    }
    // Adjacent transpositions in sigma_2.
    for (std::size_t i = 0; i + 1 < q; ++i) {
      Scenario candidate = current.scenario;
      std::swap(candidate.return_order[i], candidate.return_order[i + 1]);
      consider(candidate);
    }

    if (!improved) break;
    current = std::move(best_neighbor);
    ++ascents;
  }
  return current;
}

}  // namespace

LocalSearchResult local_search_best_pair(const StarPlatform& platform,
                                         const LocalSearchOptions& options) {
  DLSCHED_EXPECT(!platform.empty(), "empty platform");
  LocalSearchResult result;
  Rng rng(options.seed);

  std::vector<Scenario> starts;
  starts.push_back(Scenario::fifo(platform.order_by_c()));
  starts.push_back(Scenario::lifo(platform.order_by_c()));
  if (platform.has_uniform_z() && platform.z() > 1.0) {
    starts.push_back(Scenario::fifo(platform.order_by_c_desc()));
  }
  for (std::size_t r = 0; r < options.random_restarts; ++r) {
    starts.push_back(Scenario::general(rng.permutation(platform.size()),
                                       rng.permutation(platform.size())));
  }

  bool have_best = false;
  for (const Scenario& start : starts) {
    ScenarioSolutionD local = climb(platform, start, options,
                                    result.lp_evaluations, result.ascents);
    if (!have_best || local.throughput > result.best.throughput) {
      result.best = std::move(local);
      have_best = true;
    }
  }
  return result;
}

}  // namespace dlsched
