#include "core/multiround.hpp"

#include <algorithm>

#include "sim/engine.hpp"
#include "util/error.hpp"

namespace dlsched {

namespace {

/// Event-driven multi-round run state.
struct MultiRoundRun {
  const StarPlatform& platform;
  const MultiRoundPlan& plan;
  sim::Engine engine;
  sim::Trace trace;

  std::vector<std::size_t> active;      ///< workers with positive load
  std::vector<double> chunk;            ///< per-round chunk, platform-indexed
  std::vector<std::size_t> chunks_left; ///< installments not yet computed
  std::vector<std::size_t> backlog;     ///< received, not yet computed
  std::vector<bool> computing;          ///< worker busy flag
  std::size_t send_round = 0;
  std::size_t send_index = 0;
  std::size_t next_return = 0;
  bool sends_done = false;
  bool return_active = false;

  MultiRoundRun(const StarPlatform& p, const MultiRoundPlan& pl)
      : platform(p),
        plan(pl),
        chunk(p.size(), 0.0),
        chunks_left(p.size(), 0),
        backlog(p.size(), 0),
        computing(p.size(), false) {}

  void start_next_send() {
    if (send_round == plan.rounds) {
      sends_done = true;
      try_start_return();
      return;
    }
    const std::size_t w = active[send_index];
    const double duration =
        plan.costs.send_latency + chunk[w] * platform.worker(w).c;
    const double begin = engine.now();
    trace.record(w, sim::Activity::Send, begin, begin + duration, chunk[w]);
    engine.schedule_in(duration, [this, w] {
      ++backlog[w];
      try_start_compute(w);
      if (++send_index == active.size()) {
        send_index = 0;
        ++send_round;
      }
      start_next_send();
    });
  }

  void try_start_compute(std::size_t w) {
    if (computing[w] || backlog[w] == 0) return;
    computing[w] = true;
    --backlog[w];
    const double duration =
        plan.costs.compute_latency + chunk[w] * platform.worker(w).w;
    const double begin = engine.now();
    trace.record(w, sim::Activity::Compute, begin, begin + duration,
                 chunk[w]);
    engine.schedule_in(duration, [this, w] {
      computing[w] = false;
      DLSCHED_EXPECT(chunks_left[w] > 0, "computed more chunks than sent");
      --chunks_left[w];
      if (chunks_left[w] == 0) {
        try_start_return();
      } else {
        try_start_compute(w);
      }
    });
  }

  void try_start_return() {
    if (!sends_done || return_active || next_return == active.size()) return;
    const std::size_t w = active[next_return];
    if (chunks_left[w] != 0) return;  // still computing; retried on finish
    ++next_return;
    return_active = true;
    const double duration =
        plan.costs.return_latency + plan.loads[w] * platform.worker(w).d;
    const double begin = engine.now();
    trace.record(w, sim::Activity::Return, begin, begin + duration,
                 plan.loads[w]);
    engine.schedule_in(duration, [this] {
      return_active = false;
      try_start_return();
    });
  }
};

}  // namespace

MultiRoundResult execute_multi_round(const StarPlatform& platform,
                                     const MultiRoundPlan& plan) {
  DLSCHED_EXPECT(plan.rounds >= 1, "need at least one round");
  // The round-robin executor applies one global latency per activity;
  // refusing generator-drawn per-worker draws here beats averaging them
  // away silently (see AffineCosts).
  DLSCHED_EXPECT(!plan.costs.has_per_worker(),
                 "multi-round execution supports global latencies only");
  DLSCHED_EXPECT(plan.loads.size() == platform.size(),
                 "loads must be platform-indexed");

  MultiRoundRun run(platform, plan);
  for (std::size_t w : plan.order) {
    DLSCHED_EXPECT(w < platform.size(), "order index out of range");
    if (plan.loads[w] <= 0.0) continue;
    run.active.push_back(w);
    run.chunk[w] = plan.loads[w] / static_cast<double>(plan.rounds);
    run.chunks_left[w] = plan.rounds;
  }
  MultiRoundResult result;
  if (run.active.empty()) return result;

  run.engine.schedule_at(0.0, [&run] { run.start_next_send(); });
  result.makespan = run.engine.run();
  DLSCHED_EXPECT(run.next_return == run.active.size(),
                 "multi-round run ended with unreturned results");
  result.makespan = std::max(result.makespan, run.trace.makespan);
  result.trace = std::move(run.trace);
  return result;
}

std::vector<RoundSweepPoint> sweep_rounds(const StarPlatform& platform,
                                          std::span<const double> loads,
                                          const AffineCosts& costs,
                                          std::size_t max_rounds) {
  DLSCHED_EXPECT(max_rounds >= 1, "need at least one round");
  std::vector<RoundSweepPoint> points;
  points.reserve(max_rounds);
  MultiRoundPlan plan;
  plan.order = platform.order_by_c();
  plan.loads.assign(loads.begin(), loads.end());
  plan.costs = costs;
  for (std::size_t r = 1; r <= max_rounds; ++r) {
    plan.rounds = r;
    points.push_back(
        RoundSweepPoint{r, execute_multi_round(platform, plan).makespan});
  }
  return points;
}

}  // namespace dlsched
