#include "core/bus_closed_form.hpp"

#include <numeric>

#include "util/error.hpp"

namespace dlsched {

using numeric::Rational;

BusClosedFormResult solve_bus_closed_form(const StarPlatform& platform) {
  DLSCHED_EXPECT(!platform.empty(), "empty platform");
  DLSCHED_EXPECT(platform.is_bus(), "Theorem 2 requires a bus network");

  const Rational c = Rational::from_double(platform.worker(0).c);
  const Rational d = Rational::from_double(platform.worker(0).d);
  const std::size_t p = platform.size();

  // u_i with a running product; order is the platform order (any order
  // yields the same sum -- checked in the test suite).
  std::vector<Rational> u(p);
  Rational product(1);
  Rational u_sum;
  for (std::size_t i = 0; i < p; ++i) {
    const Rational w = Rational::from_double(platform.worker(i).w);
    product *= (d + w) / (c + w);
    u[i] = product / (d + w);
    u_sum += u[i];
  }

  BusClosedFormResult result;
  result.two_port_throughput = u_sum / (Rational(1) + d * u_sum);
  const Rational comm_bound = (c + d).inverse();
  result.comm_limited = result.two_port_throughput > comm_bound;
  result.throughput =
      result.comm_limited ? comm_bound : result.two_port_throughput;

  // Loads: alpha_i = u_i / (1 + d U) in the two-port regime; in the
  // comm-limited regime the Figure 7 rescaling yields alpha_i = u_i /
  // ((c + d) U), which indeed sums to 1/(c+d).
  result.alpha.assign(p, Rational());
  const Rational denom = result.comm_limited
                             ? (c + d) * u_sum
                             : Rational(1) + d * u_sum;
  std::vector<std::size_t> order(p);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> alpha_double(p, 0.0);
  for (std::size_t i = 0; i < p; ++i) {
    result.alpha[i] = u[i] / denom;
    alpha_double[i] = result.alpha[i].to_double();
  }
  result.schedule = make_packed_fifo(platform, order, alpha_double, 1.0);
  return result;
}

}  // namespace dlsched
