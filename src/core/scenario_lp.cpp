#include "core/scenario_lp.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dlsched {

namespace {

/// Per-scenario bookkeeping: position of each worker in both orders.
struct Positions {
  std::vector<std::size_t> send_pos;    // platform id -> position in sigma_1
  std::vector<std::size_t> return_pos;  // platform id -> position in sigma_2
};

Positions index_positions(const StarPlatform& platform,
                          const Scenario& scenario) {
  Positions pos;
  pos.send_pos.assign(platform.size(), SIZE_MAX);
  pos.return_pos.assign(platform.size(), SIZE_MAX);
  for (std::size_t k = 0; k < scenario.send_order.size(); ++k) {
    pos.send_pos[scenario.send_order[k]] = k;
  }
  for (std::size_t k = 0; k < scenario.return_order.size(); ++k) {
    pos.return_pos[scenario.return_order[k]] = k;
  }
  return pos;
}

}  // namespace

std::vector<std::size_t> warm_basis_for(
    const std::vector<double>& parent_alpha, const Scenario& child) {
  std::vector<std::size_t> seed;
  for (std::size_t k = 0; k < child.send_order.size(); ++k) {
    const std::size_t w = child.send_order[k];
    if (w < parent_alpha.size() && parent_alpha[w] > 0.0) seed.push_back(k);
  }
  return seed;  // sorted by construction (ascending sigma_1 positions)
}

lp::LpProblem build_scenario_lp(const StarPlatform& platform,
                                const Scenario& scenario,
                                const LpOptions& options) {
  scenario.check(platform);
  const std::size_t q = scenario.size();
  const Positions pos = index_positions(platform, scenario);
  DLSCHED_EXPECT(options.send_latencies.empty() ||
                     options.send_latencies.size() == platform.size(),
                 "per-worker send latencies must be platform-indexed");
  DLSCHED_EXPECT(options.return_latencies.empty() ||
                     options.return_latencies.size() == platform.size(),
                 "per-worker return latencies must be platform-indexed");
  const Rational comp_lat = Rational::from_double(options.compute_latency);
  // Exact per-position latency constants in sigma_1 order (a latency, like
  // the linear coefficients, is paid by the *message*, so worker j's own
  // constant accumulates wherever its message appears in a chain).
  std::vector<Rational> send_lat(q), ret_lat(q);
  for (std::size_t k = 0; k < q; ++k) {
    const std::size_t w = scenario.send_order[k];
    send_lat[k] = Rational::from_double(options.send_latency_for(w));
    ret_lat[k] = Rational::from_double(options.return_latency_for(w));
  }

  lp::LpProblem problem;
  // Variables: alpha_k ordered by sigma_1 position k.  The paper's idle
  // variables x_i are NOT explicit columns: x_i is exactly the slack of
  // chain row i, and modelling both would put two identical columns in
  // every row -- any optimum with a non-binding chain row would then have
  // a zero-reduced-cost twin, making every solution non-unique by
  // construction and defeating the warm-start uniqueness gate.  Callers
  // recover x_i from the row slack at extraction.
  std::vector<std::size_t> alpha_var(q);
  for (std::size_t k = 0; k < q; ++k) {
    const std::size_t w = scenario.send_order[k];
    alpha_var[k] = problem.add_variable(
        "alpha_" + platform.worker(w).name);
  }
  for (std::size_t k = 0; k < q; ++k) {
    problem.set_objective(alpha_var[k], Rational(1));
  }

  // Exact copies of the platform constants.
  std::vector<Rational> c(q), w_cost(q), d(q);
  for (std::size_t k = 0; k < q; ++k) {
    const Worker& worker = platform.worker(scenario.send_order[k]);
    c[k] = Rational::from_double(worker.c);
    w_cost[k] = Rational::from_double(worker.w);
    d[k] = Rational::from_double(worker.d);
  }

  // (2a) one chain constraint per worker, iterated in sigma_1 order.
  // With affine latencies the constants accumulate like the linear terms;
  // they are moved to the right-hand side.
  for (std::size_t k = 0; k < q; ++k) {
    const std::size_t worker_id = scenario.send_order[k];
    std::vector<lp::Term> terms;
    Rational constants;
    // All sends up to and including worker k (sigma_1 prefix).
    for (std::size_t j = 0; j <= k; ++j) {
      terms.push_back({alpha_var[j], c[j]});
      constants += send_lat[j];
    }
    // Own computation.  (The idle time x_k is this row's slack.)
    terms.push_back({alpha_var[k], w_cost[k]});
    constants += comp_lat;
    // All returns from this worker onward in sigma_2 order.
    const std::size_t my_return_pos = pos.return_pos[worker_id];
    for (std::size_t r = my_return_pos; r < q; ++r) {
      const std::size_t other = scenario.return_order[r];
      const std::size_t other_k = pos.send_pos[other];
      terms.push_back({alpha_var[other_k], d[other_k]});
      constants += ret_lat[other_k];
    }
    problem.add_constraint(std::move(terms), lp::Relation::LessEq,
                           Rational(1) - constants,
                           "chain_" + platform.worker(worker_id).name);
  }

  // (2b) the master's one-port budget: total communication time <= 1.
  // Absent in the two-port model of [7, 8], where the master may send and
  // receive simultaneously.
  if (options.one_port) {
    std::vector<lp::Term> terms;
    Rational constants;
    for (std::size_t k = 0; k < q; ++k) {
      terms.push_back({alpha_var[k], c[k] + d[k]});
      constants += send_lat[k] + ret_lat[k];
    }
    problem.add_constraint(std::move(terms), lp::Relation::LessEq,
                           Rational(1) - constants, "one_port");
  }
  return problem;
}

ScenarioSolution solve_scenario(const StarPlatform& platform,
                                const Scenario& scenario,
                                const LpOptions& options) {
  const lp::LpProblem problem =
      build_scenario_lp(platform, scenario, options);
  lp::WarmInfo warm;
  const lp::Solution<Rational> lp_solution =
      options.warm_basis.empty()
          ? problem.solve_exact(options.exact_engine)
          : problem.solve_exact(options.exact_engine,
                                lp::WarmBasis{options.warm_basis}, &warm);

  ScenarioSolution out;
  out.scenario = scenario;
  out.lp_warm_starts = warm.accepted ? 1 : 0;
  if (lp_solution.status == lp::Status::Infeasible) {
    DLSCHED_EXPECT(options.is_affine(),
                   "linear-model scenario LP cannot be infeasible");
    out.lp_feasible = false;
    out.alpha.assign(platform.size(), Rational());
    out.idle.assign(platform.size(), Rational());
    return out;
  }
  DLSCHED_EXPECT(lp_solution.status == lp::Status::Optimal,
                 "scenario LP must be optimal");
  out.throughput = lp_solution.objective;
  out.lp_pivots = lp_solution.pivots;
  out.alpha.assign(platform.size(), Rational());
  out.idle.assign(platform.size(), Rational());
  const std::size_t q = scenario.size();
  for (std::size_t k = 0; k < q; ++k) {
    // Idle is the chain row's slack (rows are added in sigma_1 order, so
    // chain row k belongs to send_order[k]); see build_scenario_lp.
    out.alpha[scenario.send_order[k]] = lp_solution.values[k];
    out.idle[scenario.send_order[k]] = problem.row_slack(k, lp_solution.values);
  }
  return out;
}

ScenarioSolution solve_scenario(const StarPlatform& platform,
                                const Scenario& scenario) {
  return solve_scenario(platform, scenario, LpOptions{});
}

ScenarioSolutionD solve_scenario_double(const StarPlatform& platform,
                                        const Scenario& scenario) {
  return solve_scenario_double(platform, scenario, LpOptions{});
}

ScenarioSolutionD solve_scenario_double(const StarPlatform& platform,
                                        const Scenario& scenario,
                                        const LpOptions& options) {
  const lp::LpProblem problem =
      build_scenario_lp(platform, scenario, options);
  const lp::Solution<double> lp_solution = problem.solve_double();
  ScenarioSolutionD out;
  out.scenario = scenario;
  if (lp_solution.status == lp::Status::Infeasible) {
    DLSCHED_EXPECT(options.is_affine(),
                   "linear-model scenario LP cannot be infeasible");
    out.lp_feasible = false;
    out.alpha.assign(platform.size(), 0.0);
    return out;
  }
  DLSCHED_EXPECT(lp_solution.status == lp::Status::Optimal,
                 "scenario LP must be optimal (alpha = 0 is feasible)");
  out.throughput = lp_solution.objective;
  out.lp_pivots = lp_solution.pivots;
  out.alpha.assign(platform.size(), 0.0);
  for (std::size_t k = 0; k < scenario.size(); ++k) {
    out.alpha[scenario.send_order[k]] =
        std::max(0.0, lp_solution.values[k]);
  }
  return out;
}

ScenarioSolution lift_solution(const ScenarioSolutionD& d) {
  ScenarioSolution s;
  s.throughput = Rational::from_double(d.throughput);
  s.alpha.reserve(d.alpha.size());
  for (double a : d.alpha) s.alpha.push_back(Rational::from_double(a));
  s.idle.assign(d.alpha.size(), Rational());
  s.scenario = d.scenario;
  s.lp_pivots = d.lp_pivots;
  s.lp_feasible = d.lp_feasible;
  return s;
}

std::vector<std::size_t> ScenarioSolution::enrolled() const {
  std::vector<std::size_t> result;
  for (std::size_t k : scenario.send_order) {
    if (alpha[k].is_positive()) result.push_back(k);
  }
  return result;
}

std::vector<double> ScenarioSolution::alpha_double() const {
  std::vector<double> values(alpha.size(), 0.0);
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    values[i] = alpha[i].to_double();
  }
  return values;
}

namespace {
Schedule realize(const StarPlatform& platform, const Scenario& scenario,
                 std::vector<double> alpha, double horizon) {
  for (double& a : alpha) a *= horizon;
  return make_packed_schedule(platform, scenario.send_order,
                              scenario.return_order, alpha, horizon);
}
}  // namespace

Schedule realize_schedule(const StarPlatform& platform,
                          const ScenarioSolution& solution, double horizon) {
  return realize(platform, solution.scenario, solution.alpha_double(),
                 horizon);
}

Schedule realize_schedule(const StarPlatform& platform,
                          const ScenarioSolutionD& solution, double horizon) {
  return realize(platform, solution.scenario, solution.alpha, horizon);
}

}  // namespace dlsched
