#include "core/scenario.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace dlsched {

bool Scenario::is_lifo() const noexcept {
  if (send_order.size() != return_order.size()) return false;
  const std::size_t n = send_order.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (send_order[i] != return_order[n - 1 - i]) return false;
  }
  return true;
}

Scenario Scenario::fifo(std::span<const std::size_t> order) {
  Scenario s;
  s.send_order.assign(order.begin(), order.end());
  s.return_order = s.send_order;
  return s;
}

Scenario Scenario::lifo(std::span<const std::size_t> order) {
  Scenario s;
  s.send_order.assign(order.begin(), order.end());
  s.return_order.assign(order.rbegin(), order.rend());
  return s;
}

Scenario Scenario::general(std::span<const std::size_t> send,
                           std::span<const std::size_t> ret) {
  Scenario s;
  s.send_order.assign(send.begin(), send.end());
  s.return_order.assign(ret.begin(), ret.end());
  std::vector<std::size_t> a = s.send_order;
  std::vector<std::size_t> b = s.return_order;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  DLSCHED_EXPECT(a == b, "send and return orders must cover the same workers");
  DLSCHED_EXPECT(std::adjacent_find(a.begin(), a.end()) == a.end(),
                 "duplicate worker in scenario");
  return s;
}

void Scenario::check(const StarPlatform& platform) const {
  DLSCHED_EXPECT(send_order.size() == return_order.size(),
                 "scenario orders differ in length");
  std::vector<bool> seen_send(platform.size(), false);
  std::vector<bool> seen_ret(platform.size(), false);
  for (std::size_t w : send_order) {
    DLSCHED_EXPECT(w < platform.size(), "scenario worker out of range");
    DLSCHED_EXPECT(!seen_send[w], "duplicate worker in send order");
    seen_send[w] = true;
  }
  for (std::size_t w : return_order) {
    DLSCHED_EXPECT(w < platform.size(), "scenario worker out of range");
    DLSCHED_EXPECT(!seen_ret[w], "duplicate worker in return order");
    seen_ret[w] = true;
    DLSCHED_EXPECT(seen_send[w], "return order mentions unsent worker");
  }
}

std::string Scenario::describe() const {
  std::ostringstream out;
  out << "sigma1 = (";
  for (std::size_t i = 0; i < send_order.size(); ++i) {
    if (i > 0) out << ", ";
    out << send_order[i] + 1;
  }
  out << "), sigma2 = (";
  for (std::size_t i = 0; i < return_order.size(); ++i) {
    if (i > 0) out << ", ";
    out << return_order[i] + 1;
  }
  out << ")";
  if (is_fifo()) out << " [FIFO]";
  else if (is_lifo()) out << " [LIFO]";
  return out.str();
}

}  // namespace dlsched
