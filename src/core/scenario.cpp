#include "core/scenario.hpp"

#include <algorithm>
#include <iterator>
#include <sstream>

#include "util/error.hpp"

namespace dlsched {

bool Scenario::is_lifo() const noexcept {
  if (send_order.size() != return_order.size()) return false;
  const std::size_t n = send_order.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (send_order[i] != return_order[n - 1 - i]) return false;
  }
  return true;
}

Scenario Scenario::fifo(std::span<const std::size_t> order) {
  Scenario s;
  s.send_order.assign(order.begin(), order.end());
  s.return_order = s.send_order;
  return s;
}

Scenario Scenario::lifo(std::span<const std::size_t> order) {
  Scenario s;
  s.send_order.assign(order.begin(), order.end());
  s.return_order.assign(order.rbegin(), order.rend());
  return s;
}

Scenario Scenario::general(std::span<const std::size_t> send,
                           std::span<const std::size_t> ret) {
  Scenario s;
  s.send_order.assign(send.begin(), send.end());
  s.return_order.assign(ret.begin(), ret.end());
  std::vector<std::size_t> a = s.send_order;
  std::vector<std::size_t> b = s.return_order;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  // DLSCHED_EXPECT builds its message only on failure, so *dup is safe.
  const auto dup = std::adjacent_find(a.begin(), a.end());
  DLSCHED_EXPECT(dup == a.end(), "worker " + std::to_string(*dup) +
                                     " appears twice in the send order");
  const auto dup_ret = std::adjacent_find(b.begin(), b.end());
  DLSCHED_EXPECT(dup_ret == b.end(),
                 "worker " + std::to_string(*dup_ret) +
                     " appears twice in the return order");
  if (a != b) {
    // Name the first worker present in one order but not the other.
    std::vector<std::size_t> send_only;
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(send_only));
    std::vector<std::size_t> ret_only;
    std::set_difference(b.begin(), b.end(), a.begin(), a.end(),
                        std::back_inserter(ret_only));
    std::string detail = "send and return orders must cover the same "
                         "workers:";
    if (!send_only.empty()) {
      detail += " worker " + std::to_string(send_only.front()) +
                " only in send order";
    }
    if (!ret_only.empty()) {
      detail += std::string(send_only.empty() ? " " : "; ") + "worker " +
                std::to_string(ret_only.front()) + " only in return order";
    }
    DLSCHED_FAIL(detail);
  }
  return s;
}

void Scenario::check(const StarPlatform& platform) const {
  DLSCHED_EXPECT(send_order.size() == return_order.size(),
                 "scenario orders differ in length (" +
                     std::to_string(send_order.size()) + " sends vs " +
                     std::to_string(return_order.size()) + " returns)");
  std::vector<bool> seen_send(platform.size(), false);
  std::vector<bool> seen_ret(platform.size(), false);
  for (std::size_t w : send_order) {
    DLSCHED_EXPECT(w < platform.size(),
                   "send order references worker " + std::to_string(w) +
                       " but the platform has only " +
                       std::to_string(platform.size()) + " workers");
    DLSCHED_EXPECT(!seen_send[w], "worker " + std::to_string(w) +
                                      " appears twice in the send order");
    seen_send[w] = true;
  }
  for (std::size_t w : return_order) {
    DLSCHED_EXPECT(w < platform.size(),
                   "return order references worker " + std::to_string(w) +
                       " but the platform has only " +
                       std::to_string(platform.size()) + " workers");
    DLSCHED_EXPECT(!seen_ret[w], "worker " + std::to_string(w) +
                                     " appears twice in the return order");
    seen_ret[w] = true;
    DLSCHED_EXPECT(seen_send[w],
                   "return order mentions worker " + std::to_string(w) +
                       ", which is missing from the send order");
  }
}

std::string Scenario::describe() const {
  std::ostringstream out;
  out << "sigma1 = (";
  for (std::size_t i = 0; i < send_order.size(); ++i) {
    if (i > 0) out << ", ";
    out << send_order[i] + 1;
  }
  out << "), sigma2 = (";
  for (std::size_t i = 0; i < return_order.size(); ++i) {
    if (i > 0) out << ", ";
    out << return_order[i] + 1;
  }
  out << ")";
  if (is_fifo()) out << " [FIFO]";
  else if (is_lifo()) out << " [LIFO]";
  return out.str();
}

}  // namespace dlsched
