#include "core/no_return.hpp"

#include "util/error.hpp"

namespace dlsched {

using numeric::Rational;

namespace {

std::vector<Rational> no_return_alphas(const StarPlatform& platform,
                                       const std::vector<std::size_t>& order) {
  DLSCHED_EXPECT(!order.empty(), "need at least one worker");
  std::vector<Rational> alpha(order.size());
  const Worker& first = platform.worker(order[0]);
  alpha[0] = (Rational::from_double(first.c) + Rational::from_double(first.w))
                 .inverse();
  for (std::size_t i = 1; i < order.size(); ++i) {
    const Worker& prev = platform.worker(order[i - 1]);
    const Worker& cur = platform.worker(order[i]);
    alpha[i] = alpha[i - 1] * Rational::from_double(prev.w) /
               (Rational::from_double(cur.c) + Rational::from_double(cur.w));
  }
  return alpha;
}

}  // namespace

Rational no_return_throughput_for_order(
    const StarPlatform& platform, const std::vector<std::size_t>& order) {
  Rational total;
  for (const Rational& a : no_return_alphas(platform, order)) total += a;
  return total;
}

NoReturnResult solve_no_return_optimal(const StarPlatform& platform) {
  DLSCHED_EXPECT(!platform.empty(), "empty platform");
  NoReturnResult result;
  result.order = platform.order_by_c();
  const std::vector<Rational> ordered =
      no_return_alphas(platform, result.order);

  result.alpha.assign(platform.size(), Rational());
  std::vector<double> alpha_double(platform.size(), 0.0);
  for (std::size_t i = 0; i < result.order.size(); ++i) {
    result.alpha[result.order[i]] = ordered[i];
    alpha_double[result.order[i]] = ordered[i].to_double();
    result.throughput += ordered[i];
  }

  // Build the packed schedule on a d = 0 copy so the FIFO packing yields
  // zero-length return intervals.
  std::vector<Worker> no_return_workers(platform.workers().begin(),
                                        platform.workers().end());
  for (Worker& w : no_return_workers) w.d = 0.0;
  const StarPlatform stripped(no_return_workers);
  result.schedule =
      make_packed_fifo(stripped, result.order, alpha_double, 1.0);
  return result;
}

}  // namespace dlsched
