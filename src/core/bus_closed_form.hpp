// Theorem 2: the optimal FIFO one-port throughput on a bus network
// (ci = c, di = d for all workers):
//
//   rho_opt = min( 1 / (c + d),  U / (1 + d U) ),
//   U = sum_i u_i,   u_i = 1/(d + w_i) * prod_{j <= i} (d + w_j)/(c + w_j).
//
// U / (1 + d U) is the optimal *two-port* throughput rho~ from [7, 8]; the
// one-port schedule is obtained from the two-port one either directly (no
// overlap, rho~ <= 1/(c+d)) or by delaying and rescaling (Figure 7).
// All workers are enrolled in the optimal solution, in any order (on a bus
// all FIFO orderings perform equally -- the Adler-Gong-Rosenberg
// observation).
#pragma once

#include <vector>

#include "numeric/rational.hpp"
#include "platform/star_platform.hpp"
#include "schedule/schedule.hpp"

namespace dlsched {

struct BusClosedFormResult {
  numeric::Rational throughput;          ///< rho_opt
  numeric::Rational two_port_throughput; ///< rho~ (upper bound used in proof)
  bool comm_limited = false;             ///< rho_opt == 1/(c+d) branch taken
  std::vector<numeric::Rational> alpha;  ///< platform-indexed loads
  Schedule schedule;                     ///< realized FIFO schedule, T = 1
};

/// Evaluates Theorem 2 exactly.  Requires platform.is_bus().
[[nodiscard]] BusClosedFormResult solve_bus_closed_form(
    const StarPlatform& platform);

}  // namespace dlsched
