// The two-port model of the companion papers [7, 8]: the master may send to
// one worker and simultaneously receive from another.  Implemented here
// because (i) the paper's Theorem 2 proof builds the one-port bus optimum
// by transforming the two-port one (Figure 7), and (ii) the gap between
// the two models is the cost of the one-port restriction -- quantified in
// bench/ablation_two_port.
#pragma once

#include "core/scenario_lp.hpp"
#include "platform/star_platform.hpp"
#include "schedule/schedule.hpp"

namespace dlsched {

/// Two-port scenario LP: the paper's LP (2) without the one-port row (2b).
[[nodiscard]] ScenarioSolution solve_scenario_two_port(
    const StarPlatform& platform, const Scenario& scenario);

struct TwoPortFifoResult {
  ScenarioSolution solution;  ///< two-port optimum (non-decreasing c order)
  Rational one_port_throughput;  ///< after the Figure 7 transformation
};

/// Optimal two-port FIFO ([7, 8]: serve workers in non-decreasing ci).
[[nodiscard]] TwoPortFifoResult solve_fifo_optimal_two_port(
    const StarPlatform& platform);

/// The Figure 7 transformation, generalized from the bus to any platform:
/// if the two-port solution's total communication fits in T it already *is*
/// a one-port schedule; otherwise scale every load down by the
/// communication overload factor k = sum_i alpha_i (c_i + d_i) and insert
/// idle gaps.  The result is a feasible one-port schedule (not necessarily
/// the one-port optimum off the bus -- Theorem 2 proves optimality for
/// buses only).
[[nodiscard]] Schedule one_port_from_two_port(const StarPlatform& platform,
                                              const ScenarioSolution& two_port,
                                              double horizon = 1.0);

}  // namespace dlsched
