#include "core/solver.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <mutex>
#include <sstream>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>

#include "affine/solvers.hpp"
#include "core/brute_force.hpp"
#include "core/bus_closed_form.hpp"
#include "core/exchange.hpp"
#include "core/fifo_optimal.hpp"
#include "core/heuristics.hpp"
#include "core/lifo.hpp"
#include "core/local_search.hpp"
#include "core/mirror.hpp"
#include "core/multiround.hpp"
#include "core/no_return.hpp"
#include "core/two_port.hpp"
#include "numeric/limb_arena.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dlsched {

namespace {

using numeric::Rational;

/// Lossless lift of a double-precision LP solution into the exact shape
/// (shared with the affine solvers; see core/scenario_lp.hpp).
ScenarioSolution lift(const ScenarioSolutionD& d) { return lift_solution(d); }

/// Rebuilds a `ScenarioSolution` from a realized schedule (used by the
/// transformation solvers, whose loads come from exchanges / flips rather
/// than an LP).  Loads are per unit horizon.
ScenarioSolution solution_from_schedule(const StarPlatform& platform,
                                        const Schedule& schedule) {
  ScenarioSolution s;
  s.alpha.assign(platform.size(), Rational());
  s.idle.assign(platform.size(), Rational());
  std::vector<std::size_t> send;
  std::vector<std::size_t> ret;
  send.reserve(schedule.size());
  ret.reserve(schedule.size());
  const double inv_horizon = 1.0 / schedule.horizon;
  for (const ScheduleEntry& entry : schedule.entries) {
    send.push_back(entry.worker);
    s.alpha[entry.worker] = Rational::from_double(entry.alpha * inv_horizon);
    s.idle[entry.worker] = Rational::from_double(entry.idle * inv_horizon);
    s.throughput += s.alpha[entry.worker];
  }
  for (std::size_t pos : schedule.return_positions) {
    ret.push_back(schedule.entries[pos].worker);
  }
  s.scenario = Scenario::general(send, ret);
  return s;
}

// ----------------------------------------------------------------- fifo --

class FifoOptimalSolver final : public Solver {
 public:
  std::string name() const override { return "fifo_optimal"; }
  std::string description() const override {
    return "optimal one-port FIFO: non-decreasing c + LP resource "
           "selection, mirror transform for z > 1";
  }
  std::string paper_ref() const override { return "Theorem 1 / Prop. 1"; }

  SolveResult solve(const SolveRequest& request) const override {
    const StarPlatform& platform = request.platform;
    SolveResult out;
    out.solver = name();
    out.schedule_platform = platform;
    if (request.precision == Precision::Fast) {
      const bool mirrored =
          platform.has_uniform_z() && platform.z() > 1.0;
      const Scenario scenario = Scenario::fifo(
          mirrored ? platform.order_by_c_desc() : platform.order_by_c());
      out.solution = lift(solve_scenario_double(platform, scenario));
      out.mirrored = mirrored;
      out.provably_optimal = platform.has_uniform_z();
      out.exact = false;
      out.schedule = realize_schedule(platform, out.solution,
                                      request.horizon);
      return out;
    }
    const FifoOptimalResult result = solve_fifo_optimal(platform);
    out.solution = result.solution;
    out.schedule = result.schedule.scaled(request.horizon);
    out.provably_optimal = result.provably_optimal;
    out.mirrored = result.mirrored;
    return out;
  }
};

// ----------------------------------------------------------- heuristics --

class HeuristicSolver final : public Solver {
 public:
  HeuristicSolver(std::string name, Heuristic heuristic,
                  std::string description)
      : name_(std::move(name)),
        heuristic_(heuristic),
        description_(std::move(description)) {}

  std::string name() const override { return name_; }
  std::string description() const override { return description_; }
  std::string paper_ref() const override { return "Section 5"; }

  SolveResult solve(const SolveRequest& request) const override {
    const StarPlatform& platform = request.platform;
    Rng rng(request.seed);
    Rng* rng_ptr = heuristic_ == Heuristic::RandomFifo ? &rng : nullptr;
    SolveResult out;
    out.solver = name_;
    out.schedule_platform = platform;
    if (request.precision == Precision::Fast) {
      out.solution = lift(solve_heuristic(platform, heuristic_, rng_ptr));
      out.exact = false;
    } else {
      out.solution = solve_heuristic_exact(platform, heuristic_, rng_ptr);
    }
    out.schedule = realize_schedule(platform, out.solution, request.horizon);
    return out;
  }

 private:
  std::string name_;
  Heuristic heuristic_;
  std::string description_;
};

// ----------------------------------------------------------------- lifo --

class LifoSolver final : public Solver {
 public:
  std::string name() const override { return "lifo"; }
  std::string description() const override {
    return "optimal LIFO: all workers, non-decreasing c, no idle "
           "(closed form; LP under Precision::Fast)";
  }
  std::string paper_ref() const override { return "Section 5, refs [7,8]"; }

  SolveResult solve(const SolveRequest& request) const override {
    const StarPlatform& platform = request.platform;
    SolveResult out;
    out.solver = name();
    out.schedule_platform = platform;
    out.provably_optimal = true;  // optimal among LIFO schedules
    if (request.precision == Precision::Fast) {
      out.solution = lift(solve_heuristic(platform, Heuristic::Lifo));
      out.exact = false;
      out.schedule = realize_schedule(platform, out.solution,
                                      request.horizon);
      return out;
    }
    const LifoResult result = solve_lifo_closed_form(platform);
    out.solution.throughput = result.throughput;
    out.solution.alpha = result.alpha;
    out.solution.idle.assign(platform.size(), Rational());
    out.solution.scenario = Scenario::lifo(result.order);
    out.schedule = result.schedule.scaled(request.horizon);
    return out;
  }
};

// ---------------------------------------------------------- brute force --

class BruteForceSolver final : public Solver {
 public:
  BruteForceSolver(std::string name, bool fifo_only, bool lifo_only,
                   std::string description)
      : name_(std::move(name)),
        fifo_only_(fifo_only),
        lifo_only_(lifo_only),
        description_(std::move(description)) {}

  std::string name() const override { return name_; }
  std::string description() const override { return description_; }
  std::string paper_ref() const override { return "Section 7"; }

  bool applicable(const SolveRequest& request,
                  std::string* why) const override {
    if (!Solver::applicable(request, why)) return false;
    if (request.platform.size() > request.max_workers_brute) {
      if (why) {
        *why = "platform too large for exhaustive search (p!^2 scenarios; "
               "raise max_workers_brute to force)";
      }
      return false;
    }
    return true;
  }

  SolveResult solve(const SolveRequest& request) const override {
    const StarPlatform& platform = request.platform;
    BruteForceOptions options;
    options.fifo_only = fifo_only_;
    options.lifo_only = lifo_only_;
    options.max_workers = request.max_workers_brute;
    options.time_budget_seconds = request.time_budget_seconds;
    SolveResult out;
    out.solver = name_;
    out.schedule_platform = platform;
    if (request.precision == Precision::Fast) {
      const BruteForceResultD result =
          brute_force_best_double(platform, options);
      out.solution = lift(result.best);
      out.exact = false;
      out.scenarios_tried = result.scenarios_tried;
      out.budget_exhausted = result.budget_exhausted;
    } else {
      const BruteForceResult result = brute_force_best(platform, options);
      out.solution = result.best;
      out.scenarios_tried = result.scenarios_tried;
      out.budget_exhausted = result.budget_exhausted;
    }
    // A completed enumeration is exact over its search space.
    out.provably_optimal = !out.budget_exhausted;
    if (out.budget_exhausted) {
      out.notes = "time budget exhausted: best of " +
                  std::to_string(out.scenarios_tried) + " scenario(s) seen";
    }
    out.schedule = realize_schedule(platform, out.solution, request.horizon);
    return out;
  }

 private:
  std::string name_;
  bool fifo_only_;
  bool lifo_only_;
  std::string description_;
};

// ---------------------------------------------------------- local search --

class LocalSearchSolver final : public Solver {
 public:
  std::string name() const override { return "local_search"; }
  std::string description() const override {
    return "hill climbing over (sigma1, sigma2) permutation pairs, "
           "multi-start from FIFO/LIFO/random";
  }
  std::string paper_ref() const override { return "Section 7 (open problem)"; }

  SolveResult solve(const SolveRequest& request) const override {
    const StarPlatform& platform = request.platform;
    LocalSearchOptions options;
    options.random_restarts = request.local_search_restarts;
    options.max_steps = request.local_search_max_steps;
    options.seed = request.seed;
    const LocalSearchResult result =
        local_search_best_pair(platform, options);
    SolveResult out;
    out.solver = name();
    out.schedule_platform = platform;
    out.solution = lift(result.best);
    out.exact = false;  // the search oracle is the double LP
    out.lp_evaluations = result.lp_evaluations;
    out.ascents = result.ascents;
    out.schedule = realize_schedule(platform, out.solution, request.horizon);
    return out;
  }
};

// ------------------------------------------------------------- two port --

class TwoPortFifoSolver final : public Solver {
 public:
  std::string name() const override { return "two_port_fifo"; }
  std::string description() const override {
    return "optimal two-port FIFO; reported schedule is the Figure 7 "
           "one-port transformation";
  }
  std::string paper_ref() const override { return "Refs [7,8] / Figure 7"; }

  SolveResult solve(const SolveRequest& request) const override {
    const StarPlatform& platform = request.platform;
    const TwoPortFifoResult result = solve_fifo_optimal_two_port(platform);
    SolveResult out;
    out.solver = name();
    out.schedule_platform = platform;
    out.solution = result.solution;
    out.used_two_port = true;
    out.alt_throughput = result.one_port_throughput;
    out.schedule =
        one_port_from_two_port(platform, result.solution, request.horizon);
    out.notes =
        "solution.throughput is the two-port optimum; the schedule is its "
        "one-port projection (alt_throughput)";
    return out;
  }
};

// ------------------------------------------------------ bus closed form --

class BusClosedFormSolver final : public Solver {
 public:
  std::string name() const override { return "bus_closed_form"; }
  std::string description() const override {
    return "exact optimal one-port FIFO throughput on a bus network "
           "(closed form, no LP)";
  }
  std::string paper_ref() const override { return "Theorem 2"; }

  bool applicable(const SolveRequest& request,
                  std::string* why) const override {
    if (!Solver::applicable(request, why)) return false;
    if (!request.platform.is_bus()) {
      if (why) *why = "requires a bus network (identical c and d links)";
      return false;
    }
    return true;
  }

  SolveResult solve(const SolveRequest& request) const override {
    const StarPlatform& platform = request.platform;
    DLSCHED_EXPECT(platform.is_bus(),
                   "bus_closed_form requires a bus platform");
    const BusClosedFormResult result = solve_bus_closed_form(platform);
    SolveResult out;
    out.solver = name();
    out.schedule_platform = platform;
    out.provably_optimal = true;
    out.comm_limited = result.comm_limited;
    out.alt_throughput = result.two_port_throughput;
    out.solution.throughput = result.throughput;
    out.solution.alpha = result.alpha;
    out.solution.idle.assign(platform.size(), Rational());
    out.schedule = result.schedule.scaled(request.horizon);
    out.solution.scenario = solution_from_schedule(platform, out.schedule)
                                .scenario;
    return out;
  }
};

// -------------------------------------------------------------- no return --

class NoReturnSolver final : public Solver {
 public:
  std::string name() const override { return "no_return"; }
  std::string description() const override {
    return "classical DLS baseline without return messages (d ignored; "
           "schedule validated on the d = 0 platform)";
  }
  std::string paper_ref() const override { return "Intro, refs [5,6,10]"; }

  SolveResult solve(const SolveRequest& request) const override {
    const StarPlatform& platform = request.platform;
    const NoReturnResult result = solve_no_return_optimal(platform);
    SolveResult out;
    out.solver = name();
    out.provably_optimal = true;  // optimal for the no-return model
    out.solution.throughput = result.throughput;
    out.solution.alpha = result.alpha;
    out.solution.idle.assign(platform.size(), Rational());
    out.solution.scenario = Scenario::fifo(result.order);
    out.schedule = result.schedule.scaled(request.horizon);
    std::vector<Worker> stripped(platform.workers().begin(),
                                 platform.workers().end());
    for (Worker& w : stripped) w.d = 0.0;
    out.schedule_platform = StarPlatform(std::move(stripped));
    out.notes = "no-return model: upper-bounds every z > 0 throughput";
    return out;
  }
};

// ------------------------------------------------------------ multiround --

class MultiRoundSolver final : public Solver {
 public:
  std::string name() const override { return "multiround"; }
  std::string description() const override {
    return "multi-installment dispatch: sweeps R rounds on the DES engine "
           "over the single-round INC_C load split";
  }
  std::string paper_ref() const override { return "Section 6, ref [3]"; }

  SolveResult solve(const SolveRequest& request) const override {
    const StarPlatform& platform = request.platform;
    const ScenarioSolutionD base =
        solve_heuristic(platform, Heuristic::IncC);
    const std::vector<RoundSweepPoint> curve = sweep_rounds(
        platform, base.alpha, request.costs,
        std::max<std::size_t>(1, request.max_rounds));
    const auto best = std::min_element(
        curve.begin(), curve.end(),
        [](const RoundSweepPoint& a, const RoundSweepPoint& b) {
          return a.makespan < b.makespan;
        });
    SolveResult out;
    out.solver = name();
    out.schedule_platform = platform;
    out.solution = lift(base);
    out.exact = false;
    out.best_rounds = best->rounds;
    out.multiround_makespan = best->makespan;
    // The reported one-round schedule is the validator-checkable artifact;
    // the R-round execution lives on the DES engine (see sim/trace).
    out.schedule = realize_schedule(platform, out.solution, request.horizon);
    std::ostringstream notes;
    notes << "best R = " << best->rounds << " of " << curve.size()
          << " (makespan " << best->makespan
          << " for the single-round load split under the affine costs)";
    out.notes = notes.str();
    return out;
  }
};

// --------------------------------------------------------- exchange sort --

class ExchangeSortSolver final : public Solver {
 public:
  std::string name() const override { return "exchange_sort"; }
  std::string description() const override {
    return "proof-as-code: bubbles the worst FIFO order (DEC_C) into "
           "non-decreasing c via Lemma 2 exchanges";
  }
  std::string paper_ref() const override { return "Lemma 2 / Figures 5-6"; }

  bool applicable(const SolveRequest& request,
                  std::string* why) const override {
    if (!Solver::applicable(request, why)) return false;
    if (!request.platform.has_uniform_z() || request.platform.z() > 1.0) {
      if (why) {
        *why = "Lemma 2 exchanges require a uniform return ratio z <= 1";
      }
      return false;
    }
    return true;
  }

  SolveResult solve(const SolveRequest& request) const override {
    const StarPlatform& platform = request.platform;
    DLSCHED_EXPECT(platform.has_uniform_z() && platform.z() <= 1.0,
                   "exchange_sort requires uniform z <= 1");
    const ScenarioSolution start = solve_scenario(
        platform, Scenario::fifo(platform.order_by_c_desc()));
    Schedule schedule = realize_schedule(platform, start, request.horizon);
    const double load_before = schedule.total_load();
    schedule = sort_by_exchanges(platform, schedule);
    SolveResult out;
    out.solver = name();
    out.schedule_platform = platform;
    out.schedule = std::move(schedule);
    out.solution = solution_from_schedule(platform, out.schedule);
    out.exact = false;  // loads accumulate through double transformations
    std::ostringstream notes;
    notes << "Lemma 2 exchange gain: "
          << out.schedule.total_load() - load_before
          << " load units over the DEC_C start";
    out.notes = notes.str();
    return out;
  }
};

// ----------------------------------------------------------- mirror fifo --

class MirrorFifoSolver final : public Solver {
 public:
  std::string name() const override { return "mirror_fifo"; }
  std::string description() const override {
    return "time-reversal transform: solves the mirrored platform's INC_C "
           "FIFO and flips the schedule (optimal when z >= 1)";
  }
  std::string paper_ref() const override { return "Section 3 (z > 1 case)"; }

  SolveResult solve(const SolveRequest& request) const override {
    const StarPlatform& platform = request.platform;
    DLSCHED_EXPECT(!platform.empty(), "empty platform");
    const StarPlatform mirror = platform.mirrored();
    const Scenario mirror_scenario = Scenario::fifo(mirror.order_by_c());
    SolveResult out;
    out.solver = name();
    out.schedule_platform = platform;
    out.mirrored = true;
    out.provably_optimal =
        platform.has_uniform_z() && platform.z() >= 1.0;
    if (request.precision == Precision::Fast) {
      // Same routing as fifo_optimal's Fast path: the double simplex on
      // the mirrored platform, lifted losslessly.  The flipped schedule is
      // re-checked by the independent validator; on any violation (a
      // degenerate double vertex surviving the time reversal) we fall
      // through to the exact LP below.
      const ScenarioSolution fast =
          lift(solve_scenario_double(mirror, mirror_scenario));
      const Schedule mirror_schedule =
          realize_schedule(mirror, fast, request.horizon);
      if (std::optional<Schedule> flipped =
              try_flip_schedule(platform, mirror_schedule)) {
        out.schedule = std::move(*flipped);
        out.solution = solution_from_schedule(platform, out.schedule);
        out.solution.throughput = fast.throughput;
        out.solution.alpha = fast.alpha;
        out.solution.lp_pivots = fast.lp_pivots;
        out.exact = false;
        return out;
      }
      out.notes = "fast mirror flip failed validation; re-solved exactly";
    }
    const ScenarioSolution mirror_solution =
        solve_scenario(mirror, mirror_scenario);
    const Schedule mirror_schedule =
        realize_schedule(mirror, mirror_solution, request.horizon);
    out.schedule = flip_schedule(platform, mirror_schedule);
    out.solution = solution_from_schedule(platform, out.schedule);
    // The flip preserves loads exactly; keep the mirror LP's rationals.
    out.solution.throughput = mirror_solution.throughput;
    out.solution.alpha = mirror_solution.alpha;
    out.solution.lp_pivots = mirror_solution.lp_pivots;
    return out;
  }
};

// ------------------------------------------------------------ scenario LP --

class ScenarioLpSolver final : public Solver {
 public:
  std::string name() const override { return "scenario_lp"; }
  std::string description() const override {
    return "the paper's LP (2) for an explicit (sigma1, sigma2) scenario "
           "(defaults to INC_C FIFO); honours two-port and affine options";
  }
  std::string paper_ref() const override { return "Section 2.3, LP (2)"; }

  SolveResult solve(const SolveRequest& request) const override {
    const StarPlatform& platform = request.platform;
    DLSCHED_EXPECT(!platform.empty(), "empty platform");
    const Scenario scenario =
        request.scenario ? *request.scenario
                         : Scenario::fifo(platform.order_by_c());
    LpOptions options = request.costs.lp_options(!request.two_port);
    SolveResult out;
    out.solver = name();
    out.schedule_platform = platform;
    out.used_two_port = request.two_port;
    const bool plain =
        !request.two_port && !options.is_affine();
    if (request.precision == Precision::Fast && plain) {
      out.solution = lift(solve_scenario_double(platform, scenario));
      out.exact = false;
    } else {
      if (!request.warm_alpha.empty()) {
        options.warm_basis = warm_basis_for(request.warm_alpha, scenario);
      }
      out.solution = solve_scenario(platform, scenario, options);
      out.lp_warm_starts = out.solution.lp_warm_starts;
    }
    if (!out.solution.lp_feasible) {
      out.notes = "affine constants alone exceed the horizon: infeasible";
      return out;  // no schedule to realize
    }
    if (request.two_port) {
      out.schedule =
          one_port_from_two_port(platform, out.solution, request.horizon);
      out.notes = "schedule is the Figure 7 one-port projection of the "
                  "two-port solution";
    } else if (options.is_affine()) {
      out.notes = "affine latencies are outside the linear Schedule model; "
                  "no realized schedule";
    } else {
      out.schedule =
          realize_schedule(platform, out.solution, request.horizon);
    }
    return out;
  }
};

void register_builtins(SolverRegistry& registry) {
  registry.add([] { return std::make_unique<FifoOptimalSolver>(); });
  registry.add([] {
    return std::make_unique<HeuristicSolver>(
        "inc_c", Heuristic::IncC,
        "FIFO, workers by non-decreasing c (the Theorem 1 order)");
  });
  registry.add([] {
    return std::make_unique<HeuristicSolver>(
        "inc_w", Heuristic::IncW,
        "FIFO, workers by non-decreasing w (comparison heuristic)");
  });
  registry.add([] {
    return std::make_unique<HeuristicSolver>(
        "dec_c", Heuristic::DecC,
        "FIFO, workers by non-increasing c (ablation ordering)");
  });
  registry.add([] {
    return std::make_unique<HeuristicSolver>(
        "random_fifo", Heuristic::RandomFifo,
        "FIFO over a seeded random order (ablation baseline)");
  });
  registry.add([] { return std::make_unique<LifoSolver>(); });
  registry.add([] {
    return std::make_unique<BruteForceSolver>(
        "brute_force", false, false,
        "exhaustive search over every (sigma1, sigma2) permutation pair");
  });
  registry.add([] {
    return std::make_unique<BruteForceSolver>(
        "brute_force_fifo", true, false,
        "exhaustive search restricted to FIFO scenarios");
  });
  registry.add([] {
    return std::make_unique<BruteForceSolver>(
        "brute_force_lifo", false, true,
        "exhaustive search restricted to LIFO scenarios");
  });
  registry.add([] { return std::make_unique<LocalSearchSolver>(); });
  registry.add([] { return std::make_unique<TwoPortFifoSolver>(); });
  registry.add([] { return std::make_unique<BusClosedFormSolver>(); });
  registry.add([] { return std::make_unique<NoReturnSolver>(); });
  registry.add([] { return std::make_unique<MultiRoundSolver>(); });
  registry.add([] { return std::make_unique<ExchangeSortSolver>(); });
  registry.add([] { return std::make_unique<MirrorFifoSolver>(); });
  registry.add([] { return std::make_unique<ScenarioLpSolver>(); });
  // The affine subsystem's solvers (affine_fifo, affine_greedy,
  // affine_subset, affine_local_search) register themselves.
  affine::register_affine_solvers(registry);
}

}  // namespace

ScenarioSolutionD SolveResult::solution_double() const {
  ScenarioSolutionD d;
  d.throughput = solution.throughput.to_double();
  d.alpha = solution.alpha_double();
  d.scenario = solution.scenario;
  d.lp_pivots = solution.lp_pivots;
  return d;
}

// ----------------------------------------------------------------- Solver --

bool Solver::applicable(const SolveRequest& request, std::string* why) const {
  if (request.platform.empty()) {
    if (why) *why = "empty platform";
    return false;
  }
  return true;
}

// --------------------------------------------------------- SolverRegistry --

SolverRegistry& SolverRegistry::instance() {
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry();
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

void SolverRegistry::add(SolverFactory factory) {
  DLSCHED_EXPECT(factory != nullptr, "null solver factory");
  const std::string name = factory()->name();
  DLSCHED_EXPECT(!contains(name),
                 "solver '" + name + "' is already registered");
  factories_.emplace_back(name, std::move(factory));
}

bool SolverRegistry::contains(const std::string& name) const {
  return std::any_of(factories_.begin(), factories_.end(),
                     [&](const auto& f) { return f.first == name; });
}

std::unique_ptr<Solver> SolverRegistry::create(const std::string& name) const {
  for (const auto& [known, factory] : factories_) {
    if (known == name) return factory();
  }
  std::string known_names;
  for (const std::string& n : names()) {
    if (!known_names.empty()) known_names += ", ";
    known_names += n;
  }
  DLSCHED_FAIL("unknown solver '" + name + "' (known: " + known_names + ")");
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) result.push_back(name);
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<SolverInfo> SolverRegistry::infos() const {
  std::vector<SolverInfo> result;
  result.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    const std::unique_ptr<Solver> solver = factory();
    result.push_back({name, solver->description(), solver->paper_ref()});
  }
  std::sort(result.begin(), result.end(),
            [](const SolverInfo& a, const SolverInfo& b) {
              return a.name < b.name;
            });
  return result;
}

SolveResult SolverRegistry::run(const std::string& name,
                                const SolveRequest& request) const {
  const std::unique_ptr<Solver> solver = create(name);
  obs::ObsSpan span("solve", "solve");
  if (span.active()) span.rename("solve:" + name);
  // Snapshot the thread-local limb arena so the result carries the solve's
  // own big-integer buffer traffic (the counters are cumulative).
  const numeric::LimbArena::Stats arena_before = numeric::limb_arena_stats();
  const auto start = std::chrono::steady_clock::now();
  SolveResult result = solver->solve(request);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const numeric::LimbArena::Stats arena_after = numeric::limb_arena_stats();
  // The per-solve arena deltas flow through the process metrics registry
  // (the one place every arena counter accumulates) and the SolveResult
  // stat fields are snapshotted from that same delta.
  const std::uint64_t arena_acquires =
      arena_after.acquires - arena_before.acquires;
  const std::uint64_t arena_pool_hits =
      arena_after.pool_hits - arena_before.pool_hits;
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::process();
  metrics.add("solver.runs");
  metrics.add("solver.arena_acquires", arena_acquires);
  metrics.add("solver.arena_pool_hits", arena_pool_hits);
  metrics.observe("solver.wall_seconds", result.wall_seconds);
  result.arena_acquires = arena_acquires;
  result.arena_pool_hits = arena_pool_hits;
  return result;
}

const char* solver_name_for(Heuristic h) noexcept {
  switch (h) {
    case Heuristic::IncC: return "inc_c";
    case Heuristic::IncW: return "inc_w";
    case Heuristic::Lifo: return "lifo";
    case Heuristic::DecC: return "dec_c";
    case Heuristic::RandomFifo: return "random_fifo";
  }
  return "?";
}

// ---------------------------------------------------------------- hashing --

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::string_view bytes,
                    std::uint64_t hash = kFnvOffset) noexcept {
  for (const char ch : bytes) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= kFnvPrime;
  }
  return hash;
}

void key_double(std::ostringstream& out, double value) {
  // Bit pattern, not decimal text: the key must distinguish every distinct
  // double and never depend on formatting.
  out << std::hex << std::bit_cast<std::uint64_t>(value) << std::dec << ' ';
}

std::string hex16(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

}  // namespace

std::string request_canonical_key(const SolveRequest& request) {
  std::ostringstream out;
  out << "platform ";
  for (const Worker& w : request.platform.workers()) {
    key_double(out, w.c);
    key_double(out, w.w);
    key_double(out, w.d);
  }
  out << "\nscenario ";
  if (request.scenario) {
    for (std::size_t i : request.scenario->send_order) out << i << ' ';
    out << "| ";
    for (std::size_t i : request.scenario->return_order) out << i << ' ';
  } else {
    out << "-";
  }
  out << "\nparticipants ";
  for (std::size_t i : request.participants) out << i << ' ';
  out << "\ntwo_port " << request.two_port;
  out << "\ncosts ";
  key_double(out, request.costs.send_latency);
  key_double(out, request.costs.compute_latency);
  key_double(out, request.costs.return_latency);
  out << "\ncosts_per_worker ";
  for (const double v : request.costs.send_latency_per_worker) {
    key_double(out, v);
  }
  out << "| ";
  for (const double v : request.costs.return_latency_per_worker) {
    key_double(out, v);
  }
  out << "\nprecision " << (request.precision == Precision::Exact ? 'e' : 'f');
  out << "\nhorizon ";
  key_double(out, request.horizon);
  out << "\nseed " << request.seed;
  out << "\nbudget ";
  key_double(out, request.time_budget_seconds);
  out << "\nguards " << request.max_workers_brute << ' '
      << request.max_workers_subset << ' ' << request.local_search_restarts
      << ' ' << request.local_search_max_steps << ' ' << request.max_rounds;
  return out.str();
}

std::uint64_t request_hash(const SolveRequest& request) {
  return fnv1a(request_canonical_key(request));
}

std::string job_canonical_key(const std::string& solver,
                              const SolveRequest& request) {
  return solver + "\n" + request_canonical_key(request);
}

std::string job_hash_from_key(std::string_view key) {
  // Two independent FNV streams (the second over the reversed bytes) give a
  // 128-bit identifier; the cache still verifies the full key on load.
  const std::uint64_t lo = fnv1a(key);
  std::uint64_t hi = kFnvOffset;
  for (auto it = key.rbegin(); it != key.rend(); ++it) {
    hi ^= static_cast<unsigned char>(*it);
    hi *= kFnvPrime;
  }
  return hex16(lo) + hex16(hi);
}

std::string job_hash_hex(const std::string& solver,
                         const SolveRequest& request) {
  return job_hash_from_key(job_canonical_key(solver, request));
}

// --------------------------------------------------------------- batching --

std::vector<BatchOutcome> solve_batch(std::span<const BatchJobView> jobs,
                                      std::size_t threads,
                                      const BatchProgressHook& progress) {
  std::vector<BatchOutcome> outcomes(jobs.size());
  if (jobs.empty()) return outcomes;
  const SolverRegistry& registry = SolverRegistry::instance();
  obs::ObsSpan batch_span("batch", "solve_batch");
  if (batch_span.active()) {
    batch_span.rename("solve_batch:" + std::to_string(jobs.size()));
  }

  // Within-batch dedupe: byte-identical (request, solver) jobs are solved
  // and validated once, then copied.  `primary_of[i] == i` marks the job
  // that actually runs.
  std::vector<std::size_t> primary_of(jobs.size());
  std::unordered_map<std::string, std::size_t> first_by_key;
  first_by_key.reserve(jobs.size());
  std::size_t primary_count = 0;
  {
    obs::ObsSpan dedupe_span("batch", "dedupe");
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      DLSCHED_EXPECT(jobs[i].request != nullptr, "null request in batch job");
      const auto [it, inserted] = first_by_key.try_emplace(
          job_hash_hex(jobs[i].solver, *jobs[i].request), i);
      primary_of[i] = it->second;
      if (inserted) ++primary_count;
    }
  }
  obs::MetricsRegistry::process().add("batch.jobs", jobs.size());
  obs::MetricsRegistry::process().add("batch.deduped",
                                      jobs.size() - primary_count);
  // Follower lists, reported to the progress hook as the per-primary
  // attribution view (`BatchProgress::duplicates`).  Built once up front;
  // read-only while the pool runs.
  std::vector<std::vector<std::size_t>> followers_of(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (primary_of[i] != i) followers_of[primary_of[i]].push_back(i);
  }

  std::atomic<bool> stop{false};
  std::mutex progress_mutex;
  std::size_t completed = 0;  // guarded by progress_mutex

  auto run_job = [&](std::size_t index) {
    const BatchJobView& job = jobs[index];
    BatchOutcome& outcome = outcomes[index];
    outcome.solver = job.solver;
    if (primary_of[index] != index) return;  // copied after the pool joins
    if (stop.load(std::memory_order_relaxed)) {
      outcome.cancelled = true;
      outcome.error = "cancelled by batch progress hook";
      return;
    }
    try {
      outcome.result = registry.run(job.solver, *job.request);
      outcome.solved = true;
      obs::ObsSpan validate_span("validate", "validate");
      const auto start = std::chrono::steady_clock::now();
      outcome.validation = validate(outcome.result.schedule_platform,
                                    outcome.result.schedule);
      outcome.validate_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      outcome.ok = outcome.validation.ok;
    } catch (const std::exception& e) {
      outcome.error = e.what();
    }
    if (progress) {
      const std::lock_guard<std::mutex> lock(progress_mutex);
      const BatchProgress report{index, ++completed, primary_count,
                                 followers_of[index]};
      if (!progress(report, outcome)) {
        stop.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::size_t thread_count =
      threads != 0 ? threads : std::thread::hardware_concurrency();
  thread_count = std::max<std::size_t>(
      1, std::min(thread_count, jobs.size()));
  if (thread_count == 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_job(i);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(thread_count);
    for (std::size_t t = 0; t < thread_count; ++t) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < jobs.size();
             i = next.fetch_add(1)) {
          run_job(i);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (primary_of[i] == i) continue;
    outcomes[i] = outcomes[primary_of[i]];
    outcomes[i].deduped = true;
    outcomes[i].validate_seconds = 0.0;  // the validator did not run again
  }
  return outcomes;
}

std::vector<BatchOutcome> solve_batch(std::span<const BatchJob> jobs,
                                      std::size_t threads,
                                      const BatchProgressHook& progress) {
  std::vector<BatchJobView> views;
  views.reserve(jobs.size());
  for (const BatchJob& job : jobs) {
    views.push_back({job.solver, &job.request});
  }
  return solve_batch(views, threads, progress);
}

std::vector<BatchOutcome> solve_batch_across_solvers(
    const SolveRequest& request, std::span<const std::string> solvers,
    std::size_t threads, bool skip_inapplicable) {
  const SolverRegistry& registry = SolverRegistry::instance();
  std::vector<BatchJob> jobs;
  jobs.reserve(solvers.size());
  for (const std::string& name : solvers) {
    if (skip_inapplicable &&
        !registry.create(name)->applicable(request)) {
      continue;
    }
    jobs.push_back({name, request});
  }
  return solve_batch(jobs, threads);
}

std::vector<BatchOutcome> solve_batch_across_platforms(
    const std::string& solver, std::span<const StarPlatform> platforms,
    const SolveRequest& base_request, std::size_t threads) {
  std::vector<BatchJob> jobs;
  jobs.reserve(platforms.size());
  for (const StarPlatform& platform : platforms) {
    BatchJob job{solver, base_request};
    job.request.platform = platform;
    jobs.push_back(std::move(job));
  }
  return solve_batch(jobs, threads);
}

}  // namespace dlsched
