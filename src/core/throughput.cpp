#include "core/throughput.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dlsched {

double makespan_for_load(double throughput, double load) {
  DLSCHED_EXPECT(throughput > 0.0, "throughput must be positive");
  DLSCHED_EXPECT(load >= 0.0, "load must be non-negative");
  return load / throughput;
}

Schedule schedule_for_load(const StarPlatform& platform,
                           const ScenarioSolutionD& solution, double load) {
  DLSCHED_EXPECT(solution.throughput > 0.0,
                 "cannot scale a zero-throughput solution");
  const double horizon = makespan_for_load(solution.throughput, load);
  std::vector<double> alpha = solution.alpha;
  const double factor = horizon;  // loads were computed for T = 1
  for (double& a : alpha) a *= factor;
  return make_packed_schedule(platform, solution.scenario.send_order,
                              solution.scenario.return_order, alpha, horizon);
}

Timeline packed_timeline(const StarPlatform& platform,
                         const Scenario& scenario,
                         std::span<const double> loads) {
  scenario.check(platform);
  DLSCHED_EXPECT(loads.size() == platform.size(),
                 "loads must be platform-indexed");

  Timeline timeline;
  std::vector<std::size_t> lane_of_worker(platform.size(), SIZE_MAX);
  double clock = 0.0;
  for (std::size_t w : scenario.send_order) {
    const double load = loads[w];
    DLSCHED_EXPECT(load >= 0.0, "negative load");
    if (load <= 0.0) continue;
    const Worker& worker = platform.worker(w);
    WorkerLane lane;
    lane.worker = w;
    lane.recv.start = clock;
    lane.recv.end = clock + load * worker.c;
    lane.compute.start = lane.recv.end;
    lane.compute.end = lane.compute.start + load * worker.w;
    clock = lane.recv.end;
    lane_of_worker[w] = timeline.lanes.size();
    timeline.lanes.push_back(lane);
  }
  const double sends_done = clock;

  double port_free = sends_done;
  for (std::size_t w : scenario.return_order) {
    if (lane_of_worker[w] == SIZE_MAX) continue;
    WorkerLane& lane = timeline.lanes[lane_of_worker[w]];
    const Worker& worker = platform.worker(w);
    lane.ret.start = std::max(port_free, lane.compute.end);
    lane.ret.end = lane.ret.start + loads[w] * worker.d;
    port_free = lane.ret.end;
    timeline.makespan = std::max(timeline.makespan, lane.ret.end);
  }
  timeline.makespan = std::max(timeline.makespan, sends_done);
  return timeline;
}

double packed_makespan(const StarPlatform& platform, const Scenario& scenario,
                       std::span<const double> loads) {
  return packed_timeline(platform, scenario, loads).makespan;
}

}  // namespace dlsched
