#include "core/exchange.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace dlsched {

namespace {

/// Re-packs the (possibly reordered) loads into a normalized FIFO schedule
/// with the same horizon.
Schedule repack(const StarPlatform& platform,
                const std::vector<std::size_t>& order,
                const std::vector<double>& alpha, double horizon) {
  return make_packed_fifo(platform, order, alpha, horizon);
}

void check_fifo_pair(const Schedule& schedule, std::size_t position) {
  DLSCHED_EXPECT(schedule.is_fifo(), "exchange arguments require FIFO");
  DLSCHED_EXPECT(position + 1 < schedule.entries.size(),
                 "position must name an adjacent pair");
}

}  // namespace

ExchangeResult shift_idle_right(const StarPlatform& platform,
                                const Schedule& schedule,
                                std::size_t position) {
  check_fifo_pair(schedule, position);
  const ScheduleEntry& entry_i = schedule.entries[position];
  const ScheduleEntry& entry_j = schedule.entries[position + 1];
  const Worker& wi = platform.worker(entry_i.worker);
  const Worker& wj = platform.worker(entry_j.worker);
  DLSCHED_EXPECT(wi.c <= wj.c,
                 "shift_idle_right applies to the c_i <= c_j proof case");

  // Paper Figure 5:
  //   alpha_i' = alpha_i + x_i / (c_i + w_i)
  //   alpha_j' = alpha_j - (c_i / c_j) * x_i / (c_i + w_i)
  const double transfer = entry_i.idle / (wi.c + wi.w);
  std::vector<double> alpha(platform.size(), 0.0);
  std::vector<std::size_t> order;
  order.reserve(schedule.entries.size());
  for (const ScheduleEntry& e : schedule.entries) {
    order.push_back(e.worker);
    alpha[e.worker] = e.alpha;
  }
  alpha[entry_i.worker] += transfer;
  alpha[entry_j.worker] -= (wi.c / wj.c) * transfer;
  DLSCHED_EXPECT(alpha[entry_j.worker] >= -1e-12,
                 "idle shift would drive alpha_j negative (gap too large "
                 "for this pair)");
  alpha[entry_j.worker] = std::max(0.0, alpha[entry_j.worker]);

  ExchangeResult result;
  result.schedule = repack(platform, order, alpha, schedule.horizon);
  result.load_gain = result.schedule.total_load() - schedule.total_load();
  return result;
}

ExchangeResult swap_adjacent(const StarPlatform& platform,
                             const Schedule& schedule, std::size_t position) {
  check_fifo_pair(schedule, position);
  const ScheduleEntry& entry_i = schedule.entries[position];
  const ScheduleEntry& entry_j = schedule.entries[position + 1];
  const Worker& wi = platform.worker(entry_i.worker);
  const Worker& wj = platform.worker(entry_j.worker);
  DLSCHED_EXPECT(wi.c > 0.0 && wj.c > 0.0, "invalid platform");
  const double zi = wi.d / wi.c;
  const double zj = wj.d / wj.c;
  DLSCHED_EXPECT(std::fabs(zi - zj) <= 1e-9 * std::max(zi, zj) + 1e-12,
                 "swap_adjacent requires a uniform z on the pair");
  const double z = zi;
  // For z > 1 the proof runs on the mirrored platform (see Section 3 of
  // the paper); applying the formulas directly can produce a negative gap.
  DLSCHED_EXPECT(z <= 1.0 + 1e-12,
                 "swap_adjacent requires z <= 1 (mirror the platform first)");

  // Paper Figure 6 (roles: P_i currently precedes P_j; afterwards P_j
  // precedes P_i):
  //   alpha_j' = alpha_j + alpha_i c_i (1 - z) / (c_j + w_j)
  //   alpha_i' = alpha_i - alpha_i c_j (1 - z) / (c_j + w_j)
  std::vector<double> alpha(platform.size(), 0.0);
  std::vector<std::size_t> order;
  order.reserve(schedule.entries.size());
  for (const ScheduleEntry& e : schedule.entries) {
    order.push_back(e.worker);
    alpha[e.worker] = e.alpha;
  }
  std::swap(order[position], order[position + 1]);
  const double denom = wj.c + wj.w;
  alpha[entry_j.worker] += entry_i.alpha * wi.c * (1.0 - z) / denom;
  alpha[entry_i.worker] -= entry_i.alpha * wj.c * (1.0 - z) / denom;
  DLSCHED_EXPECT(alpha[entry_i.worker] >= -1e-12,
                 "swap drove alpha_i negative");
  alpha[entry_i.worker] = std::max(0.0, alpha[entry_i.worker]);

  ExchangeResult result;
  result.schedule = repack(platform, order, alpha, schedule.horizon);
  result.load_gain = result.schedule.total_load() - schedule.total_load();
  return result;
}

Schedule sort_by_exchanges(const StarPlatform& platform, Schedule schedule) {
  DLSCHED_EXPECT(schedule.is_fifo(), "exchange sorting requires FIFO");
  bool swapped = true;
  while (swapped) {
    swapped = false;
    for (std::size_t i = 0; i + 1 < schedule.entries.size(); ++i) {
      const double ci = platform.worker(schedule.entries[i].worker).c;
      const double cj = platform.worker(schedule.entries[i + 1].worker).c;
      if (ci > cj) {
        schedule = swap_adjacent(platform, schedule, i).schedule;
        swapped = true;
      }
    }
  }
  return schedule;
}

}  // namespace dlsched
