// Platform generators matching the experimental setups of the paper's
// Section 5, plus additional scenario families and a registry so experiment
// specs can select a generator by name.  All generators are deterministic
// given the Rng.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "platform/star_platform.hpp"
#include "util/rng.hpp"

namespace dlsched::gen {

/// Speed-factor ensembles (Section 5.3.2): factors are drawn uniformly from
/// [lo, hi]; factor 1 is the original cluster speed, larger is faster.
struct SpeedRange {
  double lo = 1.0;
  double hi = 10.0;
};

/// Fully homogeneous platform: one comm factor and one comp factor drawn per
/// *platform* and shared by all workers (Figure 10's "homogeneous random
/// platforms").
[[nodiscard]] std::vector<WorkerSpeeds> homogeneous_speeds(
    std::size_t p, Rng& rng, SpeedRange range = {});

/// Homogeneous communication, heterogeneous computation (Figure 11 /
/// Theorem 2 regime).
[[nodiscard]] std::vector<WorkerSpeeds> bus_hetero_comp_speeds(
    std::size_t p, Rng& rng, SpeedRange range = {});

/// Fully heterogeneous star (Figure 12).
[[nodiscard]] std::vector<WorkerSpeeds> heterogeneous_speeds(
    std::size_t p, Rng& rng, SpeedRange range = {});

/// The 4-worker participation platform of Section 5.3.4:
///   communication speeds {10, 8, 8, x}, computation speeds {9, 9, 10, 1}.
[[nodiscard]] std::vector<WorkerSpeeds> participation_speeds(double x);

/// Abstract random star platform in (c, w, d) space with a uniform return
/// ratio z: ci, wi uniform in the given ranges, di = z * ci.  Used by the
/// theorem-level property tests, which do not need the matrix application.
[[nodiscard]] StarPlatform random_star(std::size_t p, Rng& rng, double z,
                                       double c_lo = 0.1, double c_hi = 2.0,
                                       double w_lo = 0.1, double w_hi = 5.0);

/// Random bus platform: shared c and d = z * c, per-worker random w.
[[nodiscard]] StarPlatform random_bus(std::size_t p, Rng& rng, double z,
                                      double c_lo = 0.1, double c_hi = 2.0,
                                      double w_lo = 0.1, double w_hi = 5.0);

/// Rational-friendly random star: all parameters are small integer
/// multiples of 1/denominator, so exact LP coefficients stay tiny.  z is
/// given as a fraction (z_num / z_den) applied exactly: d = c * z_num/z_den.
[[nodiscard]] StarPlatform random_star_grid(std::size_t p, Rng& rng,
                                            int z_num, int z_den,
                                            int denominator = 8,
                                            int max_numerator = 24);

/// Bimodal-speed clusters: two worker populations on one star.  A
/// `fast_fraction` share of workers draw (c, w) from the base ranges; the
/// rest are uniformly `slow_factor` times slower in both dimensions (an
/// old cluster federated with a new one).  Worker roles are shuffled so
/// index order carries no information; d = z * c throughout.
[[nodiscard]] StarPlatform bimodal_star(std::size_t p, Rng& rng, double z,
                                        double fast_fraction = 0.5,
                                        double slow_factor = 8.0,
                                        double c_lo = 0.1, double c_hi = 2.0,
                                        double w_lo = 0.1, double w_hi = 5.0);

/// Correlated (c, w) star: each worker blends one shared uniform draw u
/// with independent noise, so `rho = 1` ties link and compute speed ranks
/// exactly (big machines have fat pipes), `rho = 0` is the independent
/// `random_star` regime, and `rho = -1` anti-correlates them (fast links
/// on slow CPUs -- the regime where ordering heuristics disagree most).
/// Marginals are uniform at |rho| in {0, 1} and a blend in between;
/// d = z * c throughout.
[[nodiscard]] StarPlatform correlated_star(std::size_t p, Rng& rng, double z,
                                           double rho, double c_lo = 0.1,
                                           double c_hi = 2.0,
                                           double w_lo = 0.1,
                                           double w_hi = 5.0);

/// Power-law (bounded Pareto) speed family: c and w are drawn from a
/// Pareto(alpha) density truncated to [lo, hi] -- most workers cheap and
/// slow-ish near `lo`, a heavy tail of expensive outliers toward `hi`,
/// the shape real federated clusters show.  Smaller `alpha` means a
/// heavier tail.  `rho` applies the same rank-correlation blend as
/// `correlated_star` before the Pareto warp; d = z * c.
[[nodiscard]] StarPlatform power_star(std::size_t p, Rng& rng, double z,
                                      double alpha, double rho = 0.0,
                                      double c_lo = 0.1, double c_hi = 2.0,
                                      double w_lo = 0.1, double w_hi = 5.0);

/// High-latency "satellite" links: `satellites` of the p workers (0 is
/// valid: a plain star control case) sit behind links `link_penalty`
/// times slower (c and d scaled together, preserving z) while their
/// compute speeds match the rest of the cluster -- the regime where the
/// paper's resource selection should drop remote workers despite their
/// healthy CPUs.  Satellite roles are shuffled.  The registry entry
/// defaults an *absent* `satellites` parameter to max(1, p / 4).
[[nodiscard]] StarPlatform satellite_star(std::size_t p, Rng& rng, double z,
                                          std::size_t satellites,
                                          double link_penalty = 25.0,
                                          double c_lo = 0.1, double c_hi = 2.0,
                                          double w_lo = 0.1,
                                          double w_hi = 5.0);

/// Per-worker start-up latency *factors*, rank-correlated with the
/// worker's link slowness c: `lat_rho = 1` gives the slowest links the
/// largest start-ups (remote workers pay both ways), `lat_rho = -1`
/// anti-correlates them, 0 draws independently.  Factors are uniform in
/// [lat_lo, lat_hi]; the experiment grid multiplies them by its latency
/// axis value to obtain absolute per-worker latencies (see the
/// affine_surface spec), so a factor of 1 means "exactly the global
/// latency".
[[nodiscard]] std::vector<double> latency_factors(const StarPlatform& platform,
                                                  Rng& rng, double lat_lo,
                                                  double lat_hi,
                                                  double lat_rho);

// ---------------------------------------------------------------- registry --

/// Named parameters an experiment spec passes to a generator.  Every value
/// is a double; integral parameters (p, satellites, matrix_size, ...) are
/// rounded.  Generators reject keys they do not understand so a typo in a
/// spec fails loudly instead of silently running defaults.
using GenParams = std::map<std::string, double>;

/// What a generator family produces: the platform plus optional per-worker
/// latency factors (empty = the family drew none).  Implicitly
/// constructible from a bare `StarPlatform` so latency-free families stay
/// one-line lambdas.
struct GeneratedPlatform {
  StarPlatform platform;
  /// Platform-indexed latency factors (see `latency_factors`); consumed by
  /// the affine experiment grid, which scales them by its latency axes.
  std::vector<double> latency_factor;

  GeneratedPlatform() = default;
  /*implicit*/ GeneratedPlatform(StarPlatform p) : platform(std::move(p)) {}

  [[nodiscard]] bool has_latency_draws() const noexcept {
    return !latency_factor.empty();
  }
};

/// `params[key]`, or `fallback` when absent.
[[nodiscard]] double param_or(const GenParams& params, const std::string& key,
                              double fallback);

/// Descriptive registry row (what `dlsched_bench --list-generators` prints).
struct GeneratorInfo {
  std::string name;
  std::string description;
  std::vector<std::string> params;  ///< accepted GenParams keys
};

/// Name -> platform-generator map.  The process-wide instance comes
/// pre-populated with every family in this header (both the abstract
/// (c, w, d) stars and the Section 5 matrix-application ensembles); library
/// users may register additional families.
class GeneratorRegistry {
 public:
  using Factory = std::function<GeneratedPlatform(const GenParams&, Rng&)>;

  static GeneratorRegistry& instance();

  /// Registers a family.  Throws on duplicate names.
  void add(std::string name, std::string description,
           std::vector<std::string> params, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const;
  /// Builds a platform, asserting the family drew no per-worker latency
  /// factors -- callers that cannot forward them into `AffineCosts` must
  /// not drop them silently (use `make_generated` instead).  Throws with
  /// the list of known names on an unknown generator and with the accepted
  /// keys on an unknown parameter.
  [[nodiscard]] StarPlatform make(const std::string& name,
                                  const GenParams& params, Rng& rng) const;
  /// Builds a platform together with any per-worker latency factors the
  /// family drew (the affine experiment grid's entry point).
  [[nodiscard]] GeneratedPlatform make_generated(const std::string& name,
                                                 const GenParams& params,
                                                 Rng& rng) const;
  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;
  /// Name/description/params rows, sorted by name.
  [[nodiscard]] std::vector<GeneratorInfo> infos() const;

  GeneratorRegistry() = default;

 private:
  struct Entry {
    GeneratorInfo info;
    Factory factory;
  };
  std::vector<Entry> entries_;
};

}  // namespace dlsched::gen
