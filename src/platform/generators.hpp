// Platform generators matching the experimental setups of the paper's
// Section 5.  All generators are deterministic given the Rng.
#pragma once

#include <cstddef>
#include <vector>

#include "platform/star_platform.hpp"
#include "util/rng.hpp"

namespace dlsched::gen {

/// Speed-factor ensembles (Section 5.3.2): factors are drawn uniformly from
/// [lo, hi]; factor 1 is the original cluster speed, larger is faster.
struct SpeedRange {
  double lo = 1.0;
  double hi = 10.0;
};

/// Fully homogeneous platform: one comm factor and one comp factor drawn per
/// *platform* and shared by all workers (Figure 10's "homogeneous random
/// platforms").
[[nodiscard]] std::vector<WorkerSpeeds> homogeneous_speeds(
    std::size_t p, Rng& rng, SpeedRange range = {});

/// Homogeneous communication, heterogeneous computation (Figure 11 /
/// Theorem 2 regime).
[[nodiscard]] std::vector<WorkerSpeeds> bus_hetero_comp_speeds(
    std::size_t p, Rng& rng, SpeedRange range = {});

/// Fully heterogeneous star (Figure 12).
[[nodiscard]] std::vector<WorkerSpeeds> heterogeneous_speeds(
    std::size_t p, Rng& rng, SpeedRange range = {});

/// The 4-worker participation platform of Section 5.3.4:
///   communication speeds {10, 8, 8, x}, computation speeds {9, 9, 10, 1}.
[[nodiscard]] std::vector<WorkerSpeeds> participation_speeds(double x);

/// Abstract random star platform in (c, w, d) space with a uniform return
/// ratio z: ci, wi uniform in the given ranges, di = z * ci.  Used by the
/// theorem-level property tests, which do not need the matrix application.
[[nodiscard]] StarPlatform random_star(std::size_t p, Rng& rng, double z,
                                       double c_lo = 0.1, double c_hi = 2.0,
                                       double w_lo = 0.1, double w_hi = 5.0);

/// Random bus platform: shared c and d = z * c, per-worker random w.
[[nodiscard]] StarPlatform random_bus(std::size_t p, Rng& rng, double z,
                                      double c_lo = 0.1, double c_hi = 2.0,
                                      double w_lo = 0.1, double w_hi = 5.0);

/// Rational-friendly random star: all parameters are small integer
/// multiples of 1/denominator, so exact LP coefficients stay tiny.  z is
/// given as a fraction (z_num / z_den) applied exactly: d = c * z_num/z_den.
[[nodiscard]] StarPlatform random_star_grid(std::size_t p, Rng& rng,
                                            int z_num, int z_den,
                                            int denominator = 8,
                                            int max_numerator = 24);

}  // namespace dlsched::gen
