// The target application of the paper's Section 5: a stream of M matrix
// products distributed master -> workers.  One load unit = one product of
// two n x n matrices; the input message carries both operands (2 * 8n^2
// bytes), the result message one matrix (8n^2 bytes), hence z = d/c = 1/2.
//
// The base rates model the paper's testbed (ENS Lyon "gdsdmi" cluster:
// Pentium 4 @ 2.4 GHz on 100 Mb/s Ethernet).  A naive triple-loop GEMM on
// that hardware sustains ~150 MFlop/s, and 100 Mb/s Ethernet moves
// ~11.75 MB/s of payload.  The 150 MFlop/s figure is calibrated so the
// Section 5.3.4 participation experiment reproduces the paper's outcome
// (x = 1: the slow worker is never used; x = 3: it is) -- see
// EXPERIMENTS.md.  Absolute values otherwise only set the time scale;
// every figure normalizes against the INC_C LP prediction.
#pragma once

#include <cstddef>
#include <vector>

#include "platform/star_platform.hpp"
#include "platform/worker.hpp"

namespace dlsched {

class MatrixApp {
 public:
  struct Config {
    std::size_t matrix_size = 100;           ///< n
    double base_bandwidth = 11.75e6;         ///< bytes/s at speed factor 1
    double base_flops = 1.5e8;               ///< flop/s at speed factor 1
    double element_bytes = 8.0;              ///< sizeof(double)
  };

  explicit MatrixApp(Config config);

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t matrix_size() const noexcept {
    return config_.matrix_size;
  }

  /// Bytes of input per load unit (two operand matrices).
  [[nodiscard]] double input_bytes() const noexcept;
  /// Bytes of output per load unit (one result matrix).
  [[nodiscard]] double output_bytes() const noexcept;
  /// Floating-point operations per load unit (2 n^3 for a naive GEMM).
  [[nodiscard]] double flops() const noexcept;
  /// The application's return ratio z = output/input = 1/2.
  [[nodiscard]] double z() const noexcept { return 0.5; }

  /// Linear-model costs of one worker with the given speed factors.
  [[nodiscard]] Worker worker(const WorkerSpeeds& speeds) const;

  /// Full platform from an ensemble of speed factors.
  [[nodiscard]] StarPlatform platform(
      const std::vector<WorkerSpeeds>& speeds) const;

 private:
  Config config_;
};

}  // namespace dlsched
