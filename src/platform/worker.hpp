// A single worker of the master-worker star (paper Section 2.1).
#pragma once

#include <string>

namespace dlsched {

/// Linear cost model parameters of one worker Pi.
///
/// Executing X load units on the worker takes `X * w` time units; shipping
/// the input data for X units from the master takes `X * c`; returning the
/// results takes `X * d`.  All are *inverse* speeds: smaller is faster.
struct Worker {
  double c = 1.0;  ///< per-unit input communication time (master -> worker)
  double w = 1.0;  ///< per-unit computation time
  double d = 1.0;  ///< per-unit result communication time (worker -> master)
  std::string name;

  [[nodiscard]] double z() const noexcept { return d / c; }
};

/// Relative speed factors used by the paper's experiment generators
/// (Section 5.3.2: factors drawn from [1, 10], 1 = original cluster speed,
/// 10 = ten times faster).  Factors divide the base costs.
struct WorkerSpeeds {
  double comm = 1.0;  ///< link speed factor (applies to both c and d)
  double comp = 1.0;  ///< computation speed factor
};

}  // namespace dlsched
