#include "platform/matrix_app.hpp"

#include "util/error.hpp"

namespace dlsched {

MatrixApp::MatrixApp(Config config) : config_(config) {
  DLSCHED_EXPECT(config_.matrix_size > 0, "matrix size must be positive");
  DLSCHED_EXPECT(config_.base_bandwidth > 0.0, "bandwidth must be positive");
  DLSCHED_EXPECT(config_.base_flops > 0.0, "flop rate must be positive");
  DLSCHED_EXPECT(config_.element_bytes > 0.0, "element size must be positive");
}

double MatrixApp::input_bytes() const noexcept {
  const double n = static_cast<double>(config_.matrix_size);
  return 2.0 * config_.element_bytes * n * n;
}

double MatrixApp::output_bytes() const noexcept {
  const double n = static_cast<double>(config_.matrix_size);
  return config_.element_bytes * n * n;
}

double MatrixApp::flops() const noexcept {
  const double n = static_cast<double>(config_.matrix_size);
  return 2.0 * n * n * n;
}

Worker MatrixApp::worker(const WorkerSpeeds& speeds) const {
  DLSCHED_EXPECT(speeds.comm > 0.0 && speeds.comp > 0.0,
                 "speed factors must be positive");
  Worker result;
  result.c = input_bytes() / (config_.base_bandwidth * speeds.comm);
  result.d = output_bytes() / (config_.base_bandwidth * speeds.comm);
  result.w = flops() / (config_.base_flops * speeds.comp);
  return result;
}

StarPlatform MatrixApp::platform(
    const std::vector<WorkerSpeeds>& speeds) const {
  std::vector<Worker> workers;
  workers.reserve(speeds.size());
  for (const WorkerSpeeds& s : speeds) workers.push_back(worker(s));
  return StarPlatform(std::move(workers));
}

}  // namespace dlsched
