// The star platform S = {P0, P1, ..., Pp} of the paper (Figure 1): a master
// with no processing capability and p heterogeneous workers.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "platform/worker.hpp"

namespace dlsched {

class StarPlatform {
 public:
  StarPlatform() = default;
  /// Validates every worker: c > 0, w > 0, d >= 0.
  explicit StarPlatform(std::vector<Worker> workers);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }
  [[nodiscard]] bool empty() const noexcept { return workers_.empty(); }
  [[nodiscard]] const Worker& worker(std::size_t i) const;
  [[nodiscard]] std::span<const Worker> workers() const noexcept {
    return workers_;
  }

  /// Bus network: all links identical (ci = c, di = d for every worker).
  [[nodiscard]] bool is_bus(double rel_tol = 1e-12) const noexcept;

  /// True when di / ci is the same constant z for every worker (the paper's
  /// standing assumption for Theorem 1).
  [[nodiscard]] bool has_uniform_z(double rel_tol = 1e-12) const noexcept;

  /// The common ratio z = di / ci.  Requires has_uniform_z().
  [[nodiscard]] double z() const;

  /// Worker indices sorted by non-decreasing c (ties by index -- the order
  /// Theorem 1 proves optimal for FIFO when z < 1).
  [[nodiscard]] std::vector<std::size_t> order_by_c() const;
  /// Worker indices sorted by non-increasing c (optimal FIFO send order
  /// when z > 1, by the mirror argument).
  [[nodiscard]] std::vector<std::size_t> order_by_c_desc() const;
  /// Worker indices sorted by non-decreasing w (the INC_W heuristic).
  [[nodiscard]] std::vector<std::size_t> order_by_w() const;

  /// New platform with all costs scaled: c' = c / comm_factor, etc.
  /// Factors > 1 mean "faster", matching the paper's Section 5.3.3
  /// "computation power x10" experiments.
  [[nodiscard]] StarPlatform speed_up(double comm_factor,
                                      double comp_factor) const;

  /// New platform containing only the given workers, in the given order.
  [[nodiscard]] StarPlatform subset(std::span<const std::size_t> indices) const;

  /// The mirrored platform (ci and di swapped) used for the z > 1 case.
  [[nodiscard]] StarPlatform mirrored() const;

  /// Homogeneous-links platform (a bus): ci = c, di = d, per-worker w.
  static StarPlatform bus(double c, double d, std::vector<double> w);

  /// Human-readable one-line-per-worker description.
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<Worker> workers_;
};

}  // namespace dlsched
