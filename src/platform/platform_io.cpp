#include "platform/platform_io.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace dlsched {

namespace {

double parse_number(const std::string& token, std::size_t line_number) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(token, &consumed);
    DLSCHED_EXPECT(consumed == token.size(), "trailing characters");
    return value;
  } catch (const std::exception&) {
    DLSCHED_FAIL("platform file line " + std::to_string(line_number) +
                 ": '" + token + "' is not a number");
  }
}

}  // namespace

StarPlatform parse_platform(std::istream& in) {
  std::vector<Worker> workers;
  double default_z = -1.0;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;

    std::istringstream fields(trimmed);
    std::vector<std::string> tokens;
    std::string token;
    while (fields >> token) tokens.push_back(token);

    if (tokens[0] == "z") {
      DLSCHED_EXPECT(tokens.size() == 2,
                     "platform file line " + std::to_string(line_number) +
                         ": 'z' takes exactly one value");
      DLSCHED_EXPECT(workers.empty(),
                     "platform file line " + std::to_string(line_number) +
                         ": 'z' must precede the workers");
      default_z = parse_number(tokens[1], line_number);
      DLSCHED_EXPECT(default_z >= 0.0, "z must be non-negative");
      continue;
    }

    DLSCHED_EXPECT(tokens.size() == 3 || tokens.size() == 4,
                   "platform file line " + std::to_string(line_number) +
                       ": expected 'name c w [d]'");
    Worker worker;
    worker.name = tokens[0];
    worker.c = parse_number(tokens[1], line_number);
    worker.w = parse_number(tokens[2], line_number);
    if (tokens.size() == 4) {
      worker.d = parse_number(tokens[3], line_number);
    } else {
      DLSCHED_EXPECT(default_z >= 0.0,
                     "platform file line " + std::to_string(line_number) +
                         ": no d column and no prior 'z' directive");
      worker.d = default_z * worker.c;
    }
    workers.push_back(std::move(worker));
  }
  DLSCHED_EXPECT(!workers.empty(), "platform file declares no workers");
  return StarPlatform(std::move(workers));
}

StarPlatform parse_platform_text(std::string_view text) {
  std::istringstream in{std::string(text)};
  return parse_platform(in);
}

StarPlatform load_platform(const std::string& path) {
  std::ifstream in(path);
  DLSCHED_EXPECT(in.good(), "cannot open platform file: " + path);
  return parse_platform(in);
}

std::string serialize_platform(const StarPlatform& platform) {
  std::ostringstream out;
  out << "# " << platform.size() << " worker(s)";
  if (!platform.empty() && platform.has_uniform_z()) {
    out << ", z = " << format_double(platform.z(), 9);
  }
  out << "\n";
  for (const Worker& w : platform.workers()) {
    out << w.name << " " << format_double(w.c, 12) << " "
        << format_double(w.w, 12) << " " << format_double(w.d, 12) << "\n";
  }
  return out.str();
}

void save_platform(const StarPlatform& platform, const std::string& path) {
  std::ofstream out(path);
  DLSCHED_EXPECT(out.good(), "cannot write platform file: " + path);
  out << serialize_platform(platform);
  DLSCHED_EXPECT(out.good(), "write failed: " + path);
}

}  // namespace dlsched
