#include "platform/generators.hpp"

#include "util/error.hpp"

namespace dlsched::gen {

std::vector<WorkerSpeeds> homogeneous_speeds(std::size_t p, Rng& rng,
                                             SpeedRange range) {
  const double comm = rng.uniform(range.lo, range.hi);
  const double comp = rng.uniform(range.lo, range.hi);
  return std::vector<WorkerSpeeds>(p, WorkerSpeeds{comm, comp});
}

std::vector<WorkerSpeeds> bus_hetero_comp_speeds(std::size_t p, Rng& rng,
                                                 SpeedRange range) {
  const double comm = rng.uniform(range.lo, range.hi);
  std::vector<WorkerSpeeds> speeds(p);
  for (WorkerSpeeds& s : speeds) {
    s.comm = comm;
    s.comp = rng.uniform(range.lo, range.hi);
  }
  return speeds;
}

std::vector<WorkerSpeeds> heterogeneous_speeds(std::size_t p, Rng& rng,
                                               SpeedRange range) {
  std::vector<WorkerSpeeds> speeds(p);
  for (WorkerSpeeds& s : speeds) {
    s.comm = rng.uniform(range.lo, range.hi);
    s.comp = rng.uniform(range.lo, range.hi);
  }
  return speeds;
}

std::vector<WorkerSpeeds> participation_speeds(double x) {
  DLSCHED_EXPECT(x > 0.0, "participation platform needs x > 0");
  return {
      WorkerSpeeds{10.0, 9.0},
      WorkerSpeeds{8.0, 9.0},
      WorkerSpeeds{8.0, 10.0},
      WorkerSpeeds{x, 1.0},
  };
}

StarPlatform random_star(std::size_t p, Rng& rng, double z, double c_lo,
                         double c_hi, double w_lo, double w_hi) {
  DLSCHED_EXPECT(z > 0.0, "z must be positive");
  std::vector<Worker> workers(p);
  for (Worker& worker : workers) {
    worker.c = rng.uniform(c_lo, c_hi);
    worker.w = rng.uniform(w_lo, w_hi);
    worker.d = z * worker.c;
  }
  return StarPlatform(std::move(workers));
}

StarPlatform random_bus(std::size_t p, Rng& rng, double z, double c_lo,
                        double c_hi, double w_lo, double w_hi) {
  DLSCHED_EXPECT(z > 0.0, "z must be positive");
  const double c = rng.uniform(c_lo, c_hi);
  std::vector<double> w(p);
  for (double& wi : w) wi = rng.uniform(w_lo, w_hi);
  return StarPlatform::bus(c, z * c, std::move(w));
}

StarPlatform random_star_grid(std::size_t p, Rng& rng, int z_num, int z_den,
                              int denominator, int max_numerator) {
  DLSCHED_EXPECT(z_num > 0 && z_den > 0, "z fraction must be positive");
  DLSCHED_EXPECT(denominator > 0 && max_numerator > 0, "bad grid parameters");
  std::vector<Worker> workers(p);
  for (Worker& worker : workers) {
    const double c_num =
        static_cast<double>(rng.uniform_int(1, max_numerator));
    const double w_num =
        static_cast<double>(rng.uniform_int(1, max_numerator));
    worker.c = c_num / denominator;
    worker.w = w_num / denominator;
    // Exact ratio: c_num * z_num / (denominator * z_den); representable as
    // a double only when small, but the Rational conversion in the LP layer
    // is taken from this double, so both sides see the identical value.
    worker.d = (c_num * z_num) / (static_cast<double>(denominator) * z_den);
  }
  return StarPlatform(std::move(workers));
}

}  // namespace dlsched::gen
