#include "platform/generators.hpp"

#include <algorithm>
#include <cmath>

#include "platform/matrix_app.hpp"
#include "util/error.hpp"

namespace dlsched::gen {

std::vector<WorkerSpeeds> homogeneous_speeds(std::size_t p, Rng& rng,
                                             SpeedRange range) {
  const double comm = rng.uniform(range.lo, range.hi);
  const double comp = rng.uniform(range.lo, range.hi);
  return std::vector<WorkerSpeeds>(p, WorkerSpeeds{comm, comp});
}

std::vector<WorkerSpeeds> bus_hetero_comp_speeds(std::size_t p, Rng& rng,
                                                 SpeedRange range) {
  const double comm = rng.uniform(range.lo, range.hi);
  std::vector<WorkerSpeeds> speeds(p);
  for (WorkerSpeeds& s : speeds) {
    s.comm = comm;
    s.comp = rng.uniform(range.lo, range.hi);
  }
  return speeds;
}

std::vector<WorkerSpeeds> heterogeneous_speeds(std::size_t p, Rng& rng,
                                               SpeedRange range) {
  std::vector<WorkerSpeeds> speeds(p);
  for (WorkerSpeeds& s : speeds) {
    s.comm = rng.uniform(range.lo, range.hi);
    s.comp = rng.uniform(range.lo, range.hi);
  }
  return speeds;
}

std::vector<WorkerSpeeds> participation_speeds(double x) {
  DLSCHED_EXPECT(x > 0.0, "participation platform needs x > 0");
  return {
      WorkerSpeeds{10.0, 9.0},
      WorkerSpeeds{8.0, 9.0},
      WorkerSpeeds{8.0, 10.0},
      WorkerSpeeds{x, 1.0},
  };
}

StarPlatform random_star(std::size_t p, Rng& rng, double z, double c_lo,
                         double c_hi, double w_lo, double w_hi) {
  DLSCHED_EXPECT(z > 0.0, "z must be positive");
  std::vector<Worker> workers(p);
  for (Worker& worker : workers) {
    worker.c = rng.uniform(c_lo, c_hi);
    worker.w = rng.uniform(w_lo, w_hi);
    worker.d = z * worker.c;
  }
  return StarPlatform(std::move(workers));
}

StarPlatform random_bus(std::size_t p, Rng& rng, double z, double c_lo,
                        double c_hi, double w_lo, double w_hi) {
  DLSCHED_EXPECT(z > 0.0, "z must be positive");
  const double c = rng.uniform(c_lo, c_hi);
  std::vector<double> w(p);
  for (double& wi : w) wi = rng.uniform(w_lo, w_hi);
  return StarPlatform::bus(c, z * c, std::move(w));
}

StarPlatform random_star_grid(std::size_t p, Rng& rng, int z_num, int z_den,
                              int denominator, int max_numerator) {
  DLSCHED_EXPECT(z_num > 0 && z_den > 0, "z fraction must be positive");
  DLSCHED_EXPECT(denominator > 0 && max_numerator > 0, "bad grid parameters");
  std::vector<Worker> workers(p);
  for (Worker& worker : workers) {
    const double c_num =
        static_cast<double>(rng.uniform_int(1, max_numerator));
    const double w_num =
        static_cast<double>(rng.uniform_int(1, max_numerator));
    worker.c = c_num / denominator;
    worker.w = w_num / denominator;
    // Exact ratio: c_num * z_num / (denominator * z_den); representable as
    // a double only when small, but the Rational conversion in the LP layer
    // is taken from this double, so both sides see the identical value.
    worker.d = (c_num * z_num) / (static_cast<double>(denominator) * z_den);
  }
  return StarPlatform(std::move(workers));
}

StarPlatform bimodal_star(std::size_t p, Rng& rng, double z,
                          double fast_fraction, double slow_factor,
                          double c_lo, double c_hi, double w_lo,
                          double w_hi) {
  DLSCHED_EXPECT(z > 0.0, "z must be positive");
  DLSCHED_EXPECT(fast_fraction >= 0.0 && fast_fraction <= 1.0,
                 "fast_fraction must be in [0, 1]");
  DLSCHED_EXPECT(slow_factor >= 1.0, "slow_factor must be >= 1");
  const auto fast_count = static_cast<std::size_t>(
      std::lround(fast_fraction * static_cast<double>(p)));
  const std::vector<std::size_t> role = rng.permutation(p);
  std::vector<Worker> workers(p);
  for (std::size_t i = 0; i < p; ++i) {
    Worker& worker = workers[i];
    worker.c = rng.uniform(c_lo, c_hi);
    worker.w = rng.uniform(w_lo, w_hi);
    if (role[i] >= fast_count) {  // the slow cluster
      worker.c *= slow_factor;
      worker.w *= slow_factor;
    }
    worker.d = z * worker.c;
  }
  return StarPlatform(std::move(workers));
}

namespace {

/// Blends a shared draw with independent noise so two quantities become
/// rank-correlated: |rho| of the weight on the shared draw, mirrored
/// (1 - u) when rho is negative.
double correlate(double shared, double independent, double rho) {
  const double anchor = rho >= 0.0 ? shared : 1.0 - shared;
  const double weight = rho >= 0.0 ? rho : -rho;
  return weight * anchor + (1.0 - weight) * independent;
}

/// Inverse CDF of the Pareto(alpha) density truncated to [lo, hi]:
/// u = 0 -> lo, u = 1 -> hi, mass concentrated near lo for alpha > 0.
double bounded_pareto(double u, double alpha, double lo, double hi) {
  const double ratio_term = 1.0 - std::pow(lo / hi, alpha);
  return lo / std::pow(1.0 - u * ratio_term, 1.0 / alpha);
}

}  // namespace

StarPlatform correlated_star(std::size_t p, Rng& rng, double z, double rho,
                             double c_lo, double c_hi, double w_lo,
                             double w_hi) {
  DLSCHED_EXPECT(z > 0.0, "z must be positive");
  DLSCHED_EXPECT(rho >= -1.0 && rho <= 1.0, "rho must be in [-1, 1]");
  std::vector<Worker> workers(p);
  for (Worker& worker : workers) {
    // c anchors to the shared draw; w blends toward (or away from) it.
    const double shared = rng.uniform(0.0, 1.0);
    const double uw = correlate(shared, rng.uniform(0.0, 1.0), rho);
    worker.c = c_lo + shared * (c_hi - c_lo);
    worker.w = w_lo + uw * (w_hi - w_lo);
    worker.d = z * worker.c;
  }
  return StarPlatform(std::move(workers));
}

StarPlatform power_star(std::size_t p, Rng& rng, double z, double alpha,
                        double rho, double c_lo, double c_hi, double w_lo,
                        double w_hi) {
  DLSCHED_EXPECT(z > 0.0, "z must be positive");
  DLSCHED_EXPECT(alpha > 0.0, "alpha must be positive");
  DLSCHED_EXPECT(rho >= -1.0 && rho <= 1.0, "rho must be in [-1, 1]");
  std::vector<Worker> workers(p);
  for (Worker& worker : workers) {
    const double shared = rng.uniform(0.0, 1.0);
    const double uw = correlate(shared, rng.uniform(0.0, 1.0), rho);
    worker.c = bounded_pareto(shared, alpha, c_lo, c_hi);
    worker.w = bounded_pareto(uw, alpha, w_lo, w_hi);
    worker.d = z * worker.c;
  }
  return StarPlatform(std::move(workers));
}

std::vector<double> latency_factors(const StarPlatform& platform, Rng& rng,
                                    double lat_lo, double lat_hi,
                                    double lat_rho) {
  DLSCHED_EXPECT(lat_lo >= 0.0 && lat_hi >= lat_lo,
                 "latency factor range must satisfy 0 <= lat_lo <= lat_hi");
  DLSCHED_EXPECT(lat_rho >= -1.0 && lat_rho <= 1.0,
                 "lat_rho must be in [-1, 1]");
  const std::size_t p = platform.size();
  // The shared draw is the worker's c *rank* (normalized to [0, 1]): a
  // rank, not the raw magnitude, so the correlation is scale-free and the
  // same knob works for uniform and Pareto link draws alike.
  std::vector<std::size_t> order(p);
  for (std::size_t i = 0; i < p; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return platform.worker(a).c < platform.worker(b).c;
                   });
  std::vector<double> rank(p, 0.0);
  for (std::size_t r = 0; r < p; ++r) {
    rank[order[r]] = p > 1 ? static_cast<double>(r) /
                                 static_cast<double>(p - 1)
                           : 0.5;
  }
  std::vector<double> factors(p, 0.0);
  for (std::size_t i = 0; i < p; ++i) {
    const double u = correlate(rank[i], rng.uniform(0.0, 1.0), lat_rho);
    factors[i] = lat_lo + u * (lat_hi - lat_lo);
  }
  return factors;
}

StarPlatform satellite_star(std::size_t p, Rng& rng, double z,
                            std::size_t satellites, double link_penalty,
                            double c_lo, double c_hi, double w_lo,
                            double w_hi) {
  DLSCHED_EXPECT(z > 0.0, "z must be positive");
  DLSCHED_EXPECT(link_penalty >= 1.0, "link_penalty must be >= 1");
  DLSCHED_EXPECT(satellites <= p, "more satellites than workers");
  const std::vector<std::size_t> role = rng.permutation(p);
  std::vector<Worker> workers(p);
  for (std::size_t i = 0; i < p; ++i) {
    Worker& worker = workers[i];
    worker.c = rng.uniform(c_lo, c_hi);
    worker.w = rng.uniform(w_lo, w_hi);
    if (role[i] < satellites) worker.c *= link_penalty;
    worker.d = z * worker.c;
  }
  return StarPlatform(std::move(workers));
}

// ---------------------------------------------------------------- registry --

double param_or(const GenParams& params, const std::string& key,
                double fallback) {
  const auto it = params.find(key);
  return it != params.end() ? it->second : fallback;
}

namespace {

std::size_t size_param(const GenParams& params, const std::string& key,
                       std::size_t fallback) {
  const double value =
      param_or(params, key, static_cast<double>(fallback));
  DLSCHED_EXPECT(value >= 0.0, "parameter '" + key + "' must be >= 0");
  return static_cast<std::size_t>(std::llround(value));
}

/// Shared (c, w, d)-space parameter unpacking.
struct StarParams {
  std::size_t p;
  double z, c_lo, c_hi, w_lo, w_hi;

  explicit StarParams(const GenParams& params)
      : p(size_param(params, "p", 8)),
        z(param_or(params, "z", 0.5)),
        c_lo(param_or(params, "c_lo", 0.1)),
        c_hi(param_or(params, "c_hi", 2.0)),
        w_lo(param_or(params, "w_lo", 0.1)),
        w_hi(param_or(params, "w_hi", 5.0)) {}
};

const std::vector<std::string> kStarKeys{"p",    "z",    "c_lo",
                                         "c_hi", "w_lo", "w_hi"};

std::vector<std::string> star_keys_plus(std::vector<std::string> extra) {
  extra.insert(extra.begin(), kStarKeys.begin(), kStarKeys.end());
  return extra;
}

/// Section 5 matrix-application ensembles: speed factors in [lo, hi] feed
/// the MatrixApp cost model (z = 1/2 by construction); the optional
/// speed-up factors reproduce the Figure 13 regimes.
StarPlatform matrix_platform(
    const GenParams& params, Rng& rng,
    std::vector<WorkerSpeeds> (*speeds)(std::size_t, Rng&, SpeedRange)) {
  MatrixApp::Config config;
  config.matrix_size = size_param(params, "matrix_size", 100);
  const MatrixApp app(config);
  const SpeedRange range{param_or(params, "lo", 1.0),
                         param_or(params, "hi", 10.0)};
  StarPlatform platform =
      app.platform(speeds(size_param(params, "p", 11), rng, range));
  const double comm = param_or(params, "comm_speed_up", 1.0);
  const double comp = param_or(params, "comp_speed_up", 1.0);
  if (comm != 1.0 || comp != 1.0) platform = platform.speed_up(comm, comp);
  return platform;
}

const std::vector<std::string> kMatrixKeys{
    "p", "matrix_size", "lo", "hi", "comm_speed_up", "comp_speed_up"};

/// Draws latency factors when the family's `lat_lo`/`lat_hi` parameters
/// enable them (absent or lat_hi = 0 keeps the family latency-free, and
/// the RNG stream untouched -- existing specs regenerate identical
/// platforms).
void maybe_draw_latencies(GeneratedPlatform& out, const GenParams& params,
                          Rng& rng) {
  const double lat_lo = param_or(params, "lat_lo", 0.0);
  const double lat_hi = param_or(params, "lat_hi", 0.0);
  if (lat_hi <= 0.0) return;
  out.latency_factor = latency_factors(out.platform, rng, lat_lo, lat_hi,
                                       param_or(params, "lat_rho", 0.8));
}

void register_builtins(GeneratorRegistry& registry) {
  registry.add(
      "random_star", "uniform (c, w) star, d = z * c", kStarKeys,
      [](const GenParams& params, Rng& rng) {
        const StarParams sp(params);
        return random_star(sp.p, rng, sp.z, sp.c_lo, sp.c_hi, sp.w_lo,
                           sp.w_hi);
      });
  registry.add(
      "random_bus", "shared random link, uniform per-worker w", kStarKeys,
      [](const GenParams& params, Rng& rng) {
        const StarParams sp(params);
        return random_bus(sp.p, rng, sp.z, sp.c_lo, sp.c_hi, sp.w_lo,
                          sp.w_hi);
      });
  registry.add(
      "random_star_grid",
      "rational-friendly star on a 1/denominator grid, z = z_num/z_den",
      {"p", "z_num", "z_den", "denominator", "max_numerator"},
      [](const GenParams& params, Rng& rng) {
        return random_star_grid(
            size_param(params, "p", 8), rng,
            static_cast<int>(size_param(params, "z_num", 1)),
            static_cast<int>(size_param(params, "z_den", 2)),
            static_cast<int>(size_param(params, "denominator", 8)),
            static_cast<int>(size_param(params, "max_numerator", 24)));
      });
  registry.add(
      "bimodal",
      "two-cluster star: fast_fraction of the workers at base speed, the "
      "rest slow_factor times slower in c and w",
      star_keys_plus({"fast_fraction", "slow_factor"}),
      [](const GenParams& params, Rng& rng) {
        const StarParams sp(params);
        return bimodal_star(sp.p, rng, sp.z,
                            param_or(params, "fast_fraction", 0.5),
                            param_or(params, "slow_factor", 8.0), sp.c_lo,
                            sp.c_hi, sp.w_lo, sp.w_hi);
      });
  registry.add(
      "correlated",
      "star with rank-correlated (c, w) draws: rho = 1 ties link and "
      "compute speeds, rho = -1 anti-correlates them; lat_lo/lat_hi draw "
      "per-worker affine latency factors rank-correlated (lat_rho) with c",
      star_keys_plus({"rho", "lat_lo", "lat_hi", "lat_rho"}),
      [](const GenParams& params, Rng& rng) {
        const StarParams sp(params);
        GeneratedPlatform out = correlated_star(
            sp.p, rng, sp.z, param_or(params, "rho", 0.8), sp.c_lo, sp.c_hi,
            sp.w_lo, sp.w_hi);
        maybe_draw_latencies(out, params, rng);
        return out;
      });
  registry.add(
      "power_law",
      "bounded-Pareto(alpha) c and w: most workers near the cheap end, a "
      "heavy tail of fast outliers; optional rank correlation rho and "
      "per-worker latency factors (lat_lo/lat_hi/lat_rho)",
      star_keys_plus({"alpha", "rho", "lat_lo", "lat_hi", "lat_rho"}),
      [](const GenParams& params, Rng& rng) {
        const StarParams sp(params);
        GeneratedPlatform out = power_star(
            sp.p, rng, sp.z, param_or(params, "alpha", 1.5),
            param_or(params, "rho", 0.0), sp.c_lo, sp.c_hi, sp.w_lo,
            sp.w_hi);
        maybe_draw_latencies(out, params, rng);
        return out;
      });
  registry.add(
      "satellite",
      "star with `satellites` workers (default p/4; 0 = plain star) "
      "behind link_penalty-times-slower links but cluster-grade CPUs",
      star_keys_plus({"satellites", "link_penalty"}),
      [](const GenParams& params, Rng& rng) {
        const StarParams sp(params);
        // Absent parameter -> p/4 default; an explicit 0 stays 0 so a
        // sweep can include the no-satellite control case.
        const std::size_t satellites =
            params.contains("satellites")
                ? size_param(params, "satellites", 0)
                : std::max<std::size_t>(1, sp.p / 4);
        return satellite_star(sp.p, rng, sp.z, satellites,
                              param_or(params, "link_penalty", 25.0),
                              sp.c_lo, sp.c_hi, sp.w_lo, sp.w_hi);
      });
  registry.add(
      "matrix_homogeneous",
      "Figure 10 ensemble: one comm and one comp factor shared by all "
      "workers, MatrixApp costs",
      kMatrixKeys, [](const GenParams& params, Rng& rng) {
        return matrix_platform(params, rng, homogeneous_speeds);
      });
  registry.add(
      "matrix_bus_hetero_comp",
      "Figure 11 ensemble: shared comm factor, per-worker comp factors",
      kMatrixKeys, [](const GenParams& params, Rng& rng) {
        return matrix_platform(params, rng, bus_hetero_comp_speeds);
      });
  registry.add(
      "matrix_heterogeneous",
      "Figures 12-13 ensemble: per-worker comm and comp factors",
      kMatrixKeys, [](const GenParams& params, Rng& rng) {
        return matrix_platform(params, rng, heterogeneous_speeds);
      });
  registry.add(
      "matrix_participation",
      "the Section 5.3.4 4-worker participation platform (parameter x)",
      {"x", "matrix_size"}, [](const GenParams& params, Rng&) {
        MatrixApp::Config config;
        config.matrix_size = size_param(params, "matrix_size", 400);
        return MatrixApp(config).platform(
            participation_speeds(param_or(params, "x", 1.0)));
      });
}

}  // namespace

GeneratorRegistry& GeneratorRegistry::instance() {
  static GeneratorRegistry* registry = [] {
    auto* r = new GeneratorRegistry();
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

void GeneratorRegistry::add(std::string name, std::string description,
                            std::vector<std::string> params,
                            Factory factory) {
  DLSCHED_EXPECT(factory != nullptr, "null generator factory");
  DLSCHED_EXPECT(!contains(name),
                 "generator '" + name + "' is already registered");
  entries_.push_back(
      {{std::move(name), std::move(description), std::move(params)},
       std::move(factory)});
}

bool GeneratorRegistry::contains(const std::string& name) const {
  return std::any_of(entries_.begin(), entries_.end(), [&](const Entry& e) {
    return e.info.name == name;
  });
}

GeneratedPlatform GeneratorRegistry::make_generated(const std::string& name,
                                                    const GenParams& params,
                                                    Rng& rng) const {
  for (const Entry& entry : entries_) {
    if (entry.info.name != name) continue;
    for (const auto& [key, value] : params) {
      if (std::find(entry.info.params.begin(), entry.info.params.end(),
                    key) == entry.info.params.end()) {
        std::string accepted;
        for (const std::string& k : entry.info.params) {
          if (!accepted.empty()) accepted += ", ";
          accepted += k;
        }
        DLSCHED_FAIL("generator '" + name + "' does not take parameter '" +
                     key + "' (accepted: " + accepted + ")");
      }
    }
    GeneratedPlatform out = entry.factory(params, rng);
    DLSCHED_EXPECT(out.latency_factor.empty() ||
                       out.latency_factor.size() == out.platform.size(),
                   "generator '" + name +
                       "' drew latency factors that are not "
                       "platform-indexed");
    return out;
  }
  std::string known;
  for (const std::string& n : names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  DLSCHED_FAIL("unknown generator '" + name + "' (known: " + known + ")");
}

StarPlatform GeneratorRegistry::make(const std::string& name,
                                     const GenParams& params,
                                     Rng& rng) const {
  GeneratedPlatform out = make_generated(name, params, rng);
  DLSCHED_EXPECT(!out.has_latency_draws(),
                 "generator '" + name +
                     "' drew per-worker latency factors; call "
                     "make_generated() and forward them into AffineCosts "
                     "instead of dropping them");
  return std::move(out.platform);
}

std::vector<std::string> GeneratorRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(entries_.size());
  for (const Entry& entry : entries_) result.push_back(entry.info.name);
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<GeneratorInfo> GeneratorRegistry::infos() const {
  std::vector<GeneratorInfo> result;
  result.reserve(entries_.size());
  for (const Entry& entry : entries_) result.push_back(entry.info);
  std::sort(result.begin(), result.end(),
            [](const GeneratorInfo& a, const GeneratorInfo& b) {
              return a.name < b.name;
            });
  return result;
}

}  // namespace dlsched::gen
