// Text serialization of platforms, so downstream users can describe their
// cluster in a file and feed it to the examples / the CLI.
//
// Format: one worker per line, `name c w d`, '#' comments, blank lines
// ignored.  A `z <value>` directive before any worker sets a default
// return ratio so the d column may be omitted:
//
//     # my cluster
//     z 0.5
//     node-a 0.08 0.30
//     node-b 0.12 0.20 0.06   # explicit d overrides z
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "platform/star_platform.hpp"

namespace dlsched {

/// Parses the text format; throws dlsched::Error with a line number on any
/// malformed input.
[[nodiscard]] StarPlatform parse_platform(std::istream& in);
[[nodiscard]] StarPlatform parse_platform_text(std::string_view text);

/// Loads a platform from a file.  Throws on I/O or parse errors.
[[nodiscard]] StarPlatform load_platform(const std::string& path);

/// Serializes a platform back to the text format (round-trips through
/// parse_platform_text).
[[nodiscard]] std::string serialize_platform(const StarPlatform& platform);

/// Writes a platform to a file.  Throws on I/O errors.
void save_platform(const StarPlatform& platform, const std::string& path);

}  // namespace dlsched
