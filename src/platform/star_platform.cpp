#include "platform/star_platform.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/error.hpp"

namespace dlsched {

namespace {
bool close(double a, double b, double rel_tol) noexcept {
  return std::fabs(a - b) <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}
}  // namespace

StarPlatform::StarPlatform(std::vector<Worker> workers)
    : workers_(std::move(workers)) {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Worker& p = workers_[i];
    DLSCHED_EXPECT(p.c > 0.0, "worker input communication time must be > 0");
    DLSCHED_EXPECT(p.w > 0.0, "worker computation time must be > 0");
    DLSCHED_EXPECT(p.d >= 0.0, "worker return communication time must be >= 0");
    if (p.name.empty()) p.name = "P" + std::to_string(i + 1);
  }
}

const Worker& StarPlatform::worker(std::size_t i) const {
  DLSCHED_EXPECT(i < workers_.size(), "worker index out of range");
  return workers_[i];
}

bool StarPlatform::is_bus(double rel_tol) const noexcept {
  for (std::size_t i = 1; i < workers_.size(); ++i) {
    if (!close(workers_[i].c, workers_[0].c, rel_tol)) return false;
    if (!close(workers_[i].d, workers_[0].d, rel_tol)) return false;
  }
  return true;
}

bool StarPlatform::has_uniform_z(double rel_tol) const noexcept {
  for (std::size_t i = 1; i < workers_.size(); ++i) {
    if (!close(workers_[i].z(), workers_[0].z(), rel_tol)) return false;
  }
  return true;
}

double StarPlatform::z() const {
  DLSCHED_EXPECT(!workers_.empty(), "z() on empty platform");
  DLSCHED_EXPECT(has_uniform_z(), "z() requires a uniform d/c ratio");
  return workers_[0].z();
}

namespace {
template <class Key>
std::vector<std::size_t> sorted_indices(std::size_t n, Key key) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return key(a) < key(b); });
  return order;
}
}  // namespace

std::vector<std::size_t> StarPlatform::order_by_c() const {
  return sorted_indices(workers_.size(),
                        [&](std::size_t i) { return workers_[i].c; });
}

std::vector<std::size_t> StarPlatform::order_by_c_desc() const {
  return sorted_indices(workers_.size(),
                        [&](std::size_t i) { return -workers_[i].c; });
}

std::vector<std::size_t> StarPlatform::order_by_w() const {
  return sorted_indices(workers_.size(),
                        [&](std::size_t i) { return workers_[i].w; });
}

StarPlatform StarPlatform::speed_up(double comm_factor,
                                    double comp_factor) const {
  DLSCHED_EXPECT(comm_factor > 0.0 && comp_factor > 0.0,
                 "speed factors must be positive");
  std::vector<Worker> scaled = workers_;
  for (Worker& p : scaled) {
    p.c /= comm_factor;
    p.d /= comm_factor;
    p.w /= comp_factor;
  }
  return StarPlatform(std::move(scaled));
}

StarPlatform StarPlatform::subset(std::span<const std::size_t> indices) const {
  std::vector<Worker> selected;
  selected.reserve(indices.size());
  for (std::size_t i : indices) {
    DLSCHED_EXPECT(i < workers_.size(), "subset index out of range");
    selected.push_back(workers_[i]);
  }
  return StarPlatform(std::move(selected));
}

StarPlatform StarPlatform::mirrored() const {
  std::vector<Worker> flipped = workers_;
  for (Worker& p : flipped) {
    DLSCHED_EXPECT(p.d > 0.0, "mirroring requires d > 0");
    std::swap(p.c, p.d);
  }
  return StarPlatform(std::move(flipped));
}

StarPlatform StarPlatform::bus(double c, double d, std::vector<double> w) {
  std::vector<Worker> workers;
  workers.reserve(w.size());
  for (double wi : w) {
    workers.push_back(Worker{c, wi, d, ""});
  }
  return StarPlatform(std::move(workers));
}

std::string StarPlatform::describe() const {
  std::ostringstream out;
  out << "StarPlatform with " << workers_.size() << " worker(s)";
  if (!workers_.empty() && has_uniform_z()) out << ", z = " << z();
  out << (is_bus() ? " [bus]" : "") << "\n";
  for (const Worker& p : workers_) {
    out << "  " << p.name << ": c=" << p.c << " w=" << p.w << " d=" << p.d
        << "\n";
  }
  return out.str();
}

}  // namespace dlsched
