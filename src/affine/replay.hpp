// DES replay of an affine realization (the subsystem's end-to-end check).
//
// The realization (affine/realization.hpp) is algebra: intervals placed by
// construction.  This module re-executes the same protocol on the
// discrete-event engine -- latency-inclusive messages in sigma_1 order,
// one-port return service in sigma_2 order, latency-only traffic to
// zero-load participants -- and compares the simulated makespan with the
// LP's horizon.
//
// At an affine FIFO LP *optimum* the two must agree exactly (up to double
// rounding): the simulator serves returns as early as possible, which can
// only finish at or before the packed horizon, while at the optimum either
// the one-port budget or some worker's chain is tight, pinning the finish
// to the horizon from below.  A relative error beyond ~1e-9 therefore
// means a realization or executor bug, and the affine solvers surface it
// per solve (`SolveResult::replay_rel_error`, gated by the affine_surface
// acceptance test and CI).
#pragma once

#include "affine/realization.hpp"
#include "platform/star_platform.hpp"
#include "sim/des_executor.hpp"

namespace dlsched::affine {

struct ReplayResult {
  sim::DesResult des;          ///< full trace + event count
  double makespan = 0.0;       ///< simulated completion time
  double expected = 0.0;       ///< the realization's horizon
  double rel_error = 0.0;      ///< |makespan - expected| / expected
};

/// Replays the realization through the DES executor and measures the
/// deviation from the LP-predicted horizon.
[[nodiscard]] ReplayResult replay_affine(const StarPlatform& platform,
                                         const AffineRealization& realization);

}  // namespace dlsched::affine
