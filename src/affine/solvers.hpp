// SolverRegistry adapters for the affine subsystem.
//
// Four solution methodologies for the Section 6 model, all sharing the
// realize -> validate -> DES-replay tail (affine/realization.hpp,
// affine/replay.hpp), so every affine solve in a batch or sweep carries a
// machine-checked consistency certificate:
//   * affine_fifo          -- the FIFO LP over an explicit participant set;
//   * affine_greedy        -- greedy prefix resource selection;
//   * affine_subset        -- exact subset enumeration (time-budget aware);
//   * affine_local_search  -- participant-set hill climbing from greedy.
//
// `register_affine_solvers` is called by the core registry's builtin
// population; library users with their own registry can call it directly.
#pragma once

namespace dlsched {
class SolverRegistry;
}  // namespace dlsched

namespace dlsched::affine {

void register_affine_solvers(SolverRegistry& registry);

}  // namespace dlsched::affine
