// Affine schedule realization: the concrete timeline behind an affine FIFO
// LP solution (paper Section 6).
//
// The linear `Schedule` model (schedule/schedule.hpp) derives every
// duration as alpha * rate, so it cannot carry the affine model's start-up
// constants.  This module lays the affine solution out explicitly, with
// every activity interval *including* its latency segment:
//
//   sends back-to-back from t = 0 in sigma_1 order, each taking
//     send_latency_i + alpha_i * c_i;
//   each computation immediately after its reception, taking
//     compute_latency + alpha_i * w_i;
//   returns back-to-back ending exactly at the horizon in sigma_2 order,
//     each taking return_latency_i + alpha_i * d_i.
//
// Crucially, *every participant* of the scenario appears -- a worker the
// LP left at alpha = 0 still owns latency-only message and computation
// segments, exactly as the LP charged them.  The laid-out lanes reuse the
// `Timeline` shape, so the independent checker in schedule/validator
// (validate_timeline: precedence, one-port, horizon) applies untouched;
// `validate_affine` adds the affine duration checks on top.  The DES
// replay (affine/replay.hpp) executes the same protocol on the event
// engine and must land on the same makespan.
#pragma once

#include "core/affine.hpp"
#include "core/scenario_lp.hpp"
#include "platform/star_platform.hpp"
#include "schedule/timeline.hpp"
#include "schedule/validator.hpp"

namespace dlsched::affine {

/// One participant's affine lane: the latency constants next to the
/// latency-inclusive intervals of its `Timeline` lane.
struct AffineLane {
  std::size_t worker = 0;        ///< platform worker index
  double alpha = 0.0;            ///< load units (alpha * horizon)
  double send_latency = 0.0;     ///< constant part of the recv interval
  double compute_latency = 0.0;  ///< constant part of the compute interval
  double return_latency = 0.0;   ///< constant part of the return interval
  double idle = 0.0;             ///< gap between compute end and return start
};

/// A fully laid-out affine schedule.  `timeline.lanes` and `lanes` are
/// parallel arrays in send (sigma_1) order.
struct AffineRealization {
  std::vector<AffineLane> lanes;
  Timeline timeline;       ///< latency-inclusive intervals (validator food)
  Scenario scenario;       ///< the realized (sigma_1, sigma_2) orders
  double horizon = 1.0;    ///< the LP's T, scaled
  double makespan = 0.0;   ///< end of the last return (== horizon packed)
};

/// Lays out a feasible affine solution for the given costs.  `horizon`
/// rescales the *time unit* -- loads, latencies and every interval scale
/// together, which (unlike the linear model's load-only scaling) is the
/// only transformation the affine model admits.  Throws when the solution
/// is marked infeasible.
[[nodiscard]] AffineRealization realize_affine(const StarPlatform& platform,
                                               const ScenarioSolution& solution,
                                               const AffineCosts& costs,
                                               double horizon = 1.0);

/// First-principles checks of a realization against the platform and
/// costs: every lane's recorded latency must match `costs` (scaled by the
/// realization's horizon), every interval's duration must equal latency +
/// alpha * rate, the idle gaps must be non-negative, and the timeline must
/// pass the independent schedule/validator checks (precedence, one-port
/// service, horizon).
[[nodiscard]] ValidationReport validate_affine(
    const StarPlatform& platform, const AffineRealization& realization,
    const AffineCosts& costs, const ValidationOptions& options = {});

}  // namespace dlsched::affine
