#include "affine/realization.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace dlsched::affine {

AffineRealization realize_affine(const StarPlatform& platform,
                                 const ScenarioSolution& solution,
                                 const AffineCosts& costs, double horizon) {
  DLSCHED_EXPECT(solution.lp_feasible,
                 "cannot realize an infeasible affine solution");
  DLSCHED_EXPECT(horizon > 0.0, "horizon must be positive");
  const Scenario& scenario = solution.scenario;
  scenario.check(platform);
  const std::size_t q = scenario.size();
  DLSCHED_EXPECT(q > 0, "empty scenario");
  DLSCHED_EXPECT(costs.send_latency_per_worker.empty() ||
                     costs.send_latency_per_worker.size() == platform.size(),
                 "per-worker send latencies must be platform-indexed");
  DLSCHED_EXPECT(costs.return_latency_per_worker.empty() ||
                     costs.return_latency_per_worker.size() ==
                         platform.size(),
                 "per-worker return latencies must be platform-indexed");

  AffineRealization out;
  out.scenario = scenario;
  out.horizon = horizon;
  out.lanes.reserve(q);
  out.timeline.lanes.reserve(q);

  // ----- sends back-to-back from 0, computes immediately after -------------
  double clock = 0.0;
  std::vector<std::size_t> lane_of(platform.size(), SIZE_MAX);
  for (std::size_t k = 0; k < q; ++k) {
    const std::size_t w = scenario.send_order[k];
    const Worker& worker = platform.worker(w);
    AffineLane lane;
    lane.worker = w;
    lane.alpha = solution.alpha[w].to_double() * horizon;
    lane.send_latency = costs.send_latency_for(w) * horizon;
    lane.compute_latency = costs.compute_latency * horizon;
    lane.return_latency = costs.return_latency_for(w) * horizon;

    WorkerLane intervals;
    intervals.worker = w;
    intervals.recv.start = clock;
    intervals.recv.end = clock + lane.send_latency + lane.alpha * worker.c;
    intervals.compute.start = intervals.recv.end;
    intervals.compute.end =
        intervals.compute.start + lane.compute_latency +
        lane.alpha * worker.w;
    clock = intervals.recv.end;
    lane_of[w] = out.lanes.size();
    out.lanes.push_back(lane);
    out.timeline.lanes.push_back(intervals);
  }

  // ----- returns back-to-back ending exactly at the horizon ---------------
  double end = horizon;
  for (std::size_t r = q; r-- > 0;) {
    const std::size_t w = scenario.return_order[r];
    const std::size_t k = lane_of[w];
    AffineLane& lane = out.lanes[k];
    WorkerLane& intervals = out.timeline.lanes[k];
    const double duration =
        lane.return_latency + lane.alpha * platform.worker(w).d;
    intervals.ret.end = end;
    intervals.ret.start = end - duration;
    end = intervals.ret.start;
    lane.idle = intervals.ret.start - intervals.compute.end;
  }

  for (const WorkerLane& intervals : out.timeline.lanes) {
    out.timeline.makespan =
        std::max(out.timeline.makespan, intervals.ret.end);
  }
  out.makespan = out.timeline.makespan;
  return out;
}

ValidationReport validate_affine(const StarPlatform& platform,
                                 const AffineRealization& realization,
                                 const AffineCosts& costs,
                                 const ValidationOptions& options) {
  ValidationReport report;
  if (!(costs.send_latency_per_worker.empty() ||
        costs.send_latency_per_worker.size() == platform.size()) ||
      !(costs.return_latency_per_worker.empty() ||
        costs.return_latency_per_worker.size() == platform.size())) {
    report.fail("per-worker latency vectors are not platform-indexed");
    return report;
  }
  const auto check_duration = [&](const std::string& name, const char* what,
                                  const Interval& interval, double latency,
                                  double linear) {
    const double expected = latency + linear;
    if (std::abs(interval.duration() - expected) > options.eps) {
      std::ostringstream out;
      out << name << ": " << what << " duration " << interval.duration()
          << " != latency " << latency << " + linear " << linear;
      report.fail(out.str());
    }
  };

  if (realization.lanes.size() != realization.timeline.lanes.size()) {
    report.fail("lane arrays out of step");
    return report;
  }
  std::vector<bool> seen(platform.size(), false);
  for (std::size_t k = 0; k < realization.lanes.size(); ++k) {
    const AffineLane& lane = realization.lanes[k];
    const WorkerLane& intervals = realization.timeline.lanes[k];
    if (lane.worker >= platform.size() ||
        intervals.worker != lane.worker) {
      report.fail("lane references an unknown or mismatched worker");
      continue;
    }
    const Worker& worker = platform.worker(lane.worker);
    const std::string name = worker.name.empty()
                                 ? "worker#" + std::to_string(lane.worker)
                                 : worker.name;
    if (seen[lane.worker]) {
      report.fail(name + ": appears twice in the realization");
    }
    seen[lane.worker] = true;
    if (lane.alpha < -options.eps) report.fail(name + ": negative load");
    if (lane.idle < -options.eps) report.fail(name + ": negative idle gap");
    // The lanes' recorded constants must be the *requested* costs (scaled
    // by the horizon's unit change), not whatever the layout happened to
    // store -- this is what keeps the duration checks non-circular.
    const double h = realization.horizon;
    const auto check_latency = [&](const char* what, double recorded,
                                   double requested) {
      if (std::abs(recorded - requested * h) > options.eps) {
        std::ostringstream out;
        out << name << ": recorded " << what << " latency " << recorded
            << " != requested " << requested << " x horizon " << h;
        report.fail(out.str());
      }
    };
    check_latency("send", lane.send_latency,
                  costs.send_latency_for(lane.worker));
    check_latency("compute", lane.compute_latency, costs.compute_latency);
    check_latency("return", lane.return_latency,
                  costs.return_latency_for(lane.worker));
    check_duration(name, "recv", intervals.recv, lane.send_latency,
                   lane.alpha * worker.c);
    check_duration(name, "compute", intervals.compute, lane.compute_latency,
                   lane.alpha * worker.w);
    check_duration(name, "return", intervals.ret, lane.return_latency,
                   lane.alpha * worker.d);
  }

  // Precedence, one-port service and the horizon bound come from the
  // independent schedule validator, applied to the latency-inclusive
  // timeline unchanged.
  const ValidationReport physical = validate_timeline(
      platform, realization.timeline, realization.horizon, options);
  for (const std::string& violation : physical.violations) {
    report.fail(violation);
  }
  return report;
}

}  // namespace dlsched::affine
