#include "affine/solvers.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "affine/realization.hpp"
#include "affine/replay.hpp"
#include "affine/selection.hpp"
#include "core/solver.hpp"
#include "util/error.hpp"

namespace dlsched::affine {

namespace {

/// The fast path accepts a validated-double timeline only when the DES
/// replay lands within the same bound the CI certificate gates on.
constexpr double kFastReplayRelError = 1e-9;

/// Shared tail for the affine solvers.  In the linear special case the
/// ordinary packed schedule is realized; under real affine constants the
/// solution is laid out with explicit latency segments, re-checked by the
/// independent validator, and replayed on the DES engine -- the simulated
/// makespan must land on the LP horizon, and the deviation travels in the
/// result for the sweeps and CI to gate on.
///
/// With `allow_failure` (the Precision::Fast path, whose solution comes
/// from the double LP) a validation or replay miss returns false instead
/// of throwing, so the caller can fall back to the exact LP.
bool finish_affine_checked(const SolveRequest& request, SolveResult& out,
                           bool allow_failure) {
  const StarPlatform& platform = request.platform;
  if (!out.solution.lp_feasible) {
    out.notes = "affine constants alone exceed the horizon: infeasible "
                "(lp_feasible = false)";
    return true;  // no schedule to realize; a clean outcome
  }
  if (!request.costs.is_affine()) {
    out.schedule = realize_schedule(platform, out.solution, request.horizon);
    return true;
  }
  const AffineRealization realization =
      realize_affine(platform, out.solution, request.costs, request.horizon);
  const ValidationReport report =
      validate_affine(platform, realization, request.costs);
  if (!report.ok) {
    if (allow_failure) return false;
    DLSCHED_EXPECT(report.ok, "affine realization failed validation: " +
                                  report.violations.front());
  }
  const ReplayResult replay = replay_affine(platform, realization);
  if (allow_failure && replay.rel_error > kFastReplayRelError) return false;
  out.replayed = true;
  out.replay_makespan = replay.makespan;
  out.replay_rel_error = replay.rel_error;
  std::ostringstream notes;
  notes << "affine timeline validated; DES replay makespan "
        << replay.makespan << " vs horizon " << replay.expected
        << " (rel error " << replay.rel_error
        << "); latencies are outside the linear Schedule model, so no "
           "packed Schedule is attached";
  out.notes = notes.str();
  return true;
}

void finish_affine(const SolveRequest& request, SolveResult& out) {
  finish_affine_checked(request, out, /*allow_failure=*/false);
}

/// Fast-LP gate: Precision::Fast only changes the affine solvers when real
/// affine constants are present (the linear special case already has its
/// own double path through the scenario solvers, and keeping the gate
/// narrow preserves byte-identical outputs for linear-model sweeps).
bool use_fast_lp(const SolveRequest& request) {
  return request.precision == Precision::Fast && request.costs.is_affine();
}

/// Marks a selection outcome where no subset was feasible: a clean
/// `lp_feasible == false` result (zero loads, empty scenario) instead of a
/// throw, so batch rows record the regime rather than an exception.
void mark_infeasible(const StarPlatform& platform, SolveResult& out) {
  out.solution.lp_feasible = false;
  out.solution.throughput = numeric::Rational();
  out.solution.alpha.assign(platform.size(), numeric::Rational());
  out.solution.idle.assign(platform.size(), numeric::Rational());
}

/// Sorted copy of a participant set for reporting.
std::vector<std::size_t> sorted_participants(std::vector<std::size_t> set) {
  std::sort(set.begin(), set.end());
  return set;
}

void adopt_selection(const SolveRequest& request, AffineSelectionResult&& result,
                     SolveResult& out) {
  out.scenarios_tried = result.subsets_tried;
  out.lp_fallbacks = result.exact_resolves;
  out.lp_warm_starts = result.lp_warm_starts;
  out.lp_pivots_saved = result.lp_pivots_saved;
  out.subsets_pruned = result.subsets_pruned;
  out.subsets_screened = result.subsets_screened;
  out.budget_exhausted = result.budget_exhausted;
  if (!result.feasible) {
    mark_infeasible(request.platform, out);
  } else {
    out.solution = std::move(result.best);
    out.participants = sorted_participants(std::move(result.participants));
  }
  finish_affine(request, out);
  if (out.budget_exhausted) {
    out.notes += (out.notes.empty() ? "" : "; ");
    out.notes += "time budget exhausted: best of " +
                 std::to_string(out.scenarios_tried) + " subset(s) seen";
  }
}

// ----------------------------------------------------------- affine fifo --

class AffineFifoSolver final : public Solver {
 public:
  std::string name() const override { return "affine_fifo"; }
  std::string description() const override {
    return "FIFO LP under the affine cost model over an explicit "
           "participant set (default: all workers)";
  }
  std::string paper_ref() const override { return "Section 6, ref [20]"; }

  SolveResult solve(const SolveRequest& request) const override {
    const StarPlatform& platform = request.platform;
    DLSCHED_EXPECT(!platform.empty(), "empty platform");
    std::vector<std::size_t> participants = request.participants;
    if (participants.empty()) {
      participants.resize(platform.size());
      for (std::size_t i = 0; i < platform.size(); ++i) participants[i] = i;
    }
    SolveResult out;
    out.solver = name();
    out.schedule_platform = platform;
    out.participants = sorted_participants(participants);
    if (use_fast_lp(request)) {
      const ScenarioSolutionD screened =
          solve_affine_fifo_fast(platform, participants, request.costs);
      if (screened.lp_feasible) {
        out.solution = lift_solution(screened);
        bool ok = false;
        try {
          ok = finish_affine_checked(request, out, /*allow_failure=*/true);
        } catch (const Error&) {
          ok = false;  // the double layout breached a layout invariant
        }
        if (ok) {
          out.exact = false;
          return out;
        }
      }
      // An infeasible screen and a failed validation both re-solve
      // exactly: the exact LP is the arbiter either way.
      out.lp_fallbacks = 1;
    }
    out.solution = solve_affine_fifo(platform, std::move(participants),
                                     request.costs, request.warm_alpha);
    out.lp_warm_starts = out.solution.lp_warm_starts;
    if (!out.solution.lp_feasible) out.participants.clear();
    finish_affine(request, out);
    if (out.lp_fallbacks > 0) {
      out.notes += (out.notes.empty() ? "" : "; ");
      out.notes += "fast affine path failed validation; re-solved exactly";
    }
    return out;
  }
};

// ------------------------------------------------------ greedy selection --

class AffineGreedySolver final : public Solver {
 public:
  std::string name() const override { return "affine_greedy"; }
  std::string description() const override {
    return "affine resource selection: grow the non-decreasing-c prefix "
           "while throughput improves (p LPs)";
  }
  std::string paper_ref() const override { return "Section 6, ref [20]"; }

  SolveResult solve(const SolveRequest& request) const override {
    SolveResult out;
    out.solver = name();
    out.schedule_platform = request.platform;
    adopt_selection(request,
                    solve_affine_fifo_greedy(request.platform, request.costs,
                                             use_fast_lp(request)),
                    out);
    return out;
  }
};

// ------------------------------------------------------- exact selection --

class AffineSubsetSolver final : public Solver {
 public:
  std::string name() const override { return "affine_subset"; }
  std::string description() const override {
    return "exact affine resource selection by subset enumeration "
           "(2^p - 1 LPs, honours time_budget_seconds)";
  }
  std::string paper_ref() const override { return "Section 6, ref [20]"; }

  bool applicable(const SolveRequest& request,
                  std::string* why) const override {
    if (!Solver::applicable(request, why)) return false;
    if (request.platform.size() > request.max_workers_subset) {
      if (why) {
        *why = "platform too large for subset enumeration (2^p LPs; raise "
               "max_workers_subset to force)";
      }
      return false;
    }
    return true;
  }

  SolveResult solve(const SolveRequest& request) const override {
    SolveResult out;
    out.solver = name();
    out.schedule_platform = request.platform;
    adopt_selection(
        request,
        solve_affine_fifo_best_subset(request.platform, request.costs,
                                      request.max_workers_subset,
                                      request.time_budget_seconds,
                                      use_fast_lp(request)),
        out);
    // A completed enumeration is exact over subsets of the INC_C order.
    out.provably_optimal = !out.budget_exhausted;
    return out;
  }
};

// -------------------------------------------------- local-search refinement --

class AffineLocalSearchSolver final : public Solver {
 public:
  std::string name() const override { return "affine_local_search"; }
  std::string description() const override {
    return "affine resource selection: deterministic add/drop/swap hill "
           "climbing over participant sets from the greedy prefix";
  }
  std::string paper_ref() const override {
    return "Section 6, ref [20] (heuristic)";
  }

  SolveResult solve(const SolveRequest& request) const override {
    AffineLocalSearchOptions options;
    options.max_steps = request.local_search_max_steps;
    options.time_budget_seconds = request.time_budget_seconds;
    options.use_fast_lp = use_fast_lp(request);
    SolveResult out;
    out.solver = name();
    out.schedule_platform = request.platform;
    adopt_selection(
        request,
        solve_affine_fifo_local_search(request.platform, request.costs,
                                       options),
        out);
    out.lp_evaluations = out.scenarios_tried;
    return out;
  }
};

}  // namespace

void register_affine_solvers(SolverRegistry& registry) {
  registry.add([] { return std::make_unique<AffineFifoSolver>(); });
  registry.add([] { return std::make_unique<AffineGreedySolver>(); });
  registry.add([] { return std::make_unique<AffineSubsetSolver>(); });
  registry.add([] { return std::make_unique<AffineLocalSearchSolver>(); });
}

}  // namespace dlsched::affine
