#include "affine/replay.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dlsched::affine {

ReplayResult replay_affine(const StarPlatform& platform,
                           const AffineRealization& realization) {
  DLSCHED_EXPECT(!realization.lanes.empty(), "empty realization");
  std::vector<double> loads(platform.size(), 0.0);
  sim::DesOptions options;
  options.include_zero_loads = true;  // participants pay constants regardless
  options.send_latency.assign(platform.size(), 0.0);
  options.compute_latency.assign(platform.size(), 0.0);
  options.return_latency.assign(platform.size(), 0.0);
  for (const AffineLane& lane : realization.lanes) {
    loads[lane.worker] = lane.alpha;
    options.send_latency[lane.worker] = lane.send_latency;
    options.compute_latency[lane.worker] = lane.compute_latency;
    options.return_latency[lane.worker] = lane.return_latency;
  }

  ReplayResult out;
  out.des = sim::execute(platform, realization.scenario, loads, options);
  out.makespan = out.des.makespan;
  out.expected = realization.horizon;
  out.rel_error = out.expected > 0.0
                      ? std::abs(out.makespan - out.expected) / out.expected
                      : std::abs(out.makespan);
  return out;
}

}  // namespace dlsched::affine
