#include "affine/selection.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>
#include <utility>

#include "util/error.hpp"

namespace dlsched::affine {

namespace {

using steady_clock = std::chrono::steady_clock;

double elapsed_since(steady_clock::time_point start) {
  return std::chrono::duration<double>(steady_clock::now() - start).count();
}

/// Records `solution` into `result` when it is feasible and beats the
/// incumbent.  Returns true on improvement.
bool offer(AffineSelectionResult& result, ScenarioSolution solution) {
  if (!solution.lp_feasible) return false;
  if (result.feasible && solution.throughput <= result.best.throughput) {
    return false;
  }
  result.best = std::move(solution);
  result.participants = result.best.scenario.send_order;
  result.feasible = true;
  return true;
}

}  // namespace

AffineSelectionResult solve_affine_fifo_best_subset(
    const StarPlatform& platform, const AffineCosts& costs,
    std::size_t max_workers, double time_budget_seconds) {
  DLSCHED_EXPECT(!platform.empty(), "empty platform");
  DLSCHED_EXPECT(platform.size() <= max_workers,
                 "platform too large for subset enumeration");
  const auto start = steady_clock::now();
  AffineSelectionResult result;
  const std::size_t p = platform.size();
  for (std::size_t mask = 1; mask < (std::size_t{1} << p); ++mask) {
    if (time_budget_seconds > 0.0 &&
        elapsed_since(start) > time_budget_seconds) {
      result.budget_exhausted = true;
      break;
    }
    std::vector<std::size_t> subset;
    for (std::size_t i = 0; i < p; ++i) {
      if (mask & (std::size_t{1} << i)) subset.push_back(i);
    }
    ++result.subsets_tried;
    offer(result, solve_affine_fifo(platform, std::move(subset), costs));
  }
  return result;
}

AffineSelectionResult solve_affine_fifo_greedy(const StarPlatform& platform,
                                               const AffineCosts& costs) {
  DLSCHED_EXPECT(!platform.empty(), "empty platform");
  const std::vector<std::size_t> order = platform.order_by_c();
  AffineSelectionResult result;
  for (std::size_t k = 1; k <= order.size(); ++k) {
    std::vector<std::size_t> prefix(
        order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k));
    ScenarioSolution solution = solve_affine_fifo(platform, prefix, costs);
    ++result.subsets_tried;
    if (!solution.lp_feasible) break;  // longer prefixes only add constants
    offer(result, std::move(solution));
  }
  return result;
}

AffineSelectionResult solve_affine_fifo_local_search(
    const StarPlatform& platform, const AffineCosts& costs,
    const AffineLocalSearchOptions& options) {
  DLSCHED_EXPECT(!platform.empty(), "empty platform");
  const auto start = steady_clock::now();
  const std::size_t p = platform.size();
  const auto out_of_budget = [&] {
    return options.time_budget_seconds > 0.0 &&
           elapsed_since(start) > options.time_budget_seconds;
  };

  // Seed with the greedy prefix; when even the cheapest-c prefix is
  // infeasible (per-worker latencies can sink worker 1 but not worker 5),
  // fall back to scanning the singletons.
  AffineSelectionResult result = solve_affine_fifo_greedy(platform, costs);
  if (!result.feasible) {
    for (std::size_t i = 0; i < p; ++i) {
      ++result.subsets_tried;
      offer(result, solve_affine_fifo(platform, {i}, costs));
    }
    if (!result.feasible) return result;
  }

  std::vector<bool> member(p, false);
  for (const std::size_t w : result.participants) member[w] = true;

  // Best-improvement hill climbing over add / drop / swap moves.  The scan
  // order is fixed, so the search is deterministic.  Consecutive sweeps
  // revisit many subsets (this sweep's drop(y) is the last sweep's
  // swap(y -> x)); a subset seen before can never beat an incumbent that
  // has only improved since, so each LP is solved at most once.
  std::set<std::vector<std::size_t>> seen;
  for (std::size_t step = 0; step < options.max_steps; ++step) {
    AffineSelectionResult round = result;  // incumbent to beat this sweep
    std::optional<std::pair<std::size_t, std::size_t>> best_move;
    const auto consider = [&](std::size_t drop, std::size_t add) {
      // drop == p: pure add; add == p: pure drop.
      std::vector<std::size_t> candidate;
      candidate.reserve(p);
      for (std::size_t i = 0; i < p; ++i) {
        const bool in = (member[i] && i != drop) || i == add;
        if (in) candidate.push_back(i);
      }
      if (candidate.empty() || !seen.insert(candidate).second) return;
      ++result.subsets_tried;
      if (offer(round, solve_affine_fifo(platform, candidate, costs))) {
        best_move = {drop, add};
      }
    };
    for (std::size_t i = 0; i < p && !out_of_budget(); ++i) {
      if (!member[i]) {
        consider(p, i);  // add i
        continue;
      }
      consider(i, p);  // drop i
      for (std::size_t j = 0; j < p; ++j) {
        if (member[j]) continue;
        consider(i, j);  // swap i -> j
        if (out_of_budget()) break;
      }
    }
    if (out_of_budget()) {
      result.budget_exhausted = true;
      // A completed evaluation may still have improved the incumbent.
    }
    if (!best_move) {
      round.subsets_tried = result.subsets_tried;
      round.budget_exhausted = result.budget_exhausted;
      return round;
    }
    const auto [drop, add] = *best_move;
    if (drop < p) member[drop] = false;
    if (add < p) member[add] = true;
    round.subsets_tried = result.subsets_tried;
    round.budget_exhausted = result.budget_exhausted;
    result = std::move(round);
    if (result.budget_exhausted) break;
  }
  return result;
}

}  // namespace dlsched::affine
