#include "affine/selection.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <set>
#include <span>
#include <utility>

#include "util/error.hpp"

namespace dlsched::affine {

namespace {

using steady_clock = std::chrono::steady_clock;

double elapsed_since(steady_clock::time_point start) {
  return std::chrono::duration<double>(steady_clock::now() - start).count();
}

/// Expands `mask` over `order` into `out` (cleared first): bit i selects
/// order[i], scanned in ascending i.  Over a non-decreasing-c order the
/// result is already in the FIFO order `solve_affine_fifo` would produce,
/// so the sorted entry points apply without a re-sort.  Shared by the
/// subset scan, the greedy prefixes and the local-search moves.
void extract_subset(std::size_t mask, std::span<const std::size_t> order,
                    std::vector<std::size_t>& out) {
  out.clear();
  for (std::size_t i = 0; (mask >> i) != 0; ++i) {
    if ((mask >> i) & std::size_t{1}) out.push_back(order[i]);
  }
}

/// Records `solution` into `result` when it is feasible and beats the
/// incumbent.  Returns true on improvement.
bool offer(AffineSelectionResult& result, ScenarioSolution solution) {
  if (!solution.lp_feasible) return false;
  if (result.feasible && solution.throughput <= result.best.throughput) {
    return false;
  }
  result.best = std::move(solution);
  result.participants = result.best.scenario.send_order;
  result.feasible = true;
  return true;
}

/// Warm-chain bookkeeping shared by the exact scans: accumulates pivot
/// counters against the most recent cold solve of the *same subset size*
/// (LP dimension equals enrolled count, so a same-size cold solve is the
/// honest yardstick -- the chain walks subsets of wildly different sizes)
/// and refreshes the parent hint for the next LP.
struct WarmChain {
  static constexpr std::size_t kNoRef = SIZE_MAX;

  bool enabled = false;
  std::vector<double> parent_alpha;  ///< hint for the next solve
  std::vector<std::size_t> cold_ref; ///< last cold pivots, by subset size

  void account(AffineSelectionResult& result,
               const ScenarioSolution& solution) {
    result.lp_pivots_total += solution.lp_pivots;
    const std::size_t size = solution.scenario.send_order.size();
    if (cold_ref.size() <= size) cold_ref.resize(size + 1, kNoRef);
    if (solution.lp_warm_starts > 0) {
      ++result.lp_warm_starts;
      if (cold_ref[size] != kNoRef && cold_ref[size] > solution.lp_pivots) {
        result.lp_pivots_saved += cold_ref[size] - solution.lp_pivots;
      }
    } else {
      cold_ref[size] = solution.lp_pivots;
    }
    if (enabled) parent_alpha = solution.alpha_double();
  }

  [[nodiscard]] const std::vector<double>& hint() const {
    static const std::vector<double> kCold;
    return enabled ? parent_alpha : kCold;
  }
};

// ------------------------------------------------- fast (double) screen --
//
// Precision::Fast evaluates every candidate subset with the double simplex
// first, then re-solves exactly only the candidates whose fast throughput
// the margin cannot separate from the fast optimum.  Because the final
// offer() comparisons are always between exact rationals, the winner (and
// its solution) is bit-identical to the all-exact scan as long as the
// double LP's throughput error stays below the margin -- a ~1e-12 relative
// error against a 1e-6 relative / 1e-7 absolute band.

/// One fast-screened candidate, in scan order.
struct FastCandidate {
  std::vector<std::size_t> subset;
  double throughput = 0.0;
  bool feasible = false;
  std::optional<ScenarioSolution> exact;  ///< cached when already re-solved
};

double fast_margin(double best) {
  return std::max(1e-7, 1e-6 * std::abs(best));
}

/// Exact re-solve of every candidate the margin cannot rule out, offered
/// to `into` in scan order (so ties resolve exactly as the all-exact scan
/// does).  Fast-infeasible candidates are re-solved only when every
/// throughput in sight is within noise of zero: an exactly-feasible subset
/// the double LP rejects must have near-boundary constants, which force
/// alpha (and hence the throughput) to ~0.  Returns the index of the last
/// candidate that improved `into`, or SIZE_MAX.
std::size_t resolve_margin_set(const StarPlatform& platform,
                               const AffineCosts& costs,
                               std::vector<FastCandidate>& candidates,
                               AffineSelectionResult& into,
                               std::size_t& exact_resolves) {
  double best = into.feasible ? into.best.throughput.to_double() : 0.0;
  bool any_feasible = into.feasible;
  for (const FastCandidate& c : candidates) {
    if (c.feasible) {
      any_feasible = true;
      best = std::max(best, c.throughput);
    }
  }
  const double margin = fast_margin(best);
  const double cut = best - margin;
  std::size_t last_improver = SIZE_MAX;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    FastCandidate& c = candidates[i];
    const bool contender =
        c.feasible ? c.throughput >= cut : (!any_feasible || best <= margin);
    if (!contender) continue;
    if (!c.exact) {
      c.exact = solve_affine_fifo(platform, c.subset, costs);
      ++exact_resolves;
      into.lp_pivots_total += c.exact->lp_pivots;
    }
    if (offer(into, std::move(*c.exact))) last_improver = i;
  }
  return last_improver;
}

// --------------------------------------------------- one-port upper bound --

/// Safety slack for the double-precision bound evaluation: the computed
/// bound is inflated by this much (relative and absolute) before the
/// pruning comparison, and incumbent values are deflated by the same
/// amount when they become pruning floors.  The knapsack fill is a dozen
/// well-conditioned positive adds/multiplies (~1e-14 relative error), so
/// 1e-9 leaves orders of magnitude of headroom -- pruning stays sound, it
/// merely keeps a hair's width of sub-incumbent subsets alive.
constexpr double kBoundSlack = 1e-9;

/// Per-position constants of the knapsack upper bound, over a fixed worker
/// order (doubles; soundness comes from kBoundSlack):
///   lat[i] = send + return latency of worker order[i],
///   cd[i]  = c_i + d_i, its coefficient in the one-port budget row,
///   cap[i] = (1 - sl_i - cl - rl_i) / (c_i + w_i + d_i), an upper bound
///            on alpha_i valid in EVERY subset containing the worker: its
///            own chain row carries c_i alpha_i (sigma_1 prefix), w_i
///            alpha_i, d_i alpha_i (return suffix) and the worker's own
///            three latency constants, so dropping the other nonnegative
///            terms leaves (c_i + w_i + d_i) alpha_i <= 1 - sl_i - cl - rl_i.
/// `by_cd` lists positions by nondecreasing cd for the greedy fill.
struct BoundTable {
  std::vector<double> lat;
  std::vector<double> cd;
  std::vector<double> cap;
  std::vector<std::size_t> by_cd;
};

BoundTable make_bound_table(const StarPlatform& platform,
                            const AffineCosts& costs,
                            std::span<const std::size_t> order) {
  BoundTable table;
  const std::size_t p = order.size();
  table.lat.reserve(p);
  table.cd.reserve(p);
  table.cap.reserve(p);
  for (const std::size_t w : order) {
    const double sl = costs.send_latency_for(w);
    const double rl = costs.return_latency_for(w);
    const Worker& worker = platform.worker(w);
    table.lat.push_back(sl + rl);
    table.cd.push_back(worker.c + worker.d);
    const double head = 1.0 - sl - costs.compute_latency - rl;
    const double denom = worker.c + worker.w + worker.d;
    // denom == 0 yields +inf, which simply disables pruning via this cap.
    table.cap.push_back(head > 0.0 ? head / denom : 0.0);
  }
  table.by_cd.resize(p);
  for (std::size_t i = 0; i < p; ++i) table.by_cd[i] = i;
  std::stable_sort(table.by_cd.begin(), table.by_cd.end(),
                   [&](std::size_t a, std::size_t b) {
                     return table.cd[a] < table.cd[b];
                   });
  return table;
}

/// True when the one-port knapsack bound proves rho(S) < prune_below.
/// The bound is the LP value of   max sum alpha_i  s.t.
/// sum cd_i alpha_i <= 1 - L(S), 0 <= alpha_i <= cap_i   -- a relaxation
/// of the subset's LP (one-port row plus the per-worker chain caps), so it
/// dominates rho(S); the greedy cheapest-cd-first fill solves it exactly.
/// Inflated by kBoundSlack before the comparison: pruning only ever
/// removes subsets strictly below the floor, which can change neither the
/// winner (it has rho = floor or better) nor the feasible flag (the
/// floor's witness itself survives).
bool bounded_out(std::size_t mask, const BoundTable& table,
                 double prune_below) {
  double budget = 1.0;
  for (std::size_t i = 0; (mask >> i) != 0; ++i) {
    if ((mask >> i) & std::size_t{1}) budget -= table.lat[i];
  }
  double total = 0.0;
  for (const std::size_t i : table.by_cd) {
    if (!((mask >> i) & std::size_t{1})) continue;
    if (budget <= 0.0) break;
    const double cap = table.cap[i];
    if (cap <= 0.0) continue;
    const double cd = table.cd[i];
    if (cd <= 0.0) {
      total += cap;  // free capacity (degenerate data); likely disables
      continue;      // pruning, which is the safe direction
    }
    double take = budget / cd;
    if (take > cap) take = cap;
    total += take;
    budget -= take * cd;
  }
  return total * (1.0 + kBoundSlack) + kBoundSlack < prune_below;
}

/// Conservative double lower bound on an exact incumbent value, usable as
/// a `prune_below` floor against the inflated knapsack bound.
double floor_of(const Rational& value) {
  return value.to_double() * (1.0 - kBoundSlack) - kBoundSlack;
}

}  // namespace

AffineSelectionResult solve_affine_fifo_best_subset(
    const StarPlatform& platform, const AffineCosts& costs,
    const AffineSubsetOptions& options) {
  DLSCHED_EXPECT(!platform.empty(), "empty platform");
  DLSCHED_EXPECT(platform.size() <= options.max_workers,
                 "platform too large for subset enumeration");
  DLSCHED_EXPECT(
      platform.size() <
          static_cast<std::size_t>(std::numeric_limits<std::size_t>::digits),
      "subset enumeration masks require p < bits(size_t)");
  const auto start = steady_clock::now();
  AffineSelectionResult result;
  const std::size_t p = platform.size();
  // Enumerate over the non-decreasing-c order so every extracted subset is
  // already in FIFO order (extraction keeps ascending positions, and
  // order_by_c is a stable sort -- ties keep ascending platform ids, the
  // same order the stable re-sort of the unsorted entry point produces).
  const std::vector<std::size_t> order = platform.order_by_c();
  const BoundTable bounds = make_bound_table(platform, costs, order);
  std::vector<std::size_t> subset;  // one buffer reused across all masks
  subset.reserve(p);
  WarmChain chain;
  chain.enabled = options.warm_start && !options.use_fast_lp;
  std::vector<FastCandidate> candidates;
  // Subsets whose (inflated) knapsack bound lands strictly below this are
  // skipped; starts at -inf (nothing prunable) and ratchets up with every
  // improvement -- from the prefix priming below and from each offer().
  double prune_below = -std::numeric_limits<double>::infinity();
  // Raw double view of the best exact value seen (floor or incumbent),
  // driving the margin screen's cut.
  double best_seen = -std::numeric_limits<double>::infinity();
  // Prefix priming: the optimal subset is usually (one move away from) a
  // prefix of the non-decreasing-c order, so solving the p prefixes first
  // -- one tight warm chain, each step adds one worker -- buys a
  // near-optimal pruning floor for the whole scan at the cost of p LPs.
  // The primed solutions are deliberately NOT offered as incumbents: the
  // floor only prunes subsets *strictly* below it, so the Gray walk still
  // elects exactly the winner the plain scan would (ties included), and
  // the floor's own witness survives to be re-solved in place.
  if (options.prune && !options.use_fast_lp) {
    WarmChain prefix_chain;
    prefix_chain.enabled = options.warm_start;
    std::vector<std::size_t> prefix;
    prefix.reserve(p);
    for (std::size_t k = 0; k < p; ++k) {
      prefix.push_back(order[k]);
      const ScenarioSolution solution = solve_affine_fifo_sorted(
          platform, prefix, costs, prefix_chain.hint());
      prefix_chain.account(result, solution);
      if (solution.lp_feasible) {
        prune_below = std::max(prune_below, floor_of(solution.throughput));
        best_seen = std::max(best_seen, solution.throughput.to_double());
      }
    }
  }
  // Gray-code walk: consecutive masks differ by exactly one worker, so the
  // previous LP is structurally adjacent to the next one -- the tightest
  // possible parent for the warm-start seed.  Exact and fast scans share
  // the walk, so every mode ranks ties in the same enumeration order.
  for (std::size_t n = 1; n < (std::size_t{1} << p); ++n) {
    const std::size_t mask = n ^ (n >> 1);
    if (options.time_budget_seconds > 0.0 &&
        elapsed_since(start) > options.time_budget_seconds) {
      result.budget_exhausted = true;
      break;
    }
    // Pruned subsets still count as tried (considered): subsets_tried
    // stays the enumeration count, identical across the exact and fast
    // paths; the LPs actually solved are subsets_tried - subsets_pruned.
    ++result.subsets_tried;
    // Upper-bound pruning needs an exact floor, which the fast screen only
    // produces once the scan is over -- so it bites on the exact path (and
    // never fires under use_fast_lp, where no priming runs either).
    if (options.prune && bounded_out(mask, bounds, prune_below)) {
      ++result.subsets_pruned;
      continue;
    }
    extract_subset(mask, order, subset);
    if (options.use_fast_lp) {
      const ScenarioSolutionD fast =
          solve_affine_fifo_fast_sorted(platform, subset, costs);
      candidates.push_back(
          {subset, fast.throughput, fast.lp_feasible, std::nullopt});
      continue;
    }
    // Margin screen: an exact value at least `best_seen` already exists,
    // so a candidate whose double throughput cannot reach it even with
    // the safety margin added back can be neither the winner nor a tie --
    // the same trust placed in the double LP as use_fast_lp's batch
    // screen, spent inline so the incumbent keeps ratcheting.
    if (options.screen && best_seen > fast_margin(best_seen)) {
      const ScenarioSolutionD fast =
          solve_affine_fifo_fast_sorted(platform, subset, costs);
      if (!fast.lp_feasible ||
          fast.throughput < best_seen - fast_margin(best_seen)) {
        ++result.subsets_screened;
        continue;
      }
    }
    ScenarioSolution solution =
        solve_affine_fifo_sorted(platform, subset, costs, chain.hint());
    chain.account(result, solution);
    if (offer(result, std::move(solution))) {
      prune_below = std::max(prune_below, floor_of(result.best.throughput));
      best_seen = std::max(best_seen, result.best.throughput.to_double());
    }
  }
  if (options.use_fast_lp) {
    resolve_margin_set(platform, costs, candidates, result,
                       result.exact_resolves);
  }
  return result;
}

AffineSelectionResult solve_affine_fifo_best_subset(
    const StarPlatform& platform, const AffineCosts& costs,
    std::size_t max_workers, double time_budget_seconds, bool use_fast_lp) {
  AffineSubsetOptions options;
  options.max_workers = max_workers;
  options.time_budget_seconds = time_budget_seconds;
  options.use_fast_lp = use_fast_lp;
  return solve_affine_fifo_best_subset(platform, costs, options);
}

AffineSelectionResult solve_affine_fifo_greedy(const StarPlatform& platform,
                                               const AffineCosts& costs,
                                               bool use_fast_lp) {
  DLSCHED_EXPECT(!platform.empty(), "empty platform");
  const std::vector<std::size_t> order = platform.order_by_c();
  AffineSelectionResult result;
  std::vector<FastCandidate> candidates;
  WarmChain chain;
  // Prefix k and prefix k+1 are adjacent, so the exact scan warm-chains
  // them just like the subset walk does.
  chain.enabled = !use_fast_lp;
  for (std::size_t k = 1; k <= order.size(); ++k) {
    const std::span<const std::size_t> prefix(order.data(), k);
    ++result.subsets_tried;
    if (use_fast_lp) {
      const ScenarioSolutionD fast =
          solve_affine_fifo_fast_sorted(platform, prefix, costs);
      if (fast.lp_feasible) {
        FastCandidate candidate;
        candidate.subset.assign(prefix.begin(), prefix.end());
        candidate.throughput = fast.throughput;
        candidate.feasible = true;
        candidates.push_back(std::move(candidate));
        continue;
      }
      // The early stop must follow *exact* feasibility: near-boundary
      // constants can fool the double LP either way.
      ++result.exact_resolves;
      ScenarioSolution exact =
          solve_affine_fifo_sorted(platform, prefix, costs);
      result.lp_pivots_total += exact.lp_pivots;
      if (!exact.lp_feasible) break;  // longer prefixes only add constants
      FastCandidate candidate;
      candidate.subset.assign(prefix.begin(), prefix.end());
      candidate.throughput = exact.throughput.to_double();
      candidate.feasible = true;
      candidate.exact = std::move(exact);
      candidates.push_back(std::move(candidate));
      continue;
    }
    ScenarioSolution solution =
        solve_affine_fifo_sorted(platform, prefix, costs, chain.hint());
    chain.account(result, solution);
    if (!solution.lp_feasible) break;  // longer prefixes only add constants
    offer(result, std::move(solution));
  }
  if (use_fast_lp) {
    resolve_margin_set(platform, costs, candidates, result,
                       result.exact_resolves);
  }
  return result;
}

AffineSelectionResult solve_affine_fifo_local_search(
    const StarPlatform& platform, const AffineCosts& costs,
    const AffineLocalSearchOptions& options) {
  DLSCHED_EXPECT(!platform.empty(), "empty platform");
  DLSCHED_EXPECT(
      platform.size() <
          static_cast<std::size_t>(std::numeric_limits<std::size_t>::digits),
      "local-search move masks require p < bits(size_t)");
  const auto start = steady_clock::now();
  const std::size_t p = platform.size();
  const auto out_of_budget = [&] {
    return options.time_budget_seconds > 0.0 &&
           elapsed_since(start) > options.time_budget_seconds;
  };

  // Candidate sets are platform-id masks expanded through the shared
  // extractor over the identity order (ascending ids, as before).
  std::vector<std::size_t> identity(p);
  std::iota(identity.begin(), identity.end(), std::size_t{0});
  std::vector<std::size_t> candidate_buf;
  candidate_buf.reserve(p);

  // Seed with the greedy prefix; when even the cheapest-c prefix is
  // infeasible (per-worker latencies can sink worker 1 but not worker 5),
  // fall back to scanning the singletons.
  AffineSelectionResult result =
      solve_affine_fifo_greedy(platform, costs, options.use_fast_lp);
  if (!result.feasible) {
    std::vector<FastCandidate> singletons;
    for (std::size_t i = 0; i < p; ++i) {
      ++result.subsets_tried;
      if (options.use_fast_lp) {
        const ScenarioSolutionD fast =
            solve_affine_fifo_fast(platform, {i}, costs);
        singletons.push_back(
            {{i}, fast.throughput, fast.lp_feasible, std::nullopt});
        continue;
      }
      ScenarioSolution solution = solve_affine_fifo(platform, {i}, costs);
      result.lp_pivots_total += solution.lp_pivots;
      offer(result, std::move(solution));
    }
    if (options.use_fast_lp) {
      resolve_margin_set(platform, costs, singletons, result,
                         result.exact_resolves);
    }
    if (!result.feasible) return result;
  }

  std::size_t member_mask = 0;
  for (const std::size_t w : result.participants) {
    member_mask |= std::size_t{1} << w;
  }
  const auto member = [&](std::size_t i) {
    return ((member_mask >> i) & std::size_t{1}) != 0;
  };

  // Best-improvement hill climbing over add / drop / swap moves.  The scan
  // order is fixed, so the search is deterministic.  Consecutive sweeps
  // revisit many subsets (this sweep's drop(y) is the last sweep's
  // swap(y -> x)); a subset seen before can never beat an incumbent that
  // has only improved since, so each LP is solved at most once.
  std::set<std::size_t> seen;
  for (std::size_t step = 0; step < options.max_steps; ++step) {
    AffineSelectionResult round = result;  // incumbent to beat this sweep
    std::optional<std::pair<std::size_t, std::size_t>> best_move;
    std::vector<FastCandidate> candidates;
    std::vector<std::pair<std::size_t, std::size_t>> moves;
    // Every move differs from the sweep incumbent by at most two workers,
    // so the incumbent's alpha support is the natural warm-start parent
    // for each exact evaluation of the sweep.
    const std::vector<double> parent_alpha =
        (options.warm_start && !options.use_fast_lp)
            ? result.best.alpha_double()
            : std::vector<double>{};
    const auto consider = [&](std::size_t drop, std::size_t add) {
      // drop == p: pure add; add == p: pure drop.
      std::size_t mask = member_mask;
      if (drop < p) mask &= ~(std::size_t{1} << drop);
      if (add < p) mask |= std::size_t{1} << add;
      if (mask == 0 || !seen.insert(mask).second) return;
      extract_subset(mask, identity, candidate_buf);
      ++result.subsets_tried;
      if (options.use_fast_lp) {
        const ScenarioSolutionD fast =
            solve_affine_fifo_fast(platform, candidate_buf, costs);
        candidates.push_back({candidate_buf, fast.throughput,
                              fast.lp_feasible, std::nullopt});
        moves.emplace_back(drop, add);
        return;
      }
      ScenarioSolution solution =
          solve_affine_fifo(platform, candidate_buf, costs, parent_alpha);
      result.lp_pivots_total += solution.lp_pivots;
      if (solution.lp_warm_starts > 0) ++result.lp_warm_starts;
      if (offer(round, std::move(solution))) {
        best_move = {drop, add};
      }
    };
    for (std::size_t i = 0; i < p && !out_of_budget(); ++i) {
      if (!member(i)) {
        consider(p, i);  // add i
        continue;
      }
      consider(i, p);  // drop i
      for (std::size_t j = 0; j < p; ++j) {
        if (member(j)) continue;
        consider(i, j);  // swap i -> j
        if (out_of_budget()) break;
      }
    }
    if (options.use_fast_lp) {
      // The sweep's winning move is the last candidate whose exact
      // throughput improves the round incumbent -- the same "first
      // occurrence of the maximum" the all-exact scan picks, because the
      // margin set is re-offered in the original scan order.
      const std::size_t idx = resolve_margin_set(platform, costs, candidates,
                                                 round, result.exact_resolves);
      if (idx != SIZE_MAX) best_move = moves[idx];
    }
    if (out_of_budget()) {
      result.budget_exhausted = true;
      // A completed evaluation may still have improved the incumbent.
    }
    if (!best_move) {
      round.subsets_tried = result.subsets_tried;
      round.exact_resolves = result.exact_resolves;
      round.lp_pivots_total = result.lp_pivots_total;
      round.lp_warm_starts = result.lp_warm_starts;
      round.lp_pivots_saved = result.lp_pivots_saved;
      round.budget_exhausted = result.budget_exhausted;
      return round;
    }
    const auto [drop, add] = *best_move;
    if (drop < p) member_mask &= ~(std::size_t{1} << drop);
    if (add < p) member_mask |= std::size_t{1} << add;
    round.subsets_tried = result.subsets_tried;
    round.exact_resolves = result.exact_resolves;
    round.lp_pivots_total = result.lp_pivots_total;
    round.lp_warm_starts = result.lp_warm_starts;
    round.lp_pivots_saved = result.lp_pivots_saved;
    round.budget_exhausted = result.budget_exhausted;
    result = std::move(round);
    if (result.budget_exhausted) break;
  }
  return result;
}

}  // namespace dlsched::affine
