#include "affine/selection.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <set>
#include <utility>

#include "util/error.hpp"

namespace dlsched::affine {

namespace {

using steady_clock = std::chrono::steady_clock;

double elapsed_since(steady_clock::time_point start) {
  return std::chrono::duration<double>(steady_clock::now() - start).count();
}

/// Records `solution` into `result` when it is feasible and beats the
/// incumbent.  Returns true on improvement.
bool offer(AffineSelectionResult& result, ScenarioSolution solution) {
  if (!solution.lp_feasible) return false;
  if (result.feasible && solution.throughput <= result.best.throughput) {
    return false;
  }
  result.best = std::move(solution);
  result.participants = result.best.scenario.send_order;
  result.feasible = true;
  return true;
}

// ------------------------------------------------- fast (double) screen --
//
// Precision::Fast evaluates every candidate subset with the double simplex
// first, then re-solves exactly only the candidates whose fast throughput
// the margin cannot separate from the fast optimum.  Because the final
// offer() comparisons are always between exact rationals, the winner (and
// its solution) is bit-identical to the all-exact scan as long as the
// double LP's throughput error stays below the margin -- a ~1e-12 relative
// error against a 1e-6 relative / 1e-7 absolute band.

/// One fast-screened candidate, in scan order.
struct FastCandidate {
  std::vector<std::size_t> subset;
  double throughput = 0.0;
  bool feasible = false;
  std::optional<ScenarioSolution> exact;  ///< cached when already re-solved
};

double fast_margin(double best) {
  return std::max(1e-7, 1e-6 * std::abs(best));
}

/// Exact re-solve of every candidate the margin cannot rule out, offered
/// to `into` in scan order (so ties resolve exactly as the all-exact scan
/// does).  Fast-infeasible candidates are re-solved only when every
/// throughput in sight is within noise of zero: an exactly-feasible subset
/// the double LP rejects must have near-boundary constants, which force
/// alpha (and hence the throughput) to ~0.  Returns the index of the last
/// candidate that improved `into`, or SIZE_MAX.
std::size_t resolve_margin_set(const StarPlatform& platform,
                               const AffineCosts& costs,
                               std::vector<FastCandidate>& candidates,
                               AffineSelectionResult& into,
                               std::size_t& exact_resolves) {
  double best = into.feasible ? into.best.throughput.to_double() : 0.0;
  bool any_feasible = into.feasible;
  for (const FastCandidate& c : candidates) {
    if (c.feasible) {
      any_feasible = true;
      best = std::max(best, c.throughput);
    }
  }
  const double margin = fast_margin(best);
  const double cut = best - margin;
  std::size_t last_improver = SIZE_MAX;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    FastCandidate& c = candidates[i];
    const bool contender =
        c.feasible ? c.throughput >= cut : (!any_feasible || best <= margin);
    if (!contender) continue;
    if (!c.exact) {
      c.exact = solve_affine_fifo(platform, c.subset, costs);
      ++exact_resolves;
    }
    if (offer(into, std::move(*c.exact))) last_improver = i;
  }
  return last_improver;
}

}  // namespace

AffineSelectionResult solve_affine_fifo_best_subset(
    const StarPlatform& platform, const AffineCosts& costs,
    std::size_t max_workers, double time_budget_seconds, bool use_fast_lp) {
  DLSCHED_EXPECT(!platform.empty(), "empty platform");
  DLSCHED_EXPECT(platform.size() <= max_workers,
                 "platform too large for subset enumeration");
  const auto start = steady_clock::now();
  AffineSelectionResult result;
  const std::size_t p = platform.size();
  std::vector<FastCandidate> candidates;
  for (std::size_t mask = 1; mask < (std::size_t{1} << p); ++mask) {
    if (time_budget_seconds > 0.0 &&
        elapsed_since(start) > time_budget_seconds) {
      result.budget_exhausted = true;
      break;
    }
    std::vector<std::size_t> subset;
    for (std::size_t i = 0; i < p; ++i) {
      if (mask & (std::size_t{1} << i)) subset.push_back(i);
    }
    ++result.subsets_tried;
    if (use_fast_lp) {
      const ScenarioSolutionD fast =
          solve_affine_fifo_fast(platform, subset, costs);
      candidates.push_back({std::move(subset), fast.throughput,
                            fast.lp_feasible, std::nullopt});
      continue;
    }
    offer(result, solve_affine_fifo(platform, std::move(subset), costs));
  }
  if (use_fast_lp) {
    resolve_margin_set(platform, costs, candidates, result,
                       result.exact_resolves);
  }
  return result;
}

AffineSelectionResult solve_affine_fifo_greedy(const StarPlatform& platform,
                                               const AffineCosts& costs,
                                               bool use_fast_lp) {
  DLSCHED_EXPECT(!platform.empty(), "empty platform");
  const std::vector<std::size_t> order = platform.order_by_c();
  AffineSelectionResult result;
  std::vector<FastCandidate> candidates;
  for (std::size_t k = 1; k <= order.size(); ++k) {
    std::vector<std::size_t> prefix(
        order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k));
    ++result.subsets_tried;
    if (use_fast_lp) {
      const ScenarioSolutionD fast =
          solve_affine_fifo_fast(platform, prefix, costs);
      if (fast.lp_feasible) {
        candidates.push_back(
            {std::move(prefix), fast.throughput, true, std::nullopt});
        continue;
      }
      // The early stop must follow *exact* feasibility: near-boundary
      // constants can fool the double LP either way.
      ++result.exact_resolves;
      ScenarioSolution exact = solve_affine_fifo(platform, prefix, costs);
      if (!exact.lp_feasible) break;  // longer prefixes only add constants
      FastCandidate candidate;
      candidate.subset = std::move(prefix);
      candidate.throughput = exact.throughput.to_double();
      candidate.feasible = true;
      candidate.exact = std::move(exact);
      candidates.push_back(std::move(candidate));
      continue;
    }
    ScenarioSolution solution = solve_affine_fifo(platform, prefix, costs);
    if (!solution.lp_feasible) break;  // longer prefixes only add constants
    offer(result, std::move(solution));
  }
  if (use_fast_lp) {
    resolve_margin_set(platform, costs, candidates, result,
                       result.exact_resolves);
  }
  return result;
}

AffineSelectionResult solve_affine_fifo_local_search(
    const StarPlatform& platform, const AffineCosts& costs,
    const AffineLocalSearchOptions& options) {
  DLSCHED_EXPECT(!platform.empty(), "empty platform");
  const auto start = steady_clock::now();
  const std::size_t p = platform.size();
  const auto out_of_budget = [&] {
    return options.time_budget_seconds > 0.0 &&
           elapsed_since(start) > options.time_budget_seconds;
  };

  // Seed with the greedy prefix; when even the cheapest-c prefix is
  // infeasible (per-worker latencies can sink worker 1 but not worker 5),
  // fall back to scanning the singletons.
  AffineSelectionResult result =
      solve_affine_fifo_greedy(platform, costs, options.use_fast_lp);
  if (!result.feasible) {
    std::vector<FastCandidate> singletons;
    for (std::size_t i = 0; i < p; ++i) {
      ++result.subsets_tried;
      if (options.use_fast_lp) {
        const ScenarioSolutionD fast =
            solve_affine_fifo_fast(platform, {i}, costs);
        singletons.push_back(
            {{i}, fast.throughput, fast.lp_feasible, std::nullopt});
        continue;
      }
      offer(result, solve_affine_fifo(platform, {i}, costs));
    }
    if (options.use_fast_lp) {
      resolve_margin_set(platform, costs, singletons, result,
                         result.exact_resolves);
    }
    if (!result.feasible) return result;
  }

  std::vector<bool> member(p, false);
  for (const std::size_t w : result.participants) member[w] = true;

  // Best-improvement hill climbing over add / drop / swap moves.  The scan
  // order is fixed, so the search is deterministic.  Consecutive sweeps
  // revisit many subsets (this sweep's drop(y) is the last sweep's
  // swap(y -> x)); a subset seen before can never beat an incumbent that
  // has only improved since, so each LP is solved at most once.
  std::set<std::vector<std::size_t>> seen;
  for (std::size_t step = 0; step < options.max_steps; ++step) {
    AffineSelectionResult round = result;  // incumbent to beat this sweep
    std::optional<std::pair<std::size_t, std::size_t>> best_move;
    std::vector<FastCandidate> candidates;
    std::vector<std::pair<std::size_t, std::size_t>> moves;
    const auto consider = [&](std::size_t drop, std::size_t add) {
      // drop == p: pure add; add == p: pure drop.
      std::vector<std::size_t> candidate;
      candidate.reserve(p);
      for (std::size_t i = 0; i < p; ++i) {
        const bool in = (member[i] && i != drop) || i == add;
        if (in) candidate.push_back(i);
      }
      if (candidate.empty() || !seen.insert(candidate).second) return;
      ++result.subsets_tried;
      if (options.use_fast_lp) {
        const ScenarioSolutionD fast =
            solve_affine_fifo_fast(platform, candidate, costs);
        candidates.push_back({std::move(candidate), fast.throughput,
                              fast.lp_feasible, std::nullopt});
        moves.emplace_back(drop, add);
        return;
      }
      if (offer(round, solve_affine_fifo(platform, candidate, costs))) {
        best_move = {drop, add};
      }
    };
    for (std::size_t i = 0; i < p && !out_of_budget(); ++i) {
      if (!member[i]) {
        consider(p, i);  // add i
        continue;
      }
      consider(i, p);  // drop i
      for (std::size_t j = 0; j < p; ++j) {
        if (member[j]) continue;
        consider(i, j);  // swap i -> j
        if (out_of_budget()) break;
      }
    }
    if (options.use_fast_lp) {
      // The sweep's winning move is the last candidate whose exact
      // throughput improves the round incumbent -- the same "first
      // occurrence of the maximum" the all-exact scan picks, because the
      // margin set is re-offered in the original scan order.
      const std::size_t idx = resolve_margin_set(platform, costs, candidates,
                                                 round, result.exact_resolves);
      if (idx != SIZE_MAX) best_move = moves[idx];
    }
    if (out_of_budget()) {
      result.budget_exhausted = true;
      // A completed evaluation may still have improved the incumbent.
    }
    if (!best_move) {
      round.subsets_tried = result.subsets_tried;
      round.exact_resolves = result.exact_resolves;
      round.budget_exhausted = result.budget_exhausted;
      return round;
    }
    const auto [drop, add] = *best_move;
    if (drop < p) member[drop] = false;
    if (add < p) member[add] = true;
    round.subsets_tried = result.subsets_tried;
    round.exact_resolves = result.exact_resolves;
    round.budget_exhausted = result.budget_exhausted;
    result = std::move(round);
    if (result.budget_exhausted) break;
  }
  return result;
}

}  // namespace dlsched::affine
