// Resource selection under the affine cost model (paper Section 6).
//
// With per-message start-up latencies every enrolled worker costs horizon
// whether or not it receives load, so the hard question becomes *which
// subset* to enroll -- NP-hard on heterogeneous stars per
// Legrand-Yang-Casanova [20].  This module provides the three selection
// strategies the affine solvers expose through the SolverRegistry:
//   * exact subset enumeration (2^p - 1 FIFO LPs) with an optional time
//     budget, so large platforms degrade to "best subset seen" instead of
//     hanging a sweep;
//   * the greedy prefix heuristic (grow the non-decreasing-c prefix while
//     the throughput improves; p LPs);
//   * a deterministic local search over participant sets: start from the
//     greedy prefix and climb through add / drop / swap moves until no
//     single-worker change improves the throughput.
//
// All three report infeasibility (constants alone exceed T = 1 for every
// candidate subset) through `feasible == false` rather than throwing, so a
// batch run records a clean per-job outcome.
#pragma once

#include <cstddef>
#include <vector>

#include "core/affine.hpp"
#include "platform/star_platform.hpp"

namespace dlsched::affine {

struct AffineSelectionResult {
  ScenarioSolution best;                 ///< best subset's solution
  std::vector<std::size_t> participants; ///< the chosen subset (sigma_1 order)
  /// Subsets considered, pruned ones included (so the count matches the
  /// plain enumeration; LPs actually solved = tried - pruned).
  std::size_t subsets_tried = 0;
  std::size_t exact_resolves = 0;        ///< fast mode: LPs re-solved exactly
  std::size_t subsets_pruned = 0;        ///< skipped by the upper bound
  /// Skipped by the double-LP margin screen (after surviving the bound);
  /// exact LPs actually solved = tried - pruned - screened.
  std::size_t subsets_screened = 0;
  std::size_t lp_pivots_total = 0;       ///< exact-LP pivots across the scan
  std::size_t lp_warm_starts = 0;        ///< exact solves with accepted seed
  /// Pivots avoided by accepted warm starts, measured against the most
  /// recent cold solve of the same subset size in the chain (LP dimension
  /// equals enrolled count, so this is a like-for-like yardstick).
  std::size_t lp_pivots_saved = 0;
  bool feasible = false;                 ///< some subset admitted alpha >= 0
  bool budget_exhausted = false;         ///< stopped early on the time budget
};

/// Knobs for the exact subset enumeration.
struct AffineSubsetOptions {
  std::size_t max_workers = 12;      ///< 2^p guard
  double time_budget_seconds = 0.0;  ///< 0 = unlimited
  bool use_fast_lp = false;          ///< screen candidates with the double LP

  /// Carry each evaluated subset's alpha support into the next LP of the
  /// Gray-code walk as a warm-start seed.  Never changes the winner (the
  /// engines' cold-fallback + uniqueness guarantee makes every warm solve
  /// bit-identical to its cold twin); only `lp_pivots*` move.  Exact path
  /// only -- the double screen has no warm start.
  bool warm_start = true;

  /// Skip subsets a one-port knapsack bound proves strictly sub-optimal:
  ///   U(S) = max sum alpha_i  s.t.  sum (c_i+d_i) alpha_i <= 1 - L(S),
  ///                                 0 <= alpha_i <= cap_i,
  /// with cap_i the worker's own chain-row limit -- a relaxation of the
  /// subset's LP, so U(S) >= rho(S).  Also primes the pruning floor by
  /// solving the p FIFO prefixes (one warm chain) before the scan.  The
  /// bound is evaluated in double with a conservative safety slack and
  /// prunes only subsets *strictly* below the floor, so neither the
  /// winner (ties included) nor the feasible flag ever changes.  Exact
  /// path only.
  bool prune = true;

  /// Second pruning tier: before each exact solve, evaluate the candidate
  /// with the double simplex and skip the exact LP when the fast
  /// throughput lands below the incumbent minus the safety margin -- the
  /// same error model (and margin) as `use_fast_lp`, applied inline so
  /// the warm chain and the exact incumbent keep advancing.  Counted in
  /// `subsets_screened`.  Exact path only; needs a positive incumbent.
  bool screen = true;
};

/// Exact resource selection: walks every non-empty subset in Gray-code
/// order over the platform's non-decreasing-c worker order (adjacent
/// subsets differ by one worker, which is what makes the warm-start chain
/// tight).  Throws if platform.size() > options.max_workers.  A positive
/// `time_budget_seconds` stops the enumeration early (best-so-far wins,
/// `budget_exhausted` set).
///
/// `use_fast_lp` screens every candidate with the double simplex and only
/// re-solves exactly, in enumeration order, the candidates whose fast
/// throughput lands within a safety margin of the fast optimum.  The
/// returned winner, participants and solution are bit-identical to the
/// exact enumeration (the final comparison is always between exact
/// rationals); `exact_resolves` counts the LPs that went to the exact
/// engine.
[[nodiscard]] AffineSelectionResult solve_affine_fifo_best_subset(
    const StarPlatform& platform, const AffineCosts& costs,
    const AffineSubsetOptions& options);

/// Legacy signature; delegates with default warm-start + pruning knobs.
[[nodiscard]] AffineSelectionResult solve_affine_fifo_best_subset(
    const StarPlatform& platform, const AffineCosts& costs,
    std::size_t max_workers = 12, double time_budget_seconds = 0.0,
    bool use_fast_lp = false);

/// Greedy selection: grow the prefix of the non-decreasing-c order while
/// the throughput improves.  Polynomial (p LPs); not optimal in general
/// (the problem is NP-hard [20]) but exact on the instances where the
/// optimal subset is a prefix -- the common case, exercised in tests.
/// `use_fast_lp` behaves as in solve_affine_fifo_best_subset (an
/// infeasible fast prefix is confirmed exactly before the scan stops).
[[nodiscard]] AffineSelectionResult solve_affine_fifo_greedy(
    const StarPlatform& platform, const AffineCosts& costs,
    bool use_fast_lp = false);

struct AffineLocalSearchOptions {
  std::size_t max_steps = 200;       ///< accepted-move cap
  double time_budget_seconds = 0.0;  ///< 0 = unlimited
  bool use_fast_lp = false;          ///< screen moves with the double LP
  /// Warm-start every exact move evaluation from the sweep incumbent's
  /// alpha support (each move differs from the incumbent by at most two
  /// workers).  Never changes the search trajectory, only pivot counts.
  bool warm_start = true;
};

/// Local-search refinement over participant sets: starts from the greedy
/// prefix and repeatedly applies the best of all add-one / drop-one /
/// swap-one moves until none improves the throughput.  Deterministic (the
/// move scan order is fixed), never worse than greedy, and polynomial per
/// step (O(p^2) LPs per sweep).
[[nodiscard]] AffineSelectionResult solve_affine_fifo_local_search(
    const StarPlatform& platform, const AffineCosts& costs,
    const AffineLocalSearchOptions& options = {});

}  // namespace dlsched::affine
