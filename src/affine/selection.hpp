// Resource selection under the affine cost model (paper Section 6).
//
// With per-message start-up latencies every enrolled worker costs horizon
// whether or not it receives load, so the hard question becomes *which
// subset* to enroll -- NP-hard on heterogeneous stars per
// Legrand-Yang-Casanova [20].  This module provides the three selection
// strategies the affine solvers expose through the SolverRegistry:
//   * exact subset enumeration (2^p - 1 FIFO LPs) with an optional time
//     budget, so large platforms degrade to "best subset seen" instead of
//     hanging a sweep;
//   * the greedy prefix heuristic (grow the non-decreasing-c prefix while
//     the throughput improves; p LPs);
//   * a deterministic local search over participant sets: start from the
//     greedy prefix and climb through add / drop / swap moves until no
//     single-worker change improves the throughput.
//
// All three report infeasibility (constants alone exceed T = 1 for every
// candidate subset) through `feasible == false` rather than throwing, so a
// batch run records a clean per-job outcome.
#pragma once

#include <cstddef>
#include <vector>

#include "core/affine.hpp"
#include "platform/star_platform.hpp"

namespace dlsched::affine {

struct AffineSelectionResult {
  ScenarioSolution best;                 ///< best subset's solution
  std::vector<std::size_t> participants; ///< the chosen subset (sigma_1 order)
  std::size_t subsets_tried = 0;         ///< LPs evaluated
  std::size_t exact_resolves = 0;        ///< fast mode: LPs re-solved exactly
  bool feasible = false;                 ///< some subset admitted alpha >= 0
  bool budget_exhausted = false;         ///< stopped early on the time budget
};

/// Exact resource selection: tries every non-empty subset (2^p - 1 LPs).
/// Throws if platform.size() > max_workers.  A positive
/// `time_budget_seconds` stops the enumeration early (best-so-far wins,
/// `budget_exhausted` set).
///
/// `use_fast_lp` screens every candidate with the double simplex and only
/// re-solves exactly, in enumeration order, the candidates whose fast
/// throughput lands within a safety margin of the fast optimum.  The
/// returned winner, participants and solution are bit-identical to the
/// exact enumeration (the final comparison is always between exact
/// rationals); `exact_resolves` counts the LPs that went to the exact
/// engine.
[[nodiscard]] AffineSelectionResult solve_affine_fifo_best_subset(
    const StarPlatform& platform, const AffineCosts& costs,
    std::size_t max_workers = 12, double time_budget_seconds = 0.0,
    bool use_fast_lp = false);

/// Greedy selection: grow the prefix of the non-decreasing-c order while
/// the throughput improves.  Polynomial (p LPs); not optimal in general
/// (the problem is NP-hard [20]) but exact on the instances where the
/// optimal subset is a prefix -- the common case, exercised in tests.
/// `use_fast_lp` behaves as in solve_affine_fifo_best_subset (an
/// infeasible fast prefix is confirmed exactly before the scan stops).
[[nodiscard]] AffineSelectionResult solve_affine_fifo_greedy(
    const StarPlatform& platform, const AffineCosts& costs,
    bool use_fast_lp = false);

struct AffineLocalSearchOptions {
  std::size_t max_steps = 200;       ///< accepted-move cap
  double time_budget_seconds = 0.0;  ///< 0 = unlimited
  bool use_fast_lp = false;          ///< screen moves with the double LP
};

/// Local-search refinement over participant sets: starts from the greedy
/// prefix and repeatedly applies the best of all add-one / drop-one /
/// swap-one moves until none improves the throughput.  Deterministic (the
/// move scan order is fixed), never worse than greedy, and polynomial per
/// step (O(p^2) LPs per sweep).
[[nodiscard]] AffineSelectionResult solve_affine_fifo_local_search(
    const StarPlatform& platform, const AffineCosts& costs,
    const AffineLocalSearchOptions& options = {});

}  // namespace dlsched::affine
