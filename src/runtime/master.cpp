#include "runtime/master.hpp"

#include <memory>

#include "runtime/matmul.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dlsched::rt {

namespace {
/// Sentinel gate id held by the master until every initial message left:
/// no return transfer may interleave with the send phase (one-port
/// normalization of paper Section 2.2).
constexpr std::size_t kMasterSentinel = SIZE_MAX;
}  // namespace

MasterReport run_master_worker(const std::vector<WorkerSpeeds>& speeds,
                               const Scenario& scenario,
                               std::span<const std::uint64_t> tasks,
                               const RuntimeConfig& config) {
  DLSCHED_EXPECT(tasks.size() == speeds.size(),
                 "tasks must be indexed like speeds");
  DLSCHED_EXPECT(!config.real_compute || config.time_scale == 1.0,
                 "real computation cannot be time-scaled");
  const std::size_t n = config.matrix_size;
  const std::size_t p = speeds.size();

  // Enrolled workers in both orders.
  std::vector<std::size_t> send_seq;
  std::vector<std::size_t> gate_order{kMasterSentinel};
  for (std::size_t w : scenario.send_order) {
    DLSCHED_EXPECT(w < p, "scenario worker out of range");
    if (tasks[w] > 0) send_seq.push_back(w);
  }
  for (std::size_t w : scenario.return_order) {
    if (tasks[w] > 0) gate_order.push_back(w);
  }

  // Shared infrastructure.
  OnePortArbiter port;
  OrderedGate gate(gate_order);
  Channel results;
  std::vector<std::unique_ptr<Channel>> inboxes(p);
  for (std::size_t w = 0; w < p; ++w) inboxes[w] = std::make_unique<Channel>();
  SharedClock clock{std::chrono::steady_clock::now(), config.time_scale};
  TraceRecorder recorder;

  // Operand matrices (identical content for every task batch; the paper
  // fills matrices randomly since only the work matters).
  Rng rng(7);
  Matrix a(n);
  Matrix b(n);
  a.fill_random(rng);
  b.fill_random(rng);
  std::vector<double> operands;
  operands.reserve(2 * n * n);
  operands.insert(operands.end(), a.data().begin(), a.data().end());
  operands.insert(operands.end(), b.data().begin(), b.data().end());

  std::vector<std::thread> threads;
  threads.reserve(send_seq.size());
  for (std::size_t w : send_seq) {
    WorkerContext ctx;
    ctx.id = w;
    ctx.speeds = speeds[w];
    ctx.config = &config;
    ctx.inbox = inboxes[w].get();
    ctx.results = &results;
    ctx.port = &port;
    ctx.gate = &gate;
    ctx.clock = &clock;
    ctx.recorder = &recorder;
    threads.push_back(spawn_worker(ctx));
  }

  // ---- send phase: sigma_1 order through the one-port arbiter ----------
  gate.wait_turn(kMasterSentinel);  // master owns the first gate slot
  for (std::size_t w : send_seq) {
    port.acquire();
    const double begin = clock.now();
    const double in_bytes = 2.0 * static_cast<double>(n) *
                            static_cast<double>(n) * sizeof(double) *
                            static_cast<double>(tasks[w]);
    paced_sleep(transfer_seconds(config, in_bytes, speeds[w].comm),
                config.time_scale);
    Message task;
    task.tag = kTaskTag;
    task.count = tasks[w];
    task.payload = operands;
    inboxes[w]->send(std::move(task));
    recorder.record(w, sim::Activity::Send, begin, clock.now(),
                    static_cast<double>(tasks[w]));
    port.release();
  }
  gate.advance();  // returns may now start, in sigma_2 order

  // ---- collect phase ----------------------------------------------------
  MasterReport report;
  for (std::size_t k = 0; k < send_seq.size(); ++k) {
    const std::optional<Message> result = results.receive();
    DLSCHED_EXPECT(result.has_value(), "result channel closed early");
    DLSCHED_EXPECT((result->tag & 0xff) == kResultTag,
                   "master received unexpected tag");
    report.tasks_completed += result->count;
  }
  report.makespan = clock.now();
  report.workers_used = send_seq.size();

  for (std::thread& t : threads) t.join();
  report.trace = recorder.take();
  return report;
}

}  // namespace dlsched::rt
