// The master side of the threaded runtime: ships task batches in sigma_1
// order through the one-port arbiter, then collects results in sigma_2
// order, measuring every phase.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/scenario.hpp"
#include "platform/worker.hpp"
#include "runtime/worker_thread.hpp"
#include "sim/trace.hpp"

namespace dlsched::rt {

/// Measured execution.  All times are in *virtual* seconds (wall time
/// multiplied by the config's time_scale), so results are comparable to LP
/// predictions regardless of scaling.
struct MasterReport {
  double makespan = 0.0;
  sim::Trace trace;               ///< send/compute(approx)/return intervals
  std::uint64_t tasks_completed = 0;
  std::size_t workers_used = 0;
};

/// Runs one complete master/worker round.
///
/// `tasks` is platform-indexed (tasks[w] products for worker w; 0 = not
/// enrolled).  The scenario provides sigma_1 / sigma_2 over platform worker
/// ids.  In real_compute mode time_scale must be 1.
[[nodiscard]] MasterReport run_master_worker(
    const std::vector<WorkerSpeeds>& speeds, const Scenario& scenario,
    std::span<const std::uint64_t> tasks, const RuntimeConfig& config);

}  // namespace dlsched::rt
