#include "runtime/one_port.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/error.hpp"

namespace dlsched::rt {

void OnePortArbiter::acquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t ticket = next_ticket_++;
  turn_.wait(lock, [&] { return now_serving_ == ticket; });
}

void OnePortArbiter::release() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++now_serving_;
  }
  turn_.notify_all();
}

std::uint64_t OnePortArbiter::grants() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return now_serving_;
}

void OrderedGate::wait_turn(std::size_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  DLSCHED_EXPECT(
      std::find(order_.begin(), order_.end(), id) != order_.end(),
      "OrderedGate: unknown participant");
  turn_.wait(lock, [&] {
    return position_ < order_.size() && order_[position_] == id;
  });
}

void OrderedGate::advance() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    DLSCHED_EXPECT(position_ < order_.size(), "OrderedGate: already finished");
    ++position_;
  }
  turn_.notify_all();
}

bool OrderedGate::finished() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return position_ >= order_.size();
}

void paced_sleep(double seconds, double time_scale) {
  DLSCHED_EXPECT(time_scale > 0.0, "time scale must be positive");
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(seconds / time_scale));
}

}  // namespace dlsched::rt
