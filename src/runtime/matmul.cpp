#include "runtime/matmul.hpp"

#include <chrono>

#include "util/error.hpp"

namespace dlsched::rt {

void Matrix::fill_random(Rng& rng) {
  for (double& v : data_) v = rng.uniform(-1.0, 1.0);
}

void gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  gemm_rows(a, b, c, a.n());
}

void gemm_rows(const Matrix& a, const Matrix& b, Matrix& c,
               std::size_t rows) {
  const std::size_t n = a.n();
  DLSCHED_EXPECT(b.n() == n && c.n() == n, "gemm: dimension mismatch");
  DLSCHED_EXPECT(rows <= n, "gemm: row count exceeds dimension");
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* pc = c.data().data();
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < n; ++j) pc[i * n + j] = 0.0;
    // ikj order keeps the inner loop unit-stride on both b and c.
    for (std::size_t k = 0; k < n; ++k) {
      const double aik = pa[i * n + k];
      for (std::size_t j = 0; j < n; ++j) {
        pc[i * n + j] += aik * pb[k * n + j];
      }
    }
  }
}

double calibrate_gemm_flops(std::size_t n, std::size_t repetitions) {
  DLSCHED_EXPECT(n > 0 && repetitions > 0, "bad calibration parameters");
  Rng rng(42);
  Matrix a(n);
  Matrix b(n);
  Matrix c(n);
  a.fill_random(rng);
  b.fill_random(rng);
  gemm(a, b, c);  // warm-up
  const auto begin = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < repetitions; ++r) gemm(a, b, c);
  const auto end = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration<double>(end - begin).count() /
      static_cast<double>(repetitions);
  const double flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(n);
  DLSCHED_EXPECT(seconds > 0.0, "calibration measured zero time");
  return flops / seconds;
}

}  // namespace dlsched::rt
