#include "runtime/runtime_app.hpp"

#include "core/solver.hpp"
#include "core/throughput.hpp"
#include "schedule/rounding.hpp"
#include "util/error.hpp"

namespace dlsched::rt {

MatrixApp matching_app(const RuntimeConfig& config) {
  MatrixApp::Config app;
  app.matrix_size = config.matrix_size;
  app.base_bandwidth = config.base_bandwidth;
  app.base_flops = config.base_flops;
  return MatrixApp(app);
}

RuntimeOutcome run_experiment(const RuntimeExperiment& experiment) {
  DLSCHED_EXPECT(!experiment.speeds.empty(), "no workers");
  const MatrixApp app = matching_app(experiment.config);
  const StarPlatform platform = app.platform(experiment.speeds);

  SolveRequest request;
  request.platform = platform;
  request.precision = Precision::Fast;
  const ScenarioSolutionD solution =
      SolverRegistry::instance()
          .run(solver_name_for(experiment.heuristic), request)
          .solution_double();
  DLSCHED_EXPECT(solution.throughput > 0.0, "heuristic found zero throughput");

  RuntimeOutcome outcome;
  outcome.lp_makespan = makespan_for_load(
      solution.throughput, static_cast<double>(experiment.total_tasks));

  // Integral loads in sigma_1 order (the rounding policy hands remainders to
  // the first workers of the send order).
  std::vector<double> ordered_alpha;
  ordered_alpha.reserve(solution.scenario.send_order.size());
  const double scale = static_cast<double>(experiment.total_tasks) /
                       solution.throughput;
  for (std::size_t w : solution.scenario.send_order) {
    ordered_alpha.push_back(solution.alpha[w] * scale);
  }
  const std::vector<std::uint64_t> ordered_tasks =
      round_loads(ordered_alpha, experiment.total_tasks);

  outcome.tasks.assign(platform.size(), 0);
  for (std::size_t k = 0; k < solution.scenario.send_order.size(); ++k) {
    outcome.tasks[solution.scenario.send_order[k]] = ordered_tasks[k];
  }

  MasterReport report =
      run_master_worker(experiment.speeds, solution.scenario, outcome.tasks,
                        experiment.config);
  outcome.measured_makespan = report.makespan;
  outcome.workers_used = report.workers_used;
  outcome.trace = std::move(report.trace);
  return outcome;
}

}  // namespace dlsched::rt
