// One worker thread of the in-process master/worker runtime.
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <thread>

#include "platform/worker.hpp"
#include "runtime/channel.hpp"
#include "runtime/one_port.hpp"
#include "sim/trace.hpp"

namespace dlsched::rt {

/// Virtual-time clock shared by all runtime threads: wall time since the
/// epoch, multiplied by time_scale, so measurements line up with the
/// linear-model's (virtual) seconds.
struct SharedClock {
  std::chrono::steady_clock::time_point epoch;
  double time_scale = 1.0;

  [[nodiscard]] double now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
               .count() *
           time_scale;
  }
};

/// Thread-safe trace sink.
class TraceRecorder {
 public:
  void record(std::size_t worker, sim::Activity activity, double start,
              double end, double load) {
    const std::lock_guard<std::mutex> lock(mutex_);
    trace_.record(worker, activity, start, end, load);
  }

  [[nodiscard]] sim::Trace take() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return std::move(trace_);
  }

 private:
  std::mutex mutex_;
  sim::Trace trace_;
};

/// Message tags of the runtime protocol.
inline constexpr std::uint64_t kTaskTag = 1;
inline constexpr std::uint64_t kResultTag = 2;

/// Shared knobs of one runtime execution.
struct RuntimeConfig {
  std::size_t matrix_size = 64;    ///< n
  double base_bandwidth = 50e6;    ///< virtual bytes/s at comm factor 1
  double base_flops = 4e8;         ///< flop/s at comp factor 1 (sleep mode)
  double message_latency = 0.0;    ///< virtual seconds per message
  bool real_compute = false;       ///< true: actual GEMM; false: paced sleep
  double time_scale = 1.0;         ///< sleeps divided by this (sleep mode)
};

/// Everything a worker thread needs.  Lifetime of the referenced objects
/// must cover the thread's; the master guarantees this.
struct WorkerContext {
  std::size_t id = 0;              ///< platform worker index
  WorkerSpeeds speeds;
  const RuntimeConfig* config = nullptr;
  Channel* inbox = nullptr;        ///< task messages from the master
  Channel* results = nullptr;      ///< shared result channel to the master
  OnePortArbiter* port = nullptr;  ///< master port arbiter
  OrderedGate* gate = nullptr;     ///< sigma_2 return-order gate
  const SharedClock* clock = nullptr;
  TraceRecorder* recorder = nullptr;  ///< optional
};

/// Body of the worker thread: receive one task batch, compute (real GEMM at
/// emulated speed, or paced sleep), then take the return turn, occupy the
/// master port for the emulated transfer time, and deliver the result.
void worker_main(WorkerContext context);

/// Convenience: spawns a std::thread running worker_main.
[[nodiscard]] std::thread spawn_worker(WorkerContext context);

/// Emulated transfer time of `bytes` through a link with the given comm
/// factor (latency included).
[[nodiscard]] double transfer_seconds(const RuntimeConfig& config,
                                      double bytes, double comm_factor);

/// Emulated computation time of `tasks` products at the given comp factor
/// (sleep mode formula; real mode derives speed from the GEMM itself).
[[nodiscard]] double compute_seconds(const RuntimeConfig& config,
                                     std::uint64_t tasks, double comp_factor);

}  // namespace dlsched::rt
