// One-port enforcement primitives for the threaded runtime.
//
// OnePortArbiter serializes every communication touching the master's port
// (FIFO ticket lock).  OrderedGate imposes a *specific* service order (the
// schedule's sigma_2) on the workers' return transfers: worker k's return
// may only start once workers earlier in the order have finished theirs --
// the runtime analogue of the master posting receives in schedule order.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

namespace dlsched::rt {

/// FIFO mutual exclusion over the master's network port.
class OnePortArbiter {
 public:
  /// Blocks until the port is granted to this caller (FIFO order).
  void acquire();
  /// Releases the port; the longest-waiting acquire proceeds.
  void release();

  /// Total number of grants so far (observability for tests).
  [[nodiscard]] std::uint64_t grants() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable turn_;
  std::uint64_t next_ticket_ = 0;
  std::uint64_t now_serving_ = 0;
};

/// Turn-taking in a fixed order of participant ids.
class OrderedGate {
 public:
  explicit OrderedGate(std::vector<std::size_t> order)
      : order_(std::move(order)) {}

  /// Blocks until it is `id`'s turn.  `id` must appear in the order.
  void wait_turn(std::size_t id);
  /// Ends the current turn; the next participant in order proceeds.
  void advance();

  [[nodiscard]] bool finished() const;

 private:
  std::vector<std::size_t> order_;
  mutable std::mutex mutex_;
  std::condition_variable turn_;
  std::size_t position_ = 0;
};

/// Sleeps for the scaled duration (duration / time_scale).  All pacing in
/// the runtime goes through this one function so tests can reason about it.
void paced_sleep(double seconds, double time_scale);

}  // namespace dlsched::rt
