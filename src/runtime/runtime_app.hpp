// End-to-end runtime experiments: schedule with the LP, execute on the
// threaded runtime, compare measurement against prediction -- the structure
// of every Section 5 experiment.
#pragma once

#include <cstdint>
#include <vector>

#include "core/heuristics.hpp"
#include "platform/matrix_app.hpp"
#include "runtime/master.hpp"

namespace dlsched::rt {

struct RuntimeExperiment {
  std::vector<WorkerSpeeds> speeds;
  Heuristic heuristic = Heuristic::IncC;
  std::uint64_t total_tasks = 100;  ///< M
  RuntimeConfig config;
};

struct RuntimeOutcome {
  double lp_makespan = 0.0;        ///< LP-predicted time for the M tasks
  double measured_makespan = 0.0;  ///< threaded runtime measurement
  std::vector<std::uint64_t> tasks;  ///< integral per-worker assignment
  std::size_t workers_used = 0;
  sim::Trace trace;
};

/// The MatrixApp whose linear model matches a runtime config (same n, same
/// base rates) -- predictions and measurements are then directly
/// comparable.
[[nodiscard]] MatrixApp matching_app(const RuntimeConfig& config);

/// Solves the heuristic's LP, rounds the loads (paper policy), runs the
/// threaded runtime, and reports both times.
[[nodiscard]] RuntimeOutcome run_experiment(const RuntimeExperiment& experiment);

}  // namespace dlsched::rt
