// Dense square matrices and the naive GEMM kernel used as the payload
// computation of the runtime (the paper's target application, Section 5).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace dlsched::rt {

/// Row-major square matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  explicit Matrix(std::size_t n) : n_(n), data_(n * n, 0.0) {}

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return data_.size() * sizeof(double);
  }
  [[nodiscard]] double& at(std::size_t row, std::size_t col) {
    return data_[row * n_ + col];
  }
  [[nodiscard]] double at(std::size_t row, std::size_t col) const {
    return data_[row * n_ + col];
  }
  [[nodiscard]] const std::vector<double>& data() const noexcept {
    return data_;
  }
  [[nodiscard]] std::vector<double>& data() noexcept { return data_; }

  /// Fills with uniform values in [-1, 1] (paper Section 5.2: content is
  /// irrelevant, only the work matters).
  void fill_random(Rng& rng);

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

/// c = a * b, naive triple loop (the kernel whose flop rate the linear
/// model's w is calibrated against).
void gemm(const Matrix& a, const Matrix& b, Matrix& c);

/// Computes only rows [0, rows) of the product -- the paper's device for
/// emulating a k-times-faster worker by doing 1/k of the work (Section 5.2).
void gemm_rows(const Matrix& a, const Matrix& b, Matrix& c, std::size_t rows);

/// Measures the host's effective flop rate on an n x n naive GEMM
/// (flops = 2 n^3 / seconds).  Used to calibrate MatrixApp::Config so the
/// LP predictions and the threaded runtime agree.
[[nodiscard]] double calibrate_gemm_flops(std::size_t n,
                                          std::size_t repetitions = 3);

}  // namespace dlsched::rt
