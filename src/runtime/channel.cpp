#include "runtime/channel.hpp"

namespace dlsched::rt {

void Channel::send(Message message) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(message));
  }
  available_.notify_one();
}

std::optional<Message> Channel::receive() {
  std::unique_lock<std::mutex> lock(mutex_);
  available_.wait(lock, [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return std::nullopt;
  Message message = std::move(queue_.front());
  queue_.pop();
  return message;
}

std::optional<Message> Channel::try_receive() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  Message message = std::move(queue_.front());
  queue_.pop();
  return message;
}

void Channel::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  available_.notify_all();
}

bool Channel::closed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t Channel::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace dlsched::rt
