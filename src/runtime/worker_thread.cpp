#include "runtime/worker_thread.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/matmul.hpp"
#include "util/error.hpp"

namespace dlsched::rt {

double transfer_seconds(const RuntimeConfig& config, double bytes,
                        double comm_factor) {
  DLSCHED_EXPECT(comm_factor > 0.0, "comm factor must be positive");
  return config.message_latency +
         bytes / (config.base_bandwidth * comm_factor);
}

double compute_seconds(const RuntimeConfig& config, std::uint64_t tasks,
                       double comp_factor) {
  DLSCHED_EXPECT(comp_factor > 0.0, "comp factor must be positive");
  const double n = static_cast<double>(config.matrix_size);
  const double flops = 2.0 * n * n * n * static_cast<double>(tasks);
  return flops / (config.base_flops * comp_factor);
}

void worker_main(WorkerContext ctx) {
  DLSCHED_EXPECT(ctx.config && ctx.inbox && ctx.results && ctx.port &&
                     ctx.gate && ctx.clock,
                 "incomplete worker context");
  const RuntimeConfig& config = *ctx.config;
  const std::size_t n = config.matrix_size;

  const std::optional<Message> task = ctx.inbox->receive();
  if (!task.has_value() || task->count == 0) return;  // not enrolled

  DLSCHED_EXPECT(task->tag == kTaskTag, "worker received unexpected tag");
  DLSCHED_EXPECT(task->payload.size() == 2 * n * n,
                 "task payload must carry the two operand matrices");

  // ---- compute phase -------------------------------------------------
  const double compute_begin = ctx.clock->now();
  Matrix c(n);
  if (config.real_compute) {
    // The paper's speed emulation: a k-times-faster worker computes 1/k of
    // the rows of each product (Section 5.2).
    Matrix a(n);
    Matrix b(n);
    std::copy_n(task->payload.begin(), n * n, a.data().begin());
    std::copy_n(task->payload.begin() + static_cast<std::ptrdiff_t>(n * n),
                n * n, b.data().begin());
    const std::size_t rows = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(static_cast<double>(n) / ctx.speeds.comp)));
    for (std::uint64_t t = 0; t < task->count; ++t) {
      gemm_rows(a, b, c, std::min(rows, n));
    }
  } else {
    paced_sleep(compute_seconds(config, task->count, ctx.speeds.comp),
                config.time_scale);
  }

  const double compute_end = ctx.clock->now();
  if (ctx.recorder) {
    ctx.recorder->record(ctx.id, sim::Activity::Compute, compute_begin,
                         compute_end, static_cast<double>(task->count));
  }

  // ---- return phase: sigma_2 turn, then exclusive master port ---------
  ctx.gate->wait_turn(ctx.id);
  ctx.port->acquire();
  const double return_begin = ctx.clock->now();
  const double out_bytes =
      static_cast<double>(n) * static_cast<double>(n) * sizeof(double) *
      static_cast<double>(task->count);
  paced_sleep(transfer_seconds(config, out_bytes, ctx.speeds.comm),
              config.time_scale);
  Message result;
  result.tag = kResultTag;
  result.count = task->count;
  result.payload = c.data();
  // Stamp the sender id into the payload-free field: reuse `tag` upper bits.
  result.tag |= static_cast<std::uint64_t>(ctx.id) << 8;
  ctx.results->send(std::move(result));
  if (ctx.recorder) {
    ctx.recorder->record(ctx.id, sim::Activity::Return, return_begin,
                         ctx.clock->now(), static_cast<double>(task->count));
  }
  ctx.port->release();
  ctx.gate->advance();
}

std::thread spawn_worker(WorkerContext context) {
  return std::thread(worker_main, std::move(context));
}

}  // namespace dlsched::rt
