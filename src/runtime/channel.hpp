// Blocking in-process message channels -- the runtime's MPI substitute.
//
// A Channel is an unbounded MPSC/SPSC queue of Messages with blocking
// receive.  Transfer *times* are not modelled here; the sender paces
// itself while holding the one-port token (see one_port.hpp), exactly as a
// blocking MPI_Send occupies the master's NIC.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <queue>
#include <vector>

namespace dlsched::rt {

/// A payload-carrying message.  `tag` distinguishes message kinds,
/// `count` carries the number of load units covered by the payload.
struct Message {
  std::uint64_t tag = 0;
  std::uint64_t count = 0;
  std::vector<double> payload;
};

class Channel {
 public:
  /// Enqueues a message (never blocks; the queue is unbounded).
  void send(Message message);

  /// Blocks until a message is available or the channel is closed.
  /// Returns nullopt iff closed and drained.
  [[nodiscard]] std::optional<Message> receive();

  /// Non-blocking receive.
  [[nodiscard]] std::optional<Message> try_receive();

  /// Closes the channel; pending messages remain receivable.
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t pending() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::queue<Message> queue_;
  bool closed_ = false;
};

}  // namespace dlsched::rt
