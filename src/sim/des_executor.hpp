// Discrete-event execution of a one-port master/worker run.
//
// This is the reproduction's stand-in for the paper's MPI testbed: it
// executes the *protocol* (not the algebra) on the event engine --
//   master sends initial messages in sigma_1 order, holding its single
//   port; workers compute as data arrives; the master then serves return
//   messages in sigma_2 order, waiting for the designated worker if it has
//   not finished (the one-port FIFO/LIFO discipline of the paper);
// with integral task counts and the NoiseModel's latency/variance applied
// per message and per computation.  With NoiseModel::none() and fractional
// loads, the resulting makespan equals the analytic packed_makespan()
// exactly (asserted in the test suite).
#pragma once

#include <span>

#include "core/scenario.hpp"
#include "platform/star_platform.hpp"
#include "sim/noise.hpp"
#include "sim/trace.hpp"

namespace dlsched::sim {

struct DesResult {
  Trace trace;
  double makespan = 0.0;
  std::size_t events = 0;  ///< engine events processed
};

/// Simulates the run.  `loads` is platform-indexed (zero = not enrolled).
[[nodiscard]] DesResult execute(const StarPlatform& platform,
                                const Scenario& scenario,
                                std::span<const double> loads,
                                const NoiseModel& noise = NoiseModel::none());

}  // namespace dlsched::sim
