// Discrete-event execution of a one-port master/worker run.
//
// This is the reproduction's stand-in for the paper's MPI testbed: it
// executes the *protocol* (not the algebra) on the event engine --
//   master sends initial messages in sigma_1 order, holding its single
//   port; workers compute as data arrives; the master then serves return
//   messages in sigma_2 order, waiting for the designated worker if it has
//   not finished (the one-port FIFO/LIFO discipline of the paper);
// with integral task counts and the NoiseModel's latency/variance applied
// per message and per computation.  With NoiseModel::none() and fractional
// loads, the resulting makespan equals the analytic packed_makespan()
// exactly (asserted in the test suite).
//
// `DesOptions` extends the protocol to the affine cost model of Section 6:
// per-activity start-up latencies (optionally per worker) and latency-only
// messages to zero-load participants -- the affine LP charges every
// *participant* its constants whether or not it receives load, so a
// faithful replay must ship those empty messages too (affine/replay.hpp
// asserts the replayed makespan against the LP objective).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/scenario.hpp"
#include "platform/star_platform.hpp"
#include "sim/noise.hpp"
#include "sim/trace.hpp"

namespace dlsched::sim {

struct DesResult {
  Trace trace;
  double makespan = 0.0;
  std::size_t events = 0;  ///< engine events processed
};

/// Affine-model execution options.  The latency vectors are
/// platform-indexed; empty means zero latency for that activity.
struct DesOptions {
  std::vector<double> send_latency;     ///< added to every initial message
  std::vector<double> compute_latency;  ///< added to every computation
  std::vector<double> return_latency;   ///< added to every return message
  /// Keep zero-load scenario workers in the protocol: their messages and
  /// computation carry only the latency constants (affine participants).
  bool include_zero_loads = false;

  [[nodiscard]] bool is_linear() const noexcept {
    return send_latency.empty() && compute_latency.empty() &&
           return_latency.empty() && !include_zero_loads;
  }
};

/// Simulates the run.  `loads` is platform-indexed (zero = not enrolled,
/// unless `options.include_zero_loads`).
[[nodiscard]] DesResult execute(const StarPlatform& platform,
                                const Scenario& scenario,
                                std::span<const double> loads,
                                const DesOptions& options,
                                const NoiseModel& noise = NoiseModel::none());

/// Linear-model convenience (no latencies, zero loads dropped).
[[nodiscard]] DesResult execute(const StarPlatform& platform,
                                const Scenario& scenario,
                                std::span<const double> loads,
                                const NoiseModel& noise = NoiseModel::none());

}  // namespace dlsched::sim
