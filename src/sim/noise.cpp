#include "sim/noise.hpp"

#include "util/error.hpp"

namespace dlsched::sim {

NoiseModel NoiseModel::cluster_like(std::uint64_t seed) {
  NoiseModel model;
  model.comm_latency = 1e-4;     // ~100 us per MPI message
  model.comm_rel_stdev = 0.03;   // 3 % link variance
  model.comp_rel_stdev = 0.05;   // 5 % CPU variance
  model.seed = seed;
  return model;
}

double NoiseSampler::message_time(double ideal) {
  DLSCHED_EXPECT(ideal >= 0.0, "negative ideal duration");
  double duration = ideal;
  if (model_.comm_rel_stdev > 0.0) {
    duration *= rng_.noise_factor(model_.comm_rel_stdev);
  }
  return model_.comm_latency + duration;
}

double NoiseSampler::compute_time(double ideal) {
  DLSCHED_EXPECT(ideal >= 0.0, "negative ideal duration");
  double duration = ideal;
  if (model_.comp_rel_stdev > 0.0) {
    duration *= rng_.noise_factor(model_.comp_rel_stdev);
  }
  return duration;
}

}  // namespace dlsched::sim
