#include "sim/engine.hpp"

#include "util/error.hpp"

namespace dlsched::sim {

void Engine::schedule_at(double t, Callback fn) {
  DLSCHED_EXPECT(t >= now_, "cannot schedule an event in the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Engine::schedule_in(double delay, Callback fn) {
  DLSCHED_EXPECT(delay >= 0.0, "negative delay");
  schedule_at(now_ + delay, std::move(fn));
}

double Engine::run() {
  while (!queue_.empty()) {
    // The queue may grow during the callback, so pop first.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++processed_;
    event.fn();
  }
  return now_;
}

double Engine::run_until(double deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++processed_;
    event.fn();
  }
  if (queue_.empty() && now_ < deadline) now_ = deadline;
  return now_;
}

void PortResource::acquire(Engine::Callback on_grant) {
  if (!busy_) {
    busy_ = true;
    engine_.schedule_in(0.0, std::move(on_grant));
  } else {
    waiting_.push(std::move(on_grant));
  }
}

void PortResource::release() {
  DLSCHED_EXPECT(busy_, "release of a free port");
  if (waiting_.empty()) {
    busy_ = false;
    return;
  }
  Engine::Callback next = std::move(waiting_.front());
  waiting_.pop();
  engine_.schedule_in(0.0, std::move(next));
}

}  // namespace dlsched::sim
