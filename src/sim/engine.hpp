// A minimal discrete-event simulation engine.
//
// Events are (time, callback) pairs; ties break in scheduling order, which
// makes runs fully deterministic.  The engine underlies the des_executor
// that substitutes for the paper's MPI testbed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace dlsched::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `t` (>= now()).
  void schedule_at(double t, Callback fn);
  /// Schedules `fn` `delay` time units from now (delay >= 0).
  void schedule_in(double delay, Callback fn);

  /// Runs until the event queue drains; returns the final clock value.
  double run();
  /// Runs until the queue drains or the clock passes `deadline`.
  double run_until(double deadline);

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] std::size_t events_processed() const noexcept {
    return processed_;
  }
  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
};

/// A FIFO-granting exclusive resource (the master's network port).
/// Requests are queued; `release` grants the next request at the current
/// simulation time.
class PortResource {
 public:
  explicit PortResource(Engine& engine) : engine_(engine) {}

  /// Requests the port; `on_grant` fires (via the engine, at the current
  /// time) once the port is free and all earlier requests completed.
  void acquire(Engine::Callback on_grant);
  /// Releases the port; the next queued acquire is granted immediately.
  void release();

  [[nodiscard]] bool busy() const noexcept { return busy_; }
  [[nodiscard]] std::size_t queue_length() const noexcept {
    return waiting_.size();
  }

 private:
  Engine& engine_;
  bool busy_ = false;
  std::queue<Engine::Callback> waiting_;
};

}  // namespace dlsched::sim
