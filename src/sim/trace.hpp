// Execution traces produced by the simulator (and convertible to the
// schedule Timeline for validation / Gantt rendering).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "platform/star_platform.hpp"
#include "schedule/timeline.hpp"

namespace dlsched::sim {

enum class Activity { Send, Compute, Return };

[[nodiscard]] constexpr const char* to_string(Activity a) noexcept {
  switch (a) {
    case Activity::Send: return "send";
    case Activity::Compute: return "compute";
    case Activity::Return: return "return";
  }
  return "?";
}

struct TraceEvent {
  std::size_t worker = 0;
  Activity activity = Activity::Send;
  double start = 0.0;
  double end = 0.0;
  double load = 0.0;  ///< load units moved / processed by this activity
};

struct Trace {
  std::vector<TraceEvent> events;
  double makespan = 0.0;

  void record(std::size_t worker, Activity activity, double start, double end,
              double load);

  /// One lane per participating worker (workers with all-zero activity are
  /// omitted), in first-reception order.
  [[nodiscard]] Timeline to_timeline() const;

  /// Fraction of [0, makespan] during which the master port is busy.
  [[nodiscard]] double master_utilization() const;

  /// CSV rows: worker,activity,start,end,load.
  [[nodiscard]] std::string to_csv(const StarPlatform& platform) const;

  /// Chrome-tracing ("about://tracing" / Perfetto) JSON: complete events
  /// with one row per worker plus a master row for the communications.
  /// Times are exported in microseconds (the format's unit).
  [[nodiscard]] std::string to_chrome_json(const StarPlatform& platform) const;
};

}  // namespace dlsched::sim
