#include "sim/des_executor.hpp"

#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "util/error.hpp"

namespace dlsched::sim {

namespace {

double latency_of(const std::vector<double>& latencies, std::size_t w) {
  return latencies.empty() ? 0.0 : latencies[w];
}

/// Mutable run state shared by the event callbacks.
struct RunState {
  const StarPlatform& platform;
  const DesOptions& options;
  std::vector<std::size_t> send_seq;    ///< enrolled workers, sigma_1 order
  std::vector<std::size_t> return_seq;  ///< enrolled workers, sigma_2 order
  std::vector<double> load;             ///< platform-indexed
  NoiseSampler noise;
  Engine engine;
  Trace trace;

  std::vector<bool> computed;  ///< platform-indexed completion flags
  std::size_t next_send = 0;
  std::size_t next_return = 0;
  bool sends_done = false;
  bool return_active = false;

  RunState(const StarPlatform& p, const DesOptions& opts,
           const NoiseModel& model)
      : platform(p), options(opts), noise(model), computed(p.size(), false) {}

  void start_next_send() {
    if (next_send == send_seq.size()) {
      sends_done = true;
      try_start_return();
      return;
    }
    const std::size_t w = send_seq[next_send];
    ++next_send;
    const Worker& worker = platform.worker(w);
    const double duration = latency_of(options.send_latency, w) +
                            noise.message_time(load[w] * worker.c);
    const double start = engine.now();
    trace.record(w, Activity::Send, start, start + duration, load[w]);
    engine.schedule_in(duration, [this, w] {
      begin_compute(w);
      start_next_send();
    });
  }

  void begin_compute(std::size_t w) {
    const Worker& worker = platform.worker(w);
    const double duration = latency_of(options.compute_latency, w) +
                            noise.compute_time(load[w] * worker.w);
    const double start = engine.now();
    trace.record(w, Activity::Compute, start, start + duration, load[w]);
    engine.schedule_in(duration, [this, w] {
      computed[w] = true;
      try_start_return();
    });
  }

  /// One-port return service: strictly in sigma_2 order, one at a time,
  /// only after every initial message left the master.
  void try_start_return() {
    if (!sends_done || return_active) return;
    if (next_return == return_seq.size()) return;
    const std::size_t w = return_seq[next_return];
    if (!computed[w]) return;  // retried when its computation completes
    ++next_return;
    return_active = true;
    const Worker& worker = platform.worker(w);
    const double duration = latency_of(options.return_latency, w) +
                            noise.message_time(load[w] * worker.d);
    const double start = engine.now();
    trace.record(w, Activity::Return, start, start + duration, load[w]);
    engine.schedule_in(duration, [this] {
      return_active = false;
      try_start_return();
    });
  }
};

}  // namespace

DesResult execute(const StarPlatform& platform, const Scenario& scenario,
                  std::span<const double> loads, const DesOptions& options,
                  const NoiseModel& noise) {
  scenario.check(platform);
  DLSCHED_EXPECT(loads.size() == platform.size(),
                 "loads must be platform-indexed");
  const auto check_latencies = [&](const std::vector<double>& latencies,
                                   const char* what) {
    DLSCHED_EXPECT(latencies.empty() || latencies.size() == platform.size(),
                   std::string(what) + " latencies must be platform-indexed");
  };
  check_latencies(options.send_latency, "send");
  check_latencies(options.compute_latency, "compute");
  check_latencies(options.return_latency, "return");

  RunState state(platform, options, noise);
  state.load.assign(loads.begin(), loads.end());
  for (double a : state.load) DLSCHED_EXPECT(a >= 0.0, "negative load");
  for (std::size_t w : scenario.send_order) {
    if (options.include_zero_loads || state.load[w] > 0.0) {
      state.send_seq.push_back(w);
    }
  }
  for (std::size_t w : scenario.return_order) {
    if (options.include_zero_loads || state.load[w] > 0.0) {
      state.return_seq.push_back(w);
    }
  }

  state.engine.schedule_at(0.0, [&state] { state.start_next_send(); });
  const double end = state.engine.run();

  DesResult result;
  result.makespan = std::max(end, state.trace.makespan);
  result.events = state.engine.events_processed();
  result.trace = std::move(state.trace);
  DLSCHED_EXPECT(state.next_return == state.return_seq.size(),
                 "simulation ended with unreturned results");
  return result;
}

DesResult execute(const StarPlatform& platform, const Scenario& scenario,
                  std::span<const double> loads, const NoiseModel& noise) {
  return execute(platform, scenario, loads, DesOptions{}, noise);
}

}  // namespace dlsched::sim
