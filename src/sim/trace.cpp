#include "sim/trace.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace dlsched::sim {

void Trace::record(std::size_t worker, Activity activity, double start,
                   double end, double load) {
  DLSCHED_EXPECT(end >= start, "trace event with negative duration");
  events.push_back(TraceEvent{worker, activity, start, end, load});
  makespan = std::max(makespan, end);
}

Timeline Trace::to_timeline() const {
  // Gather per-worker activities in encounter order.
  std::vector<std::size_t> order;
  std::map<std::size_t, WorkerLane> lanes;
  for (const TraceEvent& event : events) {
    auto [it, inserted] = lanes.try_emplace(event.worker);
    if (inserted) {
      it->second.worker = event.worker;
      order.push_back(event.worker);
    }
    Interval span{event.start, event.end};
    switch (event.activity) {
      case Activity::Send: it->second.recv = span; break;
      case Activity::Compute: it->second.compute = span; break;
      case Activity::Return: it->second.ret = span; break;
    }
  }
  Timeline timeline;
  timeline.makespan = makespan;
  for (std::size_t w : order) timeline.lanes.push_back(lanes.at(w));
  std::sort(timeline.lanes.begin(), timeline.lanes.end(),
            [](const WorkerLane& a, const WorkerLane& b) {
              return a.recv.start < b.recv.start;
            });
  return timeline;
}

double Trace::master_utilization() const {
  if (makespan <= 0.0) return 0.0;
  double busy = 0.0;
  for (const TraceEvent& event : events) {
    if (event.activity != Activity::Compute) {
      busy += event.end - event.start;
    }
  }
  return busy / makespan;
}

std::string Trace::to_chrome_json(const StarPlatform& platform) const {
  // Complete ("X") events; pid 0; tid 0 = master (communications),
  // tid = worker index + 1 for computations.
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& name, std::size_t tid, double start,
                  double duration, double load) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << name << "\",\"ph\":\"X\",\"pid\":0,\"tid\":"
        << tid << ",\"ts\":" << format_double(start * 1e6, 3)
        << ",\"dur\":" << format_double(duration * 1e6, 3)
        << ",\"args\":{\"load\":" << format_double(load, 9) << "}}";
  };
  for (const TraceEvent& event : events) {
    const std::string& worker = platform.worker(event.worker).name;
    const double duration = event.end - event.start;
    switch (event.activity) {
      case Activity::Send:
        emit("send->" + worker, 0, event.start, duration, event.load);
        break;
      case Activity::Return:
        emit("recv<-" + worker, 0, event.start, duration, event.load);
        break;
      case Activity::Compute:
        emit("compute " + worker, event.worker + 1, event.start, duration,
             event.load);
        break;
    }
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

std::string Trace::to_csv(const StarPlatform& platform) const {
  std::ostringstream out;
  out << "worker,activity,start,end,load\n";
  for (const TraceEvent& event : events) {
    out << platform.worker(event.worker).name << ','
        << to_string(event.activity) << ',' << format_double(event.start, 9)
        << ',' << format_double(event.end, 9) << ','
        << format_double(event.load, 9) << '\n';
  }
  return out.str();
}

}  // namespace dlsched::sim
