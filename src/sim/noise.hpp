// Perturbation model for "real" executions.
//
// The paper's MPI runs deviate from the LP prediction through (i) integral
// task counts, (ii) per-message latency the linear model ignores, and
// (iii) run-to-run variance.  This model reproduces (ii) and (iii):
// message times become  latency + duration * factor  and compute times
// duration * factor, with factor ~ max(floor, 1 + N(0, stdev)), seeded
// deterministically.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace dlsched::sim {

struct NoiseModel {
  double comm_latency = 0.0;       ///< seconds added to every message
  double comm_rel_stdev = 0.0;     ///< relative stdev of link-speed noise
  double comp_rel_stdev = 0.0;     ///< relative stdev of compute-speed noise
  std::uint64_t seed = 1;

  /// The exact (noise-free, zero-latency) model.
  static NoiseModel none() { return NoiseModel{}; }
  /// Mild perturbation approximating the paper's cluster variance (a few
  /// percent on both links and CPUs plus a small per-message latency).
  static NoiseModel cluster_like(std::uint64_t seed);

  [[nodiscard]] bool is_exact() const noexcept {
    return comm_latency == 0.0 && comm_rel_stdev == 0.0 &&
           comp_rel_stdev == 0.0;
  }
};

/// Stateful sampler; one per simulation run.
class NoiseSampler {
 public:
  explicit NoiseSampler(const NoiseModel& model)
      : model_(model), rng_(model.seed) {}

  /// Wall time of a message whose ideal (linear-model) time is `ideal`.
  [[nodiscard]] double message_time(double ideal);
  /// Wall time of a computation whose ideal time is `ideal`.
  [[nodiscard]] double compute_time(double ideal);

 private:
  NoiseModel model_;
  Rng rng_;
};

}  // namespace dlsched::sim
