#include "numeric/bigint.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>
#include <utility>

#include "numeric/limb_arena.hpp"
#include "util/error.hpp"

namespace dlsched::numeric {

namespace {
// Karatsuba pays off only for operands beyond this many limbs; below it the
// cache-friendly schoolbook loop wins.
constexpr std::size_t kKaratsubaThreshold = 32;

// Arena-backed scratch vector for divmod's normalized operands.
struct ArenaScratch {
  std::vector<std::uint32_t> buf;
  ArenaScratch() { LimbArena::local().acquire(buf); }
  ~ArenaScratch() { LimbArena::local().release(buf); }
};
}  // namespace

BigInt::BigInt(std::int64_t value) {
  if (value > -kSmallLimit && value < kSmallLimit) {
    small_ = value;
    return;
  }
  is_small_ = false;
  sign_ = value < 0 ? -1 : 1;
  // Avoid UB on INT64_MIN: negate in unsigned space.
  assign_magnitude(value < 0 ? ~static_cast<std::uint64_t>(value) + 1ULL
                             : static_cast<std::uint64_t>(value));
}

BigInt::BigInt(std::uint64_t value) {
  if (value < static_cast<std::uint64_t>(kSmallLimit)) {
    small_ = static_cast<std::int64_t>(value);
    return;
  }
  is_small_ = false;
  sign_ = 1;
  assign_magnitude(value);
}

void BigInt::assign_magnitude(unsigned __int128 magnitude) {
  LimbArena::local().acquire(limbs_);
  limbs_.clear();
  while (magnitude != 0) {
    limbs_.push_back(static_cast<Limb>(magnitude & 0xffffffffULL));
    magnitude >>= kLimbBits;
  }
}

BigInt BigInt::from_string(std::string_view text) {
  DLSCHED_EXPECT(!text.empty(), "BigInt::from_string: empty input");
  bool negative = false;
  std::size_t pos = 0;
  if (text[0] == '+' || text[0] == '-') {
    negative = text[0] == '-';
    pos = 1;
  }
  DLSCHED_EXPECT(pos < text.size(), "BigInt::from_string: sign only");
  BigInt result;
  // Consume 9 decimal digits at a time: result = result * 10^9 + chunk.
  while (pos < text.size()) {
    const std::size_t take = std::min<std::size_t>(9, text.size() - pos);
    std::uint64_t chunk = 0;
    std::uint64_t scale = 1;
    for (std::size_t i = 0; i < take; ++i) {
      const char ch = text[pos + i];
      DLSCHED_EXPECT(ch >= '0' && ch <= '9',
                     "BigInt::from_string: non-digit character");
      chunk = chunk * 10 + static_cast<std::uint64_t>(ch - '0');
      scale *= 10;
    }
    result *= BigInt(scale);
    result += BigInt(chunk);
    pos += take;
  }
  if (negative) result.negate();
  result.normalize();
  return result;
}

std::size_t BigInt::bit_length() const noexcept {
  if (is_small_) {
    return static_cast<std::size_t>(std::bit_width(small_magnitude()));
  }
  if (limbs_.empty()) return 0;
  const Limb top = limbs_.back();
  const unsigned top_bits = kLimbBits - static_cast<unsigned>(std::countl_zero(top));
  return (limbs_.size() - 1) * kLimbBits + top_bits;
}

std::size_t BigInt::limb_count() const noexcept {
  if (!is_small_) return limbs_.size();
  const std::uint64_t mag = small_magnitude();
  if (mag == 0) return 0;
  return (mag >> kLimbBits) != 0 ? 2 : 1;
}

BigInt BigInt::abs() const {
  BigInt result = *this;
  if (result.is_negative()) result.negate();
  return result;
}

void BigInt::trim(std::vector<Limb>& limbs) noexcept {
  while (!limbs.empty() && limbs.back() == 0) limbs.pop_back();
}

void BigInt::normalize() noexcept {
  if (is_small_) return;
  trim(limbs_);
  if (limbs_.empty()) {
    is_small_ = true;
    small_ = 0;
    sign_ = 0;
    LimbArena::local().release(limbs_);
    return;
  }
  if (limbs_.size() <= 2) {
    const std::uint64_t mag =
        limbs_.size() == 2
            ? (static_cast<std::uint64_t>(limbs_[1]) << kLimbBits) | limbs_[0]
            : limbs_[0];
    if (mag < static_cast<std::uint64_t>(kSmallLimit)) {
      small_ = sign_ < 0 ? -static_cast<std::int64_t>(mag)
                         : static_cast<std::int64_t>(mag);
      is_small_ = true;
      sign_ = 0;
      LimbArena::local().release(limbs_);
    }
  }
}

void BigInt::promote() {
  if (!is_small_) return;
  is_small_ = false;
  sign_ = (small_ > 0) - (small_ < 0);
  const std::uint64_t mag = small_magnitude();
  small_ = 0;
  assign_magnitude(mag);
}

const BigInt& BigInt::promoted(const BigInt& x, BigInt& scratch) {
  if (!x.is_small_) return x;
  scratch = x;
  scratch.promote();
  return scratch;
}

int BigInt::compare_magnitude(const std::vector<Limb>& a,
                              const std::vector<Limb>& b) noexcept {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<BigInt::Limb> BigInt::add_magnitude(const std::vector<Limb>& a,
                                                const std::vector<Limb>& b) {
  const std::vector<Limb>& lo = a.size() <= b.size() ? a : b;
  const std::vector<Limb>& hi = a.size() <= b.size() ? b : a;
  std::vector<Limb> sum;
  sum.reserve(hi.size() + 1);
  DoubleLimb carry = 0;
  for (std::size_t i = 0; i < hi.size(); ++i) {
    DoubleLimb total = carry + hi[i];
    if (i < lo.size()) total += lo[i];
    sum.push_back(static_cast<Limb>(total & 0xffffffffULL));
    carry = total >> kLimbBits;
  }
  if (carry != 0) sum.push_back(static_cast<Limb>(carry));
  return sum;
}

std::vector<BigInt::Limb> BigInt::sub_magnitude(const std::vector<Limb>& a,
                                                const std::vector<Limb>& b) {
  std::vector<Limb> diff;
  diff.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t total = static_cast<std::int64_t>(a[i]) - borrow -
                         (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (total < 0) {
      total += static_cast<std::int64_t>(1) << kLimbBits;
      borrow = 1;
    } else {
      borrow = 0;
    }
    diff.push_back(static_cast<Limb>(total));
  }
  trim(diff);
  return diff;
}

std::vector<BigInt::Limb> BigInt::mul_schoolbook(const std::vector<Limb>& a,
                                                 const std::vector<Limb>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<Limb> product(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    DoubleLimb carry = 0;
    const DoubleLimb ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      DoubleLimb total = product[i + j] + ai * b[j] + carry;
      product[i + j] = static_cast<Limb>(total & 0xffffffffULL);
      carry = total >> kLimbBits;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      DoubleLimb total = product[k] + carry;
      product[k] = static_cast<Limb>(total & 0xffffffffULL);
      carry = total >> kLimbBits;
      ++k;
    }
  }
  trim(product);
  return product;
}

std::vector<BigInt::Limb> BigInt::mul_karatsuba(const std::vector<Limb>& a,
                                                const std::vector<Limb>& b) {
  if (a.size() < kKaratsubaThreshold || b.size() < kKaratsubaThreshold) {
    return mul_schoolbook(a, b);
  }
  const std::size_t half = std::max(a.size(), b.size()) / 2;
  auto lower = [&](const std::vector<Limb>& v) {
    std::vector<Limb> part(v.begin(),
                           v.begin() + static_cast<std::ptrdiff_t>(
                                           std::min(half, v.size())));
    trim(part);
    return part;
  };
  auto upper = [&](const std::vector<Limb>& v) {
    if (v.size() <= half) return std::vector<Limb>{};
    std::vector<Limb> part(v.begin() + static_cast<std::ptrdiff_t>(half),
                           v.end());
    trim(part);
    return part;
  };
  const std::vector<Limb> a0 = lower(a);
  const std::vector<Limb> a1 = upper(a);
  const std::vector<Limb> b0 = lower(b);
  const std::vector<Limb> b1 = upper(b);

  std::vector<Limb> z0 = mul_karatsuba(a0, b0);
  std::vector<Limb> z2 = mul_karatsuba(a1, b1);
  std::vector<Limb> sa = add_magnitude(a0, a1);
  std::vector<Limb> sb = add_magnitude(b0, b1);
  std::vector<Limb> z1 = mul_karatsuba(sa, sb);
  z1 = sub_magnitude(z1, z0);
  z1 = sub_magnitude(z1, z2);

  // result = z0 + z1 << (32*half) + z2 << (64*half)
  std::vector<Limb> result(z0);
  auto add_shifted = [&](const std::vector<Limb>& part, std::size_t shift) {
    if (part.empty()) return;
    if (result.size() < part.size() + shift) {
      result.resize(part.size() + shift, 0);
    }
    DoubleLimb carry = 0;
    for (std::size_t i = 0; i < part.size(); ++i) {
      DoubleLimb total = static_cast<DoubleLimb>(result[i + shift]) + part[i] + carry;
      result[i + shift] = static_cast<Limb>(total & 0xffffffffULL);
      carry = total >> kLimbBits;
    }
    std::size_t k = part.size() + shift;
    while (carry != 0) {
      if (k == result.size()) result.push_back(0);
      DoubleLimb total = static_cast<DoubleLimb>(result[k]) + carry;
      result[k] = static_cast<Limb>(total & 0xffffffffULL);
      carry = total >> kLimbBits;
      ++k;
    }
  };
  add_shifted(z1, half);
  add_shifted(z2, 2 * half);
  trim(result);
  return result;
}

std::vector<BigInt::Limb> BigInt::mul_magnitude(const std::vector<Limb>& a,
                                                const std::vector<Limb>& b) {
  if (a.size() >= kKaratsubaThreshold && b.size() >= kKaratsubaThreshold) {
    return mul_karatsuba(a, b);
  }
  return mul_schoolbook(a, b);
}

// Knuth TAOCP vol. 2, algorithm 4.3.1-D, specialized to 32-bit limbs with
// 64-bit intermediate arithmetic.
void BigInt::divmod_magnitude(const std::vector<Limb>& u_in,
                              const std::vector<Limb>& v_in,
                              std::vector<Limb>& quotient,
                              std::vector<Limb>& remainder) {
  DLSCHED_EXPECT(!v_in.empty(), "division by zero");
  quotient.clear();
  remainder.clear();
  if (compare_magnitude(u_in, v_in) < 0) {
    remainder = u_in;
    trim(remainder);
    return;
  }
  if (v_in.size() == 1) {
    // Single-limb fast path.
    const DoubleLimb divisor = v_in[0];
    quotient.assign(u_in.size(), 0);
    DoubleLimb rem = 0;
    for (std::size_t i = u_in.size(); i-- > 0;) {
      DoubleLimb cur = (rem << kLimbBits) | u_in[i];
      quotient[i] = static_cast<Limb>(cur / divisor);
      rem = cur % divisor;
    }
    trim(quotient);
    if (rem != 0) remainder.push_back(static_cast<Limb>(rem));
    return;
  }

  // D1: normalize so that the divisor's top limb has its high bit set.
  const unsigned shift =
      static_cast<unsigned>(std::countl_zero(v_in.back()));
  const std::size_t n = v_in.size();
  const std::size_t m = u_in.size() - n;

  ArenaScratch v_scratch;
  std::vector<Limb>& v = v_scratch.buf;
  v.assign(n, 0);
  for (std::size_t i = n; i-- > 0;) {
    DoubleLimb val = static_cast<DoubleLimb>(v_in[i]) << shift;
    if (shift != 0 && i > 0) val |= v_in[i - 1] >> (kLimbBits - shift);
    v[i] = static_cast<Limb>(val & 0xffffffffULL);
  }
  ArenaScratch u_scratch;
  std::vector<Limb>& u = u_scratch.buf;
  u.assign(u_in.size() + 1, 0);
  for (std::size_t i = u_in.size(); i-- > 0;) {
    DoubleLimb val = static_cast<DoubleLimb>(u_in[i]) << shift;
    if (shift != 0 && i > 0) val |= u_in[i - 1] >> (kLimbBits - shift);
    u[i] = static_cast<Limb>(val & 0xffffffffULL);
  }
  if (shift != 0) {
    u[u_in.size()] =
        static_cast<Limb>(u_in.back() >> (kLimbBits - shift));
  }

  quotient.assign(m + 1, 0);
  const DoubleLimb base = DoubleLimb{1} << kLimbBits;
  // D2..D7: main loop over quotient digits, most significant first.
  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate q_hat from the top two limbs of the current remainder.
    DoubleLimb numerator = (static_cast<DoubleLimb>(u[j + n]) << kLimbBits) | u[j + n - 1];
    DoubleLimb q_hat = numerator / v[n - 1];
    DoubleLimb r_hat = numerator % v[n - 1];
    while (q_hat >= base ||
           q_hat * v[n - 2] > ((r_hat << kLimbBits) | u[j + n - 2])) {
      --q_hat;
      r_hat += v[n - 1];
      if (r_hat >= base) break;
    }
    // D4: multiply and subtract u[j..j+n] -= q_hat * v.
    std::int64_t borrow = 0;
    DoubleLimb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      DoubleLimb product = q_hat * v[i] + carry;
      carry = product >> kLimbBits;
      std::int64_t diff = static_cast<std::int64_t>(u[i + j]) -
                          static_cast<std::int64_t>(product & 0xffffffffULL) -
                          borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(base);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<Limb>(diff);
    }
    std::int64_t top = static_cast<std::int64_t>(u[j + n]) -
                       static_cast<std::int64_t>(carry) - borrow;
    // D5/D6: if the subtraction went negative the estimate was one too big;
    // add the divisor back.
    if (top < 0) {
      --q_hat;
      DoubleLimb add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        DoubleLimb total = static_cast<DoubleLimb>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<Limb>(total & 0xffffffffULL);
        add_carry = total >> kLimbBits;
      }
      top += static_cast<std::int64_t>(add_carry);
    }
    u[j + n] = static_cast<Limb>(top);
    quotient[j] = static_cast<Limb>(q_hat);
  }

  // D8: denormalize the remainder.
  remainder.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    DoubleLimb val = u[i] >> shift;
    if (shift != 0 && i + 1 < u.size()) {
      val |= static_cast<DoubleLimb>(u[i + 1]) << (kLimbBits - shift);
    }
    remainder[i] = static_cast<Limb>(val & 0xffffffffULL);
  }
  trim(quotient);
  trim(remainder);
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  if (is_small_ && rhs.is_small_) {
    // |a|, |b| < 2^62, so the int64 sum cannot overflow.
    const std::int64_t sum = small_ + rhs.small_;
    if (sum > -kSmallLimit && sum < kSmallLimit) {
      small_ = sum;
    } else {
      *this = BigInt(sum);
    }
    return *this;
  }
  BigInt scratch;
  const BigInt& r = promoted(rhs, scratch);
  promote();
  if (r.sign_ == 0) {
    normalize();
    return *this;
  }
  if (sign_ == 0) {
    *this = r;
    normalize();
    return *this;
  }
  if (sign_ == r.sign_) {
    limbs_ = add_magnitude(limbs_, r.limbs_);
  } else {
    const int cmp = compare_magnitude(limbs_, r.limbs_);
    if (cmp == 0) {
      limbs_.clear();
      sign_ = 0;
    } else if (cmp > 0) {
      limbs_ = sub_magnitude(limbs_, r.limbs_);
    } else {
      limbs_ = sub_magnitude(r.limbs_, limbs_);
      sign_ = r.sign_;
    }
  }
  normalize();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) {
  if (is_small_ && rhs.is_small_) {
    const std::int64_t diff = small_ - rhs.small_;
    if (diff > -kSmallLimit && diff < kSmallLimit) {
      small_ = diff;
    } else {
      *this = BigInt(diff);
    }
    return *this;
  }
  BigInt negated = rhs;
  negated.negate();
  return *this += negated;
}

BigInt& BigInt::operator*=(const BigInt& rhs) {
  if (is_small_ && rhs.is_small_) {
    std::int64_t product = 0;
    if (!__builtin_mul_overflow(small_, rhs.small_, &product)) {
      if (product > -kSmallLimit && product < kSmallLimit) {
        small_ = product;
        return *this;
      }
    }
    // Inline overflow: |a|, |b| < 2^62 keeps |a*b| under 124 bits, so the
    // limb form can be assembled directly from a 128-bit product.
    const bool negative = (small_ < 0) != (rhs.small_ < 0);
    const unsigned __int128 mag =
        static_cast<unsigned __int128>(small_magnitude()) *
        rhs.small_magnitude();
    is_small_ = false;
    small_ = 0;
    sign_ = negative ? -1 : 1;
    assign_magnitude(mag);
    return *this;  // the product is >= 2^62 by construction: canonical
  }
  if (is_zero() || rhs.is_zero()) {
    *this = BigInt();
    return *this;
  }
  BigInt scratch;
  const BigInt& r = promoted(rhs, scratch);
  promote();
  limbs_ = mul_magnitude(limbs_, r.limbs_);
  sign_ = sign_ * r.sign_;
  normalize();
  return *this;
}

void BigInt::divmod(const BigInt& numerator, const BigInt& denominator,
                    BigInt& quotient, BigInt& remainder) {
  DLSCHED_EXPECT(!denominator.is_zero(), "BigInt division by zero");
  if (numerator.is_small_ && denominator.is_small_) {
    // |numerator| < 2^62 rules out the INT64_MIN / -1 overflow case, and
    // C++ native division already has the required truncation semantics.
    const std::int64_t q = numerator.small_ / denominator.small_;
    const std::int64_t r = numerator.small_ % denominator.small_;
    quotient = BigInt(q);
    remainder = BigInt(r);
    return;
  }
  const int num_sign = numerator.sign();
  const int den_sign = denominator.sign();
  BigInt scratch_n;
  BigInt scratch_d;
  const BigInt& n = promoted(numerator, scratch_n);
  const BigInt& d = promoted(denominator, scratch_d);
  std::vector<Limb> q;
  std::vector<Limb> r;
  divmod_magnitude(n.limbs_, d.limbs_, q, r);
  quotient = BigInt();
  quotient.is_small_ = false;
  quotient.limbs_ = std::move(q);
  quotient.sign_ = quotient.limbs_.empty() ? 0 : num_sign * den_sign;
  quotient.normalize();
  remainder = BigInt();
  remainder.is_small_ = false;
  remainder.limbs_ = std::move(r);
  remainder.sign_ = remainder.limbs_.empty() ? 0 : num_sign;
  remainder.normalize();
}

BigInt& BigInt::operator/=(const BigInt& rhs) {
  BigInt quotient;
  BigInt remainder;
  divmod(*this, rhs, quotient, remainder);
  *this = std::move(quotient);
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& rhs) {
  BigInt quotient;
  BigInt remainder;
  divmod(*this, rhs, quotient, remainder);
  *this = std::move(remainder);
  return *this;
}

BigInt& BigInt::operator<<=(std::size_t bits) {
  if (is_zero() || bits == 0) return *this;
  if (is_small_) {
    const std::uint64_t mag = small_magnitude();
    const std::size_t width =
        static_cast<std::size_t>(std::bit_width(mag));
    if (bits <= 62 && width + bits <= 62) {
      const std::uint64_t shifted = mag << bits;
      small_ = small_ < 0 ? -static_cast<std::int64_t>(shifted)
                          : static_cast<std::int64_t>(shifted);
      return *this;
    }
    promote();
  }
  const std::size_t limb_shift = bits / kLimbBits;
  const unsigned bit_shift = static_cast<unsigned>(bits % kLimbBits);
  std::vector<Limb> shifted(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const DoubleLimb val = static_cast<DoubleLimb>(limbs_[i]) << bit_shift;
    shifted[i + limb_shift] |= static_cast<Limb>(val & 0xffffffffULL);
    shifted[i + limb_shift + 1] |= static_cast<Limb>(val >> kLimbBits);
  }
  limbs_ = std::move(shifted);
  normalize();
  return *this;
}

BigInt& BigInt::operator>>=(std::size_t bits) {
  if (is_zero() || bits == 0) return *this;
  if (is_small_) {
    // Magnitude shift, matching the limb-form semantics: -5 >> 1 == -2.
    const std::uint64_t mag = small_magnitude();
    const std::uint64_t shifted = bits >= 64 ? 0 : mag >> bits;
    small_ = small_ < 0 ? -static_cast<std::int64_t>(shifted)
                        : static_cast<std::int64_t>(shifted);
    return *this;
  }
  const std::size_t limb_shift = bits / kLimbBits;
  if (limb_shift >= limbs_.size()) {
    *this = BigInt();
    return *this;
  }
  const unsigned bit_shift = static_cast<unsigned>(bits % kLimbBits);
  std::vector<Limb> shifted(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < shifted.size(); ++i) {
    DoubleLimb val = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      val |= static_cast<DoubleLimb>(limbs_[i + limb_shift + 1])
             << (kLimbBits - bit_shift);
    }
    shifted[i] = static_cast<Limb>(val & 0xffffffffULL);
  }
  limbs_ = std::move(shifted);
  normalize();
  return *this;
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  result.negate();
  return result;
}

int BigInt::compare(const BigInt& rhs) const noexcept {
  if (is_small_ && rhs.is_small_) {
    return (small_ > rhs.small_) - (small_ < rhs.small_);
  }
  const int ls = sign();
  const int rs = rhs.sign();
  if (ls != rs) return ls < rs ? -1 : 1;
  if (is_small_ != rhs.is_small_) {
    // The limb form always holds magnitude >= 2^62 and the inline form
    // < 2^62, so the representation alone decides the magnitude order.
    const int mag = is_small_ ? -1 : 1;
    return ls > 0 ? mag : -mag;
  }
  const int mag = compare_magnitude(limbs_, rhs.limbs_);
  return ls > 0 ? mag : -mag;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (true) {
    if (a.is_small_ && b.is_small_) {
      // Single-word binary (Stein) gcd: shifts and subtractions only, no
      // division -- this is the hot path of every Rational reduction.
      std::uint64_t x = a.small_magnitude();
      std::uint64_t y = b.small_magnitude();
      if (x == 0) return BigInt(y);
      if (y == 0) return BigInt(x);
      const int common_twos = std::countr_zero(x | y);
      x >>= std::countr_zero(x);
      do {
        y >>= std::countr_zero(y);
        if (x > y) std::swap(x, y);
        y -= x;
      } while (y != 0);
      return BigInt(x << common_twos);
    }
    if (b.is_zero()) break;
    BigInt quotient;
    BigInt remainder;
    divmod(a, b, quotient, remainder);
    a = std::move(b);
    b = std::move(remainder);
  }
  if (a.is_negative()) a.negate();
  return a;
}

BigInt BigInt::pow(std::uint64_t exponent) const {
  const bool negative_result = sign() < 0 && (exponent & 1ULL) != 0;
  BigInt base = this->abs();
  BigInt result(std::int64_t{1});
  while (exponent != 0) {
    if (exponent & 1ULL) result *= base;
    base *= base;
    exponent >>= 1;
  }
  if (negative_result) result.negate();
  return result;
}

std::string BigInt::to_string() const {
  if (is_small_) return std::to_string(small_);
  if (sign_ == 0) return "0";
  // Peel 9 decimal digits at a time via single-limb division by 10^9.
  std::vector<Limb> digits_chunks;
  std::vector<Limb> value = limbs_;
  const DoubleLimb chunk = 1000000000ULL;
  while (!value.empty()) {
    DoubleLimb rem = 0;
    for (std::size_t i = value.size(); i-- > 0;) {
      DoubleLimb cur = (rem << kLimbBits) | value[i];
      value[i] = static_cast<Limb>(cur / chunk);
      rem = cur % chunk;
    }
    trim(value);
    digits_chunks.push_back(static_cast<Limb>(rem));
  }
  std::string text = sign_ < 0 ? "-" : "";
  text += std::to_string(digits_chunks.back());
  for (std::size_t i = digits_chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(digits_chunks[i]);
    text += std::string(9 - part.size(), '0') + part;
  }
  return text;
}

double BigInt::to_double() const noexcept {
  if (is_small_) return static_cast<double>(small_);
  if (sign_ == 0) return 0.0;
  double value = 0.0;
  // Only the top ~2 limbs contribute to a double's mantissa, but summing all
  // limbs with ldexp is simple and exact up to rounding.
  const std::size_t start = limbs_.size() > 4 ? limbs_.size() - 4 : 0;
  for (std::size_t i = limbs_.size(); i-- > start;) {
    value = value * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  value = std::ldexp(value, static_cast<int>(start * kLimbBits));
  return sign_ < 0 ? -value : value;
}

bool BigInt::fits_int64() const noexcept {
  if (is_small_) return true;
  if (limbs_.size() < 2) return true;
  if (limbs_.size() > 2) return false;
  const std::uint64_t mag =
      (static_cast<std::uint64_t>(limbs_[1]) << kLimbBits) | limbs_[0];
  if (sign_ > 0) return mag <= static_cast<std::uint64_t>(INT64_MAX);
  return mag <= static_cast<std::uint64_t>(INT64_MAX) + 1ULL;
}

std::int64_t BigInt::to_int64() const {
  if (is_small_) return small_;
  DLSCHED_EXPECT(fits_int64(), "BigInt does not fit in int64");
  std::uint64_t mag = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    mag = (mag << kLimbBits) | limbs_[i];
  }
  // Negate in unsigned space: mag may be 2^63 (INT64_MIN), whose signed
  // negation would overflow.
  if (sign_ < 0) return static_cast<std::int64_t>(~mag + 1ULL);
  return static_cast<std::int64_t>(mag);
}

std::ostream& operator<<(std::ostream& out, const BigInt& value) {
  return out << value.to_string();
}

}  // namespace dlsched::numeric
