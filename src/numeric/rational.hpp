// Exact rational arithmetic over BigInt.
//
// Invariants: denominator > 0, gcd(|num|, den) == 1, zero is 0/1.
// Every double is exactly representable as a rational (mantissa * 2^exp),
// so platform parameters given as doubles convert losslessly via
// `Rational::from_double` -- the LPs solved in src/lp are then exact.
//
// Operators keep the reduced-form invariant without running a full-size
// gcd per operation: multiplication and division cross-reduce against the
// opposite operand first (gcd(n1, d2), gcd(n2, d1) -- Knuth 4.5.1), and
// addition reduces through the denominator gcd, skipping the final gcd
// entirely when the denominators are coprime.  Together with BigInt's
// inline small-value representation this keeps the simplex pivot loops
// allocation-free in the common case.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "numeric/bigint.hpp"

namespace dlsched::numeric {

class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}
  /// Integer value (implicit: rational code mixes freely with int literals).
  Rational(std::int64_t value) : num_(value), den_(1) {}  // NOLINT
  Rational(int value) : num_(value), den_(1) {}           // NOLINT
  Rational(BigInt value) : num_(std::move(value)), den_(1) {}  // NOLINT
  /// num/den, normalized.  Throws on den == 0.
  Rational(BigInt num, BigInt den);
  /// Convenience int64 fraction.
  Rational(std::int64_t num, std::int64_t den)
      : Rational(BigInt(num), BigInt(den)) {}

  /// Exact conversion of a finite double (binary fraction).  Throws on
  /// NaN/inf.
  static Rational from_double(double value);

  /// Parses "a/b" or a plain integer or a decimal like "1.25".
  static Rational from_string(std::string_view text);

  [[nodiscard]] const BigInt& num() const noexcept { return num_; }
  [[nodiscard]] const BigInt& den() const noexcept { return den_; }

  [[nodiscard]] bool is_zero() const noexcept { return num_.is_zero(); }
  [[nodiscard]] bool is_negative() const noexcept { return num_.is_negative(); }
  [[nodiscard]] bool is_positive() const noexcept { return num_.is_positive(); }
  [[nodiscard]] bool is_integer() const noexcept;
  [[nodiscard]] int sign() const noexcept { return num_.sign(); }

  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);
  Rational& operator*=(const Rational& rhs);
  /// Throws on division by zero.
  Rational& operator/=(const Rational& rhs);

  /// `*this -= a * b` -- the shape of every simplex pivot update
  /// (`tab[i][j] -= factor * pivot_row[j]`).  Zero factors short-circuit
  /// before any arithmetic; otherwise this is the cross-gcd multiply
  /// followed by the denominator-gcd subtraction in one call.
  Rational& sub_mul(const Rational& a, const Rational& b);

  [[nodiscard]] Rational operator-() const;
  [[nodiscard]] Rational abs() const;
  /// Multiplicative inverse; throws on zero.
  [[nodiscard]] Rational inverse() const;

  friend Rational operator+(Rational lhs, const Rational& rhs) {
    return lhs += rhs;
  }
  friend Rational operator-(Rational lhs, const Rational& rhs) {
    return lhs -= rhs;
  }
  friend Rational operator*(Rational lhs, const Rational& rhs) {
    return lhs *= rhs;
  }
  friend Rational operator/(Rational lhs, const Rational& rhs) {
    return lhs /= rhs;
  }

  /// Three-way comparison by cross-multiplication.
  [[nodiscard]] int compare(const Rational& rhs) const;

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return !(a == b);
  }
  friend bool operator<(const Rational& a, const Rational& b) {
    return a.compare(b) < 0;
  }
  friend bool operator<=(const Rational& a, const Rational& b) {
    return a.compare(b) <= 0;
  }
  friend bool operator>(const Rational& a, const Rational& b) {
    return a.compare(b) > 0;
  }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return a.compare(b) >= 0;
  }

  /// Floor of the rational value as a BigInt.
  [[nodiscard]] BigInt floor() const;
  /// Ceiling of the rational value as a BigInt.
  [[nodiscard]] BigInt ceil() const;

  /// Best-effort double (num/den in doubles with a scaling fallback for
  /// huge operands).
  [[nodiscard]] double to_double() const noexcept;

  /// "num/den" (or just "num" for integers).
  [[nodiscard]] std::string to_string() const;

  friend std::ostream& operator<<(std::ostream& out, const Rational& value);

 private:
  void normalize();
  /// Shared +=/-= body (Knuth 4.5.1 denominator-gcd addition).
  void add_impl(const Rational& rhs, bool negate_rhs);

  BigInt num_;
  BigInt den_;
};

/// min/max conveniences used heavily by the closed-form formulas.
[[nodiscard]] const Rational& min(const Rational& a, const Rational& b);
[[nodiscard]] const Rational& max(const Rational& a, const Rational& b);

}  // namespace dlsched::numeric
