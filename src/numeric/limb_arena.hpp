// Thread-local freelist of limb buffers for BigInt temporaries.
//
// The exact simplex promotes inline BigInts to the limb form and back
// millions of times per solve; each promotion used to round-trip a
// std::vector<uint32_t> through the heap.  The arena keeps a small pool of
// capacity-retaining buffers per thread: BigInt acquires a pooled buffer
// when it needs limb storage and releases the storage back when
// normalize() shrinks the value into the inline word.  The pool is bounded
// (count and per-buffer capacity) so a burst of huge intermediates cannot
// pin memory for the rest of the run.
//
// Stats are cumulative per thread; the solver layer snapshots them around
// a solve to report "allocations avoided" in the bench artifacts.
#pragma once

#include <cstdint>
#include <vector>

namespace dlsched::numeric {

class LimbArena {
 public:
  struct Stats {
    /// Buffer requests that found no capacity in place.
    std::uint64_t acquires = 0;
    /// Requests served from the pool, i.e. heap allocations avoided.
    std::uint64_t pool_hits = 0;
    /// Buffers returned to the pool (vs dropped because it was full).
    std::uint64_t releases = 0;
  };

  LimbArena();
  LimbArena(const LimbArena&) = delete;
  LimbArena& operator=(const LimbArena&) = delete;

  /// The calling thread's arena.
  static LimbArena& local() noexcept;

  /// Gives `out` a pooled buffer (empty, capacity retained) when it has no
  /// capacity of its own.  No-op if `out` already owns storage.
  void acquire(std::vector<std::uint32_t>& out) noexcept;

  /// Takes `buffer`'s storage into the pool (or frees it when the pool is
  /// full or the buffer is oversized).  `buffer` is left empty either way.
  void release(std::vector<std::uint32_t>& buffer) noexcept;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  /// Bounded pool: enough for the simplex pivot working set, small enough
  /// to be irrelevant as a per-thread footprint.
  static constexpr std::size_t kMaxPooled = 64;
  /// Buffers beyond this capacity (in limbs) are freed, not pooled.
  static constexpr std::size_t kMaxRetainedCapacity = 1 << 12;

  std::vector<std::vector<std::uint32_t>> pool_;
  Stats stats_;
};

/// Snapshot of the calling thread's cumulative arena stats.
[[nodiscard]] LimbArena::Stats limb_arena_stats() noexcept;

}  // namespace dlsched::numeric
