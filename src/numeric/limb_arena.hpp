// Thread-local freelist of limb buffers for BigInt temporaries.
//
// The exact simplex promotes inline BigInts to the limb form and back
// millions of times per solve; each promotion used to round-trip a
// std::vector<uint32_t> through the heap.  The arena keeps a small pool of
// capacity-retaining buffers per thread: BigInt acquires a pooled buffer
// when it needs limb storage and releases the storage back when
// normalize() shrinks the value into the inline word.  The pool is bounded
// (count and per-buffer capacity) so a burst of huge intermediates cannot
// pin memory for the rest of the run.
//
// Stats are cumulative per thread; the solver layer snapshots them around
// a solve to report "allocations avoided" in the bench artifacts.  Within
// one thread the counters are plain loads/stores (snapshot-before minus
// snapshot-after is exact).  Cross-thread visibility goes through
// `aggregate()`: every arena registers itself in a process-wide registry,
// counters are written with relaxed atomic stores (same codegen as a plain
// increment -- only the owning thread writes), and the aggregate reads
// them with relaxed atomic loads, so summing while worker threads solve is
// race-free.  A thread that exits folds its totals into a retired
// accumulator first; `aggregate()` therefore never loses counts, though a
// concurrent snapshot may lag the hot thread by a few increments.
//
// Note the experiment engine's `--workers N` fans out *processes*, which
// aggregate within themselves and report counters through their shard
// fragments; `aggregate()` covers the in-process threads (runtime pool,
// tests, future threaded sweeps).
#pragma once

#include <cstdint>
#include <vector>

namespace dlsched::numeric {

class LimbArena {
 public:
  struct Stats {
    /// Buffer requests that found no capacity in place.
    std::uint64_t acquires = 0;
    /// Requests served from the pool, i.e. heap allocations avoided.
    std::uint64_t pool_hits = 0;
    /// Buffers returned to the pool (vs dropped because it was full).
    std::uint64_t releases = 0;
  };

  LimbArena();
  ~LimbArena();
  LimbArena(const LimbArena&) = delete;
  LimbArena& operator=(const LimbArena&) = delete;

  /// The calling thread's arena.
  static LimbArena& local() noexcept;

  /// Sum of every thread's counters (live arenas plus exited threads),
  /// safe to call while other threads are solving.  See the file comment
  /// for the memory-ordering contract.
  [[nodiscard]] static Stats aggregate() noexcept;

  /// Gives `out` a pooled buffer (empty, capacity retained) when it has no
  /// capacity of its own.  No-op if `out` already owns storage.
  void acquire(std::vector<std::uint32_t>& out) noexcept;

  /// Takes `buffer`'s storage into the pool (or frees it when the pool is
  /// full or the buffer is oversized).  `buffer` is left empty either way.
  void release(std::vector<std::uint32_t>& buffer) noexcept;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  /// Bounded pool: enough for the simplex pivot working set, small enough
  /// to be irrelevant as a per-thread footprint.
  static constexpr std::size_t kMaxPooled = 64;
  /// Buffers beyond this capacity (in limbs) are freed, not pooled.
  static constexpr std::size_t kMaxRetainedCapacity = 1 << 12;

  std::vector<std::vector<std::uint32_t>> pool_;
  Stats stats_;
};

/// Snapshot of the calling thread's cumulative arena stats.
[[nodiscard]] LimbArena::Stats limb_arena_stats() noexcept;

/// Process-wide totals across all threads; see LimbArena::aggregate().
[[nodiscard]] LimbArena::Stats limb_arena_aggregate_stats() noexcept;

}  // namespace dlsched::numeric
