// Arbitrary-precision signed integer with a small-value inline fast path.
//
// This is the foundation of the exact rational simplex (src/lp).  The
// paper's optimality theorems are statements about exact LP optima; solving
// the LPs over rationals removes every floating-point tolerance from the
// reproduction, so the test suite can assert e.g. "sorting by non-decreasing
// ci is optimal" as an exact inequality.
//
// Representation: a value v with |v| < 2^62 lives inline in a single
// machine word (`small_`) and its arithmetic never touches the heap;
// anything larger falls back to a sign-magnitude vector of base-2^32 limbs.
// Add/sub/mul on the inline form are overflow-checked and promote to the
// limb form exactly at the boundary.  LP pivots over platform parameters
// lifted from doubles keep most intermediate values under 62 bits, so the
// common case allocates nothing.
//
// Representation invariants:
//   * is_small_  => |small_| < 2^62 and limbs_ is empty;
//   * !is_small_ => |value| >= 2^62, limbs_ is little-endian with no
//     trailing zero limb, and sign_ is -1 or +1.
// The second invariant (the limb form never holds a small value) is what
// lets compare() decide mixed-representation orderings without promoting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace dlsched::numeric {

class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// From built-in integers (implicit by design: arithmetic mixes freely).
  BigInt(std::int64_t value);   // NOLINT(google-explicit-constructor)
  BigInt(std::uint64_t value);  // NOLINT(google-explicit-constructor)
  BigInt(int value) : BigInt(static_cast<std::int64_t>(value)) {}  // NOLINT

  /// Parses an optionally signed decimal string.  Throws dlsched::Error on
  /// malformed input.
  static BigInt from_string(std::string_view text);

  [[nodiscard]] bool is_zero() const noexcept {
    return is_small_ && small_ == 0;
  }
  [[nodiscard]] bool is_negative() const noexcept {
    return is_small_ ? small_ < 0 : sign_ < 0;
  }
  [[nodiscard]] bool is_positive() const noexcept {
    return is_small_ ? small_ > 0 : sign_ > 0;
  }
  /// True when the value is exactly one (fast path for gcd results).
  [[nodiscard]] bool is_one() const noexcept {
    return is_small_ && small_ == 1;
  }
  /// -1, 0 or +1.
  [[nodiscard]] int sign() const noexcept {
    return is_small_ ? (small_ > 0) - (small_ < 0) : sign_;
  }
  /// True when the value is odd.
  [[nodiscard]] bool is_odd() const noexcept {
    return is_small_ ? (small_ & 1) != 0
                     : !limbs_.empty() && (limbs_[0] & 1U) != 0;
  }
  /// True when the value lives in the single-word inline representation
  /// (exposed for benchmarks and the representation-equivalence tests).
  [[nodiscard]] bool is_inline() const noexcept { return is_small_; }

  /// Number of significant bits of |*this| (0 for zero).
  [[nodiscard]] std::size_t bit_length() const noexcept;
  /// Number of 32-bit limbs |*this| occupies (a derived quantity for the
  /// inline representation; exposed for benchmarks).
  [[nodiscard]] std::size_t limb_count() const noexcept;

  [[nodiscard]] BigInt abs() const;
  void negate() noexcept {
    // |small_| < 2^62, so negation never overflows the inline word.
    if (is_small_) {
      small_ = -small_;
    } else {
      sign_ = -sign_;
    }
  }

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  /// Truncated division (C++ semantics: quotient rounds toward zero,
  /// remainder has the dividend's sign).  Throws on division by zero.
  BigInt& operator/=(const BigInt& rhs);
  BigInt& operator%=(const BigInt& rhs);
  BigInt& operator<<=(std::size_t bits);
  BigInt& operator>>=(std::size_t bits);

  [[nodiscard]] BigInt operator-() const;

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator/(BigInt lhs, const BigInt& rhs) { return lhs /= rhs; }
  friend BigInt operator%(BigInt lhs, const BigInt& rhs) { return lhs %= rhs; }
  friend BigInt operator<<(BigInt lhs, std::size_t bits) { return lhs <<= bits; }
  friend BigInt operator>>(BigInt lhs, std::size_t bits) { return lhs >>= bits; }

  /// Quotient and remainder in one division.
  static void divmod(const BigInt& numerator, const BigInt& denominator,
                     BigInt& quotient, BigInt& remainder);

  /// Three-way comparison: -1, 0, +1.
  [[nodiscard]] int compare(const BigInt& rhs) const noexcept;

  friend bool operator==(const BigInt& a, const BigInt& b) noexcept {
    return a.compare(b) == 0;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) noexcept {
    return a.compare(b) != 0;
  }
  friend bool operator<(const BigInt& a, const BigInt& b) noexcept {
    return a.compare(b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) noexcept {
    return a.compare(b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) noexcept {
    return a.compare(b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) noexcept {
    return a.compare(b) >= 0;
  }

  /// Greatest common divisor (always non-negative).
  static BigInt gcd(BigInt a, BigInt b);

  /// |*this| ^ exponent (exponent >= 0).
  [[nodiscard]] BigInt pow(std::uint64_t exponent) const;

  /// Decimal rendering.
  [[nodiscard]] std::string to_string() const;

  /// Nearest-double conversion (round-to-nearest on the top bits; may
  /// overflow to +/-inf for astronomically large values).
  [[nodiscard]] double to_double() const noexcept;

  /// Exact conversion to int64 if the value fits, otherwise throws.
  [[nodiscard]] std::int64_t to_int64() const;
  /// True if the value is representable as int64.
  [[nodiscard]] bool fits_int64() const noexcept;

  friend std::ostream& operator<<(std::ostream& out, const BigInt& value);

 private:
  using Limb = std::uint32_t;
  using DoubleLimb = std::uint64_t;
  static constexpr unsigned kLimbBits = 32;
  /// Inline representation bound: |small_| < 2^62, so a sum of two inline
  /// values always fits in the int64 word and overflow checks are cheap.
  static constexpr std::int64_t kSmallLimit = std::int64_t{1} << 62;

  /// |a| vs |b|.
  static int compare_magnitude(const std::vector<Limb>& a,
                               const std::vector<Limb>& b) noexcept;
  static std::vector<Limb> add_magnitude(const std::vector<Limb>& a,
                                         const std::vector<Limb>& b);
  /// Requires |a| >= |b|.
  static std::vector<Limb> sub_magnitude(const std::vector<Limb>& a,
                                         const std::vector<Limb>& b);
  static std::vector<Limb> mul_magnitude(const std::vector<Limb>& a,
                                         const std::vector<Limb>& b);
  static std::vector<Limb> mul_schoolbook(const std::vector<Limb>& a,
                                          const std::vector<Limb>& b);
  static std::vector<Limb> mul_karatsuba(const std::vector<Limb>& a,
                                         const std::vector<Limb>& b);
  /// Knuth algorithm D on magnitudes; u / v with v non-zero.
  static void divmod_magnitude(const std::vector<Limb>& u,
                               const std::vector<Limb>& v,
                               std::vector<Limb>& quotient,
                               std::vector<Limb>& remainder);
  static void trim(std::vector<Limb>& limbs) noexcept;
  /// Replaces `limbs_` with the little-endian limb form of `magnitude`
  /// (the single point that assembles limbs from machine words; 128 bits
  /// covers the widest case, the inline-multiply overflow path).
  void assign_magnitude(unsigned __int128 magnitude);
  /// Restores both invariants: trims the limb form and shrinks back to the
  /// inline word whenever the magnitude fits.
  void normalize() noexcept;
  /// Converts the inline form to a (possibly sub-2^62) limb form in place;
  /// only valid transiently inside an operation that re-normalizes.
  void promote();
  /// Returns `x` in limb form, using `scratch` as backing store when `x`
  /// is inline.
  static const BigInt& promoted(const BigInt& x, BigInt& scratch);
  [[nodiscard]] std::uint64_t small_magnitude() const noexcept {
    return small_ < 0 ? ~static_cast<std::uint64_t>(small_) + 1ULL
                      : static_cast<std::uint64_t>(small_);
  }

  std::int64_t small_ = 0;
  std::vector<Limb> limbs_;
  int sign_ = 0;
  bool is_small_ = true;
};

}  // namespace dlsched::numeric
