// Arbitrary-precision signed integer (sign-magnitude, base 2^32 limbs).
//
// This is the foundation of the exact rational simplex (src/lp).  The
// paper's optimality theorems are statements about exact LP optima; solving
// the LPs over rationals removes every floating-point tolerance from the
// reproduction, so the test suite can assert e.g. "sorting by non-decreasing
// ci is optimal" as an exact inequality.
//
// Representation invariants:
//   * limbs_ is little-endian with no trailing zero limb;
//   * sign_ is -1, 0 or +1, and sign_ == 0 iff limbs_ is empty.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace dlsched::numeric {

class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// From built-in integers (implicit by design: arithmetic mixes freely).
  BigInt(std::int64_t value);   // NOLINT(google-explicit-constructor)
  BigInt(std::uint64_t value);  // NOLINT(google-explicit-constructor)
  BigInt(int value) : BigInt(static_cast<std::int64_t>(value)) {}  // NOLINT

  /// Parses an optionally signed decimal string.  Throws dlsched::Error on
  /// malformed input.
  static BigInt from_string(std::string_view text);

  [[nodiscard]] bool is_zero() const noexcept { return sign_ == 0; }
  [[nodiscard]] bool is_negative() const noexcept { return sign_ < 0; }
  [[nodiscard]] bool is_positive() const noexcept { return sign_ > 0; }
  /// -1, 0 or +1.
  [[nodiscard]] int sign() const noexcept { return sign_; }
  /// True when the value is odd.
  [[nodiscard]] bool is_odd() const noexcept {
    return !limbs_.empty() && (limbs_[0] & 1U) != 0;
  }

  /// Number of significant bits of |*this| (0 for zero).
  [[nodiscard]] std::size_t bit_length() const noexcept;
  /// Number of limbs (implementation detail exposed for benchmarks).
  [[nodiscard]] std::size_t limb_count() const noexcept { return limbs_.size(); }

  [[nodiscard]] BigInt abs() const;
  void negate() noexcept { sign_ = -sign_; }

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  /// Truncated division (C++ semantics: quotient rounds toward zero,
  /// remainder has the dividend's sign).  Throws on division by zero.
  BigInt& operator/=(const BigInt& rhs);
  BigInt& operator%=(const BigInt& rhs);
  BigInt& operator<<=(std::size_t bits);
  BigInt& operator>>=(std::size_t bits);

  [[nodiscard]] BigInt operator-() const;

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator/(BigInt lhs, const BigInt& rhs) { return lhs /= rhs; }
  friend BigInt operator%(BigInt lhs, const BigInt& rhs) { return lhs %= rhs; }
  friend BigInt operator<<(BigInt lhs, std::size_t bits) { return lhs <<= bits; }
  friend BigInt operator>>(BigInt lhs, std::size_t bits) { return lhs >>= bits; }

  /// Quotient and remainder in one division.
  static void divmod(const BigInt& numerator, const BigInt& denominator,
                     BigInt& quotient, BigInt& remainder);

  /// Three-way comparison: -1, 0, +1.
  [[nodiscard]] int compare(const BigInt& rhs) const noexcept;

  friend bool operator==(const BigInt& a, const BigInt& b) noexcept {
    return a.compare(b) == 0;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) noexcept {
    return a.compare(b) != 0;
  }
  friend bool operator<(const BigInt& a, const BigInt& b) noexcept {
    return a.compare(b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) noexcept {
    return a.compare(b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) noexcept {
    return a.compare(b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) noexcept {
    return a.compare(b) >= 0;
  }

  /// Greatest common divisor (always non-negative).
  static BigInt gcd(BigInt a, BigInt b);

  /// |*this| ^ exponent (exponent >= 0).
  [[nodiscard]] BigInt pow(std::uint64_t exponent) const;

  /// Decimal rendering.
  [[nodiscard]] std::string to_string() const;

  /// Nearest-double conversion (round-to-nearest on the top bits; may
  /// overflow to +/-inf for astronomically large values).
  [[nodiscard]] double to_double() const noexcept;

  /// Exact conversion to int64 if the value fits, otherwise throws.
  [[nodiscard]] std::int64_t to_int64() const;
  /// True if the value is representable as int64.
  [[nodiscard]] bool fits_int64() const noexcept;

  friend std::ostream& operator<<(std::ostream& out, const BigInt& value);

 private:
  using Limb = std::uint32_t;
  using DoubleLimb = std::uint64_t;
  static constexpr unsigned kLimbBits = 32;

  /// |a| vs |b|.
  static int compare_magnitude(const std::vector<Limb>& a,
                               const std::vector<Limb>& b) noexcept;
  static std::vector<Limb> add_magnitude(const std::vector<Limb>& a,
                                         const std::vector<Limb>& b);
  /// Requires |a| >= |b|.
  static std::vector<Limb> sub_magnitude(const std::vector<Limb>& a,
                                         const std::vector<Limb>& b);
  static std::vector<Limb> mul_magnitude(const std::vector<Limb>& a,
                                         const std::vector<Limb>& b);
  static std::vector<Limb> mul_schoolbook(const std::vector<Limb>& a,
                                          const std::vector<Limb>& b);
  static std::vector<Limb> mul_karatsuba(const std::vector<Limb>& a,
                                         const std::vector<Limb>& b);
  /// Knuth algorithm D on magnitudes; u / v with v non-zero.
  static void divmod_magnitude(const std::vector<Limb>& u,
                               const std::vector<Limb>& v,
                               std::vector<Limb>& quotient,
                               std::vector<Limb>& remainder);
  static void trim(std::vector<Limb>& limbs) noexcept;
  void normalize() noexcept;

  std::vector<Limb> limbs_;
  int sign_ = 0;
};

}  // namespace dlsched::numeric
