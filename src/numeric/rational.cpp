#include "numeric/rational.hpp"

#include <cmath>
#include <ostream>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace dlsched::numeric {

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  DLSCHED_EXPECT(!den_.is_zero(), "rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_.is_negative()) {
    num_.negate();
    den_.negate();
  }
  if (num_.is_zero()) {
    den_ = BigInt(std::int64_t{1});
    return;
  }
  const BigInt g = BigInt::gcd(num_, den_);
  if (!g.is_one()) {
    num_ /= g;
    den_ /= g;
  }
}

Rational Rational::from_double(double value) {
  DLSCHED_EXPECT(std::isfinite(value), "from_double: non-finite value");
  if (value == 0.0) return Rational();
  int exp = 0;
  double mantissa = std::frexp(value, &exp);  // value = mantissa * 2^exp
  // Scale the mantissa to an odd integer: 53 bits always suffice.
  for (int i = 0; i < 53 && mantissa != std::trunc(mantissa); ++i) {
    mantissa *= 2.0;
    --exp;
  }
  DLSCHED_EXPECT(mantissa == std::trunc(mantissa),
                 "from_double: mantissa did not resolve");
  BigInt num(static_cast<std::int64_t>(mantissa));
  BigInt den(std::int64_t{1});
  if (exp >= 0) {
    num <<= static_cast<std::size_t>(exp);
  } else {
    den <<= static_cast<std::size_t>(-exp);
  }
  return Rational(std::move(num), std::move(den));
}

Rational Rational::from_string(std::string_view text) {
  const std::string trimmed = trim(text);
  DLSCHED_EXPECT(!trimmed.empty(), "Rational::from_string: empty input");
  const std::size_t slash = trimmed.find('/');
  if (slash != std::string::npos) {
    return Rational(BigInt::from_string(trimmed.substr(0, slash)),
                    BigInt::from_string(trimmed.substr(slash + 1)));
  }
  const std::size_t dot = trimmed.find('.');
  if (dot != std::string::npos) {
    std::string digits = trimmed.substr(0, dot) + trimmed.substr(dot + 1);
    const std::size_t frac_digits = trimmed.size() - dot - 1;
    BigInt den = BigInt(std::int64_t{10}).pow(frac_digits);
    return Rational(BigInt::from_string(digits), std::move(den));
  }
  return Rational(BigInt::from_string(trimmed));
}

bool Rational::is_integer() const noexcept { return den_.is_one(); }

// Knuth TAOCP 4.5.1: reduce through the denominator gcd so the final
// normalization gcd runs on operands no larger than that gcd -- and skip
// it entirely in the common coprime-denominator case, where the sum of two
// reduced fractions is already in lowest terms.
void Rational::add_impl(const Rational& rhs, bool negate_rhs) {
  const BigInt g = BigInt::gcd(den_, rhs.den_);
  if (g.is_one()) {
    BigInt t = num_ * rhs.den_;
    BigInt u = rhs.num_ * den_;
    if (negate_rhs) {
      t -= u;
    } else {
      t += u;
    }
    if (t.is_zero()) {
      num_ = BigInt();
      den_ = BigInt(std::int64_t{1});
      return;
    }
    num_ = std::move(t);
    den_ *= rhs.den_;
    return;
  }
  const BigInt d1 = den_ / g;
  const BigInt d2 = rhs.den_ / g;
  BigInt t = num_ * d2;
  BigInt u = rhs.num_ * d1;
  if (negate_rhs) {
    t -= u;
  } else {
    t += u;
  }
  if (t.is_zero()) {
    num_ = BigInt();
    den_ = BigInt(std::int64_t{1});
    return;
  }
  // Any common factor of t and d1 * rhs.den_ divides g.
  const BigInt g2 = BigInt::gcd(t, g);
  if (g2.is_one()) {
    num_ = std::move(t);
    den_ = d1 * rhs.den_;
  } else {
    num_ = t / g2;
    den_ = d1 * (rhs.den_ / g2);
  }
}

Rational& Rational::operator+=(const Rational& rhs) {
  add_impl(rhs, /*negate_rhs=*/false);
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) {
  add_impl(rhs, /*negate_rhs=*/true);
  return *this;
}

Rational& Rational::operator*=(const Rational& rhs) {
  if (is_zero() || rhs.is_zero()) {
    num_ = BigInt();
    den_ = BigInt(std::int64_t{1});
    return *this;
  }
  if (this == &rhs) {
    // Squaring a reduced fraction stays reduced.
    num_ *= num_;
    den_ *= den_;
    return *this;
  }
  // Cross-reduce: gcd(n1, d2) and gcd(n2, d1) are all that can cancel
  // between two reduced fractions, and they are far smaller operands than
  // the full products.
  const BigInt g1 = BigInt::gcd(num_, rhs.den_);
  const BigInt g2 = BigInt::gcd(rhs.num_, den_);
  if (g1.is_one() && g2.is_one()) {  // coprime: no copies, no divisions
    num_ *= rhs.num_;
    den_ *= rhs.den_;
    return *this;
  }
  BigInt rn = rhs.num_;
  BigInt rd = rhs.den_;
  if (!g1.is_one()) {
    num_ /= g1;
    rd /= g1;
  }
  if (!g2.is_one()) {
    den_ /= g2;
    rn /= g2;
  }
  num_ *= rn;
  den_ *= rd;
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  DLSCHED_EXPECT(!rhs.is_zero(), "rational division by zero");
  if (is_zero()) return *this;
  if (this == &rhs) {
    num_ = BigInt(std::int64_t{1});
    den_ = BigInt(std::int64_t{1});
    return *this;
  }
  const BigInt g1 = BigInt::gcd(num_, rhs.num_);
  const BigInt g2 = BigInt::gcd(rhs.den_, den_);
  if (g1.is_one() && g2.is_one()) {  // coprime: no copies, no divisions
    num_ *= rhs.den_;
    den_ *= rhs.num_;
  } else {
    BigInt rn = rhs.num_;
    BigInt rd = rhs.den_;
    if (!g1.is_one()) {
      num_ /= g1;
      rn /= g1;
    }
    if (!g2.is_one()) {
      den_ /= g2;
      rd /= g2;
    }
    num_ *= rd;
    den_ *= rn;
  }
  if (den_.is_negative()) {
    num_.negate();
    den_.negate();
  }
  return *this;
}

Rational& Rational::sub_mul(const Rational& a, const Rational& b) {
  if (a.is_zero() || b.is_zero()) return *this;
  Rational product = a;
  product *= b;
  return *this -= product;
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.num_.negate();
  return result;
}

Rational Rational::abs() const {
  return is_negative() ? -*this : *this;
}

Rational Rational::inverse() const {
  DLSCHED_EXPECT(!is_zero(), "inverse of zero");
  Rational result;
  result.num_ = den_;
  result.den_ = num_;
  if (result.den_.is_negative()) {
    result.num_.negate();
    result.den_.negate();
  }
  return result;
}

int Rational::compare(const Rational& rhs) const {
  // Denominators are positive, so cross-multiplication preserves order.
  const int ls = num_.sign();
  const int rs = rhs.num_.sign();
  if (ls != rs) return ls < rs ? -1 : 1;
  return (num_ * rhs.den_).compare(rhs.num_ * den_);
}

BigInt Rational::floor() const {
  BigInt quotient;
  BigInt remainder;
  BigInt::divmod(num_, den_, quotient, remainder);
  if (num_.is_negative() && !remainder.is_zero()) {
    quotient -= BigInt(std::int64_t{1});
  }
  return quotient;
}

BigInt Rational::ceil() const {
  BigInt quotient;
  BigInt remainder;
  BigInt::divmod(num_, den_, quotient, remainder);
  if (num_.is_positive() && !remainder.is_zero()) {
    quotient += BigInt(std::int64_t{1});
  }
  return quotient;
}

double Rational::to_double() const noexcept {
  const double n = num_.to_double();
  const double d = den_.to_double();
  if (std::isfinite(n) && std::isfinite(d) && d != 0.0) return n / d;
  // Huge operands: shift both down so the leading bits survive.
  const std::size_t nb = num_.bit_length();
  const std::size_t db = den_.bit_length();
  const std::size_t shift = (nb > db ? db : nb) > 64 ? std::min(nb, db) - 64 : 0;
  const double sn = (num_ >> shift).to_double();
  const double sd = (den_ >> shift).to_double();
  return sd != 0.0 ? sn / sd : 0.0;
}

std::string Rational::to_string() const {
  if (is_integer()) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

std::ostream& operator<<(std::ostream& out, const Rational& value) {
  return out << value.to_string();
}

const Rational& min(const Rational& a, const Rational& b) {
  return b < a ? b : a;
}

const Rational& max(const Rational& a, const Rational& b) {
  return a < b ? b : a;
}

}  // namespace dlsched::numeric
