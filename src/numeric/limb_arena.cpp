#include "numeric/limb_arena.hpp"

#include <atomic>
#include <mutex>
#include <utility>

namespace dlsched::numeric {

namespace {

/// Registry of live arenas plus the folded totals of exited threads.
/// The mutex guards only the membership and the retired accumulator;
/// the live counters themselves are read with relaxed atomics.
struct ArenaRegistry {
  std::mutex mutex;
  std::vector<const LimbArena*> live;
  LimbArena::Stats retired;
};

ArenaRegistry& registry() noexcept {
  static ArenaRegistry* instance = new ArenaRegistry();
  return *instance;
}

/// Owner-thread increment.  A relaxed load/store pair compiles to the same
/// plain add as `++counter` (no lock prefix: only this thread writes) while
/// licensing concurrent relaxed loads from aggregate().
inline void bump(std::uint64_t& counter) noexcept {
  std::atomic_ref<std::uint64_t> ref(counter);
  ref.store(ref.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
}

inline std::uint64_t peek(const std::uint64_t& counter) noexcept {
  return std::atomic_ref<const std::uint64_t>(counter).load(
      std::memory_order_relaxed);
}

}  // namespace

LimbArena::LimbArena() {
  // Reserving up front keeps release() allocation-free (and noexcept).
  pool_.reserve(kMaxPooled);
  ArenaRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.live.push_back(this);
}

LimbArena::~LimbArena() {
  ArenaRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (std::size_t i = 0; i < reg.live.size(); ++i) {
    if (reg.live[i] == this) {
      reg.live.erase(reg.live.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  reg.retired.acquires += stats_.acquires;
  reg.retired.pool_hits += stats_.pool_hits;
  reg.retired.releases += stats_.releases;
}

LimbArena& LimbArena::local() noexcept {
  thread_local LimbArena arena;
  return arena;
}

LimbArena::Stats LimbArena::aggregate() noexcept {
  ArenaRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  Stats total = reg.retired;
  for (const LimbArena* arena : reg.live) {
    total.acquires += peek(arena->stats_.acquires);
    total.pool_hits += peek(arena->stats_.pool_hits);
    total.releases += peek(arena->stats_.releases);
  }
  return total;
}

void LimbArena::acquire(std::vector<std::uint32_t>& out) noexcept {
  if (out.capacity() != 0) return;
  bump(stats_.acquires);
  if (pool_.empty()) return;  // caller's vector grows on first push_back
  bump(stats_.pool_hits);
  out = std::move(pool_.back());
  pool_.pop_back();
  out.clear();
}

void LimbArena::release(std::vector<std::uint32_t>& buffer) noexcept {
  if (buffer.capacity() == 0) return;
  if (pool_.size() < kMaxPooled && buffer.capacity() <= kMaxRetainedCapacity) {
    bump(stats_.releases);
    buffer.clear();
    pool_.push_back(std::move(buffer));
  }
  // Either way the caller's vector must end up storage-free.
  std::vector<std::uint32_t>().swap(buffer);
}

LimbArena::Stats limb_arena_stats() noexcept {
  return LimbArena::local().stats();
}

LimbArena::Stats limb_arena_aggregate_stats() noexcept {
  return LimbArena::aggregate();
}

}  // namespace dlsched::numeric
