#include "numeric/limb_arena.hpp"

#include <utility>

namespace dlsched::numeric {

LimbArena::LimbArena() {
  // Reserving up front keeps release() allocation-free (and noexcept).
  pool_.reserve(kMaxPooled);
}

LimbArena& LimbArena::local() noexcept {
  thread_local LimbArena arena;
  return arena;
}

void LimbArena::acquire(std::vector<std::uint32_t>& out) noexcept {
  if (out.capacity() != 0) return;
  ++stats_.acquires;
  if (pool_.empty()) return;  // caller's vector grows on first push_back
  ++stats_.pool_hits;
  out = std::move(pool_.back());
  pool_.pop_back();
  out.clear();
}

void LimbArena::release(std::vector<std::uint32_t>& buffer) noexcept {
  if (buffer.capacity() == 0) return;
  if (pool_.size() < kMaxPooled && buffer.capacity() <= kMaxRetainedCapacity) {
    ++stats_.releases;
    buffer.clear();
    pool_.push_back(std::move(buffer));
  }
  // Either way the caller's vector must end up storage-free.
  std::vector<std::uint32_t>().swap(buffer);
}

LimbArena::Stats limb_arena_stats() noexcept {
  return LimbArena::local().stats();
}

}  // namespace dlsched::numeric
