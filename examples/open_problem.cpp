// The paper's open problem, hands-on: how much throughput do *free*
// permutation pairs (sigma_1, sigma_2) buy over the best FIFO and LIFO
// schedules, and can local search find them?
//
// Also demonstrates the Lemma 2 exchange transformations: we take a
// deliberately mis-ordered FIFO schedule and watch the proof's swaps
// repair it step by step.
//
//   $ ./open_problem
#include <iostream>

#include "core/exchange.hpp"
#include "core/scenario_lp.hpp"
#include "core/solver.hpp"
#include "platform/generators.hpp"
#include "util/table.hpp"

int main() {
  using namespace dlsched;
  Rng rng(2026);
  const StarPlatform platform = gen::random_star(5, rng, 0.5);
  std::cout << "platform:\n" << platform.describe() << "\n";

  // --- the landscape of structured schedules ------------------------------
  SolveRequest request;
  request.platform = platform;
  const auto& registry = SolverRegistry::instance();
  const SolveResult fifo = registry.run("fifo_optimal", request);
  const SolveResult lifo = registry.run("lifo", request);
  const SolveResult search = registry.run("local_search", request);

  Table table({"strategy", "throughput", "vs INC_C"});
  table.set_precision(5);
  const double base = fifo.throughput();
  auto row = [&](const char* name, double rho) {
    table.begin_row().cell(std::string(name)).cell(rho).cell(rho / base);
  };
  row("FIFO optimal (Theorem 1)", base);
  row("LIFO optimal", lifo.throughput());
  row("local search over (s1,s2)", search.throughput());
  table.print_aligned(std::cout);
  std::cout << "search explored " << search.lp_evaluations
            << " scenario LPs; best pair: "
            << search.solution.scenario.describe() << "\n\n";

  // --- Lemma 2's proof, executed ------------------------------------------
  std::cout << "Lemma 2 exchange argument on the worst FIFO order "
               "(non-increasing c):\n";
  SolveRequest worst_request = request;
  worst_request.scenario = Scenario::fifo(platform.order_by_c_desc());
  worst_request.precision = Precision::Fast;
  Schedule schedule = registry.run("scenario_lp", worst_request).schedule;
  std::cout << "  start:   load = " << schedule.total_load() << "\n";
  bool swapped = true;
  int step = 0;
  while (swapped) {
    swapped = false;
    for (std::size_t i = 0; i + 1 < schedule.entries.size(); ++i) {
      const double ci = platform.worker(schedule.entries[i].worker).c;
      const double cj = platform.worker(schedule.entries[i + 1].worker).c;
      if (ci > cj) {
        const ExchangeResult result = swap_adjacent(platform, schedule, i);
        schedule = result.schedule;
        std::cout << "  swap #" << ++step << ": load = "
                  << schedule.total_load() << "  (+" << result.load_gain
                  << ")\n";
        swapped = true;
      }
    }
  }
  std::cout << "  sorted:  load = " << schedule.total_load()
            << "  -- every swap increased the load, as the proof asserts\n"
            << "  (Theorem 1 optimum with fresh loads: " << base << ")\n";
  return 0;
}
