// Quickstart: describe a heterogeneous platform, compute the optimal
// one-port FIFO schedule (Theorem 1) and the LIFO comparator, inspect and
// validate the result.
//
//   $ ./quickstart
#include <iostream>

#include "core/solver.hpp"
#include "schedule/gantt.hpp"
#include "schedule/timeline.hpp"
#include "schedule/validator.hpp"

int main() {
  using namespace dlsched;

  // A star platform: per load unit, worker Pi needs c time units to receive
  // its input, w to compute, d to return results (d = c/2 here: results are
  // half the size of the input, as in a matrix-product application).
  const StarPlatform platform({
      Worker{0.08, 0.30, 0.04, "fast-link"},
      Worker{0.12, 0.20, 0.06, "balanced"},
      Worker{0.20, 0.15, 0.10, "fast-cpu"},
      Worker{0.35, 0.60, 0.175, "weak"},
  });
  std::cout << platform.describe() << "\n";

  // --- optimal FIFO (the paper's Theorem 1), selected by registry name ----
  SolveRequest request;
  request.platform = platform;
  const SolveResult fifo =
      SolverRegistry::instance().run("fifo_optimal", request);
  std::cout << "optimal FIFO throughput: "
            << fifo.solution.throughput.to_double()
            << " load units per time unit"
            << " (exact: " << fifo.solution.throughput.to_string() << ")\n";
  std::cout << "enrolled " << fifo.solution.enrolled().size() << " of "
            << platform.size() << " workers\n\n";
  std::cout << fifo.schedule.describe(platform);

  // Always validate what you are about to deploy.
  const ValidationReport report = validate(platform, fifo.schedule);
  std::cout << "schedule valid: " << (report.ok ? "yes" : "NO") << "\n\n";

  // --- LIFO comparator -----------------------------------------------------
  const SolveResult lifo = SolverRegistry::instance().run("lifo", request);
  std::cout << "optimal LIFO throughput: " << lifo.throughput()
            << "  (FIFO/LIFO ratio: "
            << fifo.throughput() / lifo.throughput() << ")\n\n";

  // --- visualize -----------------------------------------------------------
  const Timeline timeline = build_timeline(platform, fifo.schedule);
  std::cout << render_ascii_gantt(platform, timeline,
                                  GanttOptions{.width = 80}) << "\n";
  return 0;
}
