// Resource selection study (the paper's Section 5.3.4 scenario, explored
// interactively): when is it worth enrolling a slow fourth worker?
//
// We sweep the slow worker's communication factor x and report the
// throughput, whether the LP enrolls it, and the loss from forcing it in /
// leaving it out.
//
//   $ ./resource_selection
#include <iostream>

#include "core/solver.hpp"
#include "core/throughput.hpp"
#include "platform/generators.hpp"
#include "platform/matrix_app.hpp"
#include "util/table.hpp"

int main() {
  using namespace dlsched;
  const MatrixApp app({.matrix_size = 400});
  const std::uint64_t m = 1000;

  std::cout << "Resource selection: 3 strong workers + 1 slow worker whose "
               "link factor x varies\n";
  std::cout << "(comm {10, 8, 8, x}, comp {9, 9, 10, 1}; matrix size 400, "
               "M = 1000)\n\n";

  Table table({"x", "rho(4 workers)", "time[s]", "slow_enrolled",
               "time_without_slow[s]", "gain_%"});
  table.set_precision(3);
  for (double x : {0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 8.0}) {
    const StarPlatform full = app.platform(gen::participation_speeds(x));
    SolveRequest request;
    request.platform = full;
    const SolveResult with_all =
        SolverRegistry::instance().run("fifo_optimal", request);
    const double rho = with_all.throughput();
    const bool slow_used = with_all.solution.alpha[3].is_positive();

    const std::vector<std::size_t> strong{0, 1, 2};
    request.platform = full.subset(strong);
    const SolveResult without =
        SolverRegistry::instance().run("fifo_optimal", request);
    const double rho3 = without.throughput();

    table.begin_row()
        .cell(format_double(x, 2))
        .cell(rho)
        .cell(makespan_for_load(rho, static_cast<double>(m)))
        .cell(std::string(slow_used ? "yes" : "no"))
        .cell(makespan_for_load(rho3, static_cast<double>(m)))
        .cell(100.0 * (rho / rho3 - 1.0));
  }
  table.print_aligned(std::cout);

  std::cout << "\nreading: below some x the slow worker is pure ballast "
               "(gain 0, not enrolled);\nas its link improves the LP "
               "enrolls it and the 4-worker platform wins\n";
  return 0;
}
