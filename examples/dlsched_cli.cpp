// dlsched_cli -- drive the solver portfolio from a platform description.
//
// One binary, one subcommand table (see `kCommands` / --help): local
// commands solve against the in-process registry, `serve` runs the
// scheduling daemon (src/service/), and `request` speaks the wire
// protocol to a running daemon.  Every scheduling strategy is selected by
// registry name (see --list-solvers); the CLI itself knows nothing about
// individual algorithms.  When no platform file is given, a built-in
// 4-worker demo bus (z = 1/2, heterogeneous compute) is used -- every
// registered solver is applicable to it.
//
// Platform file format (see src/platform/platform_io.hpp):
//   z 0.5
//   node-a 0.08 0.30
//   node-b 0.12 0.20 0.06
#include <csignal>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "core/solver.hpp"
#include "core/throughput.hpp"
#include "experiments/bench_driver.hpp"
#include "experiments/emitter.hpp"
#include "platform/platform_io.hpp"
#include "schedule/gantt.hpp"
#include "schedule/rounding.hpp"
#include "schedule/timeline.hpp"
#include "schedule/validator.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "sim/des_executor.hpp"
#include "util/cli.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace dlsched;

// ------------------------------------------------------ subcommand table --

struct Command {
  const char* name;
  const char* arguments;
  const char* summary;
};

constexpr Command kCommands[] = {
    {"describe", "[platform-file]", "print the platform and its serialized form"},
    {"solve", "[platform-file] [--solver NAME] [--load M]",
     "run one solver and print the schedule"},
    {"compare", "[platform-file] [--solvers a,b] [--load M] [--json]",
     "run the portfolio side by side"},
    {"gantt", "[platform-file] [--solver NAME] [--svg FILE] [--width N]",
     "render the schedule as a gantt chart"},
    {"simulate", "[platform-file] [--solver NAME] [--load M] [--noise SEED]",
     "execute the schedule on the discrete-event simulator"},
    {"bench", "--spec NAME | --spec-file FILE | --list-specs",
     "experiment driver (embedded dlsched_bench)"},
    {"serve", "--socket PATH [--cache-dir DIR] [--queue-capacity N] [...]",
     "run the scheduling daemon on a local socket"},
    {"request", "[platform-file] --socket PATH [--solver NAME] [--json]",
     "send one solve to a running daemon and print the result"},
};

int usage(std::ostream& out, int code) {
  out << "usage: dlsched_cli <command> [arguments] [options]\n"
         "       dlsched_cli --list-solvers | --help\n\ncommands:\n";
  Table table({"command", "arguments", "summary"});
  for (const Command& command : kCommands) {
    table.begin_row()
        .cell(command.name)
        .cell(command.arguments)
        .cell(command.summary);
  }
  table.print_aligned(out);
  out << "\ncommon options:\n"
         "  --solver NAME   scheduling strategy (default fifo_optimal)\n"
         "  --solvers a,b   compare: comma-separated subset (default: all)\n"
         "  --load M        schedule M load units (default: throughput form)\n"
         "  --exact         rational LP arithmetic (default: fast/double)\n"
         "  --seed N        seed for randomized solvers\n"
         "  --budget SEC    time budget for search solvers\n"
         "  --threads N     thread-pool size (0 = hardware)\n"
         "  --json          compare/request: machine-readable output\n"
         "serve options:\n"
         "  --socket PATH         AF_UNIX socket path (required)\n"
         "  --cache-dir DIR       ResultCache directory (repeat queries\n"
         "                        answer from disk)\n"
         "  --queue-capacity N    bounded admission queue (default 64)\n"
         "  --batch-max N         micro-batch size cap (default 16)\n"
         "  --batch-wait-ms X     micro-batch gather window (default 2)\n"
         "  --retry-after-ms X    advertised backpressure delay "
         "(default 25)\n"
         "gantt/simulate options:\n"
         "  --svg FILE / --width N / --noise SEED / --chrome-trace FILE\n"
         "bench options: --spec/--spec-file/--list-specs plus\n"
         "  --out/--csv/--cache-dir/--no-cache/--quick\n"
         "  cluster: --coordinator HOST:PORT [--workers N|auto[:MAX]]\n"
         "           [--lease-ttl S] | --worker tcp://HOST:PORT\n";
  return code;
}

/// The built-in demo platform: a bus with a uniform return ratio z = 1/2
/// and heterogeneous compute, so every registered solver (including
/// Theorem 2 and the Lemma 2 exchanges) is applicable.
StarPlatform demo_platform() {
  return StarPlatform::bus(0.25, 0.125, {0.5, 1.0, 2.0, 4.0});
}

StarPlatform resolve_platform(const CliArgs& args) {
  if (args.positional().size() < 2 || args.positional()[1] == "demo") {
    return demo_platform();
  }
  return load_platform(args.positional()[1]);
}

SolveRequest request_from(const StarPlatform& platform, const CliArgs& args) {
  SolveRequest request;
  request.platform = platform;
  request.precision =
      args.has("exact") ? Precision::Exact : Precision::Fast;
  request.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  request.time_budget_seconds = args.get_double("budget", 0.0);
  return request;
}

int list_solvers() {
  Table table({"solver", "paper", "description"});
  for (const SolverInfo& info : SolverRegistry::instance().infos()) {
    table.begin_row().cell(info.name).cell(info.paper_ref).cell(
        info.description);
  }
  table.print_aligned(std::cout);
  std::cout << "\n" << SolverRegistry::instance().names().size()
            << " solvers registered\n";
  return 0;
}

void print_solution(const StarPlatform& platform, const SolveResult& result,
                    double load) {
  std::cout << "scenario: " << result.solution.scenario.describe() << "\n";
  std::cout << "throughput (T = 1): " << result.throughput() << "\n";
  if (load > 0.0) {
    std::cout << "time for " << load
              << " load units: " << makespan_for_load(result.throughput(), load)
              << "\n";
  }
  Table table({"worker", "alpha", "share_%"});
  table.set_precision(5);
  const double total = result.throughput();
  for (std::size_t w = 0; w < platform.size(); ++w) {
    if (!result.solution.alpha[w].is_positive()) continue;
    table.begin_row()
        .cell(platform.worker(w).name)
        .cell(result.solution.alpha[w].to_double())
        .cell(100.0 * result.solution.alpha[w].to_double() / total);
  }
  table.print_aligned(std::cout);
  const std::size_t used = result.solution.enrolled().size();
  if (used < platform.size()) {
    std::cout << "(resource selection dropped " << platform.size() - used
              << " worker(s))\n";
  }
  if (result.provably_optimal) std::cout << "provably optimal: yes\n";
  if (result.mirrored) std::cout << "solved through the z > 1 mirror\n";
  if (result.alt_throughput) {
    std::cout << "secondary throughput: " << result.alt_throughput->to_double()
              << "\n";
  }
  if (result.scenarios_tried > 0) {
    std::cout << "scenarios tried: " << result.scenarios_tried << "\n";
  }
  if (result.lp_evaluations > 0) {
    std::cout << "LP evaluations: " << result.lp_evaluations << "\n";
  }
  if (!result.notes.empty()) std::cout << "note: " << result.notes << "\n";
  std::cout << "wall time: " << 1e3 * result.wall_seconds << " ms\n";
}

int cmd_describe(const StarPlatform& platform) {
  std::cout << platform.describe();
  std::cout << serialize_platform(platform);
  return 0;
}

int cmd_solve(const StarPlatform& platform, const CliArgs& args) {
  const std::string name = args.get_or("solver", "fifo_optimal");
  const SolveRequest request = request_from(platform, args);
  const auto solver = SolverRegistry::instance().create(name);
  std::string why;
  if (!solver->applicable(request, &why)) {
    std::cerr << "solver '" << name << "' is not applicable here: " << why
              << "\n";
    return 1;
  }
  const SolveResult result = SolverRegistry::instance().run(name, request);
  std::cout << name << " -- " << solver->description() << " ["
            << solver->paper_ref() << "]\n";
  print_solution(platform, result, args.get_double("load", 0.0));
  const ValidationReport report =
      validate(result.schedule_platform, result.schedule);
  if (!report.ok) {
    std::cerr << "SCHEDULE FAILED VALIDATION: " << report.violations.front()
              << "\n";
    return 1;
  }
  std::cout << "schedule validated: ok\n";
  return 0;
}

/// One `compare --json` / `request --json` row: solver + solved, then the
/// canonical wire field list (service/wire.hpp), then command extras.
experiments::JsonObject result_row(const service::SolveRecord& record) {
  experiments::JsonObject row;
  row.add("solver", record.solver).add("solved", record.solved);
  if (record.solved) {
    service::append_result_fields(row, record);
  } else {
    row.add("error", record.error);
  }
  return row;
}

int cmd_compare(const StarPlatform& platform, const CliArgs& args) {
  const double load = args.get_double("load", 1000.0);
  const SolveRequest request = request_from(platform, args);
  std::vector<std::string> names;
  if (const auto chosen = args.get("solvers")) {
    names = split(*chosen, ',');
  } else {
    names = SolverRegistry::instance().names();
  }
  const auto outcomes = solve_batch_across_solvers(
      request, names,
      static_cast<std::size_t>(args.get_int("threads", 0)));

  if (args.has("json")) {
    // Machine-readable rows (`compare --json --seed N` is reproducible
    // bit for bit).  The result fields are the canonical wire list; only
    // `time_for_load` is compare-specific.
    std::cout << "[";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      experiments::JsonObject row =
          result_row(service::record_from_outcome(outcomes[i]));
      if (outcomes[i].solved) {
        row.add("time_for_load",
                makespan_for_load(outcomes[i].result.throughput(), load));
      }
      std::cout << (i > 0 ? ",\n " : "\n ") << row.render();
    }
    std::cout << "\n]\n";
    return 0;
  }

  Table table({"solver", "throughput", "time_for_load", "workers", "valid",
               "wall_ms"});
  table.set_precision(5);
  for (const BatchOutcome& outcome : outcomes) {
    table.begin_row().cell(outcome.solver);
    if (!outcome.solved) {
      table.cell("error").cell(outcome.error).cell("-").cell("-").cell("-");
      continue;
    }
    const double rho = outcome.result.throughput();
    table.cell(rho)
        .cell(makespan_for_load(rho, load))
        .cell(outcome.result.solution.enrolled().size())
        .cell(outcome.ok ? "ok" : "FAIL")
        .cell(1e3 * outcome.result.wall_seconds);
  }
  table.print_aligned(std::cout);
  const std::size_t skipped = names.size() - outcomes.size();
  if (skipped > 0) {
    std::cout << "(" << skipped
              << " solver(s) not applicable to this platform)\n";
  }
  return 0;
}

int cmd_gantt(const StarPlatform& platform, const CliArgs& args) {
  const SolveResult result = SolverRegistry::instance().run(
      args.get_or("solver", "fifo_optimal"), request_from(platform, args));
  const Timeline timeline =
      build_timeline(result.schedule_platform, result.schedule);
  GanttOptions options;
  options.width = static_cast<std::size_t>(args.get_int("width", 100));
  std::cout << render_ascii_gantt(result.schedule_platform, timeline,
                                  options);
  if (const auto svg_path = args.get("svg")) {
    std::ofstream svg(*svg_path);
    if (!svg.good()) {
      std::cerr << "cannot write " << *svg_path << "\n";
      return 1;
    }
    GanttOptions svg_options;
    svg_options.svg_pixels_per_unit = 700.0 / timeline.makespan;
    svg << render_svg_gantt(result.schedule_platform, timeline, svg_options);
    std::cout << "SVG written to " << *svg_path << "\n";
  }
  return 0;
}

int cmd_simulate(const StarPlatform& platform, const CliArgs& args) {
  const auto load = static_cast<std::uint64_t>(args.get_int("load", 1000));
  const SolveResult result = SolverRegistry::instance().run(
      args.get_or("solver", "fifo_optimal"), request_from(platform, args));
  const double rho = result.throughput();

  std::vector<double> ordered;
  for (std::size_t w : result.solution.scenario.send_order) {
    ordered.push_back(result.solution.alpha[w].to_double() *
                      static_cast<double>(load) / rho);
  }
  const auto integral = round_loads(ordered, load);
  std::vector<double> loads(platform.size(), 0.0);
  for (std::size_t k = 0; k < result.solution.scenario.send_order.size();
       ++k) {
    loads[result.solution.scenario.send_order[k]] =
        static_cast<double>(integral[k]);
  }
  sim::NoiseModel noise = sim::NoiseModel::none();
  if (args.has("noise")) {
    noise = sim::NoiseModel::cluster_like(
        static_cast<std::uint64_t>(args.get_int("noise", 1)));
  }
  const auto des =
      sim::execute(platform, result.solution.scenario, loads, noise);
  std::cout << "LP-predicted time: "
            << makespan_for_load(rho, static_cast<double>(load)) << "\n";
  std::cout << "simulated time:    " << des.makespan << "\n";
  std::cout << "master busy:       "
            << 100.0 * des.trace.master_utilization() << " %\n";
  if (const auto trace_path = args.get("chrome-trace")) {
    std::ofstream out(*trace_path);
    if (!out.good()) {
      std::cerr << "cannot write " << *trace_path << "\n";
      return 1;
    }
    out << des.trace.to_chrome_json(platform);
    std::cout << "chrome trace written to " << *trace_path
              << " (open in about://tracing or ui.perfetto.dev)\n";
  }
  return 0;
}

// ---------------------------------------------------------- service side --

std::atomic<int> g_signal{0};

extern "C" void on_signal(int sig) { g_signal.store(sig); }

int cmd_serve(const CliArgs& args) {
  const auto socket = args.get("socket");
  if (!socket) {
    std::cerr << "serve: --socket PATH is required\n";
    return 2;
  }
  service::ServerConfig config;
  config.socket_path = *socket;
  config.solve_threads =
      static_cast<std::size_t>(args.get_int("threads", 0));
  config.queue_capacity = static_cast<std::size_t>(
      args.get_int("queue-capacity", 64));
  config.batch_max =
      static_cast<std::size_t>(args.get_int("batch-max", 16));
  config.batch_wait_ms = args.get_double("batch-wait-ms", 2.0);
  config.cache_dir = args.get_or("cache-dir", "");
  config.retry_after_ms = args.get_double("retry-after-ms", 25.0);

  service::Server server(config);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::cout << "dlsched_serve: listening on " << config.socket_path
            << (config.cache_dir.empty()
                    ? std::string(" (no cache)")
                    : " (cache: " + config.cache_dir + ")")
            << "\n"
            << "dlsched_serve: ready\n"
            << std::flush;
  while (g_signal.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cout << "dlsched_serve: signal " << g_signal.load()
            << ", draining\n";
  server.stop();
  const service::StatsSnapshot stats = server.stats();
  std::cout << "dlsched_serve: drained -- admitted " << stats.admitted
            << ", rejected " << stats.rejected << ", cache hits "
            << stats.cache_hits << ", solved " << stats.solved
            << ", deduped " << stats.deduped << "\n";
  return 0;
}

int cmd_request(const StarPlatform& platform, const CliArgs& args) {
  const auto socket = args.get("socket");
  if (!socket) {
    std::cerr << "request: --socket PATH is required\n";
    return 2;
  }
  const std::string name = args.get_or("solver", "fifo_optimal");
  service::ServeClient client(*socket);
  const service::SolveReply reply =
      client.solve(name, request_from(platform, args));
  if (reply.kind == service::SolveReply::Kind::Rejected) {
    std::cerr << "rejected: " << reply.reject.reason
              << (reply.reject.retry_after_ms >= 0.0
                      ? " (retry after " +
                            std::to_string(reply.reject.retry_after_ms) +
                            " ms)"
                      : "")
              << "\n";
    return 3;
  }
  const service::SolveRecord& record = reply.record;
  if (args.has("json")) {
    std::cout << result_row(record).render() << "\n";
    return record.solved && record.validated ? 0 : 1;
  }
  if (!record.solved) {
    std::cerr << "solver error: " << record.error << "\n";
    return 1;
  }
  std::cout << record.solver << " via daemon at " << *socket << "\n"
            << "throughput (T = 1): " << record.throughput << "\n"
            << "workers used: " << record.workers_used << "\n"
            << "validated: " << (record.validated ? "ok" : "FAIL") << "\n"
            << "wall time: " << 1e3 * record.wall_seconds << " ms\n";
  return record.validated ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // The bench subcommand shares the dlsched_bench driver (and its flag
  // set) so the two entry points cannot drift.
  std::vector<std::string> flags{"list-solvers", "exact", "json", "help"};
  flags.insert(flags.end(), experiments::bench_flags().begin(),
               experiments::bench_flags().end());
  const CliArgs args = CliArgs::parse(argc, argv, flags);
  try {
    if (args.has("help")) return usage(std::cout, 0);
    if (args.has("list-solvers")) return list_solvers();
    if (args.positional().empty()) return usage(std::cerr, 2);
    const std::string& command = args.positional()[0];
    if (command == "help") return usage(std::cout, 0);
    if (command == "bench") return experiments::bench_main(args);
    if (command == "serve") return cmd_serve(args);
    const StarPlatform platform = resolve_platform(args);
    if (command == "describe") return cmd_describe(platform);
    if (command == "solve") return cmd_solve(platform, args);
    if (command == "compare") return cmd_compare(platform, args);
    if (command == "gantt") return cmd_gantt(platform, args);
    if (command == "simulate") return cmd_simulate(platform, args);
    if (command == "request") return cmd_request(platform, args);
    std::cerr << "unknown command '" << command << "'\n\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage(std::cerr, 2);
}
