// dlsched_cli -- drive the library from a platform description file.
//
//   dlsched_cli describe <platform-file>
//   dlsched_cli fifo     <platform-file> [--load M] [--two-port]
//   dlsched_cli lifo     <platform-file> [--load M]
//   dlsched_cli compare  <platform-file> [--load M]
//   dlsched_cli brute    <platform-file> [--fifo-only] [--lifo-only]
//   dlsched_cli gantt    <platform-file> [--svg out.svg] [--width N]
//   dlsched_cli simulate <platform-file> [--load M] [--noise SEED]
//
// Platform file format (see src/platform/platform_io.hpp):
//   z 0.5
//   node-a 0.08 0.30
//   node-b 0.12 0.20 0.06
#include <fstream>
#include <iostream>

#include "core/brute_force.hpp"
#include "core/fifo_optimal.hpp"
#include "core/lifo.hpp"
#include "core/throughput.hpp"
#include "core/two_port.hpp"
#include "platform/platform_io.hpp"
#include "schedule/gantt.hpp"
#include "schedule/rounding.hpp"
#include "schedule/validator.hpp"
#include "sim/des_executor.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace dlsched;

int usage() {
  std::cerr
      << "usage: dlsched_cli <describe|fifo|lifo|compare|brute|gantt|"
         "simulate> <platform-file> [options]\n"
         "  --load M       schedule M load units (default: throughput form)\n"
         "  --two-port     fifo: use the two-port model of [7,8]\n"
         "  --fifo-only / --lifo-only   restrict the brute-force search\n"
         "  --svg FILE     gantt: also write an SVG\n"
         "  --width N      gantt: ASCII width (default 100)\n"
         "  --noise SEED   simulate: cluster-like noise with this seed\n"
         "  --chrome-trace FILE   simulate: dump a chrome://tracing JSON\n";
  return 2;
}

void print_solution(const StarPlatform& platform,
                    const ScenarioSolution& solution, double load) {
  std::cout << "scenario: " << solution.scenario.describe() << "\n";
  std::cout << "throughput (T = 1): " << solution.throughput.to_double()
            << "\n";
  if (load > 0.0) {
    std::cout << "time for " << load << " load units: "
              << makespan_for_load(solution.throughput.to_double(), load)
              << "\n";
  }
  Table table({"worker", "alpha", "share_%"});
  table.set_precision(5);
  const double total = solution.throughput.to_double();
  for (std::size_t w = 0; w < platform.size(); ++w) {
    if (!solution.alpha[w].is_positive()) continue;
    table.begin_row()
        .cell(platform.worker(w).name)
        .cell(solution.alpha[w].to_double())
        .cell(100.0 * solution.alpha[w].to_double() / total);
  }
  table.print_aligned(std::cout);
  const std::size_t used = solution.enrolled().size();
  if (used < platform.size()) {
    std::cout << "(resource selection dropped " << platform.size() - used
              << " worker(s))\n";
  }
}

int cmd_describe(const StarPlatform& platform) {
  std::cout << platform.describe();
  std::cout << serialize_platform(platform);
  return 0;
}

int cmd_fifo(const StarPlatform& platform, const CliArgs& args) {
  const double load = args.get_double("load", 0.0);
  if (args.has("two-port")) {
    const auto result = solve_fifo_optimal_two_port(platform);
    std::cout << "two-port model ([7,8])\n";
    print_solution(platform, result.solution, load);
    std::cout << "one-port feasible throughput after the Figure 7 "
                 "transformation: "
              << result.one_port_throughput.to_double() << "\n";
    return 0;
  }
  const auto result = solve_fifo_optimal(platform);
  std::cout << "one-port FIFO optimum (Theorem 1"
            << (result.mirrored ? ", z > 1 mirror" : "") << ")\n";
  print_solution(platform, result.solution, load);
  return 0;
}

int cmd_lifo(const StarPlatform& platform, const CliArgs& args) {
  const auto lp = solve_lifo_lp(platform);
  std::cout << "one-port LIFO optimum ([7,8])\n";
  print_solution(platform, lp, args.get_double("load", 0.0));
  return 0;
}

int cmd_compare(const StarPlatform& platform, const CliArgs& args) {
  const double load = args.get_double("load", 1000.0);
  Table table({"strategy", "throughput", "time_for_load", "workers"});
  table.set_precision(5);
  auto add = [&](const char* name, const ScenarioSolution& s) {
    table.begin_row()
        .cell(std::string(name))
        .cell(s.throughput.to_double())
        .cell(makespan_for_load(s.throughput.to_double(), load))
        .cell(s.enrolled().size());
  };
  add("FIFO (optimal)", solve_fifo_optimal(platform).solution);
  add("LIFO (optimal)", solve_lifo_lp(platform));
  add("two-port FIFO", solve_fifo_optimal_two_port(platform).solution);
  table.print_aligned(std::cout);
  return 0;
}

int cmd_brute(const StarPlatform& platform, const CliArgs& args) {
  BruteForceOptions options;
  options.fifo_only = args.has("fifo-only");
  options.lifo_only = args.has("lifo-only");
  const auto result = brute_force_best(platform, options);
  std::cout << "exhaustive search over " << result.scenarios_tried
            << " scenario(s)\n";
  print_solution(platform, result.best, args.get_double("load", 0.0));
  return 0;
}

int cmd_gantt(const StarPlatform& platform, const CliArgs& args) {
  const auto result = solve_fifo_optimal(platform);
  const Timeline timeline = build_timeline(platform, result.schedule);
  GanttOptions options;
  options.width =
      static_cast<std::size_t>(args.get_int("width", 100));
  std::cout << render_ascii_gantt(platform, timeline, options);
  if (const auto svg_path = args.get("svg")) {
    std::ofstream svg(*svg_path);
    if (!svg.good()) {
      std::cerr << "cannot write " << *svg_path << "\n";
      return 1;
    }
    GanttOptions svg_options;
    svg_options.svg_pixels_per_unit = 700.0 / timeline.makespan;
    svg << render_svg_gantt(platform, timeline, svg_options);
    std::cout << "SVG written to " << *svg_path << "\n";
  }
  return 0;
}

int cmd_simulate(const StarPlatform& platform, const CliArgs& args) {
  const auto load =
      static_cast<std::uint64_t>(args.get_int("load", 1000));
  const auto result = solve_fifo_optimal(platform);
  const double rho = result.solution.throughput.to_double();

  std::vector<double> ordered;
  for (std::size_t w : result.solution.scenario.send_order) {
    ordered.push_back(result.solution.alpha[w].to_double() *
                      static_cast<double>(load) / rho);
  }
  const auto integral = round_loads(ordered, load);
  std::vector<double> loads(platform.size(), 0.0);
  for (std::size_t k = 0; k < result.solution.scenario.send_order.size();
       ++k) {
    loads[result.solution.scenario.send_order[k]] =
        static_cast<double>(integral[k]);
  }
  sim::NoiseModel noise = sim::NoiseModel::none();
  if (args.has("noise")) {
    noise = sim::NoiseModel::cluster_like(
        static_cast<std::uint64_t>(args.get_int("noise", 1)));
  }
  const auto des = sim::execute(platform, result.solution.scenario, loads,
                                noise);
  std::cout << "LP-predicted time: "
            << makespan_for_load(rho, static_cast<double>(load)) << "\n";
  std::cout << "simulated time:    " << des.makespan << "\n";
  std::cout << "master busy:       "
            << 100.0 * des.trace.master_utilization() << " %\n";
  if (const auto trace_path = args.get("chrome-trace")) {
    std::ofstream out(*trace_path);
    if (!out.good()) {
      std::cerr << "cannot write " << *trace_path << "\n";
      return 1;
    }
    out << des.trace.to_chrome_json(platform);
    std::cout << "chrome trace written to " << *trace_path
              << " (open in about://tracing or ui.perfetto.dev)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = CliArgs::parse(
      argc, argv, {"two-port", "fifo-only", "lifo-only"});
  if (args.positional().size() < 2) return usage();
  const std::string& command = args.positional()[0];
  try {
    const StarPlatform platform = load_platform(args.positional()[1]);
    if (command == "describe") return cmd_describe(platform);
    if (command == "fifo") return cmd_fifo(platform, args);
    if (command == "lifo") return cmd_lifo(platform, args);
    if (command == "compare") return cmd_compare(platform, args);
    if (command == "brute") return cmd_brute(platform, args);
    if (command == "gantt") return cmd_gantt(platform, args);
    if (command == "simulate") return cmd_simulate(platform, args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
