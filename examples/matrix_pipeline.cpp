// The paper's target application end to end: a stream of matrix products
// scheduled with the LP and executed on the in-process threaded runtime
// (real GEMM computations, one-port enforced transfers).
//
// The host's GEMM rate is calibrated first so the linear model's w matches
// reality -- the same alignment the paper establishes with its Figure 8
// linearity test.
//
//   $ ./matrix_pipeline
#include <iostream>

#include "runtime/matmul.hpp"
#include "runtime/runtime_app.hpp"
#include "util/table.hpp"

int main() {
  using namespace dlsched;

  // Tasks must be big enough that thread hand-off overhead (tens of
  // microseconds per message) vanishes against real work: n = 160 puts a
  // single product in the millisecond range on any host.
  const std::size_t n = 160;
  std::cout << "calibrating naive GEMM on " << n << "x" << n
            << " matrices...\n";
  const double flops = rt::calibrate_gemm_flops(n);
  std::cout << "host sustains " << flops / 1e6 << " MFlop/s\n\n";

  rt::RuntimeExperiment experiment;
  // Heterogeneous 4-worker platform (factors as in the paper: >= 1, higher
  // is faster).
  experiment.speeds = {
      WorkerSpeeds{4.0, 1.0},
      WorkerSpeeds{2.0, 2.0},
      WorkerSpeeds{1.0, 4.0},
      WorkerSpeeds{1.0, 1.0},
  };
  experiment.total_tasks = 60;  // M matrix products
  experiment.config.matrix_size = n;
  experiment.config.base_flops = flops;
  // Virtual bandwidth chosen so one task's transfer takes about half its
  // computation: communication matters without dominating.
  const double task_seconds = 2.0 * n * n * n / flops;
  experiment.config.base_bandwidth =
      (2.0 * 8.0 * n * n) / (0.5 * task_seconds);
  experiment.config.real_compute = true;
  experiment.config.time_scale = 1.0;

  std::cout << "running " << experiment.total_tasks
            << " matrix products on 4 emulated workers (real GEMM, paced "
               "one-port transfers)\n\n";

  Table table({"heuristic", "lp_time[s]", "measured[s]", "measured/lp",
               "workers"});
  table.set_precision(3);
  for (Heuristic h : {Heuristic::IncC, Heuristic::IncW, Heuristic::Lifo}) {
    experiment.heuristic = h;
    const rt::RuntimeOutcome outcome = rt::run_experiment(experiment);
    table.begin_row()
        .cell(std::string(heuristic_name(h)))
        .cell(outcome.lp_makespan)
        .cell(outcome.measured_makespan)
        .cell(outcome.measured_makespan / outcome.lp_makespan)
        .cell(outcome.workers_used);
  }
  table.print_aligned(std::cout);
  std::cout << "\nexpected: measured/lp close to 1; LIFO <= INC_C <= INC_W "
               "in time\n";
  return 0;
}
