// The z > 1 scenario from the paper's introduction: the master scatters a
// few bytes of control instructions, each worker generates cryptographic
// keys and returns files *larger* than its input.  Here z = d/c = 8.
//
// Theorem 1 (via the mirror argument) says initial messages must go out in
// NON-INCREASING order of ci -- the opposite of the z < 1 rule.  This
// example shows the gap between the mirrored optimum and the naive
// "fast links first" FIFO, then runs both on the simulator.
//
//   $ ./crypto_keygen
#include <iostream>

#include "core/solver.hpp"
#include "core/throughput.hpp"
#include "schedule/gantt.hpp"
#include "sim/des_executor.hpp"
#include "util/table.hpp"

int main() {
  using namespace dlsched;

  // Per key batch: 1 KB of instructions in, 8 KB of keys out, heavy
  // compute.  Heterogeneous links (bytes/s factors below).
  const double z = 8.0;
  std::vector<Worker> workers;
  const double link_speed[] = {5.0, 3.0, 2.0, 1.0};   // relative
  const double cpu_speed[] = {1.0, 2.0, 1.5, 3.0};
  for (int i = 0; i < 4; ++i) {
    Worker w;
    w.c = 0.02 / link_speed[i];
    w.d = z * w.c;
    w.w = 0.30 / cpu_speed[i];
    w.name = "keygen" + std::to_string(i + 1);
    workers.push_back(w);
  }
  const StarPlatform platform(workers);
  std::cout << "key-generation platform (z = " << platform.z() << "):\n"
            << platform.describe() << "\n";

  SolveRequest request;
  request.platform = platform;
  const SolveResult optimal =
      SolverRegistry::instance().run("fifo_optimal", request);
  std::cout << "optimal FIFO (mirror argument, non-increasing c): rho = "
            << optimal.throughput() << "\n";

  request.scenario = Scenario::fifo(platform.order_by_c());
  const ScenarioSolution naive =
      SolverRegistry::instance().run("scenario_lp", request).solution;
  std::cout << "naive FIFO (non-decreasing c):                rho = "
            << naive.throughput.to_double() << "\n";
  std::cout << "improvement: "
            << 100.0 * (optimal.solution.throughput.to_double() /
                            naive.throughput.to_double() -
                        1.0)
            << " %\n\n";

  // Execute 500 key batches with both orderings on the simulator.
  Table table({"ordering", "lp_time", "sim_time"});
  table.set_precision(3);
  const double m = 500.0;
  struct Case {
    const char* name;
    const ScenarioSolution* solution;
  };
  const Case cases[] = {{"mirrored (optimal)", &optimal.solution},
                        {"naive inc-c", &naive}};
  for (const Case& c : cases) {
    std::vector<double> loads = c.solution->alpha_double();
    const double rho = c.solution->throughput.to_double();
    for (double& a : loads) a *= m / rho;
    const auto des = sim::execute(platform, c.solution->scenario, loads);
    table.begin_row()
        .cell(std::string(c.name))
        .cell(makespan_for_load(rho, m))
        .cell(des.makespan);
  }
  table.print_aligned(std::cout);

  std::cout << "\nsend order used by the optimum:";
  for (std::size_t w : optimal.solution.scenario.send_order) {
    std::cout << " " << platform.worker(w).name;
  }
  std::cout << "\n(slowest link first -- counterintuitive until you flip "
               "time and see the big returns pipelined)\n";
  return 0;
}
