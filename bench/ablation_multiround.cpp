// Ablation: single-round (the paper's setting) vs multi-round dispatch
// under the affine cost model (paper Section 6).
//
// With linear costs more rounds only help; with per-message latency the
// curve turns, and the optimal round count drops as latency grows -- the
// reason the paper's one-round linear analysis needs the affine model
// before multi-round strategies become meaningful.
#include <algorithm>
#include <iostream>

#include "core/multiround.hpp"
#include "core/solver.hpp"
#include "platform/generators.hpp"
#include "util/table.hpp"

int main() {
  using namespace dlsched;
  std::cout << "Ablation -- multi-round dispatch: makespan vs round count "
               "and message latency\n";
  std::cout << "(4 workers, chains dominated by reception+compute, loads "
               "from the single-round LP)\n\n";

  Rng rng(31337);
  const StarPlatform platform =
      gen::random_star(4, rng, 0.5, 0.3, 0.6, 0.8, 1.6);
  SolveRequest request;
  request.platform = platform;
  request.precision = Precision::Fast;
  const SolveResult sol = SolverRegistry::instance().run("inc_c", request);
  const std::vector<double> alpha = sol.solution.alpha_double();

  const std::vector<double> latencies{0.0, 0.002, 0.01, 0.05};
  std::vector<std::string> header{"rounds"};
  for (double lat : latencies) {
    header.push_back("latency=" + format_double(lat, 3));
  }
  Table table(header);
  table.set_precision(4);

  std::vector<std::vector<RoundSweepPoint>> curves;
  for (double lat : latencies) {
    AffineCosts costs;
    costs.send_latency = lat;
    curves.push_back(sweep_rounds(platform, alpha, costs, 12));
  }
  for (std::size_t r = 0; r < curves[0].size(); ++r) {
    table.begin_row().cell(curves[0][r].rounds);
    for (const auto& curve : curves) table.cell(curve[r].makespan);
  }
  table.print_aligned(std::cout);

  std::cout << "\nbest round count per latency:";
  for (std::size_t k = 0; k < latencies.size(); ++k) {
    const auto best = std::min_element(
        curves[k].begin(), curves[k].end(),
        [](const RoundSweepPoint& a, const RoundSweepPoint& b) {
          return a.makespan < b.makespan;
        });
    std::cout << "  " << format_double(latencies[k], 3) << "->R="
              << best->rounds;
  }
  std::cout << "\nexpected: optimal R decreases as latency grows; latency 0 "
               "saturates (more rounds ~ free)\n";
  return 0;
}
