// Figure 8: the linearity test.  The paper sends messages of 0-5 MB to five
// workers with simulated link-speed factors 1..5 and checks that transfer
// time is linear in the message size with negligible latency.
//
// We reproduce it twice:
//   (1) on the threaded runtime (wall-clock measurement of the paced
//       transfers, time-scaled), and
//   (2) on the DES with the cluster-like noise model,
// and report the per-worker linear fit (slope, intercept, R^2).  Expected
// shape: R^2 ~ 1, intercept ~ 0, slope inversely proportional to the
// worker's speed factor.
#include <cstdio>
#include <iostream>
#include <vector>

#include "runtime/one_port.hpp"
#include "runtime/worker_thread.hpp"
#include "sim/noise.hpp"
#include "util/table.hpp"

namespace {

struct Fit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};

Fit linear_fit(const std::vector<double>& xs, const std::vector<double>& ys) {
  const std::size_t n = xs.size();
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  Fit fit;
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  fit.slope = (static_cast<double>(n) * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / static_cast<double>(n);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  const double mean_y = sy / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double predicted = fit.slope * xs[i] + fit.intercept;
    ss_res += (ys[i] - predicted) * (ys[i] - predicted);
    ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace

int main() {
  using namespace dlsched;
  std::cout << "Figure 8 -- linearity test: transfer time vs message size\n";
  std::cout << "five workers with link speed factors 1..5; base bandwidth "
               "11.75 MB/s\n\n";

  const std::vector<double> sizes_mb{0.5, 1.0, 1.5, 2.0, 2.5,
                                     3.0, 3.5, 4.0, 4.5, 5.0};

  // ---- (1) threaded runtime: measure paced transfers ---------------------
  rt::RuntimeConfig config;
  config.base_bandwidth = 11.75e6;
  // Modest scaling: transfers must stay well above the OS sleep
  // granularity or the fit measures scheduler jitter instead of bandwidth.
  config.time_scale = 4.0;

  std::cout << "[threaded runtime measurement]\n";
  Table runtime_table({"worker", "speed", "slope[s/MB]", "intercept[s]",
                       "R^2"});
  runtime_table.set_precision(5);
  for (int worker = 1; worker <= 5; ++worker) {
    const double factor = static_cast<double>(worker);
    std::vector<double> xs;
    std::vector<double> ys;
    for (double mb : sizes_mb) {
      const double bytes = mb * 1e6;
      const double expected = rt::transfer_seconds(config, bytes, factor);
      const auto begin = std::chrono::steady_clock::now();
      rt::paced_sleep(expected, config.time_scale);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        begin)
              .count() *
          config.time_scale;
      xs.push_back(mb);
      ys.push_back(wall);
    }
    const Fit fit = linear_fit(xs, ys);
    runtime_table.begin_row()
        .cell(std::string("worker ") + std::to_string(worker))
        .cell(static_cast<long long>(worker))
        .cell(fit.slope)
        .cell(fit.intercept)
        .cell(fit.r2);
  }
  runtime_table.print_aligned(std::cout);

  // ---- (2) DES with cluster-like noise ------------------------------------
  std::cout << "\n[discrete-event simulation with cluster noise]\n";
  Table des_table({"worker", "speed", "slope[s/MB]", "intercept[s]", "R^2"});
  des_table.set_precision(5);
  for (int worker = 1; worker <= 5; ++worker) {
    const double factor = static_cast<double>(worker);
    sim::NoiseSampler sampler(
        sim::NoiseModel::cluster_like(1234 + static_cast<unsigned>(worker)));
    std::vector<double> xs;
    std::vector<double> ys;
    for (double mb : sizes_mb) {
      const double ideal = mb * 1e6 / (11.75e6 * factor);
      xs.push_back(mb);
      ys.push_back(sampler.message_time(ideal));
    }
    const Fit fit = linear_fit(xs, ys);
    des_table.begin_row()
        .cell(std::string("worker ") + std::to_string(worker))
        .cell(static_cast<long long>(worker))
        .cell(fit.slope)
        .cell(fit.intercept)
        .cell(fit.r2);
  }
  des_table.print_aligned(std::cout);

  std::cout << "\nexpected shape: R^2 close to 1 (linear), intercept close "
               "to 0 (no latency), slope ~ 1/(11.75 * speed)\n";
  return 0;
}
